"""Shared infrastructure for the paper-reproduction benchmarks.

Every benchmark module regenerates one table or figure of the paper and
writes its report to ``benchmarks/results/<name>.txt`` (also echoed to
stdout, visible with ``pytest -s``).

Scale control
-------------
``REPRO_BENCH_SCALE=quick`` (default) runs reduced Monte-Carlo sample
counts and the smaller designs so the whole harness finishes in minutes.
``REPRO_BENCH_SCALE=full`` reproduces the paper's full setup (C1-C6 at
real device counts, 1000-chip MC references, 10000-chip failure-time MC).
"""

from __future__ import annotations

import json
import os
import sys
from pathlib import Path

import pytest

from repro import obs
from repro.errors import ConfigurationError

RESULTS_DIR = Path(__file__).parent / "results"


def bench_scale() -> str:
    """The current benchmark scale ("quick" or "full")."""
    scale = os.environ.get("REPRO_BENCH_SCALE", "quick").lower()
    if scale not in ("quick", "full"):
        raise ConfigurationError(
            f"REPRO_BENCH_SCALE must be quick/full, got {scale!r}"
        )
    return scale


def is_full_scale() -> bool:
    """True when the paper's full experimental scale was requested."""
    return bench_scale() == "full"


@pytest.fixture(scope="session")
def scale() -> str:
    """Fixture form of :func:`bench_scale`."""
    return bench_scale()


#: Report files already written this session (first write truncates,
#: subsequent tests of the same module append).
_WRITTEN: set[str] = set()


class ReportWriter:
    """Accumulates a text report and persists it under results/."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.lines: list[str] = []

    def line(self, text: str = "") -> None:
        """Append one line to the report."""
        self.lines.append(text)

    def table(self, header: list[str], rows: list[list[str]]) -> None:
        """Append an aligned text table."""
        widths = [
            max(len(str(header[i])), *(len(str(r[i])) for r in rows))
            if rows
            else len(str(header[i]))
            for i in range(len(header))
        ]
        fmt = "  ".join(f"{{:>{w}}}" for w in widths)
        self.lines.append(fmt.format(*header))
        self.lines.append("  ".join("-" * w for w in widths))
        for row in rows:
            self.lines.append(fmt.format(*[str(c) for c in row]))

    def flush(self) -> str:
        """Write the report to disk and stdout; returns the text."""
        RESULTS_DIR.mkdir(exist_ok=True)
        text = "\n".join(self.lines) + "\n"
        path = RESULTS_DIR / f"{self.name}.txt"
        if self.name in _WRITTEN:
            with path.open("a") as handle:
                handle.write("\n" + text)
        else:
            path.write_text(text)
            _WRITTEN.add(self.name)
        sys.stdout.write(f"\n===== {self.name} =====\n{text}\n")
        return text


@pytest.fixture()
def report(request) -> ReportWriter:
    """A report writer named after the requesting module."""
    name = request.module.__name__.removeprefix("test_")
    writer = ReportWriter(name)
    yield writer
    if writer.lines:
        writer.flush()


#: Metrics files already written this session (first write truncates).
_METRICS_WRITTEN: set[str] = set()


@pytest.fixture(autouse=True)
def _stage_metrics(request):
    """Record per-stage wall times and counters for every benchmark test.

    Each benchmark module gets a ``results/metrics_<name>.json`` with one
    entry per test: the flattened stage timings (``repro.obs`` spans) and
    the counter/gauge registry, so the perf trajectory carries per-stage
    breakdowns, not just end-to-end totals.
    """
    obs.reset()
    obs.enable()
    yield
    snapshot = obs.observability_snapshot()
    obs.disable()
    obs.reset()

    name = request.module.__name__.removeprefix("test_")
    path = RESULTS_DIR / f"metrics_{name}.json"
    RESULTS_DIR.mkdir(exist_ok=True)
    data: dict = {}
    if name in _METRICS_WRITTEN and path.exists():
        data = json.loads(path.read_text())
    data[request.node.name] = {
        "stages": snapshot["stages"],
        "counters": snapshot["metrics"]["counters"],
        "gauges": snapshot["metrics"]["gauges"],
    }
    path.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
    _METRICS_WRITTEN.add(name)
