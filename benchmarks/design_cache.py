"""Prepared-analyzer cache shared by the benchmark modules.

Preparing an analyzer (thermal solve, PCA of the 625-cell correlation
matrix, BLOD characterisation) is a one-time pre-processing step the paper
excludes from its runtime comparison; caching it here mirrors that and
keeps the harness fast.
"""

from __future__ import annotations

from functools import lru_cache

from repro import AnalysisConfig, ReliabilityAnalyzer, make_benchmark

#: Designs exercised at each scale.
QUICK_DESIGNS = ("C1", "C2", "C3")
FULL_DESIGNS = ("C1", "C2", "C3", "C4", "C5", "C6")


def designs_for(scale: str) -> tuple[str, ...]:
    """Benchmark designs exercised at the given scale."""
    return FULL_DESIGNS if scale == "full" else QUICK_DESIGNS


def mc_chips_for(scale: str) -> int:
    """Monte-Carlo reference sample size (paper: 1000)."""
    return 1000 if scale == "full" else 250


def failure_chips_for(scale: str) -> int:
    """Failure-time MC sample size for Fig. 10 (paper: 10000)."""
    return 10000 if scale == "full" else 2000


@lru_cache(maxsize=32)
def prepared_analyzer(
    name: str,
    rho_dist: float = 0.5,
    grid_size: int = 25,
) -> ReliabilityAnalyzer:
    """A fully prepared analyzer for a named benchmark design."""
    config = AnalysisConfig(
        grid_size=grid_size,
        rho_dist=rho_dist,
        st_mc_samples=20000,
        mc_chunk_size=100,
    )
    return ReliabilityAnalyzer(make_benchmark(name), config=config)
