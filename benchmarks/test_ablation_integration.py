"""Ablation — integration rule for the eq. (28) double integrals.

Design choice called out in DESIGN.md: the paper's l0 x l0 midpoint
sub-domain rule (l0 = 10) versus Gauss-Hermite/quantile rules versus
adaptive scipy quadrature. Checks that l0 = 10 is converged (the paper's
claim) and reports the accuracy/cost trade-off.
"""

from __future__ import annotations

import time

import numpy as np

from benchmarks.design_cache import prepared_analyzer
from repro.core.ensemble import StFastAnalyzer
from repro.stats.integration import expectation_2d_adaptive


def test_ablation_l0_convergence(report, benchmark):
    analyzer = prepared_analyzer("C2")
    blocks = analyzer.blocks
    t10 = analyzer.lifetime(10)
    times = np.array([t10 / 3.0, t10, 3.0 * t10])

    reference = StFastAnalyzer(blocks, l0=120).failure_probability(times)
    rows = []
    errors = {}
    for l0 in (4, 6, 10, 20, 40):
        start = time.perf_counter()
        fast = StFastAnalyzer(blocks, l0=l0)
        f = fast.failure_probability(times)
        elapsed = time.perf_counter() - start
        err = float(np.max(np.abs(f / reference - 1.0)))
        errors[l0] = err
        rows.append([l0, f"{err:.2e}", f"{elapsed * 1e3:.1f}"])

    benchmark.pedantic(
        lambda: StFastAnalyzer(blocks, l0=10).failure_probability(times),
        rounds=3,
        iterations=1,
    )

    report.line("Ablation - midpoint rule l0 convergence (design C2)")
    report.line()
    report.table(["l0", "max rel err vs l0=120", "setup+eval (ms)"], rows)

    # Paper claim: l0 = 10 is already a reasonable number.
    assert errors[10] < 0.02
    # And the rule converges monotonically (up to tiny noise).
    assert errors[40] <= errors[4]


def test_ablation_rule_family_agreement(report, benchmark):
    analyzer = prepared_analyzer("C2")
    blocks = analyzer.blocks
    t10 = analyzer.lifetime(10)
    times = np.array([t10])

    midpoint = StFastAnalyzer(blocks, l0=10, rule="midpoint")
    gauss = StFastAnalyzer(blocks, l0=16, rule="gauss")
    f_mid = float(midpoint.failure_probability(times)[0])
    f_gauss = float(gauss.failure_probability(times)[0])

    # Adaptive scipy dblquad on the largest block as the exact reference.
    j = int(np.argmax([b.blod.area for b in blocks]))
    block = blocks[j]
    log_t_ratio = float(np.log(t10 / block.alpha))

    def integrand(u, v):
        from repro.core.closed_form import block_survival

        return block_survival(u, v, np.array([log_t_ratio]), block.b,
                              block.blod.area)[0]

    start = time.perf_counter()
    exact_block = 1.0 - expectation_2d_adaptive(
        integrand, block.blod.u_dist(), block.blod.v_chi2_match()
    )
    t_exact = time.perf_counter() - start
    f_mid_block = float(
        1.0 - midpoint.block_expectation(j, times)[0]
    )

    benchmark.pedantic(
        lambda: midpoint.block_expectation(j, times), rounds=5, iterations=1
    )

    report.line("Ablation - integration rule family agreement (10ppm point)")
    report.line()
    report.table(
        ["rule", "chip failure prob"],
        [
            ["midpoint l0=10", f"{f_mid:.6e}"],
            ["gauss-hermite/quantile", f"{f_gauss:.6e}"],
        ],
    )
    report.line()
    report.line(
        f"largest block: midpoint={f_mid_block:.6e}, "
        f"dblquad={exact_block:.6e} ({t_exact * 1e3:.0f} ms)"
    )
    assert f_gauss == f_mid or abs(f_gauss / f_mid - 1.0) < 0.05
    assert abs(f_mid_block / exact_block - 1.0) < 0.02
