"""Ablation — hybrid look-up-table resolution and reuse economics.

Design choices called out in DESIGN.md: the paper picks n_alpha = n_b =
100 table indices. This bench sweeps the resolution against st_fast
accuracy and measures the break-even point of table reuse across
setup/application profiles (the scenario Sec. IV-E motivates).
"""

from __future__ import annotations

import time

import numpy as np

from benchmarks.design_cache import prepared_analyzer
from repro.core.hybrid import HybridAnalyzer


def test_ablation_lut_resolution(report, benchmark):
    analyzer = prepared_analyzer("C2")
    blocks = analyzer.blocks
    t10 = analyzer.lifetime(10)
    times = np.array([t10 / 3.0, t10, 3.0 * t10])
    reference = analyzer.st_fast.failure_probability(times)

    rows = []
    errors = {}
    for resolution in (12, 25, 50, 100, 200):
        start = time.perf_counter()
        hybrid = HybridAnalyzer(blocks, n_alpha=resolution, n_b=resolution)
        build_time = time.perf_counter() - start
        start = time.perf_counter()
        f = hybrid.failure_probability(times)
        query_time = time.perf_counter() - start
        err = float(np.max(np.abs(f / reference - 1.0)))
        errors[resolution] = err
        rows.append(
            [
                f"{resolution}x{resolution}",
                f"{err:.2e}",
                f"{build_time * 1e3:.0f}",
                f"{query_time * 1e3:.2f}",
            ]
        )

    hybrid_100 = HybridAnalyzer(blocks, n_alpha=100, n_b=100)
    benchmark.pedantic(
        lambda: hybrid_100.failure_probability(times), rounds=10, iterations=1
    )

    report.line("Ablation - hybrid LUT resolution (design C2)")
    report.line()
    report.table(
        ["table", "max rel err vs st_fast", "build (ms)", "query (ms)"], rows
    )
    # The paper's 100x100 resolution is comfortably converged.
    assert errors[100] < 0.01
    assert errors[200] <= errors[12]


def test_ablation_lut_reuse_breakeven(report, benchmark):
    """Tables pay off after a handful of profile re-evaluations."""
    analyzer = prepared_analyzer("C2")
    blocks = analyzer.blocks
    t10 = analyzer.lifetime(10)
    times = np.logspace(np.log10(t10) - 0.5, np.log10(t10) + 0.5, 9)
    alphas = np.array([b.alpha for b in blocks])
    bs = np.array([b.b for b in blocks])

    start = time.perf_counter()
    hybrid = HybridAnalyzer(blocks, n_alpha=100, n_b=100)
    build_time = time.perf_counter() - start

    n_profiles = 20
    scales = np.linspace(0.5, 1.5, n_profiles)

    start = time.perf_counter()
    for s in scales:
        hybrid.reliability(times, alphas=alphas * s, bs=bs)
    hybrid_time = time.perf_counter() - start

    start = time.perf_counter()
    for s in scales:
        from repro.core.ensemble import BlockReliability, StFastAnalyzer

        profile_blocks = [
            BlockReliability(blod=b.blod, alpha=b.alpha * s, b=b.b)
            for b in blocks
        ]
        StFastAnalyzer(profile_blocks).reliability(times)
    st_fast_time = time.perf_counter() - start

    benchmark.pedantic(
        lambda: hybrid.reliability(times, alphas=alphas * 1.1, bs=bs),
        rounds=10,
        iterations=1,
    )

    per_query_hybrid = hybrid_time / n_profiles
    per_query_fast = st_fast_time / n_profiles
    breakeven = build_time / max(per_query_fast - per_query_hybrid, 1e-9)
    report.line("Ablation - LUT reuse economics (20 application profiles)")
    report.line()
    report.table(
        ["quantity", "value"],
        [
            ["table build (one-time)", f"{build_time * 1e3:.0f} ms"],
            ["hybrid per profile", f"{per_query_hybrid * 1e3:.2f} ms"],
            ["st_fast per profile", f"{per_query_fast * 1e3:.2f} ms"],
            ["break-even profiles", f"{breakeven:.1f}"],
        ],
    )
    # The query path must be much cheaper than re-integration.
    assert per_query_hybrid < per_query_fast
