"""Ablation — MC device handling: exact per-device vs binned multinomial.

The binned mode is distributionally equivalent to per-device sampling up
to the residual-thickness quantisation (DESIGN.md substitution note).
This bench quantifies both the agreement and the speedup, and sweeps the
bin count to show convergence.
"""

from __future__ import annotations

import time

import numpy as np

from benchmarks.design_cache import prepared_analyzer
from repro.core.montecarlo import MonteCarloEngine, ResidualBinning


def test_ablation_binned_vs_exact_accuracy(report, benchmark):
    analyzer = prepared_analyzer("C1")
    t10 = analyzer.lifetime(10)
    times = np.logspace(np.log10(t10) - 0.4, np.log10(t10) + 0.6, 6)
    chips = 150

    start = time.perf_counter()
    exact = MonteCarloEngine(
        analyzer.sampler, analyzer.blocks, device_mode="exact", chunk_size=chips
    ).reliability_curve(times, chips, np.random.default_rng(4))
    t_exact = time.perf_counter() - start

    start = time.perf_counter()
    binned = MonteCarloEngine(
        analyzer.sampler, analyzer.blocks, device_mode="binned", chunk_size=chips
    ).reliability_curve(times, chips, np.random.default_rng(4))
    t_binned = time.perf_counter() - start

    f_e = exact.failure_probability()
    f_b = binned.failure_probability()
    worst = float(np.max(np.abs(f_b / np.maximum(f_e, 1e-300) - 1.0)))

    benchmark.pedantic(
        lambda: MonteCarloEngine(
            analyzer.sampler, analyzer.blocks, device_mode="binned",
            chunk_size=50,
        ).reliability_curve(times, 50, np.random.default_rng(4)),
        rounds=3,
        iterations=1,
    )

    report.line("Ablation - MC device modes on C1 (150 chips)")
    report.line()
    report.table(
        ["mode", "time (s)", "1-R at t10ppm"],
        [
            ["exact ", f"{t_exact:.2f}", f"{f_e[2]:.3e}"],
            ["binned", f"{t_binned:.2f}", f"{f_b[2]:.3e}"],
        ],
    )
    report.line()
    report.line(
        f"speedup {t_exact / t_binned:.1f}x, worst relative gap {worst:.2%} "
        "(MC noise dominates; same RNG seed but different draw order)"
    )
    assert t_binned < t_exact
    assert worst < 0.5  # same distribution within MC noise


def test_ablation_bin_count_convergence(report, benchmark):
    analyzer = prepared_analyzer("C1")
    t10 = analyzer.lifetime(10)
    times = np.array([t10])
    reference = float(
        np.asarray(analyzer.st_fast.failure_probability(times))[0]
    )
    chips = 400

    rows = []
    gaps = {}
    for n_bins in (16, 32, 64, 128, 256):
        engine = MonteCarloEngine(
            analyzer.sampler,
            analyzer.blocks,
            device_mode="binned",
            binning=ResidualBinning(n_bins=n_bins),
            chunk_size=100,
        )
        curve = engine.reliability_curve(times, chips, np.random.default_rng(9))
        f = float(curve.failure_probability()[0])
        gap = abs(f / reference - 1.0)
        gaps[n_bins] = gap
        rows.append([n_bins, f"{f:.4e}", f"{gap:.2%}"])

    benchmark.pedantic(
        lambda: MonteCarloEngine(
            analyzer.sampler,
            analyzer.blocks,
            binning=ResidualBinning(n_bins=128),
            chunk_size=100,
        ).reliability_curve(times, 100, np.random.default_rng(9)),
        rounds=3,
        iterations=1,
    )

    report.line(
        f"Ablation - residual bin count vs st_fast reference "
        f"(C1, {chips} chips, 10ppm point)"
    )
    report.line()
    report.table(["bins", "MC failure", "gap vs st_fast"], rows)
    # The default (128 bins) sits within MC noise of the reference.
    assert gaps[128] < 0.2
    assert gaps[256] < 0.2
