"""Ablation — (Q)MC factor sampling for the st_mc analyzer.

The paper draws pseudo-random principal-component samples; Latin-hypercube
and scrambled-Sobol draws estimate the same expectations with lower
seed-to-seed scatter at the same sample count. This bench quantifies the
scatter reduction and the (negligible) cost difference.
"""

from __future__ import annotations

import time

import numpy as np

from benchmarks.design_cache import prepared_analyzer
from repro.core.ensemble import StMcAnalyzer


def test_ablation_qmc_scatter(report, benchmark):
    analyzer = prepared_analyzer("C2")
    blocks = analyzer.blocks
    t10 = analyzer.lifetime(10)
    times = np.array([t10])
    reference = float(
        np.asarray(analyzer.st_fast.failure_probability(times))[0]
    )

    rows = []
    scatters = {}
    for sampler in ("mc", "lhs", "sobol"):
        values = []
        start = time.perf_counter()
        for seed in range(8):
            st_mc = StMcAnalyzer(
                blocks, n_samples=4000, seed=seed, sampler=sampler
            )
            values.append(float(st_mc.failure_probability(times)[0]))
        elapsed = (time.perf_counter() - start) / 8.0
        values = np.array(values)
        scatter = float(np.std(values) / reference)
        bias = float(abs(values.mean() / reference - 1.0))
        scatters[sampler] = scatter
        rows.append(
            [
                sampler,
                f"{scatter:.2%}",
                f"{bias:.2%}",
                f"{elapsed * 1e3:.0f}",
            ]
        )

    benchmark.pedantic(
        lambda: StMcAnalyzer(
            blocks, n_samples=4000, seed=0, sampler="sobol"
        ).failure_probability(times),
        rounds=3,
        iterations=1,
    )

    report.line(
        "Ablation - st_mc factor sampling (4000 samples, 8 seeds, "
        "10ppm point on C2; scatter/bias relative to st_fast)"
    )
    report.line()
    report.table(["sampler", "scatter", "bias", "time/run (ms)"], rows)
    # QMC must not be worse than plain MC, and is usually much better.
    assert scatters["sobol"] <= scatters["mc"] * 1.2
    assert scatters["lhs"] <= scatters["mc"] * 1.5
