"""Ablation — first-order Taylor combination (eq. (18)) vs exact product.

The paper linearises the across-block product of survivals into
``1 - sum_j (1 - E_j)`` to split the 2N-dimensional integral into N double
integrals. This bench quantifies the linearisation error across the
failure-probability range: negligible in the ppm region of interest,
growing only where chips are already failing in bulk.
"""

from __future__ import annotations

import numpy as np

from benchmarks.design_cache import prepared_analyzer
from repro.core.closed_form import (
    conditional_chip_reliability_exact,
    conditional_chip_reliability_taylor,
)


def test_ablation_taylor_vs_exact_product(report, benchmark):
    analyzer = prepared_analyzer("C3")
    blocks = analyzer.blocks
    u = np.array([b.blod.u_nominal for b in blocks])
    v = np.array([b.blod.v_mean() for b in blocks])
    bs = np.array([b.b for b in blocks])
    areas = np.array([b.blod.area for b in blocks])
    alphas = np.array([b.alpha for b in blocks])

    t10 = analyzer.lifetime(10)
    rows = []
    gaps = {}
    for factor in (0.3, 1.0, 3.0, 10.0, 30.0, 100.0):
        t = factor * t10
        log_t_ratios = np.log(t / alphas)
        exact = conditional_chip_reliability_exact(u, v, log_t_ratios, bs, areas)
        taylor = conditional_chip_reliability_taylor(
            u, v, log_t_ratios, bs, areas
        )
        gap = abs(taylor - exact)
        gaps[factor] = gap
        rows.append(
            [
                f"{factor:g} x t10ppm",
                f"{1.0 - exact:.3e}",
                f"{1.0 - taylor:.3e}",
                f"{gap:.3e}",
            ]
        )

    benchmark.pedantic(
        lambda: conditional_chip_reliability_taylor(
            u, v, np.log(t10 / alphas), bs, areas
        ),
        rounds=10,
        iterations=1,
    )

    report.line("Ablation - Taylor (eq. 18) vs exact product (eq. 15)")
    report.line()
    report.table(
        ["time", "exact failure", "taylor failure", "|gap|"], rows
    )

    # In the ppm region the linearisation is essentially exact.
    assert gaps[1.0] < 1e-8
    assert gaps[0.3] < 1e-10
    # The gap grows as failures accumulate (until both forms saturate at
    # certain failure, where the clipped Taylor value rejoins the exact
    # one — hence the comparison stops at 30x).
    ordered = [gaps[f] for f in (1.0, 10.0, 30.0)]
    assert ordered[0] <= ordered[1] <= ordered[2]


def test_ablation_taylor_is_conservative(report, benchmark):
    """The Taylor form never overestimates reliability, so the paper's
    simplification errs on the safe side."""
    analyzer = prepared_analyzer("C2")
    blocks = analyzer.blocks
    u = np.array([b.blod.u_nominal for b in blocks])
    v = np.array([b.blod.v_mean() for b in blocks])
    bs = np.array([b.b for b in blocks])
    areas = np.array([b.blod.area for b in blocks])
    alphas = np.array([b.alpha for b in blocks])
    t10 = analyzer.lifetime(10)

    times = np.logspace(np.log10(t10) - 1.0, np.log10(t10) + 2.5, 30)
    violations = 0
    for t in times:
        log_t_ratios = np.log(t / alphas)
        exact = conditional_chip_reliability_exact(u, v, log_t_ratios, bs, areas)
        taylor = conditional_chip_reliability_taylor(
            u, v, log_t_ratios, bs, areas, clip=False
        )
        if taylor > exact + 1e-12:
            violations += 1
    benchmark.pedantic(
        lambda: conditional_chip_reliability_exact(
            u, v, np.log(t10 / alphas), bs, areas
        ),
        rounds=10,
        iterations=1,
    )
    report.line(
        f"Taylor <= exact at all {times.size} probed times: "
        f"{violations} violations"
    )
    assert violations == 0
