"""Execution-backend scaling benchmark.

Runs the same Monte-Carlo reliability-curve workload on the serial and
process backends, asserts the results are **bit-identical** (the
deterministic-sharding contract of ``repro.exec``), and records wall
times plus the parallel speedup in ``results/exec_scaling.json``.

The speedup assertion (process >= 1.5x serial) only fires when
``REPRO_EXEC_ASSERT_SPEEDUP=1`` *and* the machine has at least two
cores; timing on a single-core or oversubscribed CI runner is noise,
but the bit-identity check always runs.
"""

from __future__ import annotations

import json
import os
import time

import numpy as np

from benchmarks.conftest import RESULTS_DIR, bench_scale
from benchmarks.design_cache import prepared_analyzer
from repro.core.montecarlo import MonteCarloEngine
from repro.exec import ProcessBackend, SerialBackend

_SEED = 2026


def _workload() -> tuple[str, int]:
    if bench_scale() == "full":
        return "C2", 4000
    return "C1", 800


def _engine(analyzer, backend) -> MonteCarloEngine:
    return MonteCarloEngine(
        analyzer.sampler,
        analyzer.blocks,
        device_mode=analyzer.config.mc_device_mode,
        chunk_size=analyzer.config.mc_chunk_size,
        backend=backend,
    )


def _timed_curve(engine, times, n_chips):
    start = time.perf_counter()
    curve = engine.reliability_curve(times, n_chips, _SEED)
    return curve, time.perf_counter() - start


def test_process_backend_scaling(report):
    design, n_chips = _workload()
    analyzer = prepared_analyzer(design)
    center = analyzer.lifetime(10, method="st_fast")
    times = np.logspace(
        np.log10(center) - 0.6, np.log10(center) + 0.8, 8
    )

    serial_curve, serial_s = _timed_curve(
        _engine(analyzer, SerialBackend()), times, n_chips
    )
    jobs = min(4, os.cpu_count() or 1)
    process_backend = ProcessBackend(jobs)
    try:
        # Warm the pool outside the timed region: worker spawn is a
        # one-time cost, not part of the steady-state throughput.
        process_backend.map(int, [0])
        process_curve, process_s = _timed_curve(
            _engine(analyzer, process_backend), times, n_chips
        )
    finally:
        process_backend.close()

    np.testing.assert_array_equal(
        serial_curve.reliability, process_curve.reliability
    )
    np.testing.assert_array_equal(
        serial_curve.std_error, process_curve.std_error
    )

    speedup = serial_s / process_s if process_s > 0 else float("inf")
    payload = {
        "design": design,
        "n_chips": n_chips,
        "jobs": jobs,
        "cpu_count": os.cpu_count(),
        "serial_s": round(serial_s, 4),
        "process_s": round(process_s, 4),
        "speedup": round(speedup, 3),
        "bit_identical": True,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    out = RESULTS_DIR / "exec_scaling.json"
    out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")

    report.line(f"exec scaling ({design}, {n_chips} chips, jobs={jobs})")
    report.table(
        ["backend", "wall s"],
        [["serial", f"{serial_s:.3f}"], ["process", f"{process_s:.3f}"]],
    )
    report.line(f"speedup: {speedup:.2f}x  (bit-identical: yes)")

    if (
        os.environ.get("REPRO_EXEC_ASSERT_SPEEDUP") == "1"
        and (os.cpu_count() or 1) >= 2
    ):
        assert speedup >= 1.5, (
            f"process backend speedup {speedup:.2f}x < 1.5x "
            f"(serial {serial_s:.3f}s, process {process_s:.3f}s)"
        )
