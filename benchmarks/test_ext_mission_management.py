"""Extension bench — mission-profile management vs static analyses.

Not a paper artifact: this exercises the "reliability management"
extension DESIGN.md lists (cumulative-exposure damage over operating
phases) and cross-validates the closed-form mission lifetime against a
Monte-Carlo simulation with explicitly mixed stress.
"""

from __future__ import annotations

import numpy as np

from benchmarks.design_cache import prepared_analyzer
from repro.core.mission import MissionProfile, OperatingPhase, mission_analyzer


def test_ext_mission_vs_static_bounds(report, benchmark):
    analyzer = prepared_analyzer("C2")
    temps = analyzer.block_temperatures

    profile = MissionProfile(
        phases=(
            OperatingPhase("idle", 0.5, temps - 25.0),
            OperatingPhase("typical", 0.4, temps),
            OperatingPhase("turbo", 0.1, temps + 10.0, vdd=1.27),
        )
    )
    mission = benchmark.pedantic(
        lambda: mission_analyzer(analyzer, profile), rounds=3, iterations=1
    )
    lt_mission = mission.lifetime(10)
    bounds = {}
    for phase in profile.phases:
        single = mission_analyzer(
            analyzer,
            MissionProfile(
                phases=(
                    OperatingPhase(
                        phase.name, 1.0, phase.block_temperatures, phase.vdd
                    ),
                )
            ),
        )
        bounds[phase.name] = single.lifetime(10)

    report.line("Extension - mission-profile lifetime vs constant-phase bounds")
    report.line()
    report.table(
        ["scenario", "10ppm lifetime (h)", "years"],
        [
            *(
                [name, f"{lt:.3e}", f"{lt / 8766:.1f}"]
                for name, lt in bounds.items()
            ),
            ["mission (50/40/10)", f"{lt_mission:.3e}", f"{lt_mission / 8766:.1f}"],
        ],
    )

    worst = min(bounds.values())
    best = max(bounds.values())
    assert worst < lt_mission < best
    # The damage-share diagnostic is consistent: turbo ages blocks faster
    # than its time share.
    shares = mission.phase_damage_shares()
    assert np.all(shares[2] > 0.1)


def test_ext_mission_matches_mixed_stress_mc(report, benchmark):
    """Cross-validate the cumulative-exposure closed form against MC with
    per-block harmonic-effective alphas applied in the MC engine (the same
    damage law evaluated by brute force)."""
    from repro.core.ensemble import BlockReliability
    from repro.core.mission import effective_block_params
    from repro.core.montecarlo import MonteCarloEngine

    analyzer = prepared_analyzer("C1")
    temps = analyzer.block_temperatures
    profile = MissionProfile(
        phases=(
            OperatingPhase("cool", 0.7, temps - 15.0),
            OperatingPhase("hot", 0.3, temps + 10.0),
        )
    )
    mission = mission_analyzer(analyzer, profile)

    n_blocks = analyzer.floorplan.n_blocks
    alphas = np.empty((2, n_blocks))
    bs = np.empty((2, n_blocks))
    for p, phase in enumerate(profile.phases):
        params = analyzer.obd_model.block_params(
            phase.temperatures_for(n_blocks), phase.vdd
        )
        alphas[p] = [prm.alpha for prm in params]
        bs[p] = [prm.b for prm in params]
    alpha_eff, b_eff = effective_block_params(
        profile.fractions, alphas, bs
    )
    blocks_eff = [
        BlockReliability(blod=b.blod, alpha=float(a), b=float(bb))
        for b, a, bb in zip(analyzer.blocks, alpha_eff, b_eff, strict=True)
    ]
    engine = MonteCarloEngine(analyzer.sampler, blocks_eff, chunk_size=100)

    lt_mission = mission.lifetime(10)
    times = np.logspace(
        np.log10(lt_mission) - 0.4, np.log10(lt_mission) + 0.4, 7
    )
    curve = benchmark.pedantic(
        lambda: engine.reliability_curve(
            times, 300, np.random.default_rng(5)
        ),
        rounds=1,
        iterations=1,
    )
    f_mc = curve.failure_probability()
    f_cf = np.asarray(mission.failure_probability(times))
    mask = f_cf > 1e-9
    worst = float(np.max(np.abs(f_mc[mask] / f_cf[mask] - 1.0)))
    report.line(
        f"mission closed form vs per-device MC at effective conditions: "
        f"worst relative gap {worst:.2%} over {int(mask.sum())} points"
    )
    assert worst < 0.2
