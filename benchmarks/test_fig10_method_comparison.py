"""Fig. 10 — failure-rate curves and ten-per-million errors on design C3.

The paper simulates the failure time of 10 000 sample chips of C3, then
compares the lifetime-estimation error at the ten-faults-per-million
criterion for (a) the proposed temperature-aware statistical approach
(1.8 % error), (b) the temperature-unaware statistical approach using the
worst-case temperature (25.1 %), and (c) the conventional guard-band
(54.3 %). The reproduction targets the ordering and rough magnitudes.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import bench_scale
from benchmarks.design_cache import failure_chips_for, mc_chips_for, prepared_analyzer


def test_fig10_failure_rate_curves(report, benchmark):
    scale = bench_scale()
    analyzer = prepared_analyzer("C3")
    n_chips = failure_chips_for(scale)

    failure_times = benchmark.pedantic(
        lambda: analyzer.mc_failure_times(n_chips=n_chips, seed=11),
        rounds=1,
        iterations=1,
    )

    # Failure-rate curves across the observable window.
    times = np.logspace(
        np.log10(np.quantile(failure_times, 0.002)),
        np.log10(np.quantile(failure_times, 0.5)),
        9,
    )
    rows = []
    for t in times:
        emp = float((failure_times <= t).mean())
        rows.append(
            [
                f"{t:.3e}",
                f"{emp:.4f}",
                f"{1.0 - float(analyzer.reliability(t, method='st_fast')):.4f}",
                f"{1.0 - float(analyzer.reliability(t, method='temp_unaware')):.4f}",
                f"{1.0 - float(analyzer.reliability(t, method='guard')):.4f}",
            ]
        )
    report.line(
        f"Fig. 10 - failure rate of design C3 ({n_chips} failure-time MC chips)"
    )
    report.line()
    report.table(
        ["t (h)", "MC", "temp-aware", "temp-unaware", "guard"], rows
    )

    # The chip-lifetime CDF from failure-time MC must match the
    # temperature-aware statistical curve in the observable region.
    t_check = float(np.quantile(failure_times, 0.1))
    emp = float((failure_times <= t_check).mean())
    model = 1.0 - float(analyzer.reliability(t_check, method="st_fast"))
    assert abs(model - emp) < 0.03


def test_fig10_ten_ppm_errors(report, benchmark):
    scale = bench_scale()
    analyzer = prepared_analyzer("C3")
    mc_chips = mc_chips_for(scale)

    lt_mc = benchmark.pedantic(
        lambda: analyzer.mc_lifetime(10, n_chips=mc_chips, seed=17),
        rounds=1,
        iterations=1,
    )
    lt_aware = analyzer.lifetime(10, method="st_fast")
    lt_unaware = analyzer.lifetime(10, method="temp_unaware")
    lt_guard = analyzer.lifetime(10, method="guard")

    err = {
        "temp-aware (st_fast)": abs(lt_aware - lt_mc) / lt_mc * 100.0,
        "temp-unaware": abs(lt_unaware - lt_mc) / lt_mc * 100.0,
        "guard-band": abs(lt_guard - lt_mc) / lt_mc * 100.0,
    }
    report.line(
        f"Fig. 10 - ten-per-million lifetime errors on C3 "
        f"[scale={scale}, mc_chips={mc_chips}]"
    )
    report.line()
    report.table(
        ["method", "lifetime (h)", "error vs MC (%)", "paper (%)"],
        [
            ["MC", f"{lt_mc:.3e}", "-", "-"],
            ["temp-aware", f"{lt_aware:.3e}", f"{err['temp-aware (st_fast)']:.1f}",
             "1.8"],
            ["temp-unaware", f"{lt_unaware:.3e}", f"{err['temp-unaware']:.1f}",
             "25.1"],
            ["guard-band", f"{lt_guard:.3e}", f"{err['guard-band']:.1f}", "54.3"],
        ],
    )

    # Shape targets: temp-aware within a few percent; temp-unaware
    # clearly worse; guard-band worst at ~half the lifetime.
    assert err["temp-aware (st_fast)"] < 5.0
    assert err["temp-unaware"] > 3.0 * err["temp-aware (st_fast)"]
    assert err["guard-band"] > err["temp-unaware"]
    assert 35.0 < err["guard-band"] < 70.0
    # Both baselines are *pessimistic* (shorter lifetime), not just wrong.
    assert lt_unaware < lt_mc
    assert lt_guard < lt_unaware
