"""Fig. 1 — temperature profiles of an alpha processor and a many-core die.

Regenerates the two thermal maps the paper uses to motivate block-level
temperature awareness: (a) an EV6-like alpha processor with hot execution
units and cool caches, (b) a many-core design whose active cores form
clustered hot spots. The claims checked are the ones the analysis relies
on: global unevenness (tens of degrees hot-spot contrast) with local
(block-level) uniformity.
"""

from __future__ import annotations

import numpy as np

from repro import HotSpotLite, make_alpha_processor, make_manycore


def _block_level_uniformity(hotspot, floorplan, result) -> float:
    """Worst within-block cell-temperature spread (degC)."""
    mesh = hotspot.mesh_for(floorplan)
    worst = 0.0
    for block in floorplan.blocks:
        fractions = mesh.overlap_fractions(block.rect)
        cells = np.nonzero(fractions > 0.0)[0]
        spread = float(np.ptp(result.field.values[cells]))
        worst = max(worst, spread)
    return worst


def test_fig1a_alpha_processor_profile(report, benchmark):
    hotspot = HotSpotLite(mesh_resolution=64)
    floorplan = make_alpha_processor()
    result = benchmark.pedantic(
        lambda: hotspot.analyze(floorplan), rounds=3, iterations=1
    )

    temps = result.block_temperature_map(floorplan)
    report.line("Fig. 1(a) - EV6-like alpha processor temperature profile")
    report.line()
    report.table(
        ["block", "T (degC)", "power (W)", "power density (W/mm^2)"],
        [
            [
                name,
                f"{temps[name]:.1f}",
                f"{floorplan.block(name).power:.1f}",
                f"{floorplan.block(name).power_density:.2f}",
            ]
            for name in sorted(temps, key=temps.get, reverse=True)
        ],
    )
    report.line()
    report.line(f"cell-level spread : {result.field.spread:.1f} degC")
    report.line(f"block-level spread: {result.block_spread:.1f} degC")

    # Shape checks: hot spots in the integer/FP execution cluster, cool
    # caches, and a clear tens-of-degrees contrast (paper quotes ~30 degC).
    execution_cluster = {"intexec", "intreg", "intq", "fpadd", "fpmul", "fpreg"}
    hottest = max(temps, key=temps.get)
    assert hottest in execution_cluster
    assert temps["icache"] < temps[hottest] - 5.0
    assert temps["l2_left"] < temps[hottest] - 5.0
    assert 10.0 <= result.field.spread <= 60.0

    uniformity = _block_level_uniformity(hotspot, floorplan, result)
    report.line(f"worst within-block spread: {uniformity:.1f} degC")
    # Local uniformity: within-block spread far below across-die spread.
    assert uniformity < result.field.spread


def test_fig1b_manycore_profile(report, benchmark):
    hotspot = HotSpotLite(mesh_resolution=64)
    floorplan = make_manycore(
        n_cores_x=4, n_cores_y=4, die_size=12.0, active_cores=(0, 5, 10, 15)
    )
    result = benchmark.pedantic(
        lambda: hotspot.analyze(floorplan), rounds=3, iterations=1
    )
    temps = result.block_temperature_map(floorplan)
    active = {"core_0_0", "core_1_1", "core_2_2", "core_3_3"}

    report.line("Fig. 1(b) - 16-core die, diagonal workload")
    report.line()
    image = result.field.as_image()
    # A coarse ASCII rendering of the thermal map (8x8 downsample).
    step_y = max(1, image.shape[0] // 8)
    step_x = max(1, image.shape[1] // 8)
    coarse = image[::step_y, ::step_x]
    lo, hi = coarse.min(), coarse.max()
    ramp = " .:-=+*#%@"
    for row in coarse[::-1]:
        report.line(
            "".join(
                ramp[int((t - lo) / max(hi - lo, 1e-9) * (len(ramp) - 1))]
                for t in row
            )
        )
    report.line()
    report.table(
        ["core", "T (degC)", "active"],
        [
            [name, f"{temps[name]:.1f}", "yes" if name in active else "no"]
            for name in floorplan.block_names
        ],
    )

    hottest = max(temps, key=temps.get)
    assert hottest in active
    mean_active = np.mean([temps[n] for n in active])
    mean_idle = np.mean([temps[n] for n in temps if n not in active])
    report.line()
    report.line(
        f"mean active core: {mean_active:.1f} degC, "
        f"mean idle core: {mean_idle:.1f} degC"
    )
    assert mean_active > mean_idle + 3.0
