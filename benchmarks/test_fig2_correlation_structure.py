"""Fig. 2 — the grid-based spatial correlation model.

Reports the structure of the 25x25 grid correlation matrix used throughout
the evaluation: distance decay, positive semidefiniteness, and the PCA
spectrum that the canonical model truncates.
"""

from __future__ import annotations

import numpy as np

from repro import GridSpec, SpatialCorrelationModel, VariationBudget
from repro.variation.pca import explained_variance_ratio


def test_fig2_grid_correlation_model(report, benchmark):
    grid = GridSpec(nx=25, ny=25, width=10.0, height=10.0)
    model = SpatialCorrelationModel(grid=grid, rho_dist=0.5)
    corr = benchmark.pedantic(model.correlation_matrix, rounds=3, iterations=1)

    report.line("Fig. 2 - grid-based spatial correlation model (25x25 grid)")
    report.line()
    # Correlation versus distance along one row of the die.
    center = grid.cell_of_point(5.0, 5.0)
    distances, values = [], []
    for col in range(0, 25, 3):
        other = (center // 25) * 25 + col
        d = float(
            np.linalg.norm(
                grid.cell_centers()[center] - grid.cell_centers()[other]
            )
        )
        distances.append(d)
        values.append(corr[center, other])
    order = np.argsort(distances)
    report.table(
        ["distance (mm)", "correlation"],
        [
            [f"{distances[i]:.2f}", f"{values[i]:.4f}"]
            for i in order
        ],
    )

    eigvals = np.linalg.eigvalsh(corr)
    budget = VariationBudget.table2()
    ratios = explained_variance_ratio(budget, model)
    cum = np.cumsum(ratios)
    n95 = int(np.searchsorted(cum, 0.95) + 1)
    n999 = int(np.searchsorted(cum, 0.999) + 1)
    report.line()
    report.line(f"min eigenvalue      : {eigvals.min():.3e} (PSD)")
    report.line(f"PCs for 95% energy  : {n95} of {grid.n_cells}")
    report.line(f"PCs for 99.9% energy: {n999} of {grid.n_cells}")

    # Structure checks.
    assert eigvals.min() >= -1e-10
    sorted_vals = [values[i] for i in order]
    assert all(
        a >= b - 1e-12 for a, b in zip(sorted_vals, sorted_vals[1:], strict=False)
    ), "correlation must decay with distance"
    assert n95 < grid.n_cells / 2, "PCA must compress the correlation"
