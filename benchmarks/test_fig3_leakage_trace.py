"""Fig. 3 — gate-leakage trace of a stressed device: SBD through HBD.

The paper stresses a 45 nm device at 3.1 V / 100 degC and shows the gate
leakage staying flat until soft breakdown, jumping 10-20x, then growing
monotonically to hard breakdown. The measured trace is proprietary; this
bench regenerates the same shape from the stochastic degradation
simulator and checks each feature the paper calls out.
"""

from __future__ import annotations

import numpy as np

from repro import AreaScaledWeibull, GateLeakageSimulator, OBDModel


def test_fig3_sbd_to_hbd_trace(report, benchmark):
    model = OBDModel()
    stress = model.device_params(100.0, vdd=3.1)
    law = AreaScaledWeibull(alpha=stress.alpha, beta=stress.b * 2.2, area=1.0)
    simulator = GateLeakageSimulator(law)

    rng = np.random.default_rng(42)
    trace = benchmark.pedantic(
        lambda: simulator.simulate_until_hbd(
            np.random.default_rng(42), n_points=400
        ),
        rounds=3,
        iterations=1,
    )

    ratio = trace.leakage_ratio()
    report.line("Fig. 3 - gate leakage vs stress time (3.1 V, 100 degC)")
    report.line()
    report.line(f"characteristic SBD life : {law.characteristic_life():.3f} h")
    report.line(f"first SBD at            : {trace.sbd_time:.3f} h")
    report.line(f"HBD at                  : {trace.hbd_time:.3f} h")
    jump_index = np.searchsorted(trace.times, trace.sbd_time)
    report.line(
        f"leakage jump at SBD     : {ratio[min(jump_index, len(ratio)-1)]:.1f}x"
    )
    report.line()
    # Log-leakage sparkline over time.
    log_ratio = np.log10(ratio)
    step = max(1, len(log_ratio) // 72)
    ramp = " .:-=+*#%@"
    lo, hi = log_ratio.min(), log_ratio.max()
    report.line(
        "".join(
            ramp[int((v - lo) / max(hi - lo, 1e-12) * (len(ramp) - 1))]
            for v in log_ratio[::step]
        )
    )
    report.line("^ log10(I/I0) over stress time (flat -> SBD jump -> growth -> HBD)")

    # Feature assertions (the paper's qualitative claims).
    before = trace.times < trace.sbd_time
    after = trace.times >= trace.sbd_time
    assert before.sum() > 3, "trace must show the flat pre-SBD region"
    np.testing.assert_allclose(ratio[before], 1.0)
    first_after = ratio[after][0]
    assert 5.0 <= first_after <= 40.0, "SBD jump should be ~10-20x"
    assert np.all(np.diff(trace.current[after]) >= -1e-18), "monotone growth"
    assert trace.reached_hbd
    assert ratio.max() >= 500.0, "HBD raises leakage by orders of magnitude"

    # Statistical check: SBD times across traces follow the Weibull law.
    sbd_times = []
    horizon = 8.0 * law.characteristic_life()
    grid = np.linspace(1e-6, horizon, 128)
    for _ in range(300):
        t = simulator.simulate(grid, rng, max_breakdowns=1)
        if np.isfinite(t.sbd_time):
            sbd_times.append(t.sbd_time)
    sbd_times = np.array(sbd_times)
    empirical_median = float(np.median(sbd_times))
    report.line()
    report.line(
        f"SBD-time median over {len(sbd_times)} traces: "
        f"{empirical_median:.3f} h (Weibull median {law.ppf(0.5):.3f} h)"
    )
    assert empirical_median == abs(empirical_median)
    assert abs(empirical_median - law.ppf(0.5)) / law.ppf(0.5) < 0.25
