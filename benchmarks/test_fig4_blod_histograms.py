"""Fig. 4 — BLOD histograms for blocks of 5K and 20K devices.

The paper validates the BLOD Gaussianity property by histogramming the
oxide thicknesses of two blocks on a sample chip and reporting R-square
fit goodness of 99.8 % / 99.5 %. This bench regenerates both histograms
from the full variation model.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    Block,
    Floorplan,
    Rect,
    SpatialCorrelationModel,
    VariationBudget,
    build_canonical_model,
)
from repro.stats.histogram import gaussian_fit_r2
from repro.variation.sampling import ChipSampler


def _sample_block_thicknesses(n_devices: int, seed: int) -> np.ndarray:
    floorplan = Floorplan(
        width=4.0,
        height=4.0,
        blocks=(
            Block("target", Rect(0.5, 0.5, 1.5, 1.5), n_devices),
            Block("rest", Rect(2.5, 0.5, 1.0, 3.0), 1000),
        ),
    )
    budget = VariationBudget.table2()
    grid = floorplan.make_grid(25)
    correlation = SpatialCorrelationModel(grid=grid, rho_dist=0.5)
    model = build_canonical_model(budget, correlation)
    sampler = ChipSampler(floorplan, grid, model)
    rng = np.random.default_rng(seed)
    z = sampler.sample_factors(1, rng)[0]
    return sampler.device_thicknesses(z, 0, rng)


@pytest.mark.parametrize("n_devices,label", [(5000, "5K"), (20000, "20K")])
def test_fig4_blod_gaussian_fit(report, benchmark, n_devices, label):
    thickness = benchmark.pedantic(
        lambda: _sample_block_thicknesses(n_devices, seed=7),
        rounds=3,
        iterations=1,
    )
    fit = gaussian_fit_r2(thickness, bins=40)

    report.line(f"Fig. 4 - BLOD histogram, block with {label} devices")
    report.line()
    report.line(f"sample mean : {fit.mean:.4f} nm")
    report.line(f"sample sigma: {fit.sigma:.5f} nm")
    report.line(f"R-square    : {fit.r_square:.4f}")
    # ASCII histogram.
    peak = fit.density.max()
    for center, density in zip(fit.bin_centers[::2], fit.density[::2], strict=True):
        bar = "#" * int(40.0 * density / peak)
        report.line(f"  {center:.4f} | {bar}")

    # The paper reports R^2 of 99.8 % (5K) and 99.5 % (20K); histogram
    # noise varies with the draw, so require the same "distinctly
    # Gaussian" region.
    assert fit.r_square > 0.97
    # The BLOD sigma is dominated by the independent component (the block
    # is small and strongly correlated internally).
    budget = VariationBudget.table2()
    assert fit.sigma == pytest.approx(budget.sigma_independent, rel=0.25)


def test_fig4_gaussianity_improves_with_devices(report, benchmark):
    """More devices -> smoother histogram -> higher fit quality (on
    average over several chips)."""
    r2 = {n: [] for n in (2000, 20000)}
    for seed in range(5):
        for n in r2:
            thickness = _sample_block_thicknesses(n, seed=seed)
            r2[n].append(gaussian_fit_r2(thickness, bins=40).r_square)
    benchmark.pedantic(
        lambda: gaussian_fit_r2(
            _sample_block_thicknesses(2000, seed=0), bins=40
        ),
        rounds=3,
        iterations=1,
    )
    means = {n: float(np.mean(v)) for n, v in r2.items()}
    report.line("Gaussian-fit R^2 vs block size (5 sample chips each)")
    report.table(
        ["devices", "mean R^2"],
        [[f"{n:,}", f"{means[n]:.4f}"] for n in sorted(means)],
    )
    assert means[20000] >= means[2000] - 0.01
