"""Fig. 6 — joint PDF of (u_j, v_j) versus the product of marginals.

Section IV-C justifies the independence approximation behind st_fast by
showing the joint PDF of the BLOD mean and variance is visually identical
to the product of its marginals. This bench regenerates both surfaces from
MC samples of the principal components and quantifies the agreement.
"""

from __future__ import annotations

import numpy as np

from benchmarks.design_cache import prepared_analyzer
from repro.stats.mutual_info import (
    correlation_coefficient,
    joint_pdf_comparison,
)


def _moment_cloud(n_samples: int = 200_000):
    analyzer = prepared_analyzer("C3")
    # Pick the block spanning the most grid cells: the richest v_j
    # structure and hence the hardest case for the approximation.
    spans = [a.grid_indices.size for a in analyzer.sampler.assignments]
    j = int(np.argmax(spans))
    blod = analyzer.blods[j]
    rng = np.random.default_rng(123)
    z = rng.standard_normal((n_samples, analyzer.canonical.n_factors))
    return blod.u_samples(z), blod.v_samples(z, rng=rng), blod


def test_fig6_joint_pdf_vs_marginal_product(report, benchmark):
    u, v, blod = benchmark.pedantic(_moment_cloud, rounds=1, iterations=1)
    cmp = joint_pdf_comparison(u, v, bins=30)

    corr = correlation_coefficient(u, v)
    report.line("Fig. 6 - joint PDF f(u, v) vs marginal product f(u) f(v)")
    report.line()
    report.line(f"block               : {blod.name} ({blod.n_devices:,} devices)")
    report.line(f"Pearson corr(u, v)  : {corr:+.4f} (Lemma: uncorrelated)")
    report.line(f"max |joint-product| : {cmp.max_normalized_error:.3f} of peak")
    peak_j = np.unravel_index(np.argmax(cmp.joint), cmp.joint.shape)
    peak_p = np.unravel_index(np.argmax(cmp.product), cmp.product.shape)
    report.line(f"joint peak bin      : {peak_j}, product peak bin: {peak_p}")

    # The Lemma: u and v uncorrelated (sampling noise only).
    assert abs(corr) < 0.03
    # The surfaces peak in the same region and agree closely.
    assert abs(peak_j[0] - peak_p[0]) <= 1
    assert abs(peak_j[1] - peak_p[1]) <= 1
    # Paper reports a ~7% worst-case error; allow the same order.
    assert cmp.max_normalized_error < 0.2
