"""Fig. 7 — normalized error contour and mutual information of (u, v).

The paper quantifies the independence approximation with (a) a contour of
|f(u,v) - f(u)f(v)| normalized to the joint-PDF peak, whose maximum is
~7 % in a small region, and (b) a simulated mutual information of 0.003.
The regions with larger error carry little probability mass, which limits
the error propagated into eq. (21).
"""

from __future__ import annotations

import numpy as np

from benchmarks.design_cache import prepared_analyzer
from repro.stats.mutual_info import joint_pdf_comparison, mutual_information


def _moment_cloud(n_samples: int = 200_000):
    analyzer = prepared_analyzer("C3")
    spans = [a.grid_indices.size for a in analyzer.sampler.assignments]
    j = int(np.argmax(spans))
    blod = analyzer.blods[j]
    rng = np.random.default_rng(321)
    z = rng.standard_normal((n_samples, analyzer.canonical.n_factors))
    return blod.u_samples(z), blod.v_samples(z, rng=rng)


def test_fig7_error_contour_and_mutual_information(report, benchmark):
    u, v = benchmark.pedantic(_moment_cloud, rounds=1, iterations=1)
    cmp = joint_pdf_comparison(u, v, bins=30)
    mi = mutual_information(u, v, bins=30)

    error = cmp.normalized_error
    report.line("Fig. 7 - normalized error contour |f(u,v) - f(u)f(v)| / peak")
    report.line()
    # ASCII contour (downsampled to 15x15).
    coarse = error[::2, ::2]
    ramp = " .:-=+*#%@"
    hi = max(coarse.max(), 1e-12)
    for row in coarse.T[::-1]:
        report.line(
            "".join(ramp[int(min(val / hi, 1.0) * (len(ramp) - 1))] for val in row)
        )
    report.line()
    report.line(f"max normalized error : {error.max():.3f} (paper: ~0.07)")
    report.line(f"mutual information   : {mi:.4f} nats (paper: 0.003)")

    # Large-error cells carry little probability: compare the joint mass in
    # the top-error decile region against the rest.
    threshold = 0.5 * error.max()
    mass_high_error = cmp.joint[error > threshold].sum() / cmp.joint.sum()
    report.line(
        f"joint mass where error > 50% of max: {mass_high_error:.2%}"
    )

    assert error.max() < 0.2, "error stays a small fraction of the peak"
    assert mi < 0.02, "u and v are nearly independent"
    assert mass_high_error < 0.3, "large errors confined to low-mass regions"


def test_fig7_independence_approximation_impact(report, benchmark):
    """The end-to-end impact the contour is about: st_fast (independence)
    vs st_mc (numerical joint) lifetimes differ by well under a percent."""
    analyzer = prepared_analyzer("C3")
    lt_fast = benchmark.pedantic(
        lambda: analyzer.lifetime(10, method="st_fast"), rounds=3, iterations=1
    )
    lt_joint = analyzer.lifetime(10, method="st_mc")
    gap = abs(lt_fast - lt_joint) / lt_joint
    report.line(
        f"st_fast vs st_mc 10ppm lifetime gap on C3: {gap:.4%} "
        "(the independence approximation's end-to-end cost)"
    )
    assert gap < 0.02
