"""Fig. 8 — CDF of the BLOD-variance quadratic form vs its chi-square fit.

The paper compares the Monte-Carlo CDF of a sample variance v_j (a
quadratic normal form) with the two-moment chi-square approximation of
eq. (29)-(30) and shows close agreement. This bench adds the Imhof exact
inversion and the three-moment HBE refinement as extra reference curves.
"""

from __future__ import annotations

import numpy as np

from benchmarks.design_cache import prepared_analyzer
from repro.stats.quadform import QuadraticForm


def _hardest_blod():
    analyzer = prepared_analyzer("C3")
    spans = [a.grid_indices.size for a in analyzer.sampler.assignments]
    return analyzer.blods[int(np.argmax(spans))]


def test_fig8_chi2_approximation_cdf(report, benchmark):
    blod = _hardest_blod()
    form = QuadraticForm(offset=blod.v_offset, matrix=blod.v_matrix)
    match = blod.v_chi2_match(include_residual_fluctuation=False)

    samples = benchmark.pedantic(
        lambda: form.sample(np.random.default_rng(2024), 400_000),
        rounds=1,
        iterations=1,
    )

    quantiles = np.array([0.05, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99])
    xs = np.quantile(samples, quantiles)
    rows = []
    max_err_chi2 = 0.0
    for q, x in zip(quantiles, xs, strict=True):
        chi2_cdf = float(match.cdf(float(x)))
        imhof_cdf = form.imhof_cdf(float(x))
        hbe_cdf = float(form.hbe_match().cdf(float(x))) if form.var() > 0 else chi2_cdf
        max_err_chi2 = max(max_err_chi2, abs(chi2_cdf - q))
        rows.append(
            [
                f"{x:.3e}",
                f"{q:.3f}",
                f"{chi2_cdf:.3f}",
                f"{hbe_cdf:.3f}",
                f"{imhof_cdf:.3f}",
            ]
        )

    report.line("Fig. 8 - BLOD variance distribution vs chi^2 approximation")
    report.line()
    report.line(
        f"block {blod.name}: E[v]={form.mean():.3e} nm^2, "
        f"sd[v]={form.std():.3e} nm^2, skew={form.skewness():.2f}"
    )
    report.line()
    report.table(
        ["v", "MC CDF", "chi2 fit", "HBE fit", "Imhof exact"], rows
    )
    report.line()
    report.line(f"max |chi2 - MC| CDF error: {max_err_chi2:.4f}")

    # Paper shape: the chi-square approximation tracks the MC CDF closely.
    # The hardest block's form is dominated by a handful of eigenvalues
    # (strongly skewed), where the two-moment fit peaks around 7 % — the
    # same visual agreement class as the paper's Fig. 8; the HBE
    # three-moment refinement (footnote 4's "more moments") tightens it.
    assert max_err_chi2 < 0.09
    # Imhof agrees with MC even more tightly.
    mid = float(np.quantile(samples, 0.5))
    assert abs(form.imhof_cdf(mid) - 0.5) < 0.01


def test_fig8_approximation_quality_across_blocks(report, benchmark):
    """The fit holds for every block of the design, not just the showcased
    one."""
    analyzer = prepared_analyzer("C3")
    rows = []
    worst = 0.0
    for blod in analyzer.blods:
        form = QuadraticForm(offset=blod.v_offset, matrix=blod.v_matrix)
        if form.is_degenerate:
            rows.append([blod.name, "degenerate", "-"])
            continue
        match = blod.v_chi2_match(include_residual_fluctuation=False)
        samples = form.sample(np.random.default_rng(7), 100_000)
        errs = [
            abs(float(match.cdf(float(np.quantile(samples, q)))) - q)
            for q in (0.1, 0.5, 0.9)
        ]
        worst = max(worst, max(errs))
        rows.append([blod.name, f"{form.std():.2e}", f"{max(errs):.4f}"])
    benchmark.pedantic(
        lambda: _hardest_blod().v_chi2_match(), rounds=3, iterations=1
    )
    report.line("chi^2 fit quality per block (max CDF error at q=0.1/0.5/0.9)")
    report.table(["block", "sd[v]", "max CDF err"], rows)
    assert worst < 0.09
