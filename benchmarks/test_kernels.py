"""Kernel fast-path benchmark and regression gate.

Runs the :mod:`repro.kernels.bench` harness (micro-benchmarks per fast
path plus one end-to-end serial analyzer run), writes the machine-local
report to ``BENCH_kernels.json`` at the repo root, and enforces two
gates:

- the factorization cache must be *reused* during the end-to-end run
  (at least one hit per distinct thermal configuration),
- with ``REPRO_KERNELS_ASSERT_SPEEDUP=1`` on a multi-core machine, the
  end-to-end run must be at least 2x faster than the reference paths,
  its warm-artifact rerun at least 5x faster than the cold reference,
  the fused batch axis must beat per-ensemble kernel dispatch, and no
  speedup may regress more than 25% below the committed baseline.

Timing on single-core or oversubscribed runners is noise, so the speedup
assertions are opt-in via the environment flag; the structural checks
(cache reuse, report schema) always run.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from benchmarks.conftest import bench_scale
from repro.kernels.bench import (
    DEFAULT_BENCH_PATH,
    format_kernel_report,
    run_kernel_benchmarks,
    write_bench_json,
)

_REPO_ROOT = Path(__file__).resolve().parent.parent

#: Largest tolerated slowdown vs the committed baseline speedups.
_REGRESSION_FRACTION = 0.25

#: Required end-to-end improvement of the fast paths over the reference.
_END_TO_END_MIN_SPEEDUP = 2.0

#: Required improvement of the warm-artifact rerun over the cold
#: reference run (the cross-request memoization payoff).
_WARM_E2E_MIN_SPEEDUP = 5.0

#: The fused batch axis must beat per-ensemble kernel dispatch.
_BATCH_FUSION_MIN_SPEEDUP = 1.0


def _assert_speedups() -> bool:
    return (
        os.environ.get("REPRO_KERNELS_ASSERT_SPEEDUP") == "1"
        and (os.cpu_count() or 1) >= 2
    )


def _load_baseline(path: Path) -> dict | None:
    if not path.exists():
        return None
    baseline = json.loads(path.read_text())
    if baseline.get("schema") != 1:
        return None
    return baseline


def test_kernel_benchmarks(report):
    baseline_path = _REPO_ROOT / DEFAULT_BENCH_PATH
    baseline = _load_baseline(baseline_path)

    results = run_kernel_benchmarks(bench_scale())
    write_bench_json(results, baseline_path)
    report.line(format_kernel_report(results))

    end_to_end = results["end_to_end"]
    # The power-thermal loop re-solves one sparse system per iteration;
    # every solve after the first must come from the factorization cache.
    assert end_to_end["cache_hits"] >= 1, "factorization cache never reused"
    assert end_to_end["cache_hits"] >= end_to_end["power_loop_iterations"] - (
        end_to_end["cache_misses"]
    ), "factorization cache missed a repeat solve"

    if not _assert_speedups():
        report.line("speedup gates: skipped (REPRO_KERNELS_ASSERT_SPEEDUP off)")
        return

    assert end_to_end["speedup"] >= _END_TO_END_MIN_SPEEDUP, (
        f"end-to-end fast-path speedup {end_to_end['speedup']:.2f}x "
        f"< {_END_TO_END_MIN_SPEEDUP:.1f}x"
    )
    warm = results["end_to_end_warm"]
    assert warm["speedup"] >= _WARM_E2E_MIN_SPEEDUP, (
        f"warm-artifact end-to-end speedup {warm['speedup']:.2f}x "
        f"< {_WARM_E2E_MIN_SPEEDUP:.1f}x"
    )
    fusion = results["micro"]["batch_fusion"]
    assert fusion["speedup"] >= _BATCH_FUSION_MIN_SPEEDUP, (
        f"fused batch axis {fusion['speedup']:.2f}x does not beat "
        f"per-ensemble dispatch"
    )

    if baseline is None or baseline.get("scale") != results["scale"]:
        report.line("regression gate: no comparable committed baseline")
        return
    floor = 1.0 - _REGRESSION_FRACTION
    failures = []
    pairs = [("end_to_end", baseline["end_to_end"], end_to_end)] + [
        (name, baseline["micro"][name], entry)
        for name, entry in results["micro"].items()
        if name in baseline.get("micro", {})
    ]
    for name, base_entry, entry in pairs:
        if entry["speedup"] < floor * base_entry["speedup"]:
            failures.append(
                f"{name}: {entry['speedup']:.2f}x vs baseline "
                f"{base_entry['speedup']:.2f}x"
            )
    assert not failures, "kernel speedup regressions >25%: " + "; ".join(
        failures
    )
