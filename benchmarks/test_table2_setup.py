"""Table II — experiment parameter setup for the OBD reliability analysis.

Verifies and reports the exact parameter set every other benchmark uses:
nominal 2.2 nm oxide, 1.2 V supply, 4 % total 3-sigma variation split
50/25/25 across inter-die / spatially-correlated / independent components.
"""

import numpy as np

from repro import OBDModel, VariationBudget


def test_table2_parameter_setup(report, benchmark):
    budget = benchmark(VariationBudget.table2)
    obd = OBDModel()

    assert budget.nominal_thickness == 2.2
    assert budget.three_sigma_ratio == 0.04
    assert budget.global_fraction == 0.50
    assert budget.spatial_fraction == 0.25
    assert budget.independent_fraction == 0.25
    assert obd.v_ref == 1.2
    np.testing.assert_allclose(
        budget.sigma_global**2
        + budget.sigma_spatial**2
        + budget.sigma_independent**2,
        budget.variance_total,
    )

    report.line("Table II - experiment parameter setup")
    report.line()
    report.table(
        ["Quantity", "Value"],
        [
            ["z0, nominal oxide thickness", f"{budget.nominal_thickness} nm"],
            ["VDDnom, nominal supply voltage", f"{obd.v_ref} V"],
            ["3*sigma_tot/z0, total variation", f"{budget.three_sigma_ratio:.0%}"],
            ["inter-die variance ratio", f"{budget.global_fraction:.0%}"],
            ["spatially correlated variance ratio", f"{budget.spatial_fraction:.0%}"],
            ["independent variance ratio", f"{budget.independent_fraction:.0%}"],
            ["sigma_total", f"{budget.sigma_total:.5f} nm"],
            ["x_min (guard-band thickness)", f"{budget.minimum_thickness:.4f} nm"],
        ],
    )
