"""Table III — accuracy and runtime comparison of all methods vs MC.

For each benchmark design the harness computes 1-per-million and
10-per-million lifetimes with st_fast, st_mc, hybrid and guard-band, plus
the Monte-Carlo reference, then reports lifetime estimation errors w.r.t.
MC and per-method runtimes/speedups.

Paper shape targets (absolute numbers depend on the synthetic substrate):

- st_fast / st_mc / hybrid errors of a few percent (paper: ~1 %);
- guard-band pessimistic by 40-60 % (paper: 42-56 %);
- statistical-method runtime roughly flat in device count while the MC
  reference grows with design size, so the speedup grows with size.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from benchmarks.conftest import bench_scale
from benchmarks.design_cache import designs_for, mc_chips_for, prepared_analyzer

_PPMS = (1.0, 10.0)
_STAT_METHODS = ("st_fast", "st_mc", "hybrid")


def _timed(fn):
    start = time.perf_counter()
    value = fn()
    return value, time.perf_counter() - start


def _analyze_design(name: str, mc_chips: int) -> dict:
    analyzer = prepared_analyzer(name)
    row: dict = {"design": name, "devices": analyzer.floorplan.n_devices}

    # Force lazy analyzer construction outside the timed region: table
    # construction (hybrid) and PC sampling (st_mc) are one-time
    # preprocessing, exactly like the paper's PCA step.
    _ = analyzer.st_fast, analyzer.st_mc, analyzer.hybrid, analyzer.guard

    for method in _STAT_METHODS + ("guard",):
        lifetimes, runtime = _timed(
            lambda m=method: {
                ppm: analyzer.lifetime(ppm, method=m) for ppm in _PPMS
            }
        )
        row[method] = lifetimes
        row[f"{method}_time"] = runtime

    def run_mc():
        return {
            ppm: analyzer.mc_lifetime(
                ppm, n_chips=mc_chips, seed=100 + hash(name) % 100
            )
            for ppm in _PPMS
        }

    row["mc"], row["mc_time"] = _timed(run_mc)
    return row


@pytest.mark.parametrize("ppm", _PPMS)
def test_table3_lifetime_accuracy_and_runtime(report, benchmark, ppm):
    scale = bench_scale()
    names = designs_for(scale)
    mc_chips = mc_chips_for(scale)
    rows = [_analyze_design(name, mc_chips) for name in names]

    # pytest-benchmark target: the st_fast lifetime query on the largest
    # prepared design (the method whose speed the paper advertises).
    largest = prepared_analyzer(names[-1])
    benchmark.pedantic(
        lambda: largest.lifetime(ppm, method="st_fast"), rounds=3, iterations=1
    )

    report.line(
        f"Table III - lifetime estimation error w.r.t. MC ({ppm:g}/million) "
        f"and runtime  [scale={scale}, mc_chips={mc_chips}]"
    )
    report.line()
    table_rows = []
    errors = {m: [] for m in _STAT_METHODS + ("guard",)}
    for row in rows:
        mc_lt = row["mc"][ppm]
        cells = [row["design"], f"{row['devices']:,}"]
        for method in _STAT_METHODS + ("guard",):
            err = abs(row[method][ppm] - mc_lt) / mc_lt * 100.0
            errors[method].append(err)
            cells.append(f"{err:.1f}")
        cells.extend(
            [
                f"{row['st_fast_time']:.2f}",
                f"{row['st_mc_time']:.2f}",
                f"{row['hybrid_time']:.3f}",
                f"{row['mc_time']:.1f}",
                f"{row['mc_time'] / row['st_fast_time']:.0f}",
                f"{row['mc_time'] / row['hybrid_time']:.0f}",
            ]
        )
        table_rows.append(cells)
    report.table(
        [
            "ckt",
            "#dev",
            "st_fast%",
            "st_mc%",
            "hybrid%",
            "guard%",
            "t_fast(s)",
            "t_stmc(s)",
            "t_hyb(s)",
            "t_MC(s)",
            "spd_fast",
            "spd_hyb",
        ],
        table_rows,
    )
    mean_err = {m: float(np.mean(errors[m])) for m in errors}
    report.line()
    report.line(
        "average errors: "
        + ", ".join(f"{m}={mean_err[m]:.2f}%" for m in errors)
    )

    # Shape assertions (the reproduction criteria).
    for method in _STAT_METHODS:
        assert mean_err[method] < 8.0, f"{method} mean error {mean_err[method]:.1f}%"
    assert 35.0 < mean_err["guard"] < 70.0
    # Statistical methods beat guard-band on every design.
    for row in rows:
        mc_lt = row["mc"][ppm]
        for method in _STAT_METHODS:
            assert abs(row[method][ppm] - mc_lt) < abs(row["guard"][ppm] - mc_lt)
    # MC runtime exceeds every statistical runtime by a wide margin.
    for row in rows:
        assert row["mc_time"] > 10.0 * row["st_fast_time"]
        assert row["mc_time"] > 10.0 * row["hybrid_time"]


def test_table3_mc_cost_grows_with_design_size(report, benchmark):
    """The MC reference scales with device count; st_fast does not.

    Uses the exact per-device MC mode here: it carries the paper's true
    O(devices) cost (the default binned mode already collapses the device
    dimension, which makes even our MC reference unusually fast and the
    Table III speedups conservative lower bounds).
    """
    from repro.core.montecarlo import MonteCarloEngine

    scale = bench_scale()
    names = designs_for(scale)
    small, large = prepared_analyzer(names[0]), prepared_analyzer(names[-1])
    times = np.logspace(5.0, 6.0, 5)
    chips = 10 if scale == "quick" else 40

    def exact_curve(analyzer):
        engine = MonteCarloEngine(
            analyzer.sampler,
            analyzer.blocks,
            device_mode="exact",
            chunk_size=chips,
        )
        return engine.reliability_curve(
            times, chips, np.random.default_rng(1)
        )

    _, t_small = _timed(lambda: exact_curve(small))
    _, t_large = _timed(lambda: exact_curve(large))
    _, t_fast_small = _timed(lambda: small.st_fast.reliability(times))
    _, t_fast_large = _timed(lambda: large.st_fast.reliability(times))

    benchmark.pedantic(
        lambda: large.st_fast.reliability(times), rounds=3, iterations=1
    )

    report.line("MC cost scaling with design size")
    report.table(
        ["design", "devices", "mc_time(s)", "st_fast_time(s)"],
        [
            [names[0], f"{small.floorplan.n_devices:,}", f"{t_small:.2f}",
             f"{t_fast_small:.4f}"],
            [names[-1], f"{large.floorplan.n_devices:,}", f"{t_large:.2f}",
             f"{t_fast_large:.4f}"],
        ],
    )
    ratio_devices = large.floorplan.n_devices / small.floorplan.n_devices
    assert t_large > t_small, "MC cost must grow with device count"
    # st_fast cost is independent of device count (within noise).
    assert t_fast_large < 10.0 * t_fast_small + 0.05
    report.line()
    report.line(
        f"device ratio {ratio_devices:.1f}x -> MC time ratio "
        f"{t_large / t_small:.1f}x, st_fast ratio "
        f"{t_fast_large / max(t_fast_small, 1e-9):.1f}x"
    )
