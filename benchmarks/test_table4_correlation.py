"""Table IV — accuracy versus spatial correlation distance.

The paper re-runs the comparison for rho_dist in {0.25, 0.5, 0.75} and
shows the statistical method stays within a few percent of MC for every
correlation structure.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import bench_scale
from benchmarks.design_cache import designs_for, mc_chips_for, prepared_analyzer

_RHOS = (0.25, 0.5, 0.75)
_PPMS = (1.0, 10.0)


def test_table4_error_vs_correlation_distance(report, benchmark):
    scale = bench_scale()
    names = designs_for(scale)
    mc_chips = mc_chips_for(scale)

    rows = []
    max_err = 0.0
    for name in names:
        cells = [name]
        for rho in _RHOS:
            analyzer = prepared_analyzer(name, rho_dist=rho)
            for ppm in _PPMS:
                lt_fast = analyzer.lifetime(ppm, method="st_fast")
                lt_mc = analyzer.mc_lifetime(
                    ppm, n_chips=mc_chips, seed=int(rho * 100)
                )
                err = abs(lt_fast - lt_mc) / lt_mc * 100.0
                max_err = max(max_err, err)
                cells.append(f"{err:.2f}")
        rows.append(cells)

    benchmark.pedantic(
        lambda: prepared_analyzer(names[0], rho_dist=0.25).lifetime(10),
        rounds=3,
        iterations=1,
    )

    header = ["ckt"]
    for rho in _RHOS:
        for ppm in _PPMS:
            header.append(f"r{rho}/{ppm:g}ppm")
    report.line(
        "Table IV - st_fast lifetime error (%) w.r.t. MC for correlation "
        f"distances {_RHOS}  [scale={scale}, mc_chips={mc_chips}]"
    )
    report.line()
    report.table(header, rows)
    report.line()
    report.line(f"worst-case error: {max_err:.2f}%")

    # Paper shape: good accuracy (low single digits) at every rho.
    assert max_err < 10.0


@pytest.mark.parametrize("rho", _RHOS)
def test_table4_correlation_changes_structure_not_accuracy(
    report, benchmark, rho
):
    """Sanity: rho changes the PCA spectrum substantially while the
    statistical methods keep agreeing with each other."""
    analyzer = prepared_analyzer("C2", rho_dist=rho)
    lt_fast = benchmark.pedantic(
        lambda: analyzer.lifetime(10, method="st_fast"), rounds=3, iterations=1
    )
    lt_mc_method = analyzer.lifetime(10, method="st_mc")
    assert lt_mc_method == pytest.approx(lt_fast, rel=0.05)
    # Stronger correlation concentrates the spatial variance in fewer PCs.
    spectrum = np.sum(analyzer.canonical.sensitivities[:, 1:] ** 2, axis=0)
    top = spectrum[0] / spectrum.sum()
    report.line(
        f"rho={rho}: factors={analyzer.canonical.n_factors}, "
        f"top-PC share={top:.2%}, lifetime(10ppm)={lt_fast:.3e} h"
    )
