"""Table V — accuracy versus spatial-correlation grid resolution (C2).

The paper evaluates design C2 with 10x10, 20x20 and 25x25 grids against an
MC reference that always uses the 25x25 model, for three correlation
distances. Coarser grids discretise the correlation structure more
crudely, so the error should (in general) decrease with grid resolution —
while even the coarsest grid stays usefully accurate.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import bench_scale
from benchmarks.design_cache import mc_chips_for, prepared_analyzer

_GRIDS = (10, 20, 25)
_RHOS = (0.25, 0.5, 0.75)
_PPMS = (1.0, 10.0)


def test_table5_error_vs_grid_resolution(report, benchmark):
    scale = bench_scale()
    mc_chips = mc_chips_for(scale)

    # The MC reference uses the finest (25x25) correlation model.
    references = {}
    for rho in _RHOS:
        reference = prepared_analyzer("C2", rho_dist=rho, grid_size=25)
        references[rho] = {
            ppm: reference.mc_lifetime(ppm, n_chips=mc_chips, seed=77)
            for ppm in _PPMS
        }

    rows = []
    lifetimes: dict[tuple[int, float], float] = {}
    errors_by_grid: dict[int, list[float]] = {g: [] for g in _GRIDS}
    for grid_size in _GRIDS:
        cells = [f"{grid_size}x{grid_size}"]
        for rho in _RHOS:
            analyzer = prepared_analyzer("C2", rho_dist=rho, grid_size=grid_size)
            for ppm in _PPMS:
                lt = analyzer.lifetime(ppm, method="st_fast")
                lifetimes[(grid_size, rho)] = lt
                err = abs(lt - references[rho][ppm]) / references[rho][ppm] * 100.0
                errors_by_grid[grid_size].append(err)
                cells.append(f"{err:.2f}")
        rows.append(cells)

    benchmark.pedantic(
        lambda: prepared_analyzer("C2", grid_size=10).lifetime(10),
        rounds=3,
        iterations=1,
    )

    header = ["grid"]
    for rho in _RHOS:
        for ppm in _PPMS:
            header.append(f"r{rho}/{ppm:g}ppm")
    report.line(
        "Table V - st_fast error (%) vs MC (25x25 reference) for design C2"
        f"  [scale={scale}, mc_chips={mc_chips}]"
    )
    report.line()
    report.table(header, rows)

    mean_err = {g: float(np.mean(errors_by_grid[g])) for g in _GRIDS}
    report.line()
    report.line(
        "mean error by grid: "
        + ", ".join(f"{g}x{g}={mean_err[g]:.2f}%" for g in _GRIDS)
    )
    # Pure discretisation effect, MC noise removed: the shift of the
    # st_fast 10ppm lifetime between the coarsest and finest grid.
    for rho in _RHOS:
        shift = (
            lifetimes[(10, rho)] / lifetimes[(25, rho)] - 1.0
        ) * 100.0
        report.line(
            f"rho={rho}: 10x10 vs 25x25 st_fast lifetime shift "
            f"{shift:+.3f}% (discretisation effect below the MC noise "
            "floor - see EXPERIMENTS.md)"
        )
    # Paper shape: even the coarsest grid stays accurate, and the finest
    # grid is at least as good as the coarsest.
    assert mean_err[10] < 12.0
    assert mean_err[25] <= mean_err[10] + 1.0
