"""Alpha-processor case study: which blocks limit the chip's lifetime?

Reproduces the paper's C6 scenario end to end: the EV6-like floorplan
(0.84M devices, 18 modules), a HotSpotLite thermal solve, and the
temperature-aware statistical OBD analysis. The per-block failure
breakdown shows how hot execution units dominate the weakest-link budget
even though the (cool) caches hold most of the oxide area — exactly the
effect a worst-case-temperature analysis gets wrong.

Run:  python examples/alpha_processor_lifetime.py
"""

from __future__ import annotations

import numpy as np

from repro import ReliabilityAnalyzer, make_alpha_processor
from repro.units import hours_to_years


def main() -> None:
    floorplan = make_alpha_processor()
    analyzer = ReliabilityAnalyzer(floorplan)

    print("EV6-like alpha processor (C6): thermal profile")
    print()
    temps = analyzer.block_temperatures
    order = np.argsort(temps)[::-1]
    names = floorplan.block_names

    lifetime = analyzer.lifetime(10, method="st_fast")
    per_block = analyzer.st_fast.block_failure_probabilities(
        np.array([lifetime])
    )[:, 0]
    share = per_block / per_block.sum()

    print(
        f"{'block':>10} {'T (degC)':>9} {'devices':>9} "
        f"{'area share':>11} {'failure share':>14}"
    )
    areas = np.array([b.total_oxide_area for b in floorplan.blocks])
    for j in order:
        block = floorplan.blocks[j]
        print(
            f"{names[j]:>10} {temps[j]:>9.1f} {block.n_devices:>9,} "
            f"{areas[j] / areas.sum():>10.1%} {share[j]:>13.1%}"
        )

    print()
    print(f"10-per-million lifetime: {hours_to_years(lifetime):.1f} years")
    print(
        f"hottest block drives "
        f"{share[np.argmax(temps)]:.0%} of the failure budget with "
        f"{areas[np.argmax(temps)] / areas.sum():.0%} of the oxide area"
    )

    # What the two traditional analyses would have concluded:
    lt_unaware = analyzer.lifetime(10, method="temp_unaware")
    lt_guard = analyzer.lifetime(10, method="guard")
    print()
    print("method comparison at 10/million:")
    print(f"  temperature-aware statistical : {hours_to_years(lifetime):8.1f} years")
    print(
        f"  temp-unaware (worst-case temp): {hours_to_years(lt_unaware):8.1f} years"
        f"  ({1 - lt_unaware / lifetime:.0%} pessimistic)"
    )
    print(
        f"  guard-band (min thickness)    : {hours_to_years(lt_guard):8.1f} years"
        f"  ({1 - lt_guard / lifetime:.0%} pessimistic)"
    )


if __name__ == "__main__":
    main()
