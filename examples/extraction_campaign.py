"""Silicon-to-signoff: extract the variation model from measurement data.

The paper assumes the thickness-variation model (Table II + the grid
covariance) is given; in practice it is *extracted* from test-structure
measurements on manufactured wafers (ref [20]). This example closes that
loop end to end:

1. simulate a measurement campaign (48 sites x 500 chips) from a "true"
   process,
2. extract the budget, correlation length and site correlation with
   `repro.variation.extraction`,
3. run the reliability signoff once with the true model and once with the
   extracted model, and compare.

Run:  python examples/extraction_campaign.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    ReliabilityAnalyzer,
    VariationBudget,
    extract_variation_model,
    make_benchmark,
    synthesize_measurements,
)
from repro.units import hours_to_years


def main() -> None:
    # --- the "true" process (unknown to the extraction) ------------------
    true_budget = VariationBudget(
        nominal_thickness=2.2,
        three_sigma_ratio=0.045,
        global_fraction=0.45,
        spatial_fraction=0.30,
        independent_fraction=0.25,
    )
    true_length = 6.0  # mm

    # --- 1. the measurement campaign --------------------------------------
    rng = np.random.default_rng(2026)
    xs = np.linspace(0.4, 5.6, 7)
    grid_x, grid_y = np.meshgrid(xs, xs)
    positions = np.column_stack([grid_x.ravel(), grid_y.ravel()])
    measurements = synthesize_measurements(
        true_budget, positions, correlation_length=true_length,
        n_chips=500, rng=rng,
    )
    print(
        f"campaign: {measurements.shape[0]} chips x "
        f"{measurements.shape[1]} sites, "
        f"mean {measurements.mean():.4f} nm, "
        f"sd {measurements.std():.5f} nm"
    )

    # --- 2. extraction ----------------------------------------------------
    result = extract_variation_model(measurements, positions)
    extracted = result.to_budget()
    print()
    print(f"{'component':>22} {'true':>9} {'extracted':>10}")
    rows = [
        ("nominal (nm)", true_budget.nominal_thickness, extracted.nominal_thickness),
        ("sigma_total (nm)", true_budget.sigma_total, extracted.sigma_total),
        ("global fraction", true_budget.global_fraction, extracted.global_fraction),
        ("spatial fraction", true_budget.spatial_fraction, extracted.spatial_fraction),
        ("independent fraction", true_budget.independent_fraction,
         extracted.independent_fraction),
        ("corr. length (mm)", true_length, result.correlation_length),
    ]
    for label, true_value, got in rows:
        print(f"{label:>22} {true_value:>9.4f} {got:>10.4f}")

    # --- 3. signoff with true vs extracted model ---------------------------
    floorplan = make_benchmark("C2")
    lt_true = ReliabilityAnalyzer(floorplan, budget=true_budget).lifetime(10)
    lt_extracted = ReliabilityAnalyzer(floorplan, budget=extracted).lifetime(10)
    print()
    print(f"10ppm lifetime, true model     : {hours_to_years(lt_true):7.1f} years")
    print(f"10ppm lifetime, extracted model: {hours_to_years(lt_extracted):7.1f} years")
    print(f"signoff error from extraction  : {abs(lt_extracted/lt_true-1):.1%}")


if __name__ == "__main__":
    main()
