"""Mission-profile reliability budgeting with burn-in screening.

Puts the library's management extensions together for a product scenario:

1. Define a duty-cycled mission (idle / typical / turbo phases) for the
   C2 design and compute the mission lifetime under the cumulative-
   exposure damage law — versus the naive always-worst-case number.
2. Show which phase ages which block (phase damage shares).
3. Add an extrinsic (weak-oxide defect) population and optimise the
   burn-in duration for a 5-year warranty: enough stress to screen infant
   mortality, not so much that it consumes intrinsic wearout life.

Run:  python examples/mission_profile.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    BurnInAnalyzer,
    ExtrinsicDefectModel,
    MissionProfile,
    OperatingPhase,
    ReliabilityAnalyzer,
    make_benchmark,
    mission_analyzer,
)
from repro.units import hours_to_years, years_to_hours


def main() -> None:
    floorplan = make_benchmark("C2")
    analyzer = ReliabilityAnalyzer(floorplan)
    base_temps = analyzer.block_temperatures

    # --- 1. the mission -------------------------------------------------
    profile = MissionProfile(
        phases=(
            OperatingPhase("idle", 0.55, base_temps - 30.0),
            OperatingPhase("typical", 0.40, base_temps),
            OperatingPhase("turbo", 0.05, base_temps + 12.0, vdd=1.28),
        )
    )
    mission = mission_analyzer(analyzer, profile)

    lt_mission = mission.lifetime(10)
    lt_always_worst = mission_analyzer(
        analyzer,
        MissionProfile(
            phases=(
                OperatingPhase("turbo", 1.0, base_temps + 12.0, vdd=1.28),
            )
        ),
    ).lifetime(10)
    lt_static = analyzer.lifetime(10)

    print("10-per-million lifetime, design C2:")
    print(f"  always-typical (static analysis): {hours_to_years(lt_static):7.1f} years")
    print(f"  duty-cycled mission              : {hours_to_years(lt_mission):7.1f} years")
    print(f"  always-turbo (naive worst case)  : {hours_to_years(lt_always_worst):7.1f} years")
    print()

    # --- 2. who ages what ------------------------------------------------
    shares = mission.phase_damage_shares()
    hottest = int(np.argmax(base_temps))
    print(
        f"damage shares on the hottest block "
        f"({floorplan.block_names[hottest]}):"
    )
    for phase, share in zip(profile.phases, shares[:, hottest], strict=True):
        print(
            f"  {phase.name:>8}: {share:6.1%} of damage "
            f"for {phase.fraction:5.1%} of time"
        )
    print()

    # --- 3. burn-in optimisation -----------------------------------------
    defects = ExtrinsicDefectModel(
        density=5.0e-7, alpha=5.0e5, beta=0.4, acceleration=2000.0
    )
    burnin = BurnInAnalyzer(
        analyzer, burnin_temperature=125.0, burnin_vdd=1.5, defects=defects
    )
    warranty = years_to_hours(5.0)
    candidates = np.array([0.0, 2.0, 6.0, 12.0, 24.0, 48.0, 96.0, 192.0])
    best, curve = burnin.optimize_burnin(warranty, candidates)

    print("burn-in optimisation (5-year warranty, ppm of shipped parts):")
    for t_b in candidates:
        marker = "  <-- optimum" if t_b == best else ""
        print(
            f"  burn-in {t_b:6.1f} h: field failures "
            f"{curve[float(t_b)] * 1e6:9.1f} ppm{marker}"
        )
    no_burnin = curve[0.0] * 1e6
    at_best = curve[best] * 1e6
    print()
    print(
        f"screening at {best:.0f} h cuts warranty returns from "
        f"{no_burnin:.0f} to {at_best:.0f} ppm "
        f"({1.0 - at_best / no_burnin:.0%} reduction)"
    )


if __name__ == "__main__":
    main()
