"""Quickstart: full-chip OBD reliability of a benchmark design.

Builds the paper's C3 benchmark (100K devices), runs the thermal analysis,
and compares every reliability-evaluation method at the one- and
ten-faults-per-million criteria.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import ReliabilityAnalyzer, make_benchmark
from repro.units import hours_to_years


def main() -> None:
    # 1. A design: temperature-uniform blocks with device populations.
    floorplan = make_benchmark("C3")
    print(
        f"design C3: {floorplan.n_blocks} blocks, "
        f"{floorplan.n_devices:,} devices, {floorplan.total_power:.1f} W"
    )

    # 2. Prepare the analysis. Defaults follow the paper: Table II
    #    variation budget, 25x25 correlation grid with exponential decay
    #    (rho_dist = 0.5), HotSpotLite thermal profile from block powers.
    analyzer = ReliabilityAnalyzer(floorplan)
    temps = analyzer.block_temperatures
    print(
        f"thermal profile: {temps.min():.1f} .. {temps.max():.1f} degC "
        f"(spread {temps.max() - temps.min():.1f} degC)"
    )

    # 3. Lifetimes at ppm criteria, every method.
    print()
    header = f"{'method':>14} {'1/million':>16} {'10/million':>16}"
    print(header)
    print("-" * len(header))
    for method in ("st_fast", "st_mc", "hybrid", "temp_unaware", "guard"):
        row = [
            analyzer.lifetime(ppm, method=method) for ppm in (1.0, 10.0)
        ]
        print(
            f"{method:>14} "
            + " ".join(f"{hours_to_years(t):>9.1f} years" for t in row)
        )

    # 4. A Monte-Carlo spot check of the ten-per-million lifetime.
    lt_fast = analyzer.lifetime(10, method="st_fast")
    lt_mc = analyzer.mc_lifetime(10, n_chips=300, seed=0)
    print()
    print(
        f"MC reference (300 chips): {hours_to_years(lt_mc):.1f} years; "
        f"st_fast error {abs(lt_fast - lt_mc) / lt_mc:.2%}"
    )

    # 5. The reliability curve around the design target.
    times = np.logspace(np.log10(lt_fast) - 0.5, np.log10(lt_fast) + 0.5, 7)
    print()
    print("reliability curve (st_fast):")
    for t, r in zip(times, np.asarray(analyzer.reliability(times)), strict=True):
        print(f"  t = {hours_to_years(t):7.1f} years   1 - R = {1.0 - r:.3e}")


if __name__ == "__main__":
    main()
