"""Dynamic reliability management with the hybrid look-up tables.

The DATE 2010 title is "process variation and temperature-aware
*reliability management*": a runtime system repeatedly re-evaluates chip
reliability as workloads (and hence temperatures) change, which demands
millisecond-class evaluation. This example builds the per-design look-up
tables once (Sec. IV-E) and then sweeps workload scenarios — each giving a
new thermal profile through the Wattch-like power model — querying the
tables for the remaining-lifetime budget of each scenario.

Run:  python examples/reliability_management.py
"""

from __future__ import annotations

import time

import numpy as np

from repro import (
    ActivityProfile,
    ReliabilityAnalyzer,
    make_alpha_processor,
    solve_power_thermal,
)
from repro.core.lifetime import ppm_to_reliability, solve_lifetime
from repro.units import hours_to_years


def main() -> None:
    floorplan = make_alpha_processor()

    # One-time design characterisation at the nominal ("typical") profile:
    # BLODs + hybrid tables. This is the offline step.
    base = solve_power_thermal(
        floorplan, ActivityProfile.preset("typical", floorplan)
    )
    analyzer = ReliabilityAnalyzer(
        base.floorplan, block_temperatures=base.block_temperatures
    )
    start = time.perf_counter()
    hybrid = analyzer.hybrid  # builds the 100x100 tables per block
    build_time = time.perf_counter() - start
    print(
        f"offline: built {len(analyzer.blocks)} look-up tables in "
        f"{build_time:.2f} s"
    )
    print()

    # Online: each workload scenario produces a new temperature profile,
    # hence new per-block (alpha_j, b_j); the tables are reused verbatim.
    print(
        f"{'workload':>14} {'T_max':>7} {'spread':>7} "
        f"{'10ppm lifetime':>15} {'query':>9}"
    )
    for preset in ("idle", "memory_bound", "typical", "fp_heavy", "int_heavy"):
        profile = ActivityProfile.preset(preset, floorplan)
        solution = solve_power_thermal(floorplan, profile)
        temps = solution.block_temperatures
        params = analyzer.obd_model.block_params(temps)
        alphas = np.array([p.alpha for p in params])
        bs = np.array([p.b for p in params])

        start = time.perf_counter()
        lifetime = solve_lifetime(
            lambda t: float(hybrid.reliability(t, alphas=alphas, bs=bs)),
            ppm_to_reliability(10.0),
            t_guess=1e5,
        )
        query_time = time.perf_counter() - start
        print(
            f"{preset:>14} {temps.max():>6.1f}C {np.ptp(temps):>6.1f}C "
            f"{hours_to_years(lifetime):>9.1f} years {query_time * 1e3:>6.1f} ms"
        )

    print()
    print(
        "a reliability manager can therefore re-budget after every "
        "workload change at millisecond cost."
    )


if __name__ == "__main__":
    main()
