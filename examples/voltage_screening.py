"""Supply-voltage screening: how much headroom does accurate analysis buy?

The paper's introduction argues that pessimism in OBD analysis directly
limits the maximum operating voltage (and hence performance). This example
makes that concrete: for a ten-year, ten-per-million reliability target it
finds the maximum Vdd admitted by (a) the guard-band flow and (b) the
temperature-aware statistical flow, then reports the reclaimed headroom
and its frequency value under a simple alpha-power delay model.

Run:  python examples/voltage_screening.py
"""

from __future__ import annotations

import dataclasses

from scipy import optimize

from repro import AnalysisConfig, ReliabilityAnalyzer, make_benchmark
from repro.units import years_to_hours

TARGET_YEARS = 10.0
TARGET_PPM = 10.0


def max_vdd(floorplan, method: str, config: AnalysisConfig) -> float:
    """Largest Vdd whose ppm lifetime still meets the target."""
    target_hours = years_to_hours(TARGET_YEARS)

    def margin(vdd: float) -> float:
        analyzer = ReliabilityAnalyzer(
            floorplan, config=dataclasses.replace(config, vdd=vdd)
        )
        return analyzer.lifetime(TARGET_PPM, method=method) - target_hours

    # Lifetime falls monotonically with Vdd; bracket then bisect.
    lo, hi = 1.0, 2.0
    assert margin(lo) > 0.0, "target not met even at Vdd = 1.0 V"
    assert margin(hi) < 0.0, "target met even at Vdd = 2.0 V"
    return float(optimize.brentq(margin, lo, hi, xtol=1e-4))


def relative_frequency(vdd: float, vth: float = 0.35, power: float = 1.3) -> float:
    """Alpha-power-law frequency relative to 1.2 V."""
    ref = (1.2 - vth) ** power / 1.2
    return ((vdd - vth) ** power / vdd) / ref


def main() -> None:
    floorplan = make_benchmark("C2")
    config = AnalysisConfig(grid_size=15)  # slightly coarse grid: fast sweeps
    print(
        f"design C2 ({floorplan.n_devices:,} devices); target: "
        f"{TARGET_PPM:g}-per-million lifetime >= {TARGET_YEARS:g} years"
    )
    print()

    results = {}
    for method in ("guard", "temp_unaware", "st_fast"):
        vdd = max_vdd(floorplan, method, config)
        results[method] = vdd
        print(
            f"max Vdd by {method:>12}: {vdd:.3f} V "
            f"(relative frequency {relative_frequency(vdd):.3f})"
        )

    headroom = results["st_fast"] - results["guard"]
    speedup = relative_frequency(results["st_fast"]) / relative_frequency(
        results["guard"]
    )
    print()
    print(
        f"statistical analysis reclaims {headroom * 1000:.0f} mV of supply "
        f"headroom over the guard-band flow ({speedup - 1.0:.1%} frequency)"
    )
    assert results["guard"] <= results["temp_unaware"] <= results["st_fast"]


if __name__ == "__main__":
    main()
