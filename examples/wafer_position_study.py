"""Wafer-position study: systematic across-wafer patterns and reliability.

Section II notes that part of the intra-die correlated variation is really
a deterministic across-wafer pattern (slanted or bowl shaped, refs
[21]-[23]) and that the model accommodates it by making the per-grid means
location dependent. This example places the same design at several wafer
positions under a bowl-shaped thickness pattern and quantifies how chip
position changes the predicted ppm lifetime — the information a binning /
outgoing-quality flow would use.

Run:  python examples/wafer_position_study.py
"""

from __future__ import annotations

from repro import (
    ReliabilityAnalyzer,
    WaferPattern,
    make_benchmark,
)
from repro.core.blod import characterize_blods
from repro.core.ensemble import BlockReliability, StFastAnalyzer
from repro.core.lifetime import ppm_to_reliability, solve_lifetime
from repro.units import hours_to_years
from repro.variation.pca import build_canonical_model


def main() -> None:
    floorplan = make_benchmark("C1")
    analyzer = ReliabilityAnalyzer(floorplan)  # nominal (flat wafer) flow

    # A bowl: oxide 1.5% of nominal thicker at the wafer edge than centre.
    pattern = WaferPattern.bowl(depth=0.015 * 2.2, wafer_radius=150.0)
    positions = {
        "centre": (-floorplan.width / 2.0, -floorplan.height / 2.0),
        "mid-radius": (70.0, 0.0),
        "edge": (130.0, 0.0),
        "corner": (90.0, 90.0),
    }

    print(f"bowl pattern: +{pattern.offset_at(150.0, 0.0):.3f} nm at wafer edge")
    print()
    print(f"{'position':>12} {'mean offset':>12} {'10ppm lifetime':>15}")

    nominal_lifetime = None
    lifetimes = {}
    for label, (cx, cy) in positions.items():
        offsets = pattern.grid_offsets(analyzer.grid, chip_x=cx, chip_y=cy)
        model = build_canonical_model(
            analyzer.budget,
            analyzer.correlation,
            mean_offsets=offsets,
        )
        blods = characterize_blods(floorplan, analyzer.grid, model)
        blocks = [
            BlockReliability(blod=blod, alpha=b.alpha, b=b.b)
            for blod, b in zip(blods, analyzer.blocks, strict=True)
        ]
        positioned = StFastAnalyzer(blocks)
        lifetime = solve_lifetime(
            lambda t: float(positioned.reliability(t)),
            ppm_to_reliability(10.0),
            t_guess=1e5,
        )
        lifetimes[label] = lifetime
        if label == "centre":
            nominal_lifetime = lifetime
        print(
            f"{label:>12} {offsets.mean():>+11.4f}nm "
            f"{hours_to_years(lifetime):>9.1f} years"
        )

    print()
    edge_gain = lifetimes["edge"] / lifetimes["centre"] - 1.0
    print(
        f"edge chips (thicker oxide) live {edge_gain:+.0%} longer than "
        "centre chips under this pattern -- position-aware binning "
        "information the flat model cannot provide."
    )
    assert nominal_lifetime is not None
    assert lifetimes["edge"] > lifetimes["centre"]


if __name__ == "__main__":
    main()
