#!/usr/bin/env python
"""Smoke test for ``repro fleet``: two workers, one killed mid-run.

The CI ``fleet-smoke`` job runs this against real subprocesses:

1. boot two ``repro serve --port 0`` workers on ephemeral ports, each
   with a private ``REPRO_CACHE_DIR``;
2. check ``repro fleet status`` reports both ready;
3. start a ``repro fleet run`` Monte-Carlo sweep, SIGKILL one worker as
   soon as it has completed a shard group, and assert the merged JSON
   payload is byte-identical to the serial ``repro lifetime --json``
   output while the stats file records exactly one lost worker;
4. rerun the same sweep and assert it is served almost entirely from
   the coordinator's shared cache (>= 90% group hits);
5. SIGTERM the survivor and expect a clean exit.

Exit code 0 means every step passed.
"""

from __future__ import annotations

import json
import os
import pathlib
import re
import signal
import subprocess
import sys
import tempfile
import time
import urllib.error
import urllib.request

DESIGN_ARGS = [
    "--design",
    "C1",
    "--grid",
    "6",
    "--method",
    "mc",
    "--mc-chips",
    "12000",
    "--seed",
    "0",
]
GROUP_SIZE = "4"

_COMPLETED = re.compile(
    r"^repro_service_jobs_completed_total (\d+)", re.MULTILINE
)


def _check(condition: bool, message: str) -> None:
    if not condition:
        raise SystemExit(f"FAIL: {message}")
    print(f"ok: {message}")


def _start_worker(cache_dir: str) -> tuple[subprocess.Popen[str], str]:
    env = dict(os.environ, REPRO_CACHE_DIR=cache_dir)
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0"],
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        text=True,
        env=env,
    )
    assert process.stdout is not None
    deadline = time.monotonic() + 30
    while time.monotonic() < deadline:
        line = process.stdout.readline()
        if line.startswith("serving on "):
            return process, line.split("serving on ", 1)[1].strip()
        if process.poll() is not None:
            break
        time.sleep(0.05)
    process.kill()
    raise SystemExit("worker did not print its serving banner")


def _completed_jobs(base: str) -> int:
    try:
        with urllib.request.urlopen(f"{base}/metrics", timeout=5) as response:
            text = response.read().decode("utf-8")
    except (urllib.error.URLError, OSError):
        return 0
    match = _COMPLETED.search(text)
    return int(match.group(1)) if match else 0


def _fleet_run(
    workers: list[str], shared_dir: str, stats_path: str
) -> subprocess.Popen[bytes]:
    return subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "fleet",
            "run",
            *DESIGN_ARGS,
            "--group-size",
            GROUP_SIZE,
            "--workers",
            *workers,
            "--shared-cache-dir",
            shared_dir,
            "--stats-file",
            stats_path,
            "--json",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
    )


def main() -> int:
    tmp = tempfile.TemporaryDirectory(prefix="repro-fleet-smoke-")
    root = pathlib.Path(tmp.name)
    worker_a, base_a = _start_worker(str(root / "cache-a"))
    worker_b, base_b = _start_worker(str(root / "cache-b"))
    workers = [base_a, base_b]
    shared_dir = str(root / "shared")
    try:
        status = subprocess.run(
            [
                sys.executable,
                "-m",
                "repro",
                "fleet",
                "status",
                "--workers",
                *workers,
            ],
            capture_output=True,
            text=True,
        )
        _check(status.returncode == 0, "fleet status reports both ready")

        serial = subprocess.run(
            [sys.executable, "-m", "repro", "lifetime", *DESIGN_ARGS, "--json"],
            capture_output=True,
            check=True,
        )

        # Chaos run: SIGKILL worker B once it has finished a shard group,
        # guaranteeing the coordinator must reassign B's remaining work.
        stats_path = root / "stats-chaos.json"
        fleet = _fleet_run(workers, shared_dir, str(stats_path))
        deadline = time.monotonic() + 120
        while time.monotonic() < deadline:
            if _completed_jobs(base_b) >= 1:
                break
            if fleet.poll() is not None:
                raise SystemExit("fleet run finished before the chaos kill")
            time.sleep(0.1)
        else:
            raise SystemExit("worker B never completed a shard group")
        worker_b.send_signal(signal.SIGKILL)
        worker_b.wait(timeout=30)
        print("ok: SIGKILLed worker B mid-run")

        stdout, _ = fleet.communicate(timeout=300)
        _check(fleet.returncode == 0, "fleet run survives the dead worker")
        _check(
            stdout == serial.stdout,
            "fleet payload is byte-identical to the serial CLI",
        )
        stats = json.loads(stats_path.read_text())
        _check(stats["workers_lost"] == 1, "stats record one lost worker")
        _check(
            stats["groups_completed"] == stats["groups"],
            "every shard group completed despite the kill",
        )

        # Rerun: the shared cache must answer nearly every group.
        stats_path = root / "stats-rerun.json"
        rerun = _fleet_run(workers, shared_dir, str(stats_path))
        stdout, _ = rerun.communicate(timeout=300)
        _check(rerun.returncode == 0, "rerun succeeds on the survivor")
        _check(stdout == serial.stdout, "rerun payload is byte-identical too")
        stats = json.loads(stats_path.read_text())
        hit_ratio = stats["shared_cache_hits"] / stats["groups"]
        _check(
            hit_ratio >= 0.9,
            f"rerun served from shared cache ({hit_ratio:.0%} group hits)",
        )
    finally:
        for process in (worker_a, worker_b):
            if process.poll() is None:
                process.send_signal(signal.SIGTERM)
    _check(worker_a.wait(timeout=60) == 0, "surviving worker exits cleanly")
    tmp.cleanup()
    print("fleet smoke: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
