#!/usr/bin/env python
"""Open-loop load benchmark for ``repro serve``.

Boots a real ``repro serve`` subprocess (or targets ``--base-url``),
replays a seeded, deterministic open-loop arrival schedule against it —
mixed design sizes, a dedup-hit pool versus fresh cache-miss seeds —
then waits for every accepted job to finish and writes a JSON report
(``BENCH_service.json``) with per-class latency percentiles, sustained
throughput, and the shed rate.

*Open loop* means arrivals follow the schedule regardless of how fast the
server answers — the realistic regime where queueing delay shows up — as
opposed to closed-loop clients that wait for each response and therefore
self-throttle precisely when the server struggles.

The CI ``service-load`` job runs ``--quick --check``: quick shrinks the
schedule, check enforces the latency/shed thresholds at the bottom of
this file and exits non-zero on violation.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import platform
import random
import signal
import subprocess
import sys
import tempfile
import threading
import time

from repro.fleet.client import BackoffPolicy, HttpClient

#: Request templates, mixing design sizes (grid 6 vs 10 is a ~3x node
#: count difference in the thermal solve).
TEMPLATES = [
    {"kind": "lifetime", "design": "C1", "grid": 6, "methods": ["st_fast"]},
    {"kind": "lifetime", "design": "C2", "grid": 6, "methods": ["st_fast"]},
    {"kind": "lifetime", "design": "C1", "grid": 10, "methods": ["st_fast"]},
    {
        "kind": "curve",
        "design": "C1",
        "grid": 6,
        "points": 4,
        "t_min": 100.0,
        "t_max": 50_000.0,
        "methods": ["st_fast"],
    },
]

#: Fraction of submissions drawn from a small seed pool, so they dedup
#: (coalesce onto a live job or hit the result cache) instead of
#: computing; the rest carry fresh seeds and must run.
DUP_FRACTION = 0.3
DUP_POOL = 4

#: --check thresholds.  Generous enough for a noisy 2-core CI runner;
#: the point is catching order-of-magnitude regressions (a blocking
#: handler, a lock held across a solve), not microbenchmarking.
THRESHOLDS = {
    "submit_p99_s": 2.5,
    "status_p99_s": 1.0,
    "shed_rate_max": 0.5,
    "min_completed": 1,
    "max_errors": 0,
}


#: The shared fleet HTTP client in single-attempt mode.  Status retries
#: are OFF because a shed 429/503 is a *measurement* here (the shed-rate
#: threshold), and connection retries are OFF because ``_call`` times the
#: whole ``request()`` — backoff sleeps would pollute the latency samples.
_CLIENT = HttpClient(
    timeout_s=60.0, policy=BackoffPolicy(retries=0), retry_statuses=()
)


def _call(
    method: str, url: str, body: bytes | None = None, client: str = "load"
) -> tuple[int, bytes, float]:
    """One HTTP call; returns (status, body, latency_seconds)."""
    started = time.perf_counter()
    response = _CLIENT.request(
        method,
        url,
        body=body,
        headers={"Content-Type": "application/json", "X-Client-Id": client},
    )
    return response.status, response.body, time.perf_counter() - started


def _start_server(args: list[str]) -> tuple[subprocess.Popen[str], str]:
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0", *args],
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        text=True,
    )
    assert process.stdout is not None
    deadline = time.monotonic() + 30
    while time.monotonic() < deadline:
        line = process.stdout.readline()
        if line.startswith("serving on "):
            return process, line.split("serving on ", 1)[1].strip()
        if process.poll() is not None:
            break
        time.sleep(0.05)
    process.kill()
    raise SystemExit("server did not print its serving banner")


def build_schedule(
    n_requests: int, rate: float, seed: int
) -> list[tuple[float, dict, str, str]]:
    """The deterministic arrival plan: (offset_s, payload, client, mix).

    Poisson arrivals at ``rate`` req/s; ~DUP_FRACTION of payloads reuse a
    seed from a small pool (dedup-hit mix), the rest get a unique seed
    (cache-miss mix).  Four synthetic clients spread the admission
    controller's per-client buckets.
    """
    rng = random.Random(seed)
    schedule = []
    t = 0.0
    for i in range(n_requests):
        t += rng.expovariate(rate)
        template = dict(rng.choice(TEMPLATES))
        if rng.random() < DUP_FRACTION:
            template["seed"] = 1000 + rng.randrange(DUP_POOL)
            mix = "dup"
        else:
            template["seed"] = 50_000 + i
            mix = "unique"
        client = f"load-client-{rng.randrange(4)}"
        schedule.append((t, template, client, mix))
    return schedule


def percentile(sorted_values: list[float], q: float) -> float:
    """Linear-interpolated percentile of an ascending list."""
    if not sorted_values:
        return float("nan")
    if len(sorted_values) == 1:
        return sorted_values[0]
    position = q * (len(sorted_values) - 1)
    lo = int(position)
    hi = min(lo + 1, len(sorted_values) - 1)
    frac = position - lo
    return sorted_values[lo] * (1 - frac) + sorted_values[hi] * frac


def summarize(latencies: list[float]) -> dict:
    ordered = sorted(latencies)
    return {
        "count": len(ordered),
        "p50_s": percentile(ordered, 0.50),
        "p95_s": percentile(ordered, 0.95),
        "p99_s": percentile(ordered, 0.99),
        "max_s": ordered[-1] if ordered else float("nan"),
        "mean_s": sum(ordered) / len(ordered) if ordered else float("nan"),
    }


class LoadRun:
    """Shared mutable state for one traffic replay (lock-guarded)."""

    def __init__(self) -> None:
        self.lock = threading.Lock()
        self.submit_latencies: list[float] = []
        self.status_latencies: list[float] = []
        self.accepted: list[str] = []
        self.dedup_hits = 0
        self.shed = 0
        self.errors = 0

    def record_submit(
        self, status: int, body: bytes, latency: float
    ) -> None:
        with self.lock:
            self.submit_latencies.append(latency)
            if status in (429, 503):
                self.shed += 1
            elif status == 201:
                self.accepted.append(json.loads(body)["id"])
            elif status == 200:
                # Coalesced onto a live job or answered from cache.
                self.dedup_hits += 1
                self.accepted.append(json.loads(body)["id"])
            else:
                self.errors += 1


def replay(base: str, schedule: list[tuple[float, dict, str, str]]) -> LoadRun:
    """Fire the schedule open-loop; returns the collected measurements."""
    run = LoadRun()
    threads = []
    started = time.perf_counter()

    def fire(offset: float, payload: dict, client: str) -> None:
        delay = offset - (time.perf_counter() - started)
        if delay > 0:
            time.sleep(delay)
        status, body, latency = _call(
            "POST",
            f"{base}/v1/jobs",
            json.dumps(payload).encode("utf-8"),
            client=client,
        )
        run.record_submit(status, body, latency)

    for offset, payload, client, _mix in schedule:
        thread = threading.Thread(
            target=fire, args=(offset, payload, client), daemon=True
        )
        thread.start()
        threads.append(thread)
    for thread in threads:
        thread.join(timeout=120)
    return run


def drain_jobs(base: str, run: LoadRun, timeout: float = 300.0) -> dict:
    """Poll accepted jobs to a terminal state; returns the tally."""
    with run.lock:
        pending = sorted(set(run.accepted))
    states: dict[str, str] = {}
    deadline = time.monotonic() + timeout
    while pending and time.monotonic() < deadline:
        still = []
        for job_id in pending:
            _, body, latency = _call("GET", f"{base}/v1/jobs/{job_id}")
            with run.lock:
                run.status_latencies.append(latency)
            state = json.loads(body)["state"]
            if state in ("done", "failed", "cancelled"):
                states[job_id] = state
            else:
                still.append(job_id)
        pending = still
        if pending:
            time.sleep(0.2)
    for job_id in pending:
        states[job_id] = "unfinished"
    tally: dict[str, int] = {}
    for state in states.values():
        tally[state] = tally.get(state, 0) + 1
    return tally


def scrape_observability(base: str) -> dict:
    """What the tentpole promises: histogram families + flight records."""
    _, metrics_body, _ = _call("GET", f"{base}/metrics")
    text = metrics_body.decode("utf-8")
    histogram_families = sorted(
        line.split()[2]
        for line in text.splitlines()
        if line.startswith("# TYPE ") and line.rstrip().endswith("histogram")
    )
    _, flight_body, _ = _call("GET", f"{base}/v1/debug/flight")
    flight = json.loads(flight_body)
    return {
        "histogram_families": histogram_families,
        "latency_histograms": [
            name
            for name in histogram_families
            if name.startswith("repro_service_latency_")
        ],
        "flight_records": flight["count"],
    }


def run_benchmark(args: argparse.Namespace) -> dict:
    n_requests = 40 if args.quick else args.requests
    schedule = build_schedule(n_requests, args.rate, args.seed)
    horizon = schedule[-1][0]
    print(
        f"load: {n_requests} requests over ~{horizon:.1f}s "
        f"(rate {args.rate}/s, seed {args.seed})"
    )

    process = None
    base = args.base_url
    if base is None:
        # Fresh cache dir per run: a warm persistent cache would turn
        # every repeat invocation into 100% disk hits and measure nothing.
        cache_dir = tempfile.mkdtemp(prefix="repro-load-cache-")
        process, base = _start_server(
            [
                "--jobs",
                str(args.workers),
                "--max-queue",
                str(args.max_queue),
                "--rate",
                "0",  # shed via queue bounds, not per-client buckets
                "--cache-dir",
                cache_dir,
            ]
        )
    try:
        wall_start = time.perf_counter()
        run = replay(base, schedule)
        tally = drain_jobs(base, run)
        wall = time.perf_counter() - wall_start
        observability = scrape_observability(base)
    finally:
        if process is not None:
            process.send_signal(signal.SIGTERM)
            process.wait(timeout=60)

    completed = tally.get("done", 0)
    shed_rate = run.shed / n_requests if n_requests else 0.0
    report = {
        "benchmark": "service_load",
        "config": {
            "requests": n_requests,
            "rate_per_s": args.rate,
            "seed": args.seed,
            "quick": args.quick,
            "workers": args.workers,
            "max_queue": args.max_queue,
            "dup_fraction": DUP_FRACTION,
            "templates": TEMPLATES,
        },
        "latency": {
            "submit": summarize(run.submit_latencies),
            "status": summarize(run.status_latencies),
        },
        "jobs": {
            "offered": n_requests,
            "accepted": len(run.accepted),
            "dedup_hits": run.dedup_hits,
            "shed": run.shed,
            "errors": run.errors,
            "terminal_states": tally,
        },
        "shed_rate": shed_rate,
        "throughput_jobs_per_s": completed / wall if wall > 0 else 0.0,
        "wall_s": wall,
        "observability": observability,
        "env": {
            "python": platform.python_version(),
            "platform": platform.platform(),
        },
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
    }
    return report


def check_thresholds(report: dict) -> list[str]:
    failures = []
    submit = report["latency"]["submit"]
    status = report["latency"]["status"]
    if submit["p99_s"] > THRESHOLDS["submit_p99_s"]:
        failures.append(
            f"submit p99 {submit['p99_s']:.3f}s > "
            f"{THRESHOLDS['submit_p99_s']}s"
        )
    if status["count"] and status["p99_s"] > THRESHOLDS["status_p99_s"]:
        failures.append(
            f"status p99 {status['p99_s']:.3f}s > "
            f"{THRESHOLDS['status_p99_s']}s"
        )
    if report["shed_rate"] > THRESHOLDS["shed_rate_max"]:
        failures.append(
            f"shed rate {report['shed_rate']:.2f} > "
            f"{THRESHOLDS['shed_rate_max']}"
        )
    if report["jobs"]["errors"] > THRESHOLDS["max_errors"]:
        failures.append(
            f"{report['jobs']['errors']} requests got unexpected statuses"
        )
    done = report["jobs"]["terminal_states"].get("done", 0)
    if done < THRESHOLDS["min_completed"]:
        failures.append(f"only {done} jobs completed")
    unfinished = report["jobs"]["terminal_states"].get("unfinished", 0)
    if unfinished:
        failures.append(f"{unfinished} accepted jobs never finished")
    if not report["observability"]["latency_histograms"]:
        failures.append("/metrics exposes no service latency histograms")
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--requests", type=int, default=150, help="offered load (default 150)"
    )
    parser.add_argument(
        "--rate",
        type=float,
        default=8.0,
        help="mean open-loop arrival rate, req/s (default 8)",
    )
    parser.add_argument("--seed", type=int, default=20260808)
    parser.add_argument(
        "--workers", type=int, default=2, help="server worker threads"
    )
    parser.add_argument(
        "--max-queue", type=int, default=8, help="server queue bound"
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI scale: 40 requests instead of --requests",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="enforce the latency/shed thresholds (exit 1 on violation)",
    )
    parser.add_argument(
        "--base-url",
        default=None,
        help="target an already-running server instead of booting one",
    )
    parser.add_argument(
        "--output",
        default="BENCH_service.json",
        help="report path (default BENCH_service.json)",
    )
    args = parser.parse_args(argv)

    report = run_benchmark(args)
    out = pathlib.Path(args.output)
    out.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")

    submit = report["latency"]["submit"]
    print(
        f"submit latency p50/p95/p99: {submit['p50_s'] * 1e3:.1f} / "
        f"{submit['p95_s'] * 1e3:.1f} / {submit['p99_s'] * 1e3:.1f} ms"
    )
    print(
        f"jobs: {report['jobs']['accepted']} accepted "
        f"({report['jobs']['dedup_hits']} dedup hits), "
        f"{report['jobs']['shed']} shed, "
        f"states {report['jobs']['terminal_states']}"
    )
    print(
        f"throughput: {report['throughput_jobs_per_s']:.2f} completed "
        f"jobs/s over {report['wall_s']:.1f}s"
    )
    print(f"report written to {out}")

    if args.check:
        failures = check_thresholds(report)
        if failures:
            for failure in failures:
                print(f"FAIL: {failure}", file=sys.stderr)
            return 1
        print("service load: all thresholds met")
    return 0


if __name__ == "__main__":
    sys.exit(main())
