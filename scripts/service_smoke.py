#!/usr/bin/env python
"""Smoke test for ``repro serve``: boot, submit, verify, drain. Stdlib only.

The CI ``service-smoke`` job runs this against a real subprocess:

1. start ``repro serve --port 0`` and parse the bound port from the
   ``serving on http://host:port`` banner;
2. hit ``/healthz`` and ``/readyz``;
3. submit a tiny lifetime job, poll it to completion, and assert the
   result body is byte-identical to the equivalent CLI invocation;
4. submit a two-phase multi-mechanism scenario job and assert the same
   byte-identity against ``repro scenario run --json``;
5. check ``/metrics`` exposes the job counters;
6. submit a long Monte-Carlo job, send SIGTERM mid-run, and assert the
   server drains and exits cleanly (checkpointing the interrupted job).

Exit code 0 means every step passed.
"""

from __future__ import annotations

import json
import pathlib
import signal
import subprocess
import sys
import tempfile
import time
import urllib.error
import urllib.request

TINY_JOB = {"kind": "lifetime", "design": "C1", "grid": 6}
TINY_CLI = ["lifetime", "--design", "C1", "--grid", "6", "--json"]
LONG_MC_JOB = {
    "kind": "lifetime",
    "design": "C1",
    "grid": 6,
    "methods": ["mc"],
    "mc_chips": 20_000,
}
SCENARIO_DOC = {
    "phases": [
        {"name": "burnin", "duration_hours": 500.0, "temperature_c": 110.0},
        {"name": "field"},
    ],
    "mechanisms": ["obd", "nbti", "em"],
}
SCENARIO_JOB = {
    "kind": "scenario",
    "design": "C1",
    "grid": 6,
    "scenario": SCENARIO_DOC,
}


def _call(
    method: str, url: str, body: bytes | None = None
) -> tuple[int, bytes]:
    request = urllib.request.Request(
        url,
        data=body,
        method=method,
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=60) as response:
            return response.status, response.read()
    except urllib.error.HTTPError as exc:
        return exc.code, exc.read()


def _start_server(args: list[str]) -> tuple[subprocess.Popen[str], str]:
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0", *args],
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        text=True,
    )
    assert process.stdout is not None
    deadline = time.monotonic() + 30
    while time.monotonic() < deadline:
        line = process.stdout.readline()
        if line.startswith("serving on "):
            return process, line.split("serving on ", 1)[1].strip()
        if process.poll() is not None:
            break
        time.sleep(0.05)
    process.kill()
    raise SystemExit("server did not print its serving banner")


def _wait_done(base: str, job_id: str, timeout: float = 120.0) -> str:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        _, body = _call("GET", f"{base}/v1/jobs/{job_id}")
        state = json.loads(body)["state"]
        if state in ("done", "failed", "cancelled"):
            return state
        time.sleep(0.2)
    raise SystemExit(f"job {job_id} did not finish within {timeout}s")


def _check(condition: bool, message: str) -> None:
    if not condition:
        raise SystemExit(f"FAIL: {message}")
    print(f"ok: {message}")


def smoke_round_trip(checkpoint_dir: str) -> None:
    # --no-cache so reruns on a warm machine still exercise the compute
    # path (a cache hit answers 200, not 201, and runs nothing).
    process, base = _start_server(
        ["--checkpoint-dir", checkpoint_dir, "--no-cache"]
    )
    try:
        status, body = _call("GET", f"{base}/healthz")
        _check(status == 200, "healthz returns 200")
        status, _ = _call("GET", f"{base}/readyz")
        _check(status == 200, "readyz returns 200 while accepting")

        status, body = _call(
            "POST", f"{base}/v1/jobs", json.dumps(TINY_JOB).encode()
        )
        _check(status == 201, "job submission returns 201")
        job_id = json.loads(body)["id"]
        _check(_wait_done(base, job_id) == "done", "tiny job completes")

        _, http_body = _call("GET", f"{base}/v1/jobs/{job_id}/result")
        cli = subprocess.run(
            [sys.executable, "-m", "repro", *TINY_CLI],
            capture_output=True,
            text=True,
            check=True,
        )
        _check(
            http_body.decode("utf-8") == cli.stdout,
            "HTTP result is byte-identical to the CLI payload",
        )

        status, body = _call(
            "POST", f"{base}/v1/jobs", json.dumps(SCENARIO_JOB).encode()
        )
        _check(status == 201, "scenario job submission returns 201")
        job_id = json.loads(body)["id"]
        _check(_wait_done(base, job_id) == "done", "scenario job completes")

        _, http_body = _call("GET", f"{base}/v1/jobs/{job_id}/result")
        with tempfile.NamedTemporaryFile(
            "w", suffix=".json", delete=False
        ) as handle:
            json.dump(SCENARIO_DOC, handle)
            scenario_path = handle.name
        cli = subprocess.run(
            [
                sys.executable,
                "-m",
                "repro",
                "scenario",
                "run",
                "--design",
                "C1",
                "--grid",
                "6",
                "--scenario",
                scenario_path,
                "--json",
            ],
            capture_output=True,
            text=True,
            check=True,
        )
        pathlib.Path(scenario_path).unlink()
        _check(
            http_body.decode("utf-8") == cli.stdout,
            "scenario result is byte-identical to the CLI payload",
        )

        status, body = _call("GET", f"{base}/metrics")
        _check(status == 200, "metrics returns 200")
        _check(
            b"repro_service_jobs_completed_total" in body,
            "metrics expose job counters",
        )
    finally:
        process.send_signal(signal.SIGTERM)
        _check(process.wait(timeout=60) == 0, "clean exit after SIGTERM")


def smoke_sigterm_drain(checkpoint_dir: str) -> None:
    process, base = _start_server(
        ["--checkpoint-dir", checkpoint_dir, "--drain-timeout", "1", "--no-cache"]
    )
    try:
        status, body = _call(
            "POST", f"{base}/v1/jobs", json.dumps(LONG_MC_JOB).encode()
        )
        _check(status == 201, "long MC job accepted")
        # Give the MC run time to start and complete some shards.
        time.sleep(3.0)
    finally:
        process.send_signal(signal.SIGTERM)
        code = process.wait(timeout=60)
    _check(code == 0, "SIGTERM during MC run exits cleanly")
    checkpoints = list(pathlib.Path(checkpoint_dir).glob("*.ckpt.npz"))
    _check(
        len(checkpoints) >= 1,
        "interrupted MC job left a checkpoint for resume",
    )


def main() -> int:
    with tempfile.TemporaryDirectory(prefix="repro-smoke-") as tmp:
        smoke_round_trip(str(pathlib.Path(tmp) / "ckpt-a"))
        smoke_sigterm_drain(str(pathlib.Path(tmp) / "ckpt-b"))
    print("service smoke: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
