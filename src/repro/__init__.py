"""repro — process variation and temperature-aware full-chip OBD reliability.

A from-scratch reproduction of Zhuo, Chopra, Sylvester and Blaauw,
"Process Variation and Temperature-Aware Full Chip Oxide Breakdown
Reliability Analysis" (DATE 2010 / IEEE TCAD 2011).

Quick start::

    from repro import ReliabilityAnalyzer, make_benchmark

    analyzer = ReliabilityAnalyzer(make_benchmark("C3"))
    ten_ppm_lifetime = analyzer.lifetime(ppm=10, method="st_fast")

See :mod:`repro.core.analyzer` for the full method list and the
``examples/`` directory for end-to-end scenarios.
"""

from repro.chip.benchmarks import (
    BENCHMARK_DEVICE_COUNTS,
    make_alpha_processor,
    make_benchmark,
    make_manycore,
    make_synthetic_design,
)
from repro.chip.floorplan import Block, Floorplan
from repro.chip.geometry import GridSpec, Rect
from repro.core.analyzer import METHODS, AnalysisConfig, ReliabilityAnalyzer
from repro.core.blod import BlodModel, characterize_blods
from repro.core.burnin import BurnInAnalyzer, ExtrinsicDefectModel
from repro.core.ensemble import (
    BlockReliability,
    StFastAnalyzer,
    StMcAnalyzer,
    worst_case_blocks,
)
from repro.core.guardband import GuardBandAnalyzer
from repro.core.hybrid import HybridAnalyzer
from repro.core.lifetime import (
    lifetime_at_ppm,
    lifetime_from_curve,
    ppm_to_reliability,
    solve_lifetime,
)
from repro.core.mission import (
    MissionAnalyzer,
    MissionProfile,
    OperatingPhase,
    mission_analyzer,
)
from repro.core.montecarlo import MonteCarloEngine, ReliabilityCurve
from repro.core.obd_model import (
    DeviceReliabilityParams,
    OBDModel,
    TabulatedOBDModel,
)
from repro.core.sensitivity import (
    SensitivityResult,
    lifetime_sensitivities,
    tornado_text,
)
from repro.core.voltage import (
    VoltageScreeningResult,
    max_vdd_for_target,
    voltage_headroom,
)
from repro.errors import (
    AdmissionError,
    ConfigurationError,
    ExecutionInterrupted,
    FloorplanError,
    NumericalError,
    ReproError,
    ServiceError,
    SolverError,
    UnitError,
)
from repro.leakage.degradation import (
    DegradationParams,
    DegradationTrace,
    GateLeakageSimulator,
)
from repro.leakage.population import ChipLeakagePopulation
from repro.power.activity import ActivityProfile
from repro.power.loop import solve_power_thermal
from repro.power.model import BlockPowerModel, PowerModelParams
from repro.report import design_report, format_table, heat_map
from repro.stats.weibull import AreaScaledWeibull
from repro.thermal.grid import PackageModel
from repro.thermal.hotspot import HotSpotLite, ThermalResult
from repro.thermal.transient import TransientResult, TransientSolver
from repro.variation.components import VariationBudget
from repro.variation.correlation import SpatialCorrelationModel
from repro.variation.extraction import (
    ExtractionResult,
    extract_variation_model,
    synthesize_measurements,
)
from repro.variation.pca import CanonicalThicknessModel, build_canonical_model
from repro.variation.quadtree import QuadTreeModel, build_quadtree_model
from repro.variation.sampling import ChipSampler
from repro.variation.wafer import WaferPattern

def _resolve_version() -> str:
    """The installed package version, falling back for source-tree runs.

    Sourced from package metadata so ``pyproject.toml`` stays the single
    authority; an uninstalled checkout (``PYTHONPATH=src``) has no
    distribution metadata and uses the pinned fallback.
    """
    import importlib.metadata

    try:
        return importlib.metadata.version("repro")
    except importlib.metadata.PackageNotFoundError:
        return "1.0.0"


__version__ = _resolve_version()

__all__ = [
    "AdmissionError",
    "AnalysisConfig",
    "ActivityProfile",
    "ExecutionInterrupted",
    "ServiceError",
    "AreaScaledWeibull",
    "BENCHMARK_DEVICE_COUNTS",
    "Block",
    "BlockPowerModel",
    "BlockReliability",
    "BlodModel",
    "BurnInAnalyzer",
    "ExtractionResult",
    "ExtrinsicDefectModel",
    "TransientResult",
    "TransientSolver",
    "VoltageScreeningResult",
    "max_vdd_for_target",
    "voltage_headroom",
    "extract_variation_model",
    "synthesize_measurements",
    "MissionAnalyzer",
    "MissionProfile",
    "OperatingPhase",
    "SensitivityResult",
    "lifetime_sensitivities",
    "mission_analyzer",
    "tornado_text",
    "CanonicalThicknessModel",
    "ChipLeakagePopulation",
    "ChipSampler",
    "ConfigurationError",
    "DegradationParams",
    "DegradationTrace",
    "DeviceReliabilityParams",
    "Floorplan",
    "FloorplanError",
    "GateLeakageSimulator",
    "GridSpec",
    "GuardBandAnalyzer",
    "HotSpotLite",
    "HybridAnalyzer",
    "METHODS",
    "MonteCarloEngine",
    "NumericalError",
    "OBDModel",
    "PackageModel",
    "PowerModelParams",
    "QuadTreeModel",
    "Rect",
    "ReliabilityAnalyzer",
    "ReliabilityCurve",
    "ReproError",
    "SolverError",
    "SpatialCorrelationModel",
    "StFastAnalyzer",
    "StMcAnalyzer",
    "TabulatedOBDModel",
    "ThermalResult",
    "UnitError",
    "VariationBudget",
    "WaferPattern",
    "build_canonical_model",
    "build_quadtree_model",
    "characterize_blods",
    "design_report",
    "format_table",
    "heat_map",
    "lifetime_at_ppm",
    "lifetime_from_curve",
    "make_alpha_processor",
    "make_benchmark",
    "make_manycore",
    "make_synthetic_design",
    "ppm_to_reliability",
    "solve_lifetime",
    "solve_power_thermal",
    "worst_case_blocks",
]
