"""Chip geometry, floorplans and benchmark designs."""
