"""Benchmark designs used in the paper's evaluation (Sec. V).

The paper tests six designs: C1--C5 are automatically generated synthetic
circuits with 50K to 0.5M devices, and C6 is an alpha-processor design with
15 functional modules and approximately 0.84M transistors. The original
synthetic generators and the alpha netlist are not public, so this module
rebuilds them:

- :func:`make_synthetic_design` produces a random slicing-tree floorplan
  with realistic block-to-block power-density contrast (hot execution
  clusters next to cool memory arrays), which is all the analysis consumes.
- :func:`make_alpha_processor` is an EV6-like floorplan with the 15
  classic Alpha 21264 functional modules (the same processor HotSpot ships
  as its demo floorplan) and a Wattch-like power vector.
- :func:`make_manycore` builds the regular tiled many-core die of
  Fig. 1(b).
"""

from __future__ import annotations

import numpy as np

from repro.chip.floorplan import Block, Floorplan
from repro.chip.geometry import Rect
from repro.errors import ConfigurationError

#: Device counts of the paper's six benchmark designs (Table III).
BENCHMARK_DEVICE_COUNTS = {
    "C1": 50_000,
    "C2": 80_000,
    "C3": 100_000,
    "C4": 200_000,
    "C5": 500_000,
    "C6": 840_000,
}

#: Block counts used for the synthetic designs (tens of blocks capture the
#: thermal profile, per footnote 1 of the paper).
_SYNTHETIC_BLOCK_COUNTS = {"C1": 8, "C2": 10, "C3": 12, "C4": 14, "C5": 16}

#: Synthetic die edge lengths in millimetres, growing with design size.
_SYNTHETIC_DIE_SIZES = {"C1": 4.0, "C2": 5.0, "C3": 6.0, "C4": 8.0, "C5": 10.0}


def _slicing_tree_rects(die: Rect, n_leaves: int, rng: np.random.Generator) -> list[Rect]:
    """Partition ``die`` into ``n_leaves`` rectangles with a random slicing tree.

    At each step the largest rectangle is split, alternating preference for
    the long direction, with a random split fraction in [0.35, 0.65] so block
    aspect ratios stay reasonable.
    """
    rects = [die]
    while len(rects) < n_leaves:
        rects.sort(key=lambda r: r.area, reverse=True)
        target = rects.pop(0)
        fraction = float(rng.uniform(0.35, 0.65))
        if target.width >= target.height:
            first, second = target.split_horizontal(fraction)
        else:
            first, second = target.split_vertical(fraction)
        rects.extend([first, second])
    return rects


def make_synthetic_design(
    name: str,
    n_devices: int,
    n_blocks: int,
    die_size: float,
    seed: int,
    total_power: float | None = None,
) -> Floorplan:
    """Generate a synthetic benchmark floorplan.

    Devices are distributed across blocks proportionally to block area with
    a lognormal density perturbation (memory-like blocks are denser than
    random-logic blocks). Power densities are drawn so that a few blocks are
    distinctly hot, giving the ~30 degC across-die temperature spread the
    paper observes.

    Parameters
    ----------
    name:
        Design name used to prefix block names.
    n_devices:
        Total number of gate-oxide devices on the chip.
    n_blocks:
        Number of temperature-uniform blocks.
    die_size:
        Edge length of the (square) die in millimetres.
    seed:
        Seed for the deterministic generator.
    total_power:
        Total chip power in watts; defaults to ``0.4 W/mm^2`` of die area,
        a typical high-performance density.
    """
    if n_devices < n_blocks:
        raise ConfigurationError(
            f"need at least one device per block: {n_devices} < {n_blocks}"
        )
    rng = np.random.default_rng(seed)
    die = Rect(0.0, 0.0, die_size, die_size)
    rects = _slicing_tree_rects(die, n_blocks, rng)

    areas = np.array([r.area for r in rects])
    density_jitter = rng.lognormal(mean=0.0, sigma=0.35, size=n_blocks)
    device_weights = areas * density_jitter
    device_counts = _apportion(n_devices, device_weights)

    if total_power is None:
        total_power = 0.4 * die.area
    # A third of the blocks are "hot" (execution-like), the rest cool
    # (memory-like): the contrast produces the hot-spot/inactive-region
    # temperature difference of Fig. 1.
    n_hot = max(1, n_blocks // 3)
    hot_indices = rng.choice(n_blocks, size=n_hot, replace=False)
    density_scale = np.full(n_blocks, 1.0)
    density_scale[hot_indices] = rng.uniform(2.5, 4.5, size=n_hot)
    power_weights = areas * density_scale
    powers = total_power * power_weights / power_weights.sum()

    blocks = tuple(
        Block(
            name=f"{name}_b{j}",
            rect=rects[j],
            n_devices=int(device_counts[j]),
            avg_device_area=float(rng.uniform(0.8, 1.6)),
            power=float(powers[j]),
        )
        for j in range(n_blocks)
    )
    return Floorplan(width=die_size, height=die_size, blocks=blocks)


def _apportion(total: int, weights: np.ndarray) -> np.ndarray:
    """Split integer ``total`` proportionally to ``weights``.

    Uses the largest-remainder method and guarantees every entry gets at
    least one unit.
    """
    weights = np.asarray(weights, dtype=float)
    if np.any(weights <= 0.0):
        raise ConfigurationError("apportionment weights must be positive")
    n_bins = len(weights)
    if total < n_bins:
        raise ConfigurationError(f"cannot apportion {total} into {n_bins} bins")
    # Reserve one unit per bin, then split the remainder.
    remainder_total = total - n_bins
    raw = remainder_total * weights / weights.sum()
    counts = np.floor(raw).astype(int)
    shortfall = remainder_total - counts.sum()
    if shortfall > 0:
        order = np.argsort(raw - counts)[::-1]
        counts[order[:shortfall]] += 1
    return counts + 1


def make_benchmark(  # reprolint: disable=RPL001 (None selects the stable per-design seed below, not an unseeded RNG)
    name: str, seed: int | None = None
) -> Floorplan:
    """Build one of the paper's benchmark designs C1--C6 by name."""
    key = name.upper()
    if key == "C6":
        return make_alpha_processor()
    if key not in _SYNTHETIC_BLOCK_COUNTS:
        raise ConfigurationError(
            f"unknown benchmark {name!r}; expected one of "
            f"{sorted(BENCHMARK_DEVICE_COUNTS)}"
        )
    return make_synthetic_design(
        name=key,
        n_devices=BENCHMARK_DEVICE_COUNTS[key],
        n_blocks=_SYNTHETIC_BLOCK_COUNTS[key],
        die_size=_SYNTHETIC_DIE_SIZES[key],
        seed=seed if seed is not None else _default_seed(key),
    )


def _default_seed(name: str) -> int:
    # Stable per-design seeds so that "C3" always means the same floorplan.
    return 1000 + int(name[1:])


# EV6-like (Alpha 21264) floorplan. Geometry follows the classic HotSpot
# ``ev6.flp`` demo layout, expressed here on a 16 mm x 16 mm die. Device
# counts total ~0.84M, weighted towards the caches (SRAM-dense) as on the
# real part. Powers are representative Wattch steady-state values: the
# integer/FP execution units and register files run hot, the large caches
# stay cool.
_ALPHA_MODULES = (
    # name,         x,     y,   width, height, devices, avg_area, power (W)
    ("icache",     0.0,  11.2,   8.0,   4.8,  155_000, 1.00,  6.5),
    ("dcache",     8.0,  11.2,   8.0,   4.8,  155_000, 1.00,  7.0),
    ("l2_left",    0.0,   0.0,   2.4,  11.2,  100_000, 1.00,  3.0),
    ("l2_right",  13.6,   0.0,   2.4,  11.2,  100_000, 1.00,  3.0),
    ("bpred",      2.4,   9.6,   3.2,   1.6,   40_000, 1.10,  3.5),
    ("dtb",        5.6,   9.6,   2.8,   1.6,   24_000, 1.10,  2.2),
    ("itb",        8.4,   9.6,   2.4,   1.6,   20_000, 1.10,  1.8),
    ("ldstq",     10.8,   9.6,   2.8,   1.6,   26_000, 1.20,  4.0),
    ("fpmap",      2.4,   8.0,   2.6,   1.6,   14_000, 1.20,  2.5),
    ("fpq",        5.0,   8.0,   2.6,   1.6,   14_000, 1.20,  2.8),
    ("fpreg",      7.6,   8.0,   3.0,   1.6,   22_000, 1.30,  5.5),
    ("fpadd",      2.4,   4.8,   4.0,   3.2,   32_000, 1.30,  9.0),
    ("fpmul",      6.4,   4.8,   4.0,   3.2,   34_000, 1.30,  9.5),
    ("intmap",    10.6,   8.0,   3.0,   1.6,   14_000, 1.20,  3.0),
    ("intq",       2.4,   3.2,   4.0,   1.6,   16_000, 1.20,  4.5),
    ("intreg",     6.4,   3.2,   4.0,   1.6,   22_000, 1.30,  7.5),
    ("intexec",    2.4,   0.0,   8.0,   3.2,   36_000, 1.30, 14.0),
    ("iq",        10.4,   4.8,   3.2,   3.2,   16_000, 1.20,  4.8),
)


def make_alpha_processor() -> Floorplan:
    """The C6 benchmark: an EV6-like alpha processor.

    The paper describes C6 as "an alpha processor design with 15 functional
    modules and approximately 0.84M transistors"; our layout keeps the
    classic EV6 module set (the two L2 slabs count as one logical module
    split for layout, and the two level-1 caches are separate), yielding the
    same device count and the characteristic hot-core / cool-cache thermal
    profile of Fig. 1(a).
    """
    blocks = tuple(
        Block(
            name=name,
            rect=Rect(x, y, w, h),
            n_devices=devices,
            avg_device_area=avg_area,
            power=power,
        )
        for name, x, y, w, h, devices, avg_area, power in _ALPHA_MODULES
    )
    return Floorplan(width=16.0, height=16.0, blocks=blocks)


def make_manycore(
    n_cores_x: int = 4,
    n_cores_y: int = 4,
    die_size: float = 12.0,
    devices_per_core: int = 40_000,
    core_power: float = 4.0,
    active_cores: tuple[int, ...] | None = None,
) -> Floorplan:
    """A tiled many-core die like Fig. 1(b).

    Each core tile is a block; cores listed in ``active_cores`` (flat
    row-major indices) dissipate ``core_power`` watts, the rest idle at a
    tenth of that. By default a diagonal band of cores is active, which
    produces the clustered hot spots of the figure.
    """
    if n_cores_x < 1 or n_cores_y < 1:
        raise ConfigurationError("need at least a 1x1 core array")
    n_cores = n_cores_x * n_cores_y
    if active_cores is None:
        active_cores = tuple(
            row * n_cores_x + col
            for row in range(n_cores_y)
            for col in range(n_cores_x)
            if abs(row - col) <= 0
        )
    bad = [c for c in active_cores if not 0 <= c < n_cores]
    if bad:
        raise ConfigurationError(f"active core indices out of range: {bad}")
    tile_w = die_size / n_cores_x
    tile_h = die_size / n_cores_y
    active = set(active_cores)
    blocks = []
    for row in range(n_cores_y):
        for col in range(n_cores_x):
            index = row * n_cores_x + col
            power = core_power if index in active else 0.1 * core_power
            blocks.append(
                Block(
                    name=f"core_{row}_{col}",
                    rect=Rect(col * tile_w, row * tile_h, tile_w, tile_h),
                    n_devices=devices_per_core,
                    avg_device_area=1.0,
                    power=power,
                )
            )
    return Floorplan(width=die_size, height=die_size, blocks=tuple(blocks))
