"""Floorplans: temperature-uniform blocks with device populations.

A :class:`Block` is the paper's unit of temperature uniformity — a region
whose devices share the same operating temperature and therefore the same
device-level reliability parameters ``alpha_j`` and ``b_j`` (Sec. IV-A). A
:class:`Floorplan` is the full die: its blocks carry device counts,
normalized gate areas, and per-block power used by the thermal model.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.chip.geometry import GridSpec, Rect
from repro.errors import FloorplanError


@dataclass(frozen=True)
class Block:
    """One temperature-uniform functional block.

    Parameters
    ----------
    name:
        Unique block identifier (e.g. ``"icache"``).
    rect:
        Block footprint on the die, in millimetres.
    n_devices:
        Number of gate-oxide devices in the block (``m_j`` in the paper).
    avg_device_area:
        Mean device gate area normalized to the minimum device area (the
        ``a`` of eq. (3)); the block's total normalized oxide area is
        ``A_j = n_devices * avg_device_area``.
    power:
        Block power dissipation in watts (input to the thermal model).
    """

    name: str
    rect: Rect
    n_devices: int
    avg_device_area: float = 1.0
    power: float = 0.0

    def __post_init__(self) -> None:
        if not self.name:
            raise FloorplanError("block name must be non-empty")
        if self.n_devices < 1:
            raise FloorplanError(
                f"block {self.name!r} must contain at least one device, "
                f"got {self.n_devices}"
            )
        if self.avg_device_area <= 0.0:
            raise FloorplanError(
                f"block {self.name!r} average device area must be positive"
            )
        if self.power < 0.0:
            raise FloorplanError(f"block {self.name!r} power must be non-negative")

    @property
    def total_oxide_area(self) -> float:
        """Total normalized oxide area ``A_j`` of the block."""
        return self.n_devices * self.avg_device_area

    @property
    def power_density(self) -> float:
        """Power per unit silicon area, W/mm^2."""
        return self.power / self.rect.area

    def with_power(self, power: float) -> "Block":
        """A copy of this block with a different power value."""
        return replace(self, power=power)


@dataclass(frozen=True)
class Floorplan:
    """A die outline plus its temperature-uniform blocks.

    Blocks must lie on the die and must not overlap each other (they need
    not tile the die completely: whitespace is allowed and simply holds no
    devices).
    """

    width: float
    height: float
    blocks: tuple[Block, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not (self.width > 0.0 and self.height > 0.0):
            raise FloorplanError(
                f"die must have positive size, got {self.width} x {self.height}"
            )
        if not self.blocks:
            raise FloorplanError("floorplan must contain at least one block")
        die = self.die_rect
        names: set[str] = set()
        for block in self.blocks:
            if block.name in names:
                raise FloorplanError(f"duplicate block name {block.name!r}")
            names.add(block.name)
            if not die.contains_rect(block.rect):
                raise FloorplanError(
                    f"block {block.name!r} extends outside the die"
                )
        self._check_no_overlap()

    def _check_no_overlap(self) -> None:
        blocks = self.blocks
        for i in range(len(blocks)):
            for j in range(i + 1, len(blocks)):
                overlap = blocks[i].rect.overlap_area(blocks[j].rect)
                smaller = min(blocks[i].rect.area, blocks[j].rect.area)
                if overlap > 1e-9 * smaller:
                    raise FloorplanError(
                        f"blocks {blocks[i].name!r} and {blocks[j].name!r} overlap"
                    )

    @property
    def die_rect(self) -> Rect:
        """The die outline as a rectangle anchored at the origin."""
        return Rect(0.0, 0.0, self.width, self.height)

    @property
    def n_blocks(self) -> int:
        """Number of blocks (``N`` in the paper)."""
        return len(self.blocks)

    @property
    def n_devices(self) -> int:
        """Total device count across all blocks (``m`` in the paper)."""
        return sum(block.n_devices for block in self.blocks)

    @property
    def total_oxide_area(self) -> float:
        """Total normalized oxide area of the chip, ``sum_j A_j``."""
        return sum(block.total_oxide_area for block in self.blocks)

    @property
    def total_power(self) -> float:
        """Total chip power in watts."""
        return sum(block.power for block in self.blocks)

    @property
    def block_names(self) -> tuple[str, ...]:
        """Block names in floorplan order."""
        return tuple(block.name for block in self.blocks)

    def block(self, name: str) -> Block:
        """Look a block up by name."""
        for candidate in self.blocks:
            if candidate.name == name:
                return candidate
        raise KeyError(f"no block named {name!r}")

    def with_powers(self, powers: dict[str, float]) -> "Floorplan":
        """A copy of this floorplan with per-block powers replaced.

        ``powers`` maps block name to watts; blocks not mentioned keep
        their current power.
        """
        unknown = set(powers) - set(self.block_names)
        if unknown:
            raise KeyError(f"unknown block names: {sorted(unknown)}")
        new_blocks = tuple(
            block.with_power(powers.get(block.name, block.power))
            for block in self.blocks
        )
        return replace(self, blocks=new_blocks)

    def make_grid(self, nx: int, ny: int | None = None) -> GridSpec:
        """A spatial-correlation grid covering this die."""
        return GridSpec(nx=nx, ny=ny if ny is not None else nx,
                        width=self.width, height=self.height)

    def device_grid_fractions(self, grid: GridSpec) -> np.ndarray:
        """Per-block device distribution over grid cells.

        Returns an ``(n_blocks, n_cells)`` matrix whose row ``j`` gives the
        fraction of block ``j``'s devices located in each spatial-correlation
        grid cell, assuming devices are spread uniformly over the block
        footprint. Each row sums to 1.
        """
        rows = np.empty((self.n_blocks, grid.n_cells))
        for j, block in enumerate(self.blocks):
            fractions = grid.overlap_fractions(block.rect)
            total = fractions.sum()
            if total <= 0.0:
                raise FloorplanError(
                    f"block {block.name!r} does not overlap the grid"
                )
            rows[j] = fractions / total
        return rows

    def coverage(self) -> float:
        """Fraction of the die area covered by blocks."""
        covered = sum(block.rect.area for block in self.blocks)
        return covered / self.die_rect.area
