"""Planar geometry primitives: rectangles and regular grids.

These are the shared geometric vocabulary of the library: floorplan blocks
are rectangles, the spatial-correlation model partitions the die into a
regular grid of cells (Fig. 2 of the paper), and the thermal solver meshes
the die with another regular grid. Overlap-area computations link the three.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError, FloorplanError


@dataclass(frozen=True)
class Rect:
    """An axis-aligned rectangle: origin ``(x, y)`` plus width and height.

    Dimensions are in millimetres by convention but the class is unit
    agnostic. Width and height must be strictly positive.
    """

    x: float
    y: float
    width: float
    height: float

    def __post_init__(self) -> None:
        if not (self.width > 0.0 and self.height > 0.0):
            raise FloorplanError(
                f"rectangle must have positive size, got {self.width} x {self.height}"
            )

    @property
    def x2(self) -> float:
        """Right edge coordinate."""
        return self.x + self.width

    @property
    def y2(self) -> float:
        """Top edge coordinate."""
        return self.y + self.height

    @property
    def area(self) -> float:
        """Rectangle area."""
        return self.width * self.height

    @property
    def center(self) -> tuple[float, float]:
        """Centre point ``(cx, cy)``."""
        return (self.x + 0.5 * self.width, self.y + 0.5 * self.height)

    def contains_point(self, px: float, py: float) -> bool:
        """Return True if ``(px, py)`` lies inside or on the boundary."""
        return self.x <= px <= self.x2 and self.y <= py <= self.y2

    def contains_rect(self, other: "Rect", tol: float = 1e-9) -> bool:
        """Return True if ``other`` is entirely inside this rectangle."""
        return (
            other.x >= self.x - tol
            and other.y >= self.y - tol
            and other.x2 <= self.x2 + tol
            and other.y2 <= self.y2 + tol
        )

    def overlap_area(self, other: "Rect") -> float:
        """Area of the intersection of this rectangle with ``other``.

        Returns 0.0 when the rectangles do not overlap (touching edges
        count as zero overlap).
        """
        dx = min(self.x2, other.x2) - max(self.x, other.x)
        dy = min(self.y2, other.y2) - max(self.y, other.y)
        if dx <= 0.0 or dy <= 0.0:
            return 0.0
        return dx * dy

    def intersection(self, other: "Rect") -> "Rect | None":
        """The intersection rectangle, or None when disjoint."""
        x1 = max(self.x, other.x)
        y1 = max(self.y, other.y)
        x2 = min(self.x2, other.x2)
        y2 = min(self.y2, other.y2)
        if x2 - x1 <= 0.0 or y2 - y1 <= 0.0:
            return None
        return Rect(x1, y1, x2 - x1, y2 - y1)

    def split_horizontal(self, fraction: float) -> tuple["Rect", "Rect"]:
        """Split into a left/right pair at ``fraction`` of the width."""
        _check_fraction(fraction)
        w_left = self.width * fraction
        left = Rect(self.x, self.y, w_left, self.height)
        right = Rect(self.x + w_left, self.y, self.width - w_left, self.height)
        return left, right

    def split_vertical(self, fraction: float) -> tuple["Rect", "Rect"]:
        """Split into a bottom/top pair at ``fraction`` of the height."""
        _check_fraction(fraction)
        h_bottom = self.height * fraction
        bottom = Rect(self.x, self.y, self.width, h_bottom)
        top = Rect(self.x, self.y + h_bottom, self.width, self.height - h_bottom)
        return bottom, top

    def distance_to(self, other: "Rect") -> float:
        """Euclidean distance between the two rectangle centres."""
        cx1, cy1 = self.center
        cx2, cy2 = other.center
        return float(np.hypot(cx2 - cx1, cy2 - cy1))


def _check_fraction(fraction: float) -> None:
    if not 0.0 < fraction < 1.0:
        raise FloorplanError(f"split fraction must be in (0, 1), got {fraction}")


@dataclass(frozen=True)
class GridSpec:
    """A regular ``nx`` x ``ny`` partition of a ``width`` x ``height`` die.

    Cells are indexed in row-major order: cell ``k`` sits at column
    ``k % nx`` and row ``k // nx``, with the origin cell in the lower-left
    corner of the die. This is the "grid" of the spatial-correlation model
    of eq. (2); it is in general different from the temperature-uniform
    "blocks" of the floorplan (footnote 2 of the paper).
    """

    nx: int
    ny: int
    width: float
    height: float

    def __post_init__(self) -> None:
        if self.nx < 1 or self.ny < 1:
            raise FloorplanError(f"grid must be at least 1x1, got {self.nx}x{self.ny}")
        if not (self.width > 0.0 and self.height > 0.0):
            raise FloorplanError(
                f"grid extent must be positive, got {self.width} x {self.height}"
            )

    @property
    def n_cells(self) -> int:
        """Total number of grid cells."""
        return self.nx * self.ny

    @property
    def cell_width(self) -> float:
        """Width of a single cell."""
        return self.width / self.nx

    @property
    def cell_height(self) -> float:
        """Height of a single cell."""
        return self.height / self.ny

    @property
    def diagonal(self) -> float:
        """Die diagonal, the natural normalisation for correlation length."""
        return float(np.hypot(self.width, self.height))

    def cell_rect(self, index: int) -> Rect:
        """The rectangle covered by cell ``index`` (row-major)."""
        self._check_index(index)
        col = index % self.nx
        row = index // self.nx
        return Rect(
            col * self.cell_width,
            row * self.cell_height,
            self.cell_width,
            self.cell_height,
        )

    def cell_of_point(self, px: float, py: float) -> int:
        """Index of the cell containing point ``(px, py)``.

        Points on the die boundary are clamped into the outermost cells.
        """
        if not (0.0 <= px <= self.width and 0.0 <= py <= self.height):
            raise FloorplanError(
                f"point ({px}, {py}) outside die {self.width} x {self.height}"
            )
        col = min(int(px / self.cell_width), self.nx - 1)
        row = min(int(py / self.cell_height), self.ny - 1)
        return row * self.nx + col

    def cell_centers(self) -> np.ndarray:
        """``(n_cells, 2)`` array of cell centre coordinates, row-major."""
        xs = (np.arange(self.nx) + 0.5) * self.cell_width
        ys = (np.arange(self.ny) + 0.5) * self.cell_height
        grid_x, grid_y = np.meshgrid(xs, ys)
        return np.column_stack([grid_x.ravel(), grid_y.ravel()])

    def pairwise_center_distances(self) -> np.ndarray:
        """``(n_cells, n_cells)`` matrix of centre-to-centre distances."""
        centers = self.cell_centers()
        deltas = centers[:, None, :] - centers[None, :, :]
        return np.sqrt(np.sum(deltas**2, axis=-1))

    def overlap_fractions(self, rect: Rect) -> np.ndarray:
        """Fraction of ``rect``'s area falling in each grid cell.

        The result has one entry per cell (row-major) and sums to 1 when the
        rectangle is entirely on the die. Only the cells actually straddled
        by the rectangle are visited, so this is cheap even for fine grids.

        The per-axis clipped-interval evaluation performs the same float
        operations as :meth:`Rect.overlap_area` per straddled cell, so the
        result is bit-identical to :meth:`_overlap_fractions_reference`.
        """
        # Imported here: repro.kernels pulls in repro.core, which imports
        # this module back.
        from repro.kernels.config import fast_paths_enabled

        if not fast_paths_enabled():
            return self._overlap_fractions_reference(rect)
        fractions = np.zeros(self.n_cells)
        col_lo = max(int(rect.x / self.cell_width), 0)
        col_hi = min(int(np.ceil(rect.x2 / self.cell_width)), self.nx)
        row_lo = max(int(rect.y / self.cell_height), 0)
        row_hi = min(int(np.ceil(rect.y2 / self.cell_height)), self.ny)
        if col_hi <= col_lo or row_hi <= row_lo:
            return fractions
        cell_x = np.arange(col_lo, col_hi) * self.cell_width
        cell_y = np.arange(row_lo, row_hi) * self.cell_height
        dx = np.minimum(cell_x + self.cell_width, rect.x2) - np.maximum(
            cell_x, rect.x
        )
        dy = np.minimum(cell_y + self.cell_height, rect.y2) - np.maximum(
            cell_y, rect.y
        )
        overlap = np.where(
            (dx[None, :] > 0.0) & (dy[:, None] > 0.0), dx[None, :] * dy[:, None], 0.0
        )
        window = fractions.reshape(self.ny, self.nx)[row_lo:row_hi, col_lo:col_hi]
        window[:] = overlap / rect.area
        return fractions

    def _overlap_fractions_reference(self, rect: Rect) -> np.ndarray:
        """Loop-per-cell reference implementation of :meth:`overlap_fractions`.

        Kept for the kernel equivalence tests; :meth:`overlap_fractions`
        must reproduce this bit for bit.
        """
        fractions = np.zeros(self.n_cells)
        col_lo = max(int(rect.x / self.cell_width), 0)
        col_hi = min(int(np.ceil(rect.x2 / self.cell_width)), self.nx)
        row_lo = max(int(rect.y / self.cell_height), 0)
        row_hi = min(int(np.ceil(rect.y2 / self.cell_height)), self.ny)
        for row in range(row_lo, row_hi):
            for col in range(col_lo, col_hi):
                index = row * self.nx + col
                overlap = self.cell_rect(index).overlap_area(rect)
                if overlap > 0.0:
                    fractions[index] = overlap / rect.area
        return fractions

    def field_to_image(self, values: np.ndarray) -> np.ndarray:
        """Reshape a flat per-cell vector into an ``(ny, nx)`` image."""
        values = np.asarray(values)
        if values.shape != (self.n_cells,):
            raise ConfigurationError(
                f"expected {self.n_cells} cell values, got shape {values.shape}"
            )
        return values.reshape(self.ny, self.nx)

    def _check_index(self, index: int) -> None:
        if not 0 <= index < self.n_cells:
            raise FloorplanError(
                f"cell index {index} out of range for {self.nx}x{self.ny} grid"
            )
