"""Command-line interface: ``python -m repro <command> ...``.

Commands
--------
``info``        design summary: blocks, devices, thermal profile
``lifetime``    ppm lifetime by any method (st_fast/st_mc/hybrid/guard/...)
``curve``       reliability curve over a time range
``thermal``     block temperatures from the power model
``sensitivity`` lifetime elasticities (tornado)
``scenario``    piecewise stress scenarios (``run``: lifetime under a
                phase schedule x mechanism set, see docs/scenarios.md)
``report``      one-page design report (thermal map, lifetimes, budget)
``batch``       sweep benchmarks x temperatures x methods into one report
``bench``       performance benchmarks (``kernels``: fast paths vs reference)
``cache``       result-cache maintenance (``stats``/``clear``)
``serve``       HTTP reliability service (async job queue, see docs/service.md)
``fleet``       distributed runs over ``serve`` workers (``run``/``status``,
                see docs/fleet.md)
``trace``       trace tooling (``show``: render a trace tree from a file/URL)

Designs come from ``--design C1..C6`` (the paper's benchmarks), a JSON
setup file (``--setup``, see :mod:`repro.io.design_json`) or a HotSpot
floorplan (``--flp``, optionally with ``--ptrace``). Add ``--json`` for
machine-readable output.

Execution: ``--jobs N`` (or ``REPRO_JOBS``) parallelises the sampled
engines across N worker processes; ``REPRO_EXEC_BACKEND`` picks
``serial``/``thread``/``process`` explicitly.  Results are bit-identical
for every backend and worker count (see ``docs/execution.md``).

Observability (every command): ``--log-level``/``--log-json`` configure the
structured diagnostic logger (stderr, stdout output stays clean), and
``--trace FILE`` enables the :mod:`repro.obs` span/metric collection and
writes the span tree + counters as JSON when the command finishes.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Any

from repro import __version__, obs, payloads
from repro.chip.benchmarks import BENCHMARK_DEVICE_COUNTS, make_benchmark
from repro.core.analyzer import METHODS, AnalysisConfig, ReliabilityAnalyzer
from repro.errors import ReproError
from repro.exec.backends import resolve_backend
from repro.kernels.bench import DEFAULT_BENCH_PATH
from repro.kernels.config import PRECISIONS, set_precision
from repro.units import hours_to_years


def _positive_int(raw: str) -> int:
    try:
        value = int(raw)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a positive integer, got {raw!r}"
        ) from None
    if value < 1:
        raise argparse.ArgumentTypeError(
            f"expected a positive integer, got {raw!r}"
        )
    return value


def _add_obs_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--json", action="store_true", help="JSON output")
    parser.add_argument(
        "--log-level",
        default=None,
        metavar="LEVEL",
        help="diagnostic log level (DEBUG/INFO/WARNING/ERROR), on stderr",
    )
    parser.add_argument(
        "--log-json",
        action="store_true",
        help="emit diagnostics as line-delimited JSON",
    )
    parser.add_argument(
        "--trace",
        metavar="FILE",
        default=None,
        help="collect spans/metrics and write them as JSON to FILE",
    )


def _add_jobs_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs",
        type=_positive_int,
        default=None,
        metavar="N",
        help="worker processes for the sampled engines "
        "(default: REPRO_JOBS, else serial; results are identical "
        "for any worker count)",
    )


def _add_design_arguments(parser: argparse.ArgumentParser) -> None:
    source = parser.add_mutually_exclusive_group(required=True)
    source.add_argument(
        "--design",
        choices=sorted(BENCHMARK_DEVICE_COUNTS),
        help="one of the paper's benchmark designs",
    )
    source.add_argument(
        "--setup", metavar="FILE", help="JSON analysis setup file"
    )
    source.add_argument(
        "--flp", metavar="FILE", help="HotSpot floorplan file"
    )
    parser.add_argument(
        "--ptrace",
        metavar="FILE",
        help="HotSpot power trace applied to the --flp floorplan",
    )
    parser.add_argument(
        "--grid", type=int, default=25, help="correlation grid size (default 25)"
    )
    parser.add_argument(
        "--rho", type=float, default=0.5, help="correlation distance (default 0.5)"
    )
    parser.add_argument(
        "--vdd", type=float, default=None, help="supply voltage override"
    )
    _add_obs_arguments(parser)


def _build_analyzer(args: argparse.Namespace) -> ReliabilityAnalyzer:
    jobs = getattr(args, "jobs", None)
    if args.setup:
        import dataclasses

        from repro.io.design_json import load_setup

        floorplan, budget, obd_model, config = load_setup(args.setup)
        if args.vdd is not None:
            config = dataclasses.replace(config, vdd=args.vdd)
        if jobs is not None:
            config = dataclasses.replace(config, exec_jobs=jobs)
        return ReliabilityAnalyzer(
            floorplan, budget=budget, obd_model=obd_model, config=config
        )
    if args.flp:
        from repro.io.hotspot_files import apply_ptrace_sample, read_flp, read_ptrace

        floorplan = read_flp(args.flp)
        if args.ptrace:
            names, powers = read_ptrace(args.ptrace)
            floorplan = apply_ptrace_sample(floorplan, names, powers)
    else:
        floorplan = make_benchmark(args.design)
    config = AnalysisConfig(
        grid_size=args.grid, rho_dist=args.rho, vdd=args.vdd, exec_jobs=jobs
    )
    return ReliabilityAnalyzer(floorplan, config=config)


def _load_scenario_file(path: str) -> Any:
    """Parse and validate a scenario JSON document from disk."""
    from repro.errors import ConfigurationError
    from repro.scenario import Scenario

    try:
        with open(path, encoding="utf-8") as handle:
            document = json.load(handle)
    except OSError as exc:
        raise ConfigurationError(
            f"cannot read scenario file {path!r}: {exc}"
        ) from exc
    except json.JSONDecodeError as exc:
        raise ConfigurationError(
            f"scenario file {path!r} is not valid JSON: {exc}"
        ) from exc
    return Scenario.from_dict(document)


def _emit(args: argparse.Namespace, payload: dict[str, Any], text: str) -> None:
    # Every JSON envelope carries version/schema_version provenance; the
    # shared builders stamp their own payloads, setdefault covers the rest.
    if args.json:
        print(payloads.dump_payload(payloads.stamp_envelope(payload)))
    else:
        print(text)


def _cmd_info(args: argparse.Namespace) -> int:
    analyzer = _build_analyzer(args)
    summary = analyzer.summary()
    lines = [
        f"blocks : {summary['design']['blocks']}",
        f"devices: {summary['design']['devices']:,}",
        f"oxide area (normalized): {summary['design']['total_oxide_area']:.3e}",
        f"PCA factors: {summary['variation']['pca_factors']}",
        "block temperatures (degC):",
    ]
    for name, temp in sorted(
        summary["temperatures_c"].items(), key=lambda kv: -kv[1]
    ):
        lines.append(f"  {name:>16} {temp:7.1f}")
    _emit(args, summary, "\n".join(lines))
    return 0


def _cmd_lifetime(args: argparse.Namespace) -> int:
    analyzer = _build_analyzer(args)
    payload = payloads.lifetime_payload(
        analyzer,
        args.ppm,
        args.method,
        mc_chips=args.mc_chips,
        seed=args.seed,
    )
    text = "\n".join(
        f"{m:>14}: {v:.4e} h = {hours_to_years(v):8.1f} years"
        for m, v in payload["lifetime_hours"].items()
    )
    _emit(args, payload, text)
    return 0


def _cmd_scenario_run(args: argparse.Namespace) -> int:
    scenario = _load_scenario_file(args.scenario)
    analyzer = _build_analyzer(args)
    payload = payloads.scenario_payload(analyzer, scenario, args.ppm)
    hours = payload["lifetime_hours"]["st_fast"]
    lines = [
        f"scenario lifetime: {hours:.4e} h = "
        f"{hours_to_years(hours):8.1f} years",
        "mechanism damage shares:",
    ]
    for name, share in payload["scenario"]["mechanism_damage"].items():
        lines.append(f"  {name:>8} {share:7.2%}")
    lines.append("phase damage shares:")
    for name, share in payload["scenario"]["phase_damage"].items():
        lines.append(f"  {name:>16} {share:7.2%}")
    _emit(args, payload, "\n".join(lines))
    return 0


def _cmd_curve(args: argparse.Namespace) -> int:
    analyzer = _build_analyzer(args)
    payload = payloads.curve_payload(
        analyzer,
        args.method[0],
        t_min=args.t_min,
        t_max=args.t_max,
        points=args.points,
    )
    text = "\n".join(
        f"{t:.4e} h   R = {r:.8f}   1-R = {1.0 - r:.3e}"
        for t, r in zip(
            payload["times_hours"], payload["reliability"], strict=True
        )
    )
    _emit(args, payload, text)
    return 0


def _cmd_thermal(args: argparse.Namespace) -> int:
    analyzer = _build_analyzer(args)
    temps = dict(
        zip(
            analyzer.floorplan.block_names,
            (float(t) for t in analyzer.block_temperatures),
            strict=True,
        )
    )
    payload = {
        "block_temperatures_c": temps,
        "spread_c": max(temps.values()) - min(temps.values()),
    }
    text = "\n".join(
        f"{name:>16} {temp:7.1f} degC"
        for name, temp in sorted(temps.items(), key=lambda kv: -kv[1])
    )
    _emit(args, payload, text)
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    # The report always carries a stage-timing appendix, so the builder
    # switches observability on for its duration unless --trace already did.
    payload = payloads.report_payload(lambda: _build_analyzer(args))
    _emit(args, payload, payload["report"])
    return 0


def _cmd_batch(args: argparse.Namespace) -> int:
    # Imported here: batch pulls in the full analyzer stack.
    from repro.exec.batch import SweepSpec, batch_table, run_batch
    from repro.exec.cache import ResultCache

    scenario = None
    if args.scenario:
        scenario = _load_scenario_file(args.scenario).as_dict()
    spec = SweepSpec(
        designs=tuple(args.design),
        methods=tuple(args.method),
        temperatures_c=tuple(args.temps or ()),
        ppm=args.ppm,
        grid_size=args.grid,
        mc_chips=args.mc_chips,
        seed=args.seed,
        scenario=scenario,
    )
    backend = resolve_backend(jobs=args.jobs)
    cache = ResultCache(args.cache_dir) if args.cache_dir else None
    report = run_batch(
        spec,
        backend=backend,
        cache=cache,
        use_cache=not args.no_cache,
        fuse=not args.no_fuse,
    )
    _emit(args, report, batch_table(report))
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.exec.cache import ResultCache
    from repro.kernels.artifacts import ArtifactCache

    cache = ResultCache(args.cache_dir) if args.cache_dir else ResultCache()
    if args.cache_command == "stats":
        # Top-level keys stay the local tier's (backwards compatible);
        # the per-tier breakdown rides along under "tiers".  An explicit
        # --cache-dir relocates every tier (shared and artifacts nest
        # under it, the same layout the default roots use).
        if args.cache_dir:
            shared = ResultCache(
                Path(args.cache_dir) / "shared", tier="shared"
            )
            artifacts = ArtifactCache(Path(args.cache_dir) / "artifacts")
        else:
            shared = ResultCache(tier="shared")
            artifacts = ArtifactCache()
        payload = cache.stats().as_dict()
        payload["tiers"] = {
            "local": dict(payload),
            "shared": shared.stats().as_dict(),
            "artifacts": artifacts.stats().as_dict(),
        }
        payload["tiers"]["artifacts"]["tier"] = "artifacts"
        # The hit/miss counters describe the current process, which for
        # a fresh CLI invocation has performed no lookups — they stay in
        # the JSON for long-lived callers but would always print 0 here.
        lines = []
        for tier_stats in payload["tiers"].values():
            lines += [
                f"[{tier_stats['tier']}] root : {tier_stats['root']}",
                f"  entries    : {tier_stats['entries']}",
                f"  total bytes: {tier_stats['total_bytes']:,}",
            ]
        _emit(args, payload, "\n".join(lines))
    else:  # clear
        if args.artifacts:
            artifacts = (
                ArtifactCache(Path(args.cache_dir) / "artifacts")
                if args.cache_dir
                else ArtifactCache()
            )
            removed = artifacts.clear()
            root = artifacts.root
        else:
            removed = cache.clear()
            root = cache.root
        _emit(
            args,
            {"root": str(root), "removed": removed},
            f"removed {removed} cache entr"
            f"{'y' if removed == 1 else 'ies'} from {root}",
        )
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    # Imported here: the benchmark harness pulls in the full stack.
    from repro.kernels.bench import (
        format_kernel_report,
        run_kernel_benchmarks,
        write_bench_json,
    )

    results = run_kernel_benchmarks(args.scale)
    text = format_kernel_report(results)
    if not args.no_save:
        path = write_bench_json(results, args.output)
        text += f"\nwrote {path}"
    _emit(args, results, text)
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    # Imported here: the service stack is not needed by any other command.
    import signal
    import threading

    from repro.exec.cache import ResultCache
    from repro.service import (
        AdmissionController,
        JobManager,
        ReliabilityService,
        make_server,
    )

    # The service exports live /metrics, so observability is always on
    # for its lifetime (per-request overhead is negligible next to a solve).
    obs.enable()
    cache = None
    if not args.no_cache:
        cache = ResultCache(args.cache_dir) if args.cache_dir else ResultCache()
    manager = JobManager(
        workers=args.jobs or 2,
        max_queue=args.max_queue,
        cache=cache,
        checkpoint_dir=args.checkpoint_dir,
        job_timeout_s=args.job_timeout,
        flight_slow_s=(
            args.flight_slow_threshold
            if args.flight_slow_threshold > 0
            else None
        ),
    )
    admission = (
        AdmissionController(rate=args.rate, burst=args.burst)
        if args.rate > 0
        else None
    )
    server = make_server(
        args.host, args.port, ReliabilityService(manager, admission)
    )
    manager.start()

    def _stop(signum: int, frame: Any) -> None:
        # serve_forever() must be stopped from another thread, and the
        # handler must not block; drain happens after the loop exits.
        threading.Thread(target=server.shutdown, daemon=True).start()

    signal.signal(signal.SIGTERM, _stop)
    signal.signal(signal.SIGINT, _stop)
    host, port = server.server_address[:2]
    # Machine-parseable banner: the smoke harness reads the bound port
    # from this line when --port 0 picked an ephemeral one.
    print(f"serving on http://{host}:{port}", flush=True)
    try:
        server.serve_forever()
    finally:
        drained = manager.shutdown(drain_timeout=args.drain_timeout)
        server.server_close()
        print(
            "shutdown complete"
            + ("" if drained else " (cancelled unfinished jobs)"),
            flush=True,
        )
    return 0


def _cmd_fleet(args: argparse.Namespace) -> int:
    # Imported here: the fleet stack is not needed by any other command.
    from repro.exec.cache import ResultCache
    from repro.fleet import FleetCoordinator
    from repro.service.requests import JobRequest

    shared_cache: Any
    if getattr(args, "no_cache", False):
        shared_cache = False
    elif getattr(args, "shared_cache_dir", None):
        shared_cache = ResultCache(args.shared_cache_dir, tier="shared")
    else:
        shared_cache = None
    coordinator = FleetCoordinator(
        args.workers,
        group_size=getattr(args, "group_size", 4),
        shared_cache=shared_cache,
        checkpoint_path=getattr(args, "checkpoint", None),
    )
    if args.fleet_command == "status":
        report = coordinator.status()
        lines = []
        for worker in report:
            if worker["ready"]:
                info = worker["info"]
                lines.append(
                    f"ready {worker['url']} "
                    f"(queue={info.get('queue_depth')}, "
                    f"running={info.get('running')})"
                )
            else:
                lines.append(f"down  {worker['url']}")
        _emit(args, {"workers": report}, "\n".join(lines))
        return 0 if all(worker["ready"] for worker in report) else 1

    setup = None
    if args.setup:
        with open(args.setup, encoding="utf-8") as handle:
            setup = json.load(handle)
    document = {
        "kind": "lifetime",
        "design": args.design,
        "setup": setup,
        "grid": args.grid,
        "rho": args.rho,
        "vdd": args.vdd,
        "ppm": args.ppm,
        "methods": args.method,
        "mc_chips": args.mc_chips,
        "seed": args.seed,
    }
    if getattr(args, "scenario", None):
        # Scenario jobs evaluate st_fast only; the coordinator runs them
        # locally (no MC shards to distribute), byte-identical to
        # `repro scenario run --json`.
        document["kind"] = "scenario"
        document["scenario"] = _load_scenario_file(args.scenario).as_dict()
        document["methods"] = ["st_fast"]
    request = JobRequest.from_dict(
        {key: value for key, value in document.items() if value is not None}
    )
    payload = coordinator.run(request)
    stats = coordinator.last_run_stats
    if args.stats_file:
        with open(args.stats_file, "w", encoding="utf-8") as handle:
            json.dump(stats, handle, indent=2)
    if stats:
        # Stderr, so --json stdout stays byte-identical to the serial CLI.
        print(
            f"fleet: {stats['shards']} shards in {stats['groups']} groups "
            f"across {stats['workers']} worker(s); "
            f"{stats['shared_cache_hits']} group(s) from shared cache, "
            f"{stats['groups_reassigned']} reassigned, "
            f"{stats['workers_lost']} worker(s) lost, "
            f"{stats['wall_s']:.2f}s wall",
            file=sys.stderr,
        )
    text = "\n".join(
        f"{m:>14}: {v:.4e} h = {hours_to_years(v):8.1f} years"
        for m, v in payload["lifetime_hours"].items()
    )
    _emit(args, payload, text)
    return 0


def _trace_roots(document: Any) -> list[dict[str, Any]]:
    """Root span dicts from any of the trace document shapes we emit.

    Accepts the CLI ``--trace FILE`` document (``{"trace": [roots...]}``),
    the ``GET /v1/jobs/{id}/trace`` envelope (``{"trace": {root}}``), a
    bare root node, or a bare list of roots.
    """
    from repro.errors import ConfigurationError

    if isinstance(document, dict):
        inner = document.get("trace", document)
        if isinstance(inner, list):
            return inner
        if isinstance(inner, dict) and "name" in inner:
            return [inner]
    elif isinstance(document, list):
        return document
    raise ConfigurationError(
        "unrecognised trace document; expected the CLI --trace output, "
        "a /v1/jobs/{id}/trace response, or a span-node JSON object"
    )


def _cmd_trace_show(args: argparse.Namespace) -> int:
    from repro.errors import ConfigurationError

    source: str = args.source
    try:
        if source.startswith(("http://", "https://")):
            from urllib.request import urlopen

            with urlopen(source, timeout=10.0) as response:
                document = json.load(response)
        else:
            with open(source, encoding="utf-8") as handle:
                document = json.load(handle)
    except OSError as exc:
        raise ConfigurationError(f"cannot read trace {source!r}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise ConfigurationError(
            f"trace {source!r} is not valid JSON: {exc}"
        ) from exc
    roots = _trace_roots(document)
    rendered = obs.render_trace(
        roots, max_depth=args.depth, show_attrs=not args.no_attrs
    )
    _emit(args, {"trace": roots}, rendered)
    return 0


def _cmd_sensitivity(args: argparse.Namespace) -> int:
    from repro.core.sensitivity import lifetime_sensitivities, tornado_text

    analyzer = _build_analyzer(args)
    results = lifetime_sensitivities(analyzer, ppm=args.ppm)
    payload = {
        "ppm": args.ppm,
        "elasticities": {r.parameter: r.elasticity for r in results},
    }
    _emit(args, payload, tornado_text(results))
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Process variation and temperature-aware full-chip "
        "OBD reliability analysis",
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}"
    )
    parser.add_argument(
        "--precision",
        choices=PRECISIONS,
        default=None,
        help="numerical precision tier for the batched kernels: float64 "
        "(default, bit-exact reference) or fast32 (float32 compute, "
        "float64 results; see docs/performance.md for accuracy bounds). "
        "Overrides REPRO_PRECISION.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_info = sub.add_parser("info", help="design and thermal summary")
    _add_design_arguments(p_info)
    p_info.set_defaults(func=_cmd_info)

    p_life = sub.add_parser("lifetime", help="ppm lifetime by method")
    _add_design_arguments(p_life)
    p_life.add_argument("--ppm", type=float, default=10.0)
    p_life.add_argument(
        "--method",
        nargs="+",
        choices=METHODS,
        default=["st_fast"],
    )
    p_life.add_argument("--mc-chips", type=int, default=500)
    p_life.add_argument("--seed", type=int, default=0)
    _add_jobs_argument(p_life)
    p_life.set_defaults(func=_cmd_lifetime)

    p_curve = sub.add_parser("curve", help="reliability curve over time")
    _add_design_arguments(p_curve)
    p_curve.add_argument("--t-min", type=float, required=True)
    p_curve.add_argument("--t-max", type=float, required=True)
    p_curve.add_argument("--points", type=int, default=20)
    p_curve.add_argument(
        "--method", nargs=1, choices=METHODS, default=["st_fast"]
    )
    _add_jobs_argument(p_curve)
    p_curve.set_defaults(func=_cmd_curve)

    p_scenario = sub.add_parser(
        "scenario",
        help="piecewise stress scenarios (see docs/scenarios.md)",
    )
    scenario_sub = p_scenario.add_subparsers(
        dest="scenario_command", required=True
    )
    p_scenario_run = scenario_sub.add_parser(
        "run",
        help="lifetime under a phase schedule with a mechanism set",
    )
    _add_design_arguments(p_scenario_run)
    p_scenario_run.add_argument(
        "--scenario",
        metavar="FILE",
        required=True,
        help="scenario JSON document: phases, mechanisms, composition",
    )
    p_scenario_run.add_argument("--ppm", type=float, default=10.0)
    _add_jobs_argument(p_scenario_run)
    p_scenario_run.set_defaults(func=_cmd_scenario_run)

    p_thermal = sub.add_parser("thermal", help="block temperatures")
    _add_design_arguments(p_thermal)
    p_thermal.set_defaults(func=_cmd_thermal)

    p_sens = sub.add_parser("sensitivity", help="lifetime elasticities")
    _add_design_arguments(p_sens)
    p_sens.add_argument("--ppm", type=float, default=10.0)
    p_sens.set_defaults(func=_cmd_sensitivity)

    p_report = sub.add_parser("report", help="one-page design report")
    _add_design_arguments(p_report)
    _add_jobs_argument(p_report)
    p_report.set_defaults(func=_cmd_report)

    p_batch = sub.add_parser(
        "batch", help="sweep benchmarks x temperatures x methods"
    )
    p_batch.add_argument(
        "--design",
        nargs="+",
        choices=sorted(BENCHMARK_DEVICE_COUNTS),
        required=True,
        help="benchmark designs to sweep",
    )
    p_batch.add_argument(
        "--method",
        nargs="+",
        choices=METHODS,
        default=["st_fast"],
        help="evaluation methods per cell",
    )
    p_batch.add_argument(
        "--temps",
        nargs="*",
        type=float,
        default=None,
        metavar="DEGC",
        help="uniform temperatures to sweep (default: each design's own "
        "thermal profile)",
    )
    p_batch.add_argument("--ppm", type=float, default=10.0)
    p_batch.add_argument(
        "--scenario",
        metavar="FILE",
        default=None,
        help="evaluate every cell under this scenario JSON document "
        "instead of the steady operating point (st_fast cells only)",
    )
    p_batch.add_argument(
        "--grid", type=int, default=25, help="correlation grid size"
    )
    p_batch.add_argument("--mc-chips", type=int, default=500)
    p_batch.add_argument("--seed", type=int, default=0)
    p_batch.add_argument(
        "--no-cache",
        action="store_true",
        help="recompute every cell, bypassing the result cache",
    )
    p_batch.add_argument(
        "--no-fuse",
        action="store_true",
        help="evaluate each temperature cell separately instead of fusing "
        "the st_fast/temp_unaware temperature axis into one kernel "
        "dispatch per design (results are bit-identical either way)",
    )
    p_batch.add_argument(
        "--cache-dir",
        metavar="DIR",
        default=None,
        help="result cache location (default: REPRO_CACHE_DIR or "
        "~/.cache/repro)",
    )
    _add_jobs_argument(p_batch)
    _add_obs_arguments(p_batch)
    p_batch.set_defaults(func=_cmd_batch)

    p_bench = sub.add_parser("bench", help="performance benchmarks")
    bench_sub = p_bench.add_subparsers(dest="bench_command", required=True)
    p_kernels = bench_sub.add_parser(
        "kernels",
        help="time the repro.kernels fast paths against the reference "
        "implementations",
    )
    p_kernels.add_argument(
        "--scale",
        choices=("quick", "full"),
        default="quick",
        help="workload size (default quick, ~1 min)",
    )
    p_kernels.add_argument(
        "--output",
        metavar="FILE",
        default=DEFAULT_BENCH_PATH,
        help=f"benchmark report destination (default {DEFAULT_BENCH_PATH})",
    )
    p_kernels.add_argument(
        "--no-save",
        action="store_true",
        help="print the report without writing the JSON file",
    )
    _add_obs_arguments(p_kernels)
    p_kernels.set_defaults(func=_cmd_bench)

    p_serve = sub.add_parser(
        "serve", help="HTTP reliability service (see docs/service.md)"
    )
    p_serve.add_argument(
        "--host", default="127.0.0.1", help="bind address (default 127.0.0.1)"
    )
    p_serve.add_argument(
        "--port",
        type=int,
        default=8080,
        help="bind port; 0 picks an ephemeral port (default 8080)",
    )
    p_serve.add_argument(
        "--max-queue",
        type=_positive_int,
        default=16,
        metavar="N",
        help="jobs allowed to wait before submissions get 429 (default 16)",
    )
    p_serve.add_argument(
        "--rate",
        type=float,
        default=2.0,
        metavar="R",
        help="per-client submissions per second; 0 disables rate limiting "
        "(default 2)",
    )
    p_serve.add_argument(
        "--burst",
        type=_positive_int,
        default=5,
        metavar="N",
        help="per-client burst allowance (default 5)",
    )
    p_serve.add_argument(
        "--job-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-job wall-clock budget (default: unlimited)",
    )
    p_serve.add_argument(
        "--drain-timeout",
        type=float,
        default=30.0,
        metavar="SECONDS",
        help="seconds to let jobs finish on shutdown before cancelling "
        "them (default 30)",
    )
    p_serve.add_argument(
        "--checkpoint-dir",
        metavar="DIR",
        default=None,
        help="directory for Monte-Carlo job checkpoints (enables progress "
        "reporting and resume across restarts)",
    )
    p_serve.add_argument(
        "--flight-slow-threshold",
        type=float,
        default=30.0,
        metavar="SECONDS",
        help="dump a job's flight-recorder timeline when it takes longer "
        "than this (0 disables the slow-job criterion; default 30)",
    )
    p_serve.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the result cache (identical submissions recompute)",
    )
    p_serve.add_argument(
        "--cache-dir",
        metavar="DIR",
        default=None,
        help="result cache location (default: REPRO_CACHE_DIR or "
        "~/.cache/repro)",
    )
    _add_jobs_argument(p_serve)
    p_serve.set_defaults(func=_cmd_serve, json=False)

    p_fleet = sub.add_parser(
        "fleet",
        help="distributed coordinator over repro serve workers",
    )
    fleet_sub = p_fleet.add_subparsers(dest="fleet_command", required=True)
    p_fleet_run = fleet_sub.add_parser(
        "run",
        help="run a lifetime analysis across the fleet "
        "(byte-identical to the serial CLI)",
    )
    fleet_source = p_fleet_run.add_mutually_exclusive_group(required=True)
    fleet_source.add_argument(
        "--design",
        choices=sorted(BENCHMARK_DEVICE_COUNTS),
        help="one of the paper's benchmark designs",
    )
    fleet_source.add_argument(
        "--setup", metavar="FILE", help="JSON analysis setup file"
    )
    p_fleet_run.add_argument("--grid", type=int, default=25)
    p_fleet_run.add_argument("--rho", type=float, default=0.5)
    p_fleet_run.add_argument("--vdd", type=float, default=None)
    p_fleet_run.add_argument("--ppm", type=float, default=10.0)
    p_fleet_run.add_argument(
        "--method", nargs="+", choices=METHODS, default=["mc"]
    )
    p_fleet_run.add_argument("--mc-chips", type=int, default=500)
    p_fleet_run.add_argument("--seed", type=int, default=0)
    p_fleet_run.add_argument(
        "--scenario",
        metavar="FILE",
        default=None,
        help="run a scenario job (phase schedule JSON) instead of a "
        "lifetime analysis; implies --method st_fast",
    )
    p_fleet_run.add_argument(
        "--workers",
        nargs="+",
        required=True,
        metavar="URL",
        help="worker base URLs (http://host:port of repro serve processes)",
    )
    p_fleet_run.add_argument(
        "--group-size",
        type=_positive_int,
        default=4,
        metavar="N",
        help="shard indices per dispatched worker job (default 4)",
    )
    p_fleet_run.add_argument(
        "--checkpoint",
        metavar="FILE",
        default=None,
        help="accumulate finished shards here for crash resume",
    )
    p_fleet_run.add_argument(
        "--shared-cache-dir",
        metavar="DIR",
        default=None,
        help="shared result-cache tier location (default: "
        "REPRO_SHARED_CACHE_DIR, else <local cache>/shared)",
    )
    p_fleet_run.add_argument(
        "--no-cache",
        action="store_true",
        help="skip the shared result-cache tier entirely",
    )
    p_fleet_run.add_argument(
        "--stats-file",
        metavar="FILE",
        default=None,
        help="write dispatch statistics (reassignments, cache hits, "
        "wall time) as JSON",
    )
    _add_obs_arguments(p_fleet_run)
    p_fleet_run.set_defaults(func=_cmd_fleet)

    p_fleet_status = fleet_sub.add_parser(
        "status", help="probe each worker's /readyz"
    )
    p_fleet_status.add_argument(
        "--workers", nargs="+", required=True, metavar="URL"
    )
    _add_obs_arguments(p_fleet_status)
    p_fleet_status.set_defaults(func=_cmd_fleet)

    p_trace = sub.add_parser(
        "trace", help="trace tooling (render recorded span trees)"
    )
    trace_sub = p_trace.add_subparsers(dest="trace_command", required=True)
    p_trace_show = trace_sub.add_parser(
        "show",
        help="render a trace tree from a --trace file, a saved "
        "/v1/jobs/{id}/trace response, or a live service URL",
    )
    p_trace_show.add_argument(
        "source",
        metavar="FILE_OR_URL",
        help="trace JSON file, or an http(s) URL returning one "
        "(e.g. http://127.0.0.1:8080/v1/jobs/<id>/trace)",
    )
    p_trace_show.add_argument(
        "--depth",
        type=_positive_int,
        default=None,
        metavar="N",
        help="prune the rendered tree below N levels (default: unlimited)",
    )
    p_trace_show.add_argument(
        "--no-attrs",
        action="store_true",
        help="hide span attributes (show names and wall times only)",
    )
    _add_obs_arguments(p_trace_show)
    p_trace_show.set_defaults(func=_cmd_trace_show)

    p_cache = sub.add_parser("cache", help="result-cache maintenance")
    cache_sub = p_cache.add_subparsers(dest="cache_command", required=True)
    for name, help_text in (
        ("stats", "entry count and size of the result and artifact caches"),
        ("clear", "delete every result-cache entry"),
    ):
        p_sub = cache_sub.add_parser(name, help=help_text)
        p_sub.add_argument(
            "--cache-dir",
            metavar="DIR",
            default=None,
            help="cache location (default: REPRO_CACHE_DIR or ~/.cache/repro)",
        )
        if name == "clear":
            p_sub.add_argument(
                "--artifacts",
                action="store_true",
                help="clear the kernels artifact cache (memoized "
                "characterizations) instead of the result cache",
            )
        _add_obs_arguments(p_sub)
        p_sub.set_defaults(func=_cmd_cache)

    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.precision is not None:
        set_precision(args.precision)
    log_level = getattr(args, "log_level", None)
    log_json = getattr(args, "log_json", False)
    if log_level is not None or log_json:
        try:
            obs.configure_logging(
                level=log_level if log_level is not None else "INFO",
                json_output=log_json,
            )
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    trace_file = getattr(args, "trace", None)
    if trace_file:
        try:
            # Fail before the (possibly long) analysis, not after it.
            with open(trace_file, "w", encoding="utf-8"):
                pass
        except OSError as exc:
            print(f"error: cannot write trace file: {exc}", file=sys.stderr)
            return 2
        obs.reset()
        obs.enable()
    try:
        return args.func(args)
    except ReproError as exc:
        # The short message is user-facing (stderr); the traceback is a
        # diagnostic, visible with --log-level DEBUG.
        obs.get_logger("cli").debug("command failed", exc_info=True)
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # Downstream closed early (`repro ... | head`); the convention
        # is a silent exit, not a traceback.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0
    finally:
        if trace_file:
            snapshot = obs.observability_snapshot()
            obs.disable()
            obs.reset()
            with open(trace_file, "w", encoding="utf-8") as handle:
                json.dump(snapshot, handle, indent=2)
                handle.write("\n")


if __name__ == "__main__":
    sys.exit(main())
