"""Core OBD reliability analysis: BLOD projection and ensemble analyzers."""
