"""Top-level facade: full-chip OBD reliability analysis of a design.

:class:`ReliabilityAnalyzer` wires the whole flow of Fig. 9 together:

1. thermal profile (HotSpotLite, unless block temperatures are given),
2. spatial-correlation grid + PCA canonical thickness model,
3. closed-form BLOD characterisation per block (eq. (22)/(24)),
4. one of the evaluation methods:

   - ``st_fast``   — marginal-product statistical analysis (Sec. IV-D),
   - ``st_mc``     — numerical joint PDF from PC samples (Sec. IV-C),
   - ``hybrid``    — table look-up with bilinear interpolation (Sec. IV-E),
   - ``temp_unaware`` — statistical thickness, worst-case temperature,
   - ``guard``     — traditional guard-band corner (eq. (33)-(34)),
   - ``mc``        — Monte-Carlo reference over sample chips.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass
from functools import cached_property

import numpy as np

from repro.chip.floorplan import Floorplan
from repro.core.blod import characterize_blods
from repro.core.ensemble import (
    BlockReliability,
    StFastAnalyzer,
    StMcAnalyzer,
    worst_case_blocks,
)
from repro.core.guardband import GuardBandAnalyzer
from repro.core.hybrid import HybridAnalyzer
from repro.core.lifetime import ppm_to_reliability, solve_lifetime
from repro.core.montecarlo import MonteCarloEngine, ReliabilityCurve
from repro.core.obd_model import OBDModel
from repro.errors import ConfigurationError
from repro.exec.backends import ExecBackend, resolve_backend
from repro.exec.sharding import DEFAULT_SHARD_SIZE
from repro.obs import metrics
from repro.obs.logging import get_logger
from repro.obs.trace import span
from repro.thermal.hotspot import HotSpotLite, uniform_temperature_result
from repro.variation.components import VariationBudget
from repro.variation.correlation import SpatialCorrelationModel
from repro.variation.pca import build_canonical_model
from repro.variation.sampling import ChipSampler

#: Evaluation methods accepted by :meth:`ReliabilityAnalyzer.reliability`.
METHODS = ("st_fast", "st_mc", "hybrid", "temp_unaware", "guard", "mc")

logger = get_logger("core.analyzer")


@dataclass(frozen=True)
class AnalysisConfig:
    """Knobs of the analysis flow (defaults follow the paper's setup).

    Parameters
    ----------
    grid_size:
        Spatial-correlation grid resolution per axis (paper: 25x25).
    rho_dist:
        Correlation distance relative to the chip dimension (paper: 0.5).
    kernel:
        Spatial correlation kernel (paper: exponential decay [38]).
    correlation_model:
        ``"grid"`` (paper default: grid covariance + PCA) or
        ``"quadtree"`` (the [24] alternative; ``rho_dist``/``kernel`` are
        then unused).
    quadtree_levels:
        Tree depth for the quad-tree correlation model.
    pca_energy:
        Variance fraction retained by the PCA truncation.
    max_factors:
        Optional hard cap on spatial principal components.
    l0:
        Integration sub-domains per dimension (paper: 10).
    tail:
        Tail mass excluded per side of each integration bracket.
    integration_rule:
        ``"midpoint"`` (paper) or ``"gauss"``.
    vdd:
        Operating supply voltage; ``None`` uses the OBD model reference.
    st_mc_samples:
        Principal-component draws for the st_mc analyzer.
    st_mc_estimator:
        ``"samples"`` or ``"histogram"`` (see :class:`StMcAnalyzer`).
    seed:
        Seed for the stochastic analyzers (st_mc); MC references take
        their own seeds per call.
    hybrid_n_alpha, hybrid_n_b:
        Look-up table resolution (paper: 100x100).
    mc_device_mode:
        ``"binned"`` or ``"exact"`` device handling for MC references.
    mc_chunk_size:
        Chips per submitted MC task (scheduling granularity — never
        affects results).
    mc_shard_size:
        Chips/samples per seed shard for the MC and st_mc engines.  Part
        of the deterministic stream definition (see
        :mod:`repro.exec.sharding`).
    exec_backend:
        Execution backend name (``serial``/``thread``/``process``);
        ``None`` defers to ``REPRO_EXEC_BACKEND``/``REPRO_JOBS``.
    exec_jobs:
        Worker count for parallel backends; ``None`` defers to
        ``REPRO_JOBS`` (or the CPU count).
    include_residual_fluctuation:
        Keep the residual sampling fluctuation in the BLOD-variance
        surrogate.
    """

    grid_size: int = 25
    rho_dist: float = 0.5
    kernel: str = "exponential"
    correlation_model: str = "grid"
    quadtree_levels: int = 3
    pca_energy: float = 0.9999
    max_factors: int | None = None
    l0: int = 10
    tail: float = 1e-6
    integration_rule: str = "midpoint"
    vdd: float | None = None
    st_mc_samples: int = 20000
    st_mc_estimator: str = "samples"
    seed: int = 2024
    hybrid_n_alpha: int = 100
    hybrid_n_b: int = 100
    mc_device_mode: str = "binned"
    mc_chunk_size: int = 100
    mc_shard_size: int = DEFAULT_SHARD_SIZE
    exec_backend: str | None = None
    exec_jobs: int | None = None
    include_residual_fluctuation: bool = True


class ReliabilityAnalyzer:
    """Process-variation and temperature-aware full-chip OBD analysis.

    Parameters
    ----------
    floorplan:
        The design: temperature-uniform blocks with device populations.
    budget:
        Thickness-variation budget; defaults to the paper's Table II.
    obd_model:
        Device-level OBD model; defaults to the calibrated
        :class:`OBDModel`.
    config:
        Flow configuration; defaults to the paper's setup.
    block_temperatures:
        Optional explicit per-block temperatures (celsius, floorplan
        order). When omitted, a thermal analysis is run on the floorplan's
        block powers; if the floorplan carries no power at all, every
        block is placed at the OBD model's reference temperature.
    thermal_model:
        Thermal analyzer used when temperatures are not given.
    mean_offsets:
        Optional per-grid-cell deterministic thickness offsets (nm) — a
        wafer-level systematic pattern, typically from
        :meth:`repro.variation.wafer.WaferPattern.grid_offsets`.
    """

    def __init__(
        self,
        floorplan: Floorplan,
        budget: VariationBudget | None = None,
        obd_model: OBDModel | None = None,
        config: AnalysisConfig | None = None,
        block_temperatures: np.ndarray | None = None,
        thermal_model: HotSpotLite | None = None,
        mean_offsets: np.ndarray | None = None,
    ) -> None:
        self.floorplan = floorplan
        self.budget = budget if budget is not None else VariationBudget.table2()
        self.obd_model = obd_model if obd_model is not None else OBDModel()
        self.config = config if config is not None else AnalysisConfig()

        with span(
            "analyzer.setup",
            blocks=floorplan.n_blocks,
            devices=floorplan.n_devices,
        ):
            with span("thermal"):
                if block_temperatures is not None:
                    block_temperatures = np.asarray(
                        block_temperatures, dtype=float
                    )
                    if block_temperatures.shape != (floorplan.n_blocks,):
                        raise ConfigurationError(
                            f"expected {floorplan.n_blocks} block "
                            f"temperatures, got shape "
                            f"{block_temperatures.shape}"
                        )
                    self.thermal = None
                    self.block_temperatures = block_temperatures
                elif floorplan.total_power > 0.0:
                    thermal_model = (
                        thermal_model
                        if thermal_model is not None
                        else HotSpotLite()
                    )
                    self.thermal = thermal_model.analyze(floorplan)
                    self.block_temperatures = self.thermal.block_temperatures
                else:
                    self.thermal = uniform_temperature_result(
                        floorplan, self.obd_model.t_ref
                    )
                    self.block_temperatures = self.thermal.block_temperatures

            cfg = self.config
            self.grid = floorplan.make_grid(cfg.grid_size)
            with span("pca", model=cfg.correlation_model) as pca_span:
                if cfg.correlation_model == "grid":
                    self.correlation = SpatialCorrelationModel(
                        grid=self.grid, rho_dist=cfg.rho_dist, kernel=cfg.kernel
                    )
                    self.canonical = build_canonical_model(
                        self.budget,
                        self.correlation,
                        energy=cfg.pca_energy,
                        max_factors=cfg.max_factors,
                        mean_offsets=mean_offsets,
                    )
                elif cfg.correlation_model == "quadtree":
                    from repro.variation.quadtree import build_quadtree_model

                    self.correlation = None
                    self.canonical = build_quadtree_model(
                        self.budget,
                        self.grid,
                        levels=cfg.quadtree_levels,
                        mean_offsets=mean_offsets,
                    )
                else:
                    raise ConfigurationError(
                        f"unknown correlation model {cfg.correlation_model!r}; "
                        "expected 'grid' or 'quadtree'"
                    )
                metrics.inc("pca.factors", self.canonical.n_factors)
                pca_span.set(factors=self.canonical.n_factors)

            with span("blod", blocks=floorplan.n_blocks):
                self.sampler = ChipSampler(floorplan, self.grid, self.canonical)
                self.blods = characterize_blods(
                    floorplan,
                    self.grid,
                    self.canonical,
                    self.sampler.assignments,
                )
                params = self.obd_model.block_params(
                    self.block_temperatures, cfg.vdd
                )
                self.blocks = [
                    BlockReliability(blod=blod, alpha=p.alpha, b=p.b)
                    for blod, p in zip(self.blods, params, strict=True)
                ]
        logger.debug(
            "prepared analyzer: %d blocks, %d devices, %d PCA factors",
            floorplan.n_blocks,
            floorplan.n_devices,
            self.canonical.n_factors,
        )

    # ------------------------------------------------------------------
    # Lazily constructed per-method analyzers
    # ------------------------------------------------------------------

    @cached_property
    def st_fast(self) -> StFastAnalyzer:
        """The marginal-product statistical analyzer."""
        cfg = self.config
        return StFastAnalyzer(
            self.blocks,
            l0=cfg.l0,
            tail=cfg.tail,
            rule=cfg.integration_rule,
            include_residual_fluctuation=cfg.include_residual_fluctuation,
        )

    @cached_property
    def st_mc(self) -> StMcAnalyzer:
        """The numerical-joint-PDF statistical analyzer."""
        cfg = self.config
        return StMcAnalyzer(
            self.blocks,
            n_samples=cfg.st_mc_samples,
            seed=cfg.seed,
            estimator=cfg.st_mc_estimator,
            bins=cfg.l0,
            backend=self.exec_backend,
            shard_size=cfg.mc_shard_size,
        )

    @cached_property
    def hybrid(self) -> HybridAnalyzer:
        """The table-look-up analyzer."""
        cfg = self.config
        return HybridAnalyzer(
            self.blocks,
            n_alpha=cfg.hybrid_n_alpha,
            n_b=cfg.hybrid_n_b,
            l0=cfg.l0,
            tail=cfg.tail,
            include_residual_fluctuation=cfg.include_residual_fluctuation,
        )

    @cached_property
    def temp_unaware(self) -> StFastAnalyzer:
        """Statistical analysis at a uniform worst-case temperature."""
        cfg = self.config
        return StFastAnalyzer(
            worst_case_blocks(self.blocks),
            l0=cfg.l0,
            tail=cfg.tail,
            rule=cfg.integration_rule,
            include_residual_fluctuation=cfg.include_residual_fluctuation,
        )

    @cached_property
    def guard(self) -> GuardBandAnalyzer:
        """The traditional guard-band baseline."""
        worst_temp = float(np.max(self.block_temperatures))
        params = self.obd_model.device_params(worst_temp, self.config.vdd)
        return GuardBandAnalyzer(
            total_area=self.floorplan.total_oxide_area,
            alpha_worst=params.alpha,
            b_worst=params.b,
            x_min=self.budget.minimum_thickness,
        )

    @cached_property
    def exec_backend(self) -> ExecBackend:
        """The execution backend shared by the sampled engines."""
        cfg = self.config
        return resolve_backend(cfg.exec_backend, cfg.exec_jobs)

    @cached_property
    def mc_engine(self) -> MonteCarloEngine:
        """The Monte-Carlo reference engine."""
        cfg = self.config
        return MonteCarloEngine(
            self.sampler,
            self.blocks,
            device_mode=cfg.mc_device_mode,
            chunk_size=cfg.mc_chunk_size,
            shard_size=cfg.mc_shard_size,
            backend=self.exec_backend,
        )

    # ------------------------------------------------------------------
    # Unified evaluation API
    # ------------------------------------------------------------------

    def reliability(
        self,
        times: np.ndarray | float,
        method: str = "st_fast",
        mc_chips: int = 500,
        mc_seed: int = 0,
    ) -> np.ndarray | float:
        """Ensemble chip reliability ``R_c(t)`` by the chosen method."""
        times_arr = np.asarray(times, dtype=float)
        scalar = times_arr.ndim == 0
        if method not in METHODS:
            raise ConfigurationError(
                f"unknown method {method!r}; expected one of {METHODS}"
            )
        with span("analyzer.reliability", method=method):
            with span(method, times=int(np.atleast_1d(times_arr).size)):
                if method == "st_fast":
                    value = np.atleast_1d(self.st_fast.reliability(times_arr))
                elif method == "st_mc":
                    value = np.atleast_1d(self.st_mc.reliability(times_arr))
                elif method == "hybrid":
                    value = np.atleast_1d(self.hybrid.reliability(times_arr))
                elif method == "temp_unaware":
                    value = np.atleast_1d(
                        self.temp_unaware.reliability(times_arr)
                    )
                elif method == "guard":
                    value = np.atleast_1d(self.guard.reliability(times_arr))
                else:  # mc
                    curve = self.mc_reliability_curve(
                        np.atleast_1d(times_arr), n_chips=mc_chips, seed=mc_seed
                    )
                    value = curve.reliability
        return float(value[0]) if scalar else value

    def lifetime(
        self,
        ppm: float,
        method: str = "st_fast",
    ) -> float:
        """Lifetime (hours) at an n-faults-per-million criterion.

        For the MC reference use :meth:`mc_lifetime`, which controls its
        own sample size.
        """
        if method == "mc":
            raise ConfigurationError("use mc_lifetime for the MC reference")
        with span("analyzer.lifetime", method=method, ppm=ppm):
            if method == "guard":
                return self.guard.lifetime(ppm_to_reliability(ppm))
            # Seed the bracketing with the analytic guard-band estimate,
            # which is within ~2x of every statistical method's answer.
            guess = self.guard.lifetime(ppm_to_reliability(ppm))
            return solve_lifetime(
                lambda t: float(self.reliability(t, method=method)),
                ppm_to_reliability(ppm),
                t_guess=guess,
            )

    def mc_reliability_curve(
        self,
        times: np.ndarray,
        n_chips: int = 1000,
        seed: int = 0,
        checkpoint_path: str | None = None,
        cancel_check: Callable[[], bool] | None = None,
    ) -> ReliabilityCurve:
        """Monte-Carlo reference reliability curve.

        The seed roots a deterministic shard plan (stable across
        backends, worker counts and chunk sizes), so passing a
        ``checkpoint_path`` lets a killed run resume to the same curve.
        ``cancel_check`` cooperatively interrupts the run between shard
        groups (:class:`~repro.errors.ExecutionInterrupted`), flushing
        the checkpoint first.
        """
        return self.mc_engine.reliability_curve(
            np.asarray(times, dtype=float),
            n_chips,
            np.random.SeedSequence(seed),
            checkpoint_path=checkpoint_path,
            cancel_check=cancel_check,
        )

    def mc_time_grid(
        self,
        ppm: float,
        span_decades: float = 1.2,
        n_times: int = 33,
    ) -> np.ndarray:
        """The log-time grid :meth:`mc_lifetime` samples the MC curve on.

        Centred at the (closed-form, millisecond) st_fast lifetime
        estimate.  Exposed separately so a fleet coordinator can compute
        the grid locally and ship the explicit times to workers — JSON
        round-trips float64 exactly, so the remote curve lands on
        bit-identical abscissae.
        """
        center = self.lifetime(ppm, method="st_fast")
        return np.logspace(
            np.log10(center) - span_decades / 2.0,
            np.log10(center) + span_decades / 2.0,
            n_times,
        )

    def mc_shard_payloads(
        self,
        times: np.ndarray,
        n_chips: int = 1000,
        seed: int = 0,
        shard_indices: list[int] | tuple[int, ...] | None = None,
        checkpoint_path: str | None = None,
        cancel_check: Callable[[], bool] | None = None,
    ) -> dict[int, dict[str, np.ndarray]]:
        """Partial MC sums for a subset of the deterministic shard plan.

        The worker-side primitive of :mod:`repro.fleet`: evaluates only
        ``shard_indices`` out of the plan for ``(seed, n_chips)``, using
        the exact per-shard streams a serial run would (see
        :meth:`MonteCarloEngine.shard_payloads`).
        """
        return self.mc_engine.shard_payloads(
            np.asarray(times, dtype=float),
            n_chips,
            np.random.SeedSequence(seed),
            shard_indices=shard_indices,
            checkpoint_path=checkpoint_path,
            cancel_check=cancel_check,
        )

    def mc_lifetime(
        self,
        ppm: float,
        n_chips: int = 1000,
        seed: int = 0,
        span_decades: float = 1.2,
        n_times: int = 33,
        checkpoint_path: str | None = None,
        cancel_check: Callable[[], bool] | None = None,
    ) -> float:
        """Lifetime at a ppm criterion from the Monte-Carlo reference.

        Samples the MC curve on a log-time window centred at the st_fast
        estimate, then solves on the interpolated curve.  The optional
        ``checkpoint_path``/``cancel_check`` pair makes long runs
        resumable and cooperatively interruptible (see
        :meth:`mc_reliability_curve`) — the hooks the service layer uses
        for graceful shutdown.
        """
        from repro.core.lifetime import lifetime_from_curve

        times = self.mc_time_grid(
            ppm, span_decades=span_decades, n_times=n_times
        )
        curve = self.mc_reliability_curve(
            times,
            n_chips=n_chips,
            seed=seed,
            checkpoint_path=checkpoint_path,
            cancel_check=cancel_check,
        )
        return lifetime_from_curve(
            curve.times, curve.reliability, ppm_to_reliability(ppm)
        )

    def mc_failure_times(
        self, n_chips: int = 10000, seed: int = 0
    ) -> np.ndarray:
        """Failure-time samples for the Fig. 10 style comparison."""
        return self.mc_engine.failure_times(
            n_chips, np.random.SeedSequence(seed)
        )

    # ------------------------------------------------------------------
    # Introspection helpers
    # ------------------------------------------------------------------

    def summary(self) -> dict:
        """A human-readable description of the prepared analysis."""
        return {
            "design": {
                "blocks": self.floorplan.n_blocks,
                "devices": self.floorplan.n_devices,
                "total_oxide_area": self.floorplan.total_oxide_area,
            },
            "temperatures_c": {
                name: round(float(t), 2)
                for name, t in zip(
                    self.floorplan.block_names,
                    self.block_temperatures,
                    strict=True,
                )
            },
            "variation": {
                "nominal_nm": self.budget.nominal_thickness,
                "sigma_total_nm": self.budget.sigma_total,
                "rho_dist": self.config.rho_dist,
                "grid": f"{self.config.grid_size}x{self.config.grid_size}",
                "pca_factors": self.canonical.n_factors,
            },
        }
