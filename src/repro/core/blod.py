"""Block-level oxide-thickness distribution (BLOD) characterisation.

The central projection of the paper (Sec. IV): the millions of correlated
per-device thickness variables of a block collapse into just two random
variables over the chip ensemble —

- the BLOD sample mean ``u_j`` (eq. (22)): a Gaussian, being a linear
  combination of the principal components,
- the BLOD sample variance ``v_j`` (eq. (24)): a shifted quadratic normal
  form, approximated by a scaled chi-square (eq. (29)-(30)).

Derivation used here (matching eq. (22)/(24) with the grid-based canonical
model): let device ``i`` of block ``j`` sit in grid ``g_i`` with
sensitivity row ``s_{g_i}``; then

    u_j = mean_i(lambda_{g_i,0}) + mean_i(s_{g_i}) . z + (lambda_r/sqrt(m_j)) eps_bar
    v_j = lambda_r^2 * W + z' C_j z,   W = chi2(m_j - 1)/(m_j - 1)

with ``C_j = m_j/(m_j-1) * sum_g f_g (s_g - s_bar)(s_g - s_bar)'`` (``f_g``
the device fraction of the block in grid ``g``), dropping the O(1/sqrt(m))
cross terms. The residual sampling factor ``W`` concentrates at 1 for large
blocks; the paper keeps only its mean ``lambda_r^2`` (its ``v_{j,0}``), and
this module optionally folds its fluctuation into the chi-square moment
matching (exact for single-grid blocks, where the spatial part vanishes).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.chip.floorplan import Floorplan
from repro.chip.geometry import GridSpec
from repro.errors import ConfigurationError
from repro.kernels.artifacts import (
    load_artifact,
    memoize_artifact,
    store_artifact,
)
from repro.obs import metrics
from repro.obs.trace import span
from repro.stats.integration import NormalDist, PointMass
from repro.stats.quadform import Chi2Match, QuadraticForm
from repro.variation.pca import CanonicalThicknessModel
from repro.variation.sampling import BlockGridAssignment, assign_devices_to_grid


@dataclass(frozen=True)
class BlodModel:
    """The two-random-variable summary of one block's oxide thicknesses.

    Attributes
    ----------
    name:
        Block name.
    area:
        Total normalized oxide area ``A_j``.
    n_devices:
        Device count ``m_j``.
    u_nominal:
        Nominal BLOD mean ``u_{j,0}`` (device-fraction-weighted grid
        nominal).
    u_sensitivities:
        ``(n_factors,)`` sensitivities of ``u_j`` to the factors.
    sigma_independent:
        The model's residual sigma ``lambda_r``.
    v_matrix:
        ``(n_factors, n_factors)`` quadratic-form matrix ``C_j`` of
        ``v_j``.
    v_deterministic:
        Chip-independent contribution to the BLOD variance caused by
        *deterministic* thickness-mean differences between the grids a
        block spans (nonzero only with a wafer-level systematic pattern).
    """

    name: str
    area: float
    n_devices: int
    u_nominal: float
    u_sensitivities: np.ndarray
    sigma_independent: float
    v_matrix: np.ndarray
    v_deterministic: float = 0.0

    def __post_init__(self) -> None:
        u_sens = np.asarray(self.u_sensitivities, dtype=float)
        v_matrix = np.asarray(self.v_matrix, dtype=float)
        if u_sens.ndim != 1:
            raise ConfigurationError("u_sensitivities must be 1-D")
        if v_matrix.shape != (u_sens.size, u_sens.size):
            raise ConfigurationError(
                "v_matrix must be square with the factor dimension"
            )
        if self.n_devices < 2:
            raise ConfigurationError(
                f"block {self.name!r} needs >= 2 devices for a sample variance"
            )
        if self.area <= 0.0:
            raise ConfigurationError(f"block {self.name!r} area must be positive")
        object.__setattr__(self, "u_sensitivities", u_sens)
        object.__setattr__(self, "v_matrix", 0.5 * (v_matrix + v_matrix.T))

    @property
    def n_factors(self) -> int:
        """Number of canonical factors."""
        return self.u_sensitivities.size

    @property
    def u_sigma(self) -> float:
        """Standard deviation of the BLOD mean ``u_j``.

        Includes the vanishing ``lambda_r / sqrt(m_j)`` residual term the
        paper notes "can be safely neglected for a typical industrial
        chip"; keeping it costs nothing and is exact.
        """
        factor_var = float(self.u_sensitivities @ self.u_sensitivities)
        residual_var = self.sigma_independent**2 / self.n_devices
        return float(np.sqrt(factor_var + residual_var))

    @property
    def v_offset(self) -> float:
        """The paper's ``v_{j,0} = lambda_r^2`` (plus any deterministic
        within-block spread from a wafer-level systematic pattern)."""
        return self.sigma_independent**2 + self.v_deterministic

    def u_dist(self) -> NormalDist:
        """Marginal distribution of the BLOD mean (exactly normal)."""
        return NormalDist(mean=self.u_nominal, sigma=self.u_sigma)

    def v_quadratic_form(self) -> QuadraticForm:
        """``v_j`` as a shifted quadratic form (spatial part only).

        This is the paper's representation: offset ``lambda_r^2`` plus the
        quadratic form ``z' C_j z``; the residual sampling fluctuation is
        not in the matrix (see :meth:`v_chi2_match`).
        """
        return QuadraticForm(offset=self.v_offset, matrix=self.v_matrix)

    def v_traces(self, include_residual_fluctuation: bool = True) -> tuple[float, float]:
        """``(tr, tr_sq)`` of the full mixture defining ``v_j - 0``.

        The eigenvalue mixture of ``v_j`` is ``eig(C_j)`` plus, when the
        residual sampling fluctuation is kept, ``m_j - 1`` copies of
        ``lambda_r^2 / (m_j - 1)``. Traces are available in closed form.
        """
        trace = float(np.trace(self.v_matrix))
        trace_sq = float(np.sum(self.v_matrix * self.v_matrix))
        if include_residual_fluctuation:
            trace += self.sigma_independent**2
            trace_sq += self.sigma_independent**4 / (self.n_devices - 1)
        return trace, trace_sq

    def v_chi2_match(
        self, include_residual_fluctuation: bool = True
    ) -> Chi2Match | PointMass:
        """Chi-square surrogate for the BLOD variance (eq. (29)-(30)).

        With ``include_residual_fluctuation=False`` this is exactly the
        paper's match: offset ``lambda_r^2`` plus the moment-matched
        quadratic part. With the flag on (default) the chi-square
        additionally absorbs the ``chi2(m_j-1)`` residual-sampling term,
        which makes the match exact for single-grid blocks and removes the
        degenerate point-mass corner case for them.
        """
        if include_residual_fluctuation:
            trace, trace_sq = self.v_traces(include_residual_fluctuation=True)
            if trace <= 0.0 or trace_sq <= 0.0:
                return PointMass(self.v_offset)
            scale = trace_sq / trace
            dof = trace**2 / trace_sq
            return Chi2Match(offset=self.v_deterministic, scale=scale, dof=dof)
        trace, trace_sq = self.v_traces(include_residual_fluctuation=False)
        if trace <= 0.0 or trace_sq <= 0.0:
            return PointMass(self.v_offset)
        scale = trace_sq / trace
        dof = trace**2 / trace_sq
        return Chi2Match(offset=self.v_offset, scale=scale, dof=dof)

    def v_mean(self) -> float:
        """``E[v_j] = lambda_r^2 + tr(C_j)``."""
        return self.v_offset + float(np.trace(self.v_matrix))

    def u_samples(self, z: np.ndarray) -> np.ndarray:
        """Evaluate ``u_j`` on factor draws ``z`` of shape ``(n, k)``.

        Deterministic given ``z`` (the negligible residual-mean term is
        dropped here, matching eq. (22) usage in st_mc).
        """
        z = np.atleast_2d(np.asarray(z, dtype=float))
        return self.u_nominal + z @ self.u_sensitivities

    def v_samples(
        self,
        z: np.ndarray,
        rng: np.random.Generator | None = None,
    ) -> np.ndarray:
        """Evaluate ``v_j`` on factor draws ``z`` of shape ``(n, k)``.

        With an ``rng`` the residual sampling factor ``W`` is drawn
        exactly; without one it is fixed at its mean (the paper's usage).

        The quadratic form is evaluated through the (cached) low-rank
        eigendecomposition of ``C_j``: a block spanning ``r`` grid cells
        has rank <= r, far below the factor dimension, so this is
        O(n_samples * k * r) instead of O(n_samples * k^2).
        """
        z = np.atleast_2d(np.asarray(z, dtype=float))
        eigvals, eigvecs = self._v_eigensystem()
        if eigvals.size:
            projections = z @ eigvecs
            quadratic = (projections**2) @ eigvals
        else:
            quadratic = np.zeros(z.shape[0])
        lambda_r_sq = self.sigma_independent**2
        if rng is None:
            residual = np.full(z.shape[0], lambda_r_sq)
        else:
            dof = self.n_devices - 1
            residual = lambda_r_sq * rng.chisquare(dof, size=z.shape[0]) / dof
        return self.v_deterministic + residual + quadratic

    def _v_eigensystem(self) -> tuple[np.ndarray, np.ndarray]:
        """Cached nonzero eigenpairs of ``C_j`` (frozen dataclass: the
        cache is installed with ``object.__setattr__``).

        The in-process cache is backed by a cross-process artifact entry
        keyed on ``C_j`` itself, so a service worker pays the dense
        ``eigh`` at most once per distinct block matrix; the stored
        low-rank pair round-trips bit-exactly.
        """
        cached = getattr(self, "_v_eig_cache", None)
        if cached is None:
            payload = {"v_matrix": self.v_matrix}
            stored = load_artifact("v_eigensystem", payload)
            if (
                stored is not None
                and "eigvals" in stored
                and "eigvecs" in stored
            ):
                cached = (stored["eigvals"], stored["eigvecs"])
            else:
                eigvals, eigvecs = np.linalg.eigh(self.v_matrix)
                scale = max(float(np.abs(eigvals).max(initial=0.0)), 1e-300)
                keep = np.abs(eigvals) > 1e-12 * scale
                cached = (eigvals[keep], eigvecs[:, keep])
                store_artifact(
                    "v_eigensystem",
                    payload,
                    {"eigvals": cached[0], "eigvecs": cached[1]},
                )
            object.__setattr__(self, "_v_eig_cache", cached)
        return cached


def characterize_blods(
    floorplan: Floorplan,
    grid: GridSpec,
    model: CanonicalThicknessModel,
    assignments: list[BlockGridAssignment] | None = None,
) -> list[BlodModel]:
    """Characterise every block's BLOD from the canonical thickness model.

    This is step 1 of the overall algorithm (Fig. 9): closed-form
    evaluation of the eq. (22) sensitivities and the eq. (24) quadratic
    form for each block.
    """
    if model.n_grids != grid.n_cells:
        raise ConfigurationError(
            f"model has {model.n_grids} grids but grid has {grid.n_cells} cells"
        )
    if assignments is None:
        assignments = assign_devices_to_grid(floorplan, grid)
    if len(assignments) != floorplan.n_blocks:
        raise ConfigurationError("one grid assignment per block is required")

    with span(
        "blod.characterize",
        blocks=floorplan.n_blocks,
        factors=model.n_factors,
    ):
        # The counter lives here (not in the compute path) so it counts
        # characterised blocks whether they came from the artifact cache
        # or from a fresh closed-form evaluation.
        metrics.inc("blod.blocks", floorplan.n_blocks)
        arrays = memoize_artifact(
            "blod_characterization",
            {
                "names": [block.name for block in floorplan.blocks],
                "areas": [block.total_oxide_area for block in floorplan.blocks],
                "n_devices": [block.n_devices for block in floorplan.blocks],
                "grid_indices": [a.grid_indices for a in assignments],
                "fractions": [a.fractions for a in assignments],
                "grid_means": model.grid_means,
                "sensitivities": model.sensitivities,
                "sigma_independent": model.sigma_independent,
            },
            lambda: _stack_blods(
                _characterize(floorplan, model, assignments)
            ),
            required=(
                "names",
                "areas",
                "n_devices",
                "u_nominal",
                "u_sensitivities",
                "v_matrix",
                "v_deterministic",
            ),
        )
        return _blods_from_arrays(arrays, model.sigma_independent)


def _stack_blods(blods: list[BlodModel]) -> dict[str, np.ndarray]:
    """Flatten a characterisation into one array bundle for the cache."""
    return {
        "names": np.array([blod.name for blod in blods]),
        "areas": np.array([blod.area for blod in blods], dtype=np.float64),
        "n_devices": np.array(
            [blod.n_devices for blod in blods], dtype=np.int64
        ),
        "u_nominal": np.array(
            [blod.u_nominal for blod in blods], dtype=np.float64
        ),
        "u_sensitivities": np.stack(
            [blod.u_sensitivities for blod in blods]
        ),
        "v_matrix": np.stack([blod.v_matrix for blod in blods]),
        "v_deterministic": np.array(
            [blod.v_deterministic for blod in blods], dtype=np.float64
        ),
    }


def _blods_from_arrays(
    arrays: dict[str, np.ndarray], sigma_independent: float
) -> list[BlodModel]:
    """Rebuild the model list from a (possibly cached) array bundle.

    ``BlodModel.__post_init__`` re-symmetrises ``v_matrix``; on an
    already-symmetric stored matrix ``0.5 * (M + M.T)`` is bitwise
    idempotent, so cache hits reproduce the computed models exactly.
    """
    return [
        BlodModel(
            name=str(arrays["names"][j]),
            area=float(arrays["areas"][j]),
            n_devices=int(arrays["n_devices"][j]),
            u_nominal=float(arrays["u_nominal"][j]),
            u_sensitivities=arrays["u_sensitivities"][j],
            sigma_independent=sigma_independent,
            v_matrix=arrays["v_matrix"][j],
            v_deterministic=float(arrays["v_deterministic"][j]),
        )
        for j in range(arrays["names"].shape[0])
    ]


def _characterize(
    floorplan: Floorplan,
    model: CanonicalThicknessModel,
    assignments: list[BlockGridAssignment],
) -> list[BlodModel]:
    blods: list[BlodModel] = []
    for block, assignment in zip(floorplan.blocks, assignments, strict=True):
        fractions = assignment.fractions
        grid_idx = assignment.grid_indices
        sens = model.sensitivities[grid_idx, :]
        means = model.grid_means[grid_idx]

        u_nominal = float(fractions @ means)
        u_sens = fractions @ sens

        deviations = sens - u_sens
        m = block.n_devices
        weighted = deviations * fractions[:, None]
        v_matrix = (m / (m - 1)) * (deviations.T @ weighted)
        # Grid-mean differences within a block (wafer systematic pattern)
        # contribute a chip-independent spread to the sample variance.
        mean_dev = means - u_nominal
        deterministic_spread = (m / (m - 1)) * float(fractions @ mean_dev**2)

        blod = BlodModel(
            name=block.name,
            area=block.total_oxide_area,
            n_devices=m,
            u_nominal=u_nominal,
            u_sensitivities=u_sens,
            sigma_independent=model.sigma_independent,
            v_matrix=v_matrix,
            v_deterministic=deterministic_spread,
        )
        blods.append(blod)
    return blods
