"""Burn-in and screening analysis on top of the statistical OBD model.

Production flows stress chips briefly at elevated voltage/temperature
("burn-in") to weed out defective parts before shipment. Whether that
helps depends on the failure population:

- *intrinsic* OBD (this paper's model) is a wearout mechanism with a
  Weibull slope well above 1 — burn-in only consumes intrinsic life;
- *extrinsic* (defect-related) breakdown of weak oxide spots has a slope
  below 1 (infant mortality) — burn-in removes those early fails.

This module combines the paper's ensemble intrinsic model with a simple
extrinsic defect population and evaluates post-burn-in field reliability:

    R_field(t) = R_total(t_use + A_j * t_b) / R_total(A_j * t_b)

under the cumulative-exposure damage law (same as
:mod:`repro.core.mission`): burn-in time advances each block's effective
age by the per-block acceleration factor ``A_j = alpha_use_j /
alpha_stress``. Given a warranty window it finds the burn-in duration
minimising field failures — the classic screening trade-off, now with
process variation and temperature awareness included.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.analyzer import ReliabilityAnalyzer
from repro.core.closed_form import _EXP_MAX, _EXP_MIN
from repro.errors import ConfigurationError
from repro.stats.integration import midpoint_rule


@dataclass(frozen=True)
class ExtrinsicDefectModel:
    """A weak-oxide (defect) failure population.

    Defects are rare, spatially random weak spots whose breakdown time is
    Weibull with slope below 1 (decreasing hazard). The population is
    characterised per unit normalized oxide area, so the chip-level term is
    ``exp(-A_total * density * (t / alpha)^beta)`` — deterministic across
    the ensemble (defectivity, unlike thickness, is not modelled as
    spatially correlated).

    Parameters
    ----------
    density:
        Expected defects per unit normalized oxide area.
    alpha:
        Characteristic life of a defect at use conditions, hours.
    beta:
        Weibull slope of the defect population (< 1: infant mortality).
    acceleration:
        Burn-in acceleration factor on the defect time scale (the ratio
        ``alpha_use / alpha_stress`` at the burn-in condition).
    """

    density: float = 1.0e-9
    alpha: float = 1.0e7
    beta: float = 0.4
    acceleration: float = 500.0

    def __post_init__(self) -> None:
        if self.density < 0.0:
            raise ConfigurationError("defect density must be >= 0")
        if self.alpha <= 0.0 or self.beta <= 0.0:
            raise ConfigurationError("alpha and beta must be positive")
        if not self.beta < 1.0:
            raise ConfigurationError(
                "extrinsic slope must be < 1 (infant mortality); use the "
                "intrinsic model for wearout populations"
            )
        if self.acceleration < 1.0:
            raise ConfigurationError("burn-in must accelerate (factor >= 1)")

    def exponent(self, total_area: float, t_use: float, t_stress: float) -> float:
        """Weibull exponent after ``t_stress`` of burn-in + ``t_use`` field.

        Damage adds on the *effective* (stress-equivalent) time axis.
        """
        effective = t_use + self.acceleration * t_stress
        return (
            total_area * self.density * (effective / self.alpha) ** self.beta
        )


class BurnInAnalyzer:
    """Field-reliability evaluation with a burn-in screening step.

    Parameters
    ----------
    analyzer:
        Prepared design analysis (supplies BLODs, intrinsic OBD params and
        the total oxide area).
    burnin_temperature:
        Burn-in junction temperature (celsius), applied chip-wide.
    burnin_vdd:
        Burn-in stress voltage.
    defects:
        Extrinsic defect population; ``None`` disables it (pure intrinsic
        analysis, where burn-in can only hurt).
    l0, tail:
        Integration controls.
    """

    def __init__(
        self,
        analyzer: ReliabilityAnalyzer,
        burnin_temperature: float = 125.0,
        burnin_vdd: float = 1.5,
        defects: ExtrinsicDefectModel | None = None,
        l0: int | None = None,
        tail: float | None = None,
    ) -> None:
        self.analyzer = analyzer
        self.defects = defects
        stress = analyzer.obd_model.device_params(burnin_temperature, burnin_vdd)
        self._stress_alpha = stress.alpha
        self._stress_b = stress.b
        self._use_alphas = np.array([b.alpha for b in analyzer.blocks])
        self._use_bs = np.array([b.b for b in analyzer.blocks])
        cfg = analyzer.config
        l0 = l0 if l0 is not None else cfg.l0
        tail = tail if tail is not None else cfg.tail
        self._rules = [
            (
                midpoint_rule(blod.u_dist(), n_points=l0, tail=tail),
                midpoint_rule(
                    blod.v_chi2_match(cfg.include_residual_fluctuation),
                    n_points=l0,
                    tail=tail,
                ),
            )
            for blod in analyzer.blods
        ]

    def _block_survival_expectation(
        self, index: int, t_use: float, t_stress: float
    ) -> float:
        """``E[exp(-A_j g(effective age))]`` for one block.

        Burn-in time is converted to equivalent field time through the
        block's acceleration factor ``alpha_use / alpha_stress``
        (cumulative-exposure law), then the standard eq. (17) closed form
        applies at the block's field parameters.
        """
        blod = self.analyzer.blods[index]
        u_rule, v_rule = self._rules[index]
        alpha_use = self._use_alphas[index]
        b_use = self._use_bs[index]
        acceleration = alpha_use / self._stress_alpha
        effective = t_use + acceleration * t_stress
        if effective <= 0.0:
            return 1.0
        u = u_rule.points[:, None]
        v = v_rule.points[None, :]
        scaled = b_use * np.log(effective / alpha_use)
        log_g = scaled * u + 0.5 * scaled**2 * v
        exponent = np.exp(
            np.clip(np.log(blod.area) + log_g, _EXP_MIN, _EXP_MAX)
        )
        survival = np.exp(-np.clip(exponent, 0.0, -_EXP_MIN))
        return float(u_rule.weights @ survival @ v_rule.weights)

    def survival(self, t_use: float, t_burnin: float) -> float:
        """Probability a chip survives burn-in plus ``t_use`` field hours."""
        if t_use < 0.0 or t_burnin < 0.0:
            raise ConfigurationError("durations must be non-negative")
        failure = 0.0
        for j in range(len(self.analyzer.blods)):
            failure += 1.0 - self._block_survival_expectation(
                j, t_use, t_burnin
            )
        intrinsic = max(1.0 - failure, 0.0)
        if self.defects is None:
            return intrinsic
        extrinsic = np.exp(
            -np.clip(
                self.defects.exponent(
                    self.analyzer.floorplan.total_oxide_area, t_use, t_burnin
                ),
                0.0,
                -_EXP_MIN,
            )
        )
        return intrinsic * float(extrinsic)

    def burnin_yield(self, t_burnin: float) -> float:
        """Fraction of chips surviving the burn-in stress itself."""
        return self.survival(0.0, t_burnin)

    def field_failure_probability(
        self, warranty_hours: float, t_burnin: float
    ) -> float:
        """P(chip fails in the field within the warranty | passed burn-in)."""
        if warranty_hours <= 0.0:
            raise ConfigurationError("warranty window must be positive")
        passed = self.burnin_yield(t_burnin)
        if passed <= 0.0:
            raise ConfigurationError("burn-in kills every chip; shorten it")
        return 1.0 - self.survival(warranty_hours, t_burnin) / passed

    def optimize_burnin(
        self,
        warranty_hours: float,
        candidates: np.ndarray,
    ) -> tuple[float, dict[float, float]]:
        """Pick the candidate burn-in duration minimising field failures.

        Returns ``(best_duration, {duration: field_failure_prob})``; a
        duration of 0 (no burn-in) should be among the candidates so the
        sweep can conclude burn-in does not pay (the intrinsic-only case).
        """
        candidates = np.asarray(candidates, dtype=float)
        if candidates.size == 0 or np.any(candidates < 0.0):
            raise ConfigurationError("need non-negative candidate durations")
        curve = {
            float(t_b): self.field_failure_probability(warranty_hours, float(t_b))
            for t_b in candidates
        }
        best = min(curve, key=curve.get)
        return best, curve
