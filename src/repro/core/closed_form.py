"""Closed-form conditional reliability expressions (eq. (9)-(18)).

Everything here is conditional on known BLOD moments ``(u, v)`` for each
block; the ensemble analyzers integrate these expressions against the BLOD
moment distributions.

Numerical care: the block exponent ``A_j * g(u_j, v_j)`` spans hundreds of
decades over a lifetime sweep, so it is assembled in log space and clipped
to the double-precision exponent range before the final ``exp``.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError

#: Exponent clip bounds keeping ``exp`` inside double range.
_EXP_MIN = -745.0
_EXP_MAX = 709.0


def log_g(
    u: np.ndarray | float,
    v: np.ndarray | float,
    log_t_ratio: np.ndarray | float,
    b: float,
) -> np.ndarray:
    """``ln g(u, v)`` of eq. (17).

    ``g(u, v) = exp(ln(t/alpha) b u + (ln(t/alpha))^2 b^2 v / 2)`` is the
    exact Gaussian integral of the per-device Weibull exponent over the
    BLOD; its log is linear in ``u`` and ``v``.

    Parameters
    ----------
    u, v:
        BLOD sample mean (nm) and variance (nm^2); broadcastable arrays.
    log_t_ratio:
        ``ln(t / alpha)`` for the block (negative within useful lifetimes).
    b:
        Block Weibull slope coefficient (1/nm).
    """
    if b <= 0.0:
        raise ConfigurationError(f"b must be positive, got {b}")
    scaled = b * np.asarray(log_t_ratio, dtype=float)
    return scaled * np.asarray(u, dtype=float) + 0.5 * scaled**2 * np.asarray(
        v, dtype=float
    )


def block_survival(
    u: np.ndarray | float,
    v: np.ndarray | float,
    log_t_ratio: np.ndarray | float,
    b: float,
    area: float,
) -> np.ndarray:
    """``exp(-A_j g(u, v))`` — conditional survival of one block.

    This is the (approximate) probability that no device of a block with
    BLOD moments ``(u, v)`` has broken down by the time encoded in
    ``log_t_ratio``.
    """
    if area <= 0.0:
        raise ConfigurationError(f"area must be positive, got {area}")
    exponent = np.log(area) + log_g(u, v, log_t_ratio, b)
    return np.exp(-np.exp(np.clip(exponent, _EXP_MIN, _EXP_MAX)))


def block_failure(
    u: np.ndarray | float,
    v: np.ndarray | float,
    log_t_ratio: np.ndarray | float,
    b: float,
    area: float,
) -> np.ndarray:
    """``1 - exp(-A_j g(u, v))`` computed stably via ``expm1``."""
    if area <= 0.0:
        raise ConfigurationError(f"area must be positive, got {area}")
    exponent = np.log(area) + log_g(u, v, log_t_ratio, b)
    return -np.expm1(-np.exp(np.clip(exponent, _EXP_MIN, _EXP_MAX)))


def device_conditional_reliability(
    t: np.ndarray | float,
    thickness: np.ndarray | float,
    alpha: float,
    b: float,
    area: float = 1.0,
) -> np.ndarray:
    """Eq. (9): ``R_i(t | x_i) = exp(-a (t/alpha)^(b x_i))``."""
    if alpha <= 0.0 or b <= 0.0 or area <= 0.0:
        raise ConfigurationError("alpha, b and area must be positive")
    t = np.asarray(t, dtype=float)
    thickness = np.asarray(thickness, dtype=float)
    with np.errstate(divide="ignore"):
        log_ratio = np.where(t > 0.0, np.log(t / alpha), -np.inf)
    exponent = np.log(area) + b * thickness * log_ratio
    return np.exp(-np.exp(np.clip(exponent, _EXP_MIN, _EXP_MAX)))


def conditional_chip_reliability_exact(
    u: np.ndarray,
    v: np.ndarray,
    log_t_ratios: np.ndarray,
    bs: np.ndarray,
    areas: np.ndarray,
) -> float:
    """Eq. (15): exact product form ``prod_j exp(-A_j g(u_j, v_j))``.

    Parameters are per-block arrays for a single chip and a single time
    point (``log_t_ratios[j] = ln(t / alpha_j)``).
    """
    u, v, log_t_ratios, bs, areas = map(
        lambda a: np.asarray(a, dtype=float), (u, v, log_t_ratios, bs, areas)
    )
    _check_block_arrays(u, v, log_t_ratios, bs, areas)
    total = 0.0
    for j in range(u.size):
        exponent = np.log(areas[j]) + log_g(u[j], v[j], log_t_ratios[j], float(bs[j]))
        total += float(np.exp(np.clip(exponent, _EXP_MIN, _EXP_MAX)))
    return float(np.exp(-min(total, -_EXP_MIN)))


def conditional_chip_reliability_taylor(
    u: np.ndarray,
    v: np.ndarray,
    log_t_ratios: np.ndarray,
    bs: np.ndarray,
    areas: np.ndarray,
    clip: bool = True,
) -> float:
    """Eq. (18): first-order Taylor form ``1 - sum_j (1 - exp(-A_j g))``.

    The paper's form; accurate while every block survival is close to 1.
    It can undershoot 0 far beyond the useful lifetime — ``clip`` keeps
    the result a probability.
    """
    u, v, log_t_ratios, bs, areas = map(
        lambda a: np.asarray(a, dtype=float), (u, v, log_t_ratios, bs, areas)
    )
    _check_block_arrays(u, v, log_t_ratios, bs, areas)
    total_failure = 0.0
    for j in range(u.size):
        total_failure += float(
            block_failure(u[j], v[j], log_t_ratios[j], float(bs[j]), float(areas[j]))
        )
    value = 1.0 - total_failure
    return float(max(value, 0.0)) if clip else float(value)


def _check_block_arrays(*arrays: np.ndarray) -> None:
    shape = arrays[0].shape
    if any(a.shape != shape for a in arrays):
        raise ConfigurationError("per-block arrays must share one shape")
    if arrays[0].ndim != 1:
        raise ConfigurationError("per-block arrays must be 1-D")


def safe_log_t_ratio(t: np.ndarray | float, alpha: float) -> np.ndarray:
    """``ln(t / alpha)`` with ``t = 0`` mapped to ``-inf`` safely."""
    if alpha <= 0.0:
        raise ConfigurationError(f"alpha must be positive, got {alpha}")
    t = np.asarray(t, dtype=float)
    if np.any(t < 0.0):
        raise ConfigurationError("times must be non-negative")
    with np.errstate(divide="ignore"):
        return np.where(t > 0.0, np.log(t / alpha), -np.inf)
