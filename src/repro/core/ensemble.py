"""Design-time ensemble reliability analyzers (Sec. IV-B/C/D).

Two statistical analyzers evaluate eq. (28) — the sum of ``N`` per-block
double integrals of the conditional block survival over the BLOD moment
distributions:

- :class:`StFastAnalyzer` (``st_fast``): analytical marginals — Gaussian
  ``u_j`` and the chi-square-matched ``v_j`` — combined under the
  independence approximation justified by the Lemma and Fig. 6/7, then
  integrated with the paper's ``l0 x l0`` midpoint rule (or Gauss-Hermite /
  quantile rules as higher-order alternatives).
- :class:`StMcAnalyzer` (``st_mc``): the joint distribution of
  ``(u_j, v_j)`` is constructed numerically from Monte-Carlo samples of the
  principal components (eq. (22)/(24)), retaining any u-v dependence, at a
  modest runtime overhead.

Both share the eq. (18) first-order combination across blocks, so only the
per-block expectation differs.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial

import numpy as np

from repro.core.blod import BlodModel
from repro.core.closed_form import _EXP_MAX, _EXP_MIN, safe_log_t_ratio
from repro.errors import ConfigurationError
from repro.exec.backends import ExecBackend, resolve_backend
from repro.exec.runner import run_sharded
from repro.exec.sharding import (
    DEFAULT_SHARD_SIZE,
    Shard,
    plan_shards,
    resolve_seed_sequence,
)
from repro.kernels.config import fast_paths_enabled
from repro.kernels.survival import (
    batched_rule_expectations,
    batched_sample_expectations,
    pad_rule_tables,
    sweep_rule_expectations,
)
from repro.obs import metrics
from repro.obs.trace import span
from repro.stats.integration import (
    Rule1D,
    gauss_hermite_rule,
    midpoint_rule,
    quantile_rule,
)


@dataclass(frozen=True)
class BlockReliability:
    """One block's BLOD plus its temperature-dependent Weibull parameters."""

    blod: BlodModel
    alpha: float
    b: float

    def __post_init__(self) -> None:
        if self.alpha <= 0.0:
            raise ConfigurationError(f"alpha must be positive, got {self.alpha}")
        if self.b <= 0.0:
            raise ConfigurationError(f"b must be positive, got {self.b}")

    @property
    def name(self) -> str:
        """Block name."""
        return self.blod.name


def _survival_on_grid(
    log_t_ratio: np.ndarray,
    b: float,
    area: float,
    u_points: np.ndarray,
    v_points: np.ndarray,
) -> np.ndarray:
    """``exp(-A g(u, v))`` on a (time, u, v) tensor grid.

    ``log_t_ratio`` entries of ``-inf`` (t = 0) map to survival 1.
    """
    scaled = b * log_t_ratio[:, None, None]
    finite = np.isfinite(scaled)
    scaled_safe = np.where(finite, scaled, 0.0)
    log_g = (
        scaled_safe * u_points[None, :, None]
        + 0.5 * scaled_safe**2 * v_points[None, None, :]
    )
    exponent = np.clip(np.log(area) + log_g, _EXP_MIN, _EXP_MAX)
    survival = np.exp(-np.exp(exponent))
    return np.where(finite, survival, 1.0)


class _EnsembleAnalyzerBase:
    """Shared eq. (18)/(28) combination logic."""

    blocks: list[BlockReliability]

    def block_expectation(self, index: int, times: np.ndarray) -> np.ndarray:
        """``E[exp(-A_j g(u_j, v_j))]`` at each time; per-analyzer."""
        raise NotImplementedError

    def _batched_expectations(self, times: np.ndarray) -> np.ndarray | None:
        """``(n_blocks, n_times)`` fused fast-path expectations, if any.

        Subclasses return ``None`` when no batched kernel applies (then
        the per-block reference loop below runs instead).
        """
        return None

    def _weibull_vectors(self) -> tuple[np.ndarray, np.ndarray]:
        """Per-block ``(alphas, bs)`` arrays, built once per analyzer."""
        cached = self.__dict__.get("_weibull_ab")
        if cached is None:
            cached = (
                np.array([block.alpha for block in self.blocks]),
                np.array([block.b for block in self.blocks]),
            )
            self.__dict__["_weibull_ab"] = cached
        return cached

    def _scaled_log_t_ratios(self, times: np.ndarray) -> np.ndarray:
        """``(n_blocks, n_times)`` matrix of ``b_j * ln(t / alpha_j)``.

        ``t = 0`` maps to ``-inf`` (survival 1 downstream), matching
        :func:`repro.core.closed_form.safe_log_t_ratio` per block.
        """
        if np.any(times < 0.0):
            raise ConfigurationError("times must be non-negative")
        alphas, bs = self._weibull_vectors()
        with np.errstate(divide="ignore"):
            ratios = np.where(
                times[None, :] > 0.0,
                np.log(times[None, :] / alphas[:, None]),
                -np.inf,
            )
        return bs[:, None] * ratios

    def block_failure_probabilities(self, times: np.ndarray | float) -> np.ndarray:
        """``(n_blocks, n_times)`` ensemble block failure probabilities."""
        times = np.atleast_1d(np.asarray(times, dtype=float))
        if fast_paths_enabled():
            expectations = self._batched_expectations(times)
            if expectations is not None:
                return 1.0 - expectations
        out = np.empty((len(self.blocks), times.size))
        for j in range(len(self.blocks)):
            out[j] = 1.0 - self.block_expectation(j, times)
        return out

    def reliability(
        self, times: np.ndarray | float, clip: bool = True
    ) -> np.ndarray:
        """Ensemble chip reliability ``R_c(t)`` (eq. (28)).

        ``clip=False`` returns the raw first-order value, which can
        undershoot 0 far beyond the useful lifetime.
        """
        times = np.asarray(times, dtype=float)
        scalar = times.ndim == 0
        failures = self.block_failure_probabilities(times)
        value = 1.0 - failures.sum(axis=0)
        if clip:
            value = np.clip(value, 0.0, 1.0)
        return float(value[0]) if scalar else value

    def failure_probability(self, times: np.ndarray | float) -> np.ndarray:
        """Ensemble chip failure probability ``1 - R_c(t)``."""
        times = np.asarray(times, dtype=float)
        scalar = times.ndim == 0
        value = 1.0 - np.atleast_1d(self.reliability(times))
        return float(value[0]) if scalar else value


class StFastAnalyzer(_EnsembleAnalyzerBase):
    """The paper's fast statistical analyzer (Sec. IV-D, ``st_fast``).

    Parameters
    ----------
    blocks:
        Per-block BLOD + Weibull parameters.
    l0:
        Sub-domains per integration dimension (the paper's ``l0 = 10``).
    tail:
        Probability mass left outside the integration bracket per side.
    rule:
        ``"midpoint"`` (paper), or ``"gauss"`` for Gauss-Hermite in ``u``
        with quantile-stratified points in ``v`` (ablation alternative).
    include_residual_fluctuation:
        Fold the chi-square residual-sampling fluctuation of the BLOD
        variance into its surrogate (exact for single-grid blocks).
    """

    def __init__(
        self,
        blocks: list[BlockReliability],
        l0: int = 10,
        tail: float = 1e-6,
        rule: str = "midpoint",
        include_residual_fluctuation: bool = True,
    ) -> None:
        if not blocks:
            raise ConfigurationError("need at least one block")
        if rule not in ("midpoint", "gauss"):
            raise ConfigurationError(f"unknown rule {rule!r}")
        self.blocks = list(blocks)
        self.l0 = l0
        self._rules: list[tuple[Rule1D, Rule1D]] = []
        with span("st_fast.rules", blocks=len(self.blocks), l0=l0, rule=rule):
            for block in self.blocks:
                u_dist = block.blod.u_dist()
                v_dist = block.blod.v_chi2_match(include_residual_fluctuation)
                if rule == "midpoint":
                    u_rule = midpoint_rule(u_dist, n_points=l0, tail=tail)
                    v_rule = midpoint_rule(v_dist, n_points=l0, tail=tail)
                else:
                    u_rule = gauss_hermite_rule(u_dist, n_points=max(l0, 8))
                    v_rule = quantile_rule(v_dist, n_points=max(l0, 8))
                self._rules.append((u_rule, v_rule))
        # Padded (block, node) tables for the fused kernel; zero-weight
        # padding keeps ragged blocks (point-mass variance) exact.
        self._u_points, self._u_weights = pad_rule_tables(
            [u.points for u, _ in self._rules],
            [u.weights for u, _ in self._rules],
        )
        self._v_points, self._v_weights = pad_rule_tables(
            [v.points for _, v in self._rules],
            [v.weights for _, v in self._rules],
        )
        self._log_areas = np.log([block.blod.area for block in self.blocks])
        self._rule_nodes = sum(
            u.points.size * v.points.size for u, v in self._rules
        )

    def _batched_expectations(self, times: np.ndarray) -> np.ndarray:
        """All blocks' tensor-rule integrals in one fused evaluation."""
        log_t_ratios = self._scaled_log_t_ratios(times)
        metrics.inc("integration.subdomain_evals", times.size * self._rule_nodes)
        return batched_rule_expectations(
            log_t_ratios,
            self._log_areas,
            self._u_points,
            self._u_weights,
            self._v_points,
            self._v_weights,
        )

    def block_expectation(self, index: int, times: np.ndarray) -> np.ndarray:
        """Midpoint/Gauss tensor-rule evaluation of the double integral."""
        block = self.blocks[index]
        u_rule, v_rule = self._rules[index]
        log_t_ratio = safe_log_t_ratio(times, block.alpha)
        survival = _survival_on_grid(
            log_t_ratio, block.b, block.blod.area, u_rule.points, v_rule.points
        )
        metrics.inc(
            "integration.subdomain_evals",
            times.size * u_rule.points.size * v_rule.points.size,
        )
        return np.einsum(
            "tpq,p,q->t", survival, u_rule.weights, v_rule.weights
        )


def sweep_reliabilities(
    analyzers: list[StFastAnalyzer],
    times_list: list[np.ndarray | float],
) -> list[np.ndarray] | None:
    """Evaluate several same-design ``StFastAnalyzer`` grids in one kernel call.

    Used by the batch executor to fuse a temperature axis: the rule tables
    of ``st_fast`` depend only on the BLODs (not temperature), so a sweep
    over operating points of one design shares a single padded node table.
    Each analyzer contributes its own ``b_j ln(t / alpha_j)`` profile (the
    Weibull parameters DO depend on temperature) and the concatenated
    profiles go through one :func:`sweep_rule_expectations` dispatch.

    Returns one clipped reliability array per analyzer — bitwise identical
    to ``analyzer.reliability(times)`` — or ``None`` when fusion does not
    apply (fast paths off, mismatched rule tables, or the fused kernel
    declines the shape); callers must then fall back to per-analyzer calls.
    """
    if not analyzers or len(analyzers) != len(times_list):
        return None
    if not fast_paths_enabled():
        return None
    base = analyzers[0]
    for analyzer in analyzers[1:]:
        if not (
            np.array_equal(analyzer._log_areas, base._log_areas)
            and np.array_equal(analyzer._u_points, base._u_points)
            and np.array_equal(analyzer._u_weights, base._u_weights)
            and np.array_equal(analyzer._v_points, base._v_points)
            and np.array_equal(analyzer._v_weights, base._v_weights)
        ):
            return None
    times_arrays = [
        np.atleast_1d(np.asarray(times, dtype=float)) for times in times_list
    ]
    if len({times.size for times in times_arrays}) == 1:
        # Equal-length axes (every bracketing rung, and uniform time
        # grids): build all profiles in one broadcast.  Division, log and
        # scale are elementwise ufuncs, so each slice is bitwise equal to
        # the per-analyzer ``_scaled_log_t_ratios`` result.
        times_mat = np.stack(times_arrays)  # (n_analyzers, n_times)
        if np.any(times_mat < 0.0):
            raise ConfigurationError("times must be non-negative")
        vectors = [analyzer._weibull_vectors() for analyzer in analyzers]
        alphas_mat = np.stack([alphas for alphas, _ in vectors])
        bs_mat = np.stack([bs for _, bs in vectors])
        with np.errstate(divide="ignore"):
            ratios = np.where(
                times_mat[:, None, :] > 0.0,
                np.log(times_mat[:, None, :] / alphas_mat[:, :, None]),
                -np.inf,
            )
        stacked = bs_mat[:, :, None] * ratios
        profiles = [stacked[i] for i in range(len(analyzers))]
    else:
        profiles = [
            analyzer._scaled_log_t_ratios(times)
            for analyzer, times in zip(analyzers, times_arrays, strict=True)
        ]
    fused = sweep_rule_expectations(
        profiles,
        base._log_areas,
        base._u_points,
        base._u_weights,
        base._v_points,
        base._v_weights,
    )
    if fused is None:
        return None
    for analyzer, times in zip(analyzers, times_arrays, strict=True):
        metrics.inc(
            "integration.subdomain_evals", times.size * analyzer._rule_nodes
        )
    out: list[np.ndarray] = []
    for expectation in fused:
        failures = 1.0 - expectation
        value = 1.0 - failures.sum(axis=0)
        out.append(np.clip(value, 0.0, 1.0))
    return out


def _draw_factors(
    sampler: str,
    n_samples: int,
    n_factors: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Standard-normal factor draws by the chosen (Q)MC scheme."""
    if sampler == "mc":
        return rng.standard_normal((n_samples, n_factors))
    from scipy import stats as sps
    from scipy.stats import qmc

    seed = int(rng.integers(0, 2**31 - 1))
    if sampler == "lhs":
        engine = qmc.LatinHypercube(d=n_factors, seed=seed)
        uniforms = engine.random(n_samples)
    else:  # sobol
        engine = qmc.Sobol(d=n_factors, scramble=True, seed=seed)
        # Sobol wants a power-of-two count; draw the next power and trim.
        m = int(np.ceil(np.log2(n_samples)))
        uniforms = engine.random_base2(m)[:n_samples]
    # Keep strictly inside (0, 1) before the normal inverse CDF.
    uniforms = np.clip(uniforms, 1e-12, 1.0 - 1e-12)
    return np.asarray(sps.norm.ppf(uniforms))


def _st_mc_shard_task(
    blocks: tuple[BlockReliability, ...],
    include_residual_noise: bool,
    shard: Shard,
) -> dict[str, np.ndarray]:
    """One shard of the st_mc (u, v) sample cloud.

    Module-level and pure so process backends can pickle it; the factor
    draws and per-block residual noise all come from the shard's private
    stream.
    """
    rng = shard.rng()
    n_factors = blocks[0].blod.n_factors
    factors = rng.standard_normal((shard.size, n_factors))
    payload: dict[str, np.ndarray] = {}
    noise_rng = rng if include_residual_noise else None
    for j, block in enumerate(blocks):
        payload[f"u{j}"] = block.blod.u_samples(factors)
        payload[f"v{j}"] = block.blod.v_samples(factors, rng=noise_rng)
    return payload


class StMcAnalyzer(_EnsembleAnalyzerBase):
    """Numerical-joint-PDF statistical analyzer (Sec. IV-C, ``st_mc``).

    Samples the principal components, evaluates every block's
    ``(u_j, v_j)`` on the common factor draws, and estimates the per-block
    expectation either directly on the samples (``estimator="samples"``) or
    through a 2-D histogram joint PDF (``estimator="histogram"``, the
    paper's description).

    Parameters
    ----------
    blocks:
        Per-block BLOD + Weibull parameters.
    n_samples:
        Monte-Carlo draws of the principal-component vector.
    seed:
        Generator seed (or pass an ``rng``).
    estimator:
        ``"samples"`` or ``"histogram"``.
    bins:
        Histogram bins per dimension for the histogram estimator.
    include_residual_noise:
        Draw the residual sampling factor of ``v_j`` exactly instead of
        fixing it at its mean.
    sampler:
        ``"mc"`` (pseudo-random, the paper's method), ``"lhs"`` (Latin
        hypercube) or ``"sobol"`` (scrambled Sobol) — the QMC options
        reduce the estimator variance at the same sample count.
    backend:
        Execution backend for the sharded ``"mc"`` sampling sweep;
        defaults to the environment selection.  QMC samplers draw one
        global sequence, so they always run in-process.
    shard_size:
        Samples per seed shard for the ``"mc"`` sampler (part of the
        deterministic stream definition, like the MC engines').
    """

    def __init__(
        self,
        blocks: list[BlockReliability],
        n_samples: int = 20000,
        seed: int | None = 0,
        rng: np.random.Generator | None = None,
        estimator: str = "samples",
        bins: int = 10,
        include_residual_noise: bool = True,
        sampler: str = "mc",
        backend: ExecBackend | None = None,
        shard_size: int = DEFAULT_SHARD_SIZE,
    ) -> None:
        if not blocks:
            raise ConfigurationError("need at least one block")
        if estimator not in ("samples", "histogram"):
            raise ConfigurationError(f"unknown estimator {estimator!r}")
        if sampler not in ("mc", "lhs", "sobol"):
            raise ConfigurationError(f"unknown sampler {sampler!r}")
        if n_samples < 100:
            raise ConfigurationError(f"n_samples must be >= 100, got {n_samples}")
        if shard_size < 1:
            raise ConfigurationError(f"shard_size must be >= 1, got {shard_size}")
        n_factors = blocks[0].blod.n_factors
        if any(block.blod.n_factors != n_factors for block in blocks):
            raise ConfigurationError("all blocks must share one factor space")
        self.blocks = list(blocks)
        self.estimator = estimator
        self.bins = bins
        with span(
            "st_mc.sample",
            samples=n_samples,
            factors=n_factors,
            sampler=sampler,
        ):
            if sampler == "mc":
                self._sample_sharded(
                    n_samples, seed, rng, include_residual_noise,
                    backend, shard_size,
                )
            else:
                if rng is None:
                    rng = np.random.default_rng(seed)
                factors = _draw_factors(sampler, n_samples, n_factors, rng)
                self._u_samples = [
                    b.blod.u_samples(factors) for b in self.blocks
                ]
                noise_rng = rng if include_residual_noise else None
                self._v_samples = [
                    b.blod.v_samples(factors, rng=noise_rng)
                    for b in self.blocks
                ]
            metrics.inc("st_mc.factor_draws", n_samples)

    def _sample_sharded(
        self,
        n_samples: int,
        seed: int | None,
        rng: np.random.Generator | None,
        include_residual_noise: bool,
        backend: ExecBackend | None,
        shard_size: int,
    ) -> None:
        """Draw the (u, v) sample clouds in deterministic seed shards.

        Shards are submitted to the execution backend and concatenated in
        shard-index order, so the cloud is bit-identical for any backend
        and worker count (given the same seed and ``shard_size``).
        """
        if rng is not None:
            root = resolve_seed_sequence(rng)
        elif seed is None:
            root = np.random.SeedSequence()
        else:
            root = resolve_seed_sequence(seed)
        shards = plan_shards(n_samples, root, shard_size)
        exec_backend = backend if backend is not None else resolve_backend()
        payloads = run_sharded(
            exec_backend,
            partial(
                _st_mc_shard_task, tuple(self.blocks), include_residual_noise
            ),
            shards,
        )
        self._u_samples = [
            np.concatenate(
                [payloads[s.index][f"u{j}"] for s in shards]
            )
            for j in range(len(self.blocks))
        ]
        self._v_samples = [
            np.concatenate(
                [payloads[s.index][f"v{j}"] for s in shards]
            )
            for j in range(len(self.blocks))
        ]

    def block_moment_samples(self, index: int) -> tuple[np.ndarray, np.ndarray]:
        """The (u, v) sample cloud of one block (diagnostics, Fig. 6/7)."""
        return self._u_samples[index], self._v_samples[index]

    def _batched_expectations(self, times: np.ndarray) -> np.ndarray | None:
        """Fused sample-average estimator over all blocks at once.

        Only the ``"samples"`` estimator batches; the histogram estimator
        keeps the per-block reference loop (its cost is dominated by the
        2-D histogram builds, not the survival evaluation).
        """
        if self.estimator != "samples":
            return None
        if not hasattr(self, "_u_stack"):
            # Blocks share one factor draw, so the clouds stack rectangular.
            self._u_stack = np.vstack(self._u_samples)
            self._v_stack = np.vstack(self._v_samples)
            self._log_areas = np.log(
                [block.blod.area for block in self.blocks]
            )
        return batched_sample_expectations(
            self._scaled_log_t_ratios(times),
            self._log_areas,
            self._u_stack,
            self._v_stack,
        )

    def block_expectation(self, index: int, times: np.ndarray) -> np.ndarray:
        """Sample-average or histogram-integrated block expectation."""
        block = self.blocks[index]
        u = self._u_samples[index]
        v = self._v_samples[index]
        log_t_ratio = safe_log_t_ratio(times, block.alpha)
        if self.estimator == "samples":
            scaled = block.b * log_t_ratio[:, None]
            finite = np.isfinite(scaled)
            scaled_safe = np.where(finite, scaled, 0.0)
            log_g = scaled_safe * u[None, :] + 0.5 * scaled_safe**2 * v[None, :]
            exponent = np.clip(
                np.log(block.blod.area) + log_g, _EXP_MIN, _EXP_MAX
            )
            survival = np.where(finite, np.exp(-np.exp(exponent)), 1.0)
            return survival.mean(axis=1)
        counts, u_edges, v_edges = np.histogram2d(u, v, bins=self.bins)
        probabilities = counts / counts.sum()
        u_mid = 0.5 * (u_edges[:-1] + u_edges[1:])
        v_mid = 0.5 * (v_edges[:-1] + v_edges[1:])
        survival = _survival_on_grid(
            log_t_ratio, block.b, block.blod.area, u_mid, v_mid
        )
        return np.einsum("tpq,pq->t", survival, probabilities)


def worst_case_blocks(
    blocks: list[BlockReliability],
) -> list[BlockReliability]:
    """Temperature-unaware variant: every block gets the worst parameters.

    The hottest block has the smallest ``alpha``; its ``(alpha, b)`` pair is
    applied chip-wide, reproducing the "temperature-unaware approach by
    using the worst-case temperature across the chip" of Fig. 10.
    """
    if not blocks:
        raise ConfigurationError("need at least one block")
    worst = min(blocks, key=lambda block: block.alpha)
    return [
        BlockReliability(blod=block.blod, alpha=worst.alpha, b=worst.b)
        for block in blocks
    ]
