"""Traditional guard-band baseline (eq. (33)-(34), refs [4], [14], [28]).

The conventional flow assumes every device on every chip has the *minimum*
oxide thickness and runs at the *worst-case* temperature for its entire
lifetime. The chip reliability is then a single area-scaled Weibull and
the required lifetime has the closed form of eq. (34). The paper shows
this is ~50 % pessimistic versus the statistical analysis (Table III).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class GuardBandAnalyzer:
    """Deterministic worst-corner reliability model.

    Parameters
    ----------
    total_area:
        Chip's total normalized oxide area ``A``.
    alpha_worst:
        Characteristic life at the worst-case operating temperature.
    b_worst:
        Weibull slope coefficient at the worst-case temperature.
    x_min:
        Minimum (guard-band) oxide thickness in nm, typically nominal
        minus three total sigma.
    """

    total_area: float
    alpha_worst: float
    b_worst: float
    x_min: float

    def __post_init__(self) -> None:
        for name in ("total_area", "alpha_worst", "b_worst", "x_min"):
            if getattr(self, name) <= 0.0:
                raise ConfigurationError(f"{name} must be positive")

    @property
    def beta(self) -> float:
        """Chip-wide Weibull slope ``b_worst * x_min``."""
        return self.b_worst * self.x_min

    def reliability(self, times: np.ndarray | float) -> np.ndarray | float:
        """Eq. (33): ``R(t) = exp(-A (t/alpha)^(b x_min))``."""
        times = np.asarray(times, dtype=float)
        if np.any(times < 0.0):
            raise ConfigurationError("times must be non-negative")
        value = np.exp(-self.total_area * (times / self.alpha_worst) ** self.beta)
        return value if value.ndim else float(value)

    def failure_probability(self, times: np.ndarray | float) -> np.ndarray | float:
        """``1 - R(t)`` computed stably."""
        times = np.asarray(times, dtype=float)
        if np.any(times < 0.0):
            raise ConfigurationError("times must be non-negative")
        value = -np.expm1(
            -self.total_area * (times / self.alpha_worst) ** self.beta
        )
        return value if value.ndim else float(value)

    def lifetime(self, reliability_target: float) -> float:
        """Eq. (34): ``t_req = alpha (-ln(R_req)/A)^(1/(b x_min))``."""
        if not 0.0 < reliability_target < 1.0:
            raise ConfigurationError(
                f"reliability target must be in (0, 1), got {reliability_target}"
            )
        return float(
            self.alpha_worst
            * (-np.log(reliability_target) / self.total_area)
            ** (1.0 / self.beta)
        )
