"""Hybrid analytical/table-look-up reliability evaluation (Sec. IV-E).

Designers re-evaluate the same design under many setup/application
profiles; each profile changes only the per-block ``(alpha_j, b_j)``. Since
the eq. (28) double integral of block ``j`` depends on time, temperature
and voltage solely through ``ln(t/alpha_j)`` and ``b_j``, a per-block 2-D
table over those two indices is computed once per design and thereafter
any profile is evaluated by bilinear interpolation — the 0.02 s "hybrid"
rows of Table III. All blocks share the same index axes (footnote 5); the
entries differ through ``A_j`` and each block's BLOD marginals.
"""

from __future__ import annotations

import numpy as np

from repro.core.closed_form import _EXP_MAX, _EXP_MIN
from repro.core.ensemble import BlockReliability
from repro.errors import ConfigurationError
from repro.kernels.artifacts import memoize_artifact
from repro.kernels.config import fast_paths_enabled, precision
from repro.kernels.survival import batched_rule_expectations, pad_rule_tables
from repro.obs import metrics
from repro.obs.trace import is_enabled, span
from repro.stats.integration import midpoint_rule


class HybridAnalyzer:
    """Pre-tabulated per-block expectations with bilinear interpolation.

    Parameters
    ----------
    blocks:
        Per-block BLOD + *nominal* Weibull parameters (used only to centre
        the default table ranges; queries may pass any other profile).
    n_alpha, n_b:
        Table resolution along ``ln(t/alpha)`` and ``b`` (paper: 100x100).
    log_t_ratio_range:
        Index range for ``ln(t/alpha)``; the default [-40, -1] covers
        lifetimes from ~1e-18 alpha to 0.37 alpha, far beyond any ppm
        target of interest.
    b_range:
        Index range for the slope coefficient; defaults to +/-30 % around
        the blocks' nominal values (covering any realistic temperature
        profile of the same process).
    l0, tail:
        Integration rule parameters (same midpoint rule as st_fast).
    include_residual_fluctuation:
        See :class:`repro.core.ensemble.StFastAnalyzer`.
    """

    def __init__(
        self,
        blocks: list[BlockReliability],
        n_alpha: int = 100,
        n_b: int = 100,
        log_t_ratio_range: tuple[float, float] | None = None,
        b_range: tuple[float, float] | None = None,
        l0: int = 10,
        tail: float = 1e-6,
        include_residual_fluctuation: bool = True,
    ) -> None:
        if not blocks:
            raise ConfigurationError("need at least one block")
        if n_alpha < 2 or n_b < 2:
            raise ConfigurationError("table needs at least 2 indices per axis")
        self.blocks = list(blocks)
        if log_t_ratio_range is None:
            log_t_ratio_range = (-40.0, -1.0)
        if b_range is None:
            bs = np.array([block.b for block in blocks])
            b_range = (0.7 * bs.min(), 1.3 * bs.max())
        lo, hi = log_t_ratio_range
        if not lo < hi:
            raise ConfigurationError("log_t_ratio_range must be increasing")
        b_lo, b_hi = b_range
        if not 0.0 < b_lo < b_hi:
            raise ConfigurationError("b_range must be positive and increasing")
        self.log_t_axis = np.linspace(lo, hi, n_alpha)
        self.b_axis = np.linspace(b_lo, b_hi, n_b)
        self.tables = np.empty((len(blocks), n_alpha, n_b))
        with span(
            "hybrid.build_table",
            blocks=len(blocks),
            n_alpha=n_alpha,
            n_b=n_b,
        ):
            if fast_paths_enabled():
                # The batched build is memoized across processes: the
                # tables depend only on the blocks' BLODs, the index
                # axes, the rule knobs and the precision tier — all of
                # which the payload captures exactly.
                arrays = memoize_artifact(
                    "hybrid_tables",
                    {
                        "u_nominal": [b.blod.u_nominal for b in self.blocks],
                        "u_sensitivities": [
                            b.blod.u_sensitivities for b in self.blocks
                        ],
                        "v_matrix": [b.blod.v_matrix for b in self.blocks],
                        "v_deterministic": [
                            b.blod.v_deterministic for b in self.blocks
                        ],
                        "sigma_independent": [
                            b.blod.sigma_independent for b in self.blocks
                        ],
                        "n_devices": [b.blod.n_devices for b in self.blocks],
                        "areas": [b.blod.area for b in self.blocks],
                        "log_t_axis": self.log_t_axis,
                        "b_axis": self.b_axis,
                        "l0": l0,
                        "tail": tail,
                        "include_residual_fluctuation": (
                            include_residual_fluctuation
                        ),
                        "precision": precision(),
                    },
                    lambda: {
                        "tables": self._build_tables_batched(
                            l0, tail, include_residual_fluctuation
                        )
                    },
                    required=("tables",),
                )
                tables = np.asarray(arrays["tables"])
                if tables.shape != self.tables.shape:
                    tables = self._build_tables_batched(
                        l0, tail, include_residual_fluctuation
                    )
                self.tables[:] = tables
            else:
                for j, block in enumerate(blocks):
                    self.tables[j] = self._build_block_table(
                        block, l0, tail, include_residual_fluctuation
                    )
            metrics.inc("hybrid.table_entries", len(blocks) * n_alpha * n_b)

    def _build_block_table(
        self,
        block: BlockReliability,
        l0: int,
        tail: float,
        include_residual_fluctuation: bool,
    ) -> np.ndarray:
        """Tabulate ``E[exp(-A_j g)]`` over the (ln(t/alpha), b) axes.

        The table stores the *log* of the block failure probability:
        failure varies as ``exp(beta_chip * ln(t/alpha))`` across the axis,
        so bilinear interpolation in log space is near-exact while raw
        bilinear interpolation would overestimate by the chord-vs-curve gap
        of an exponential (~10-20 % at 100x100 resolution).
        """
        u_rule = midpoint_rule(block.blod.u_dist(), n_points=l0, tail=tail)
        v_rule = midpoint_rule(
            block.blod.v_chi2_match(include_residual_fluctuation),
            n_points=l0,
            tail=tail,
        )
        scaled = self.log_t_axis[:, None, None, None] * self.b_axis[None, :, None, None]
        log_g = (
            scaled * u_rule.points[None, None, :, None]
            + 0.5 * scaled**2 * v_rule.points[None, None, None, :]
        )
        exponent = np.clip(
            np.log(block.blod.area) + log_g, _EXP_MIN, _EXP_MAX
        )
        survival = np.exp(-np.exp(exponent))
        expectation = np.einsum(
            "abpq,p,q->ab", survival, u_rule.weights, v_rule.weights
        )
        failure = np.clip(1.0 - expectation, 1e-300, None)
        return np.log(failure)

    def _build_tables_batched(
        self,
        l0: int,
        tail: float,
        include_residual_fluctuation: bool,
    ) -> np.ndarray:
        """Build every block's table in one fused pass.

        All blocks share the index axes (footnote 5), so the
        ``ln(t/alpha) * b`` grid is computed once and broadcast across
        blocks, and the per-block tensor-rule loop collapses into the
        fused kernel of :func:`repro.kernels.survival
        .batched_rule_expectations` over the flattened ``(A * B,)`` index
        grid with padded per-block node tables.
        """
        u_rules = []
        v_rules = []
        for block in self.blocks:
            u_rules.append(
                midpoint_rule(block.blod.u_dist(), n_points=l0, tail=tail)
            )
            v_rules.append(
                midpoint_rule(
                    block.blod.v_chi2_match(include_residual_fluctuation),
                    n_points=l0,
                    tail=tail,
                )
            )
        u_points, u_weights = pad_rule_tables(
            [r.points for r in u_rules], [r.weights for r in u_rules]
        )
        v_points, v_weights = pad_rule_tables(
            [r.points for r in v_rules], [r.weights for r in v_rules]
        )
        log_areas = np.log([block.blod.area for block in self.blocks])

        scaled = self.log_t_axis[:, None] * self.b_axis[None, :]
        flat = np.broadcast_to(
            scaled.reshape(1, -1), (len(self.blocks), scaled.size)
        )
        expectation = batched_rule_expectations(
            flat, log_areas, u_points, u_weights, v_points, v_weights
        )
        failure = np.clip(1.0 - expectation, 1e-300, None)
        return np.log(failure).reshape(self.tables.shape)

    def _interpolate(
        self, table: np.ndarray, log_t_ratio: np.ndarray, b: float
    ) -> np.ndarray:
        """Bilinear interpolation of one block's log-failure table.

        ``log_t_ratio`` below the left edge clamps to failure 0 (times far
        below any tabulated point have negligible failure); values above
        the right edge or ``b`` outside its axis raise, because that means
        the table was built for a different operating envelope.
        """
        if not self.b_axis[0] <= b <= self.b_axis[-1]:
            raise ConfigurationError(
                f"b = {b} outside the table range "
                f"[{self.b_axis[0]:.3f}, {self.b_axis[-1]:.3f}]"
            )
        finite = np.isfinite(log_t_ratio)
        clamped_low = log_t_ratio <= self.log_t_axis[0]
        if np.any(log_t_ratio[finite] > self.log_t_axis[-1]):
            raise ConfigurationError(
                "query time beyond the table's ln(t/alpha) range; rebuild "
                "the table with a wider log_t_ratio_range"
            )
        x = np.clip(log_t_ratio, self.log_t_axis[0], self.log_t_axis[-1])
        x = np.where(finite, x, self.log_t_axis[0])

        ix = np.clip(
            np.searchsorted(self.log_t_axis, x) - 1, 0, len(self.log_t_axis) - 2
        )
        tx = (x - self.log_t_axis[ix]) / (
            self.log_t_axis[ix + 1] - self.log_t_axis[ix]
        )
        iy = int(
            np.clip(np.searchsorted(self.b_axis, b) - 1, 0, len(self.b_axis) - 2)
        )
        ty = (b - self.b_axis[iy]) / (self.b_axis[iy + 1] - self.b_axis[iy])

        f00 = table[ix, iy]
        f10 = table[ix + 1, iy]
        f01 = table[ix, iy + 1]
        f11 = table[ix + 1, iy + 1]
        log_value = (
            f00 * (1.0 - tx) * (1.0 - ty)
            + f10 * tx * (1.0 - ty)
            + f01 * (1.0 - tx) * ty
            + f11 * tx * ty
        )
        missed = clamped_low | ~finite
        if is_enabled():
            # "hits" interpolate from the table; "misses" fall outside it
            # (clamped below the left edge, negligible-failure region).
            n_miss = int(np.count_nonzero(missed))
            metrics.inc("hybrid.lut_hits", int(np.size(missed)) - n_miss)
            metrics.inc("hybrid.lut_misses", n_miss)
        return np.where(missed, 0.0, np.exp(log_value))

    def _interpolate_batched(
        self, log_t_ratios: np.ndarray, bs: np.ndarray
    ) -> np.ndarray:
        """All blocks' bilinear look-ups in one pass.

        Same range semantics as :meth:`_interpolate` — ``b`` outside its
        axis or a finite ``ln(t/alpha)`` beyond the right edge raises,
        values below the left edge clamp to failure 0 — applied across the
        whole ``(block, time)`` query matrix at once.
        """
        outside = (bs < self.b_axis[0]) | (bs > self.b_axis[-1])
        if np.any(outside):
            b = float(bs[int(np.argmax(outside))])
            raise ConfigurationError(
                f"b = {b} outside the table range "
                f"[{self.b_axis[0]:.3f}, {self.b_axis[-1]:.3f}]"
            )
        finite = np.isfinite(log_t_ratios)
        clamped_low = log_t_ratios <= self.log_t_axis[0]
        if np.any(log_t_ratios[finite] > self.log_t_axis[-1]):
            raise ConfigurationError(
                "query time beyond the table's ln(t/alpha) range; rebuild "
                "the table with a wider log_t_ratio_range"
            )
        x = np.clip(log_t_ratios, self.log_t_axis[0], self.log_t_axis[-1])
        x = np.where(finite, x, self.log_t_axis[0])

        ix = np.clip(
            np.searchsorted(self.log_t_axis, x) - 1, 0, len(self.log_t_axis) - 2
        )
        tx = (x - self.log_t_axis[ix]) / (
            self.log_t_axis[ix + 1] - self.log_t_axis[ix]
        )
        iy = np.clip(
            np.searchsorted(self.b_axis, bs) - 1, 0, len(self.b_axis) - 2
        )
        ty = ((bs - self.b_axis[iy]) / (self.b_axis[iy + 1] - self.b_axis[iy]))[
            :, None
        ]
        rows = np.arange(len(self.blocks))[:, None]
        iy = iy[:, None]

        f00 = self.tables[rows, ix, iy]
        f10 = self.tables[rows, ix + 1, iy]
        f01 = self.tables[rows, ix, iy + 1]
        f11 = self.tables[rows, ix + 1, iy + 1]
        log_value = (
            f00 * (1.0 - tx) * (1.0 - ty)
            + f10 * tx * (1.0 - ty)
            + f01 * (1.0 - tx) * ty
            + f11 * tx * ty
        )
        missed = clamped_low | ~finite
        if is_enabled():
            n_miss = int(np.count_nonzero(missed))
            metrics.inc("hybrid.lut_hits", int(np.size(missed)) - n_miss)
            metrics.inc("hybrid.lut_misses", n_miss)
        return np.where(missed, 0.0, np.exp(log_value))

    def block_failure_probabilities(
        self,
        times: np.ndarray | float,
        alphas: np.ndarray | None = None,
        bs: np.ndarray | None = None,
    ) -> np.ndarray:
        """``(n_blocks, n_times)`` interpolated block failure probabilities.

        ``alphas``/``bs`` override the per-block Weibull parameters —
        the table-reuse path for a different setup/application profile.
        """
        times = np.atleast_1d(np.asarray(times, dtype=float))
        if np.any(times < 0.0):
            raise ConfigurationError("times must be non-negative")
        if alphas is None:
            alphas = np.array([block.alpha for block in self.blocks])
        else:
            alphas = np.asarray(alphas, dtype=float)
        if bs is None:
            bs = np.array([block.b for block in self.blocks])
        else:
            bs = np.asarray(bs, dtype=float)
        if alphas.shape != (len(self.blocks),) or bs.shape != (len(self.blocks),):
            raise ConfigurationError("need one (alpha, b) pair per block")
        if fast_paths_enabled():
            with np.errstate(divide="ignore"):
                log_t_ratios = np.where(
                    times[None, :] > 0.0,
                    np.log(times[None, :] / alphas[:, None]),
                    -np.inf,
                )
            return self._interpolate_batched(log_t_ratios, bs)
        out = np.empty((len(self.blocks), times.size))
        with np.errstate(divide="ignore"):
            for j in range(len(self.blocks)):
                log_t_ratio = np.where(
                    times > 0.0, np.log(times / alphas[j]), -np.inf
                )
                out[j] = self._interpolate(self.tables[j], log_t_ratio, float(bs[j]))
        return out

    def reliability(
        self,
        times: np.ndarray | float,
        alphas: np.ndarray | None = None,
        bs: np.ndarray | None = None,
        clip: bool = True,
    ) -> np.ndarray:
        """Ensemble chip reliability via table look-up (eq. (18) combine)."""
        times_arr = np.asarray(times, dtype=float)
        scalar = times_arr.ndim == 0
        failures = self.block_failure_probabilities(times_arr, alphas, bs)
        value = 1.0 - failures.sum(axis=0)
        if clip:
            value = np.clip(value, 0.0, 1.0)
        return float(value[0]) if scalar else value

    def failure_probability(
        self,
        times: np.ndarray | float,
        alphas: np.ndarray | None = None,
        bs: np.ndarray | None = None,
    ) -> np.ndarray:
        """``1 - R_c(t)`` via table look-up."""
        times_arr = np.asarray(times, dtype=float)
        scalar = times_arr.ndim == 0
        value = 1.0 - np.atleast_1d(self.reliability(times_arr, alphas, bs))
        return float(value[0]) if scalar else value
