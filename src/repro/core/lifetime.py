"""Lifetime solvers for ppm-level reliability targets (eq. (32)).

The paper's quality metric is *n-faults-per-million parts*: the time at
which the first ``n`` of a million chips have failed, i.e.
``R(t_req) = 1 - n * 1e-6``. The statistical analyzers expose smooth
reliability functions, so the lifetime is found by bracketing and bisecting
in log time; Monte-Carlo references provide sampled curves that are
interpolated in the same coordinates.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np
from scipy import optimize

from repro.errors import ConfigurationError, NumericalError


def ppm_to_reliability(ppm: float) -> float:
    """Reliability target for an ``n``-faults-per-million criterion."""
    if not 0.0 < ppm < 1e6:
        raise ConfigurationError(f"ppm must be in (0, 1e6), got {ppm}")
    return 1.0 - ppm * 1e-6


def solve_lifetime(
    reliability_fn: Callable[[float], float],
    reliability_target: float,
    t_guess: float = 1.0e5,
    max_expansions: int = 80,
) -> float:
    """Solve ``R(t) = R_target`` for a monotone reliability function.

    Brackets the root geometrically in log time starting from ``t_guess``
    then bisects with Brent's method. ``reliability_fn`` must take a scalar
    time (hours) and return a scalar reliability.
    """
    if not 0.0 < reliability_target < 1.0:
        raise ConfigurationError(
            f"reliability target must be in (0, 1), got {reliability_target}"
        )
    if t_guess <= 0.0:
        raise ConfigurationError(f"t_guess must be positive, got {t_guess}")

    def objective(log_t: float) -> float:
        return float(reliability_fn(float(np.exp(log_t)))) - reliability_target

    log_lo = log_hi = float(np.log(t_guess))
    value = objective(log_lo)
    if value == 0.0:  # reprolint: disable=RPL005 (exact root hit, no bracketing needed)
        return float(np.exp(log_lo))
    step = np.log(4.0)
    if value > 0.0:
        # Reliability still above target: move later in time.
        for _ in range(max_expansions):
            log_hi += step
            if objective(log_hi) <= 0.0:
                break
            log_lo = log_hi
        else:
            raise NumericalError(
                "could not bracket the lifetime (reliability never fell "
                "below the target); check the model calibration"
            )
    else:
        # Already failed at the guess: move earlier in time.
        for _ in range(max_expansions):
            log_lo -= step
            if objective(log_lo) >= 0.0:
                break
            log_hi = log_lo
        else:
            raise NumericalError(
                "could not bracket the lifetime (reliability below the "
                "target at all probed times); check the model calibration"
            )
    root = optimize.brentq(objective, log_lo, log_hi, xtol=1e-12, rtol=1e-12)
    return float(np.exp(root))


def lifetime_from_curve(
    times: np.ndarray,
    reliabilities: np.ndarray,
    reliability_target: float,
) -> float:
    """Interpolate a sampled reliability curve at a target level.

    Interpolation is linear in ``(log t, log(1 - R))`` — the natural
    coordinates for Weibull-like failure curves. The curve must bracket
    the target.
    """
    times = np.asarray(times, dtype=float)
    reliabilities = np.asarray(reliabilities, dtype=float)
    if times.shape != reliabilities.shape or times.ndim != 1:
        raise ConfigurationError("need matching 1-D time/reliability arrays")
    if np.any(times <= 0.0):
        raise ConfigurationError("curve times must be positive")
    if np.any(np.diff(times) <= 0.0):
        raise ConfigurationError("curve times must be strictly increasing")
    if not 0.0 < reliability_target < 1.0:
        raise ConfigurationError(
            f"reliability target must be in (0, 1), got {reliability_target}"
        )
    failure = np.clip(1.0 - reliabilities, 1e-300, 1.0)
    target_failure = 1.0 - reliability_target
    if target_failure < failure[0] or target_failure > failure[-1]:
        raise NumericalError(
            f"target failure probability {target_failure:.3e} outside the "
            f"sampled curve range [{failure[0]:.3e}, {failure[-1]:.3e}]"
        )
    # Enforce monotonicity against MC noise before interpolating.
    log_failure = np.maximum.accumulate(np.log(failure))
    return float(
        np.exp(np.interp(np.log(target_failure), log_failure, np.log(times)))
    )


def lifetime_at_ppm(
    reliability_fn: Callable[[float], float],
    ppm: float,
    t_guess: float = 1.0e5,
) -> float:
    """Convenience wrapper: lifetime at an n-per-million criterion."""
    return solve_lifetime(reliability_fn, ppm_to_reliability(ppm), t_guess)


def failure_time_quantile(failure_times: np.ndarray, ppm: float) -> float:
    """Empirical ppm lifetime from failure-time Monte-Carlo samples.

    Only meaningful when the sample is large enough to resolve the
    quantile (``len(samples) >> 1e6 / ppm``); raises otherwise.
    """
    failure_times = np.asarray(failure_times, dtype=float)
    if failure_times.ndim != 1 or failure_times.size < 2:
        raise ConfigurationError("need a 1-D sample of failure times")
    quantile = ppm * 1e-6
    if failure_times.size * quantile < 1.0:
        raise NumericalError(
            f"{failure_times.size} samples cannot resolve a "
            f"{ppm}-per-million quantile"
        )
    return float(np.quantile(failure_times, quantile))
