"""Mission profiles: reliability under time-varying operating conditions.

The DATE 2010 title is reliability *management*: chips do not sit at one
operating point for ten years — they cycle through workloads, voltages and
thermal states. This module extends the analysis to a mission profile,
i.e. a set of operating phases with time fractions.

Damage model: the **cumulative-exposure** (effective-age) law. Oxide
defects accumulate at a per-condition rate; breakdown statistics depend on
the accumulated dose (Sec. III's defect-generation picture), so time spent
in phase ``p`` advances a device's effective age at the speed ratio
``alpha_ref / alpha_p``. For a block whose phases share the Weibull slope
coefficient, the mixture collapses *exactly* to a single equivalent
condition:

    1 / alpha_eff_j = sum_p  w_p / alpha_{j,p}

(the time-fraction-weighted harmonic mean). The slope coefficient ``b``
varies only weakly with temperature (|db/b| ~ 1-2 % across realistic
profiles), so the per-block effective slope is the time-weighted mean —
the one approximation of this module, quantified in the tests.

With effective ``(alpha_eff, b_eff)`` per block the whole closed-form
machinery of the paper applies unchanged; a mission analysis costs exactly
one st_fast evaluation.

The effective-age math itself lives in :mod:`repro.scenario.effective`
(one home, shared with the ordered-phase scenario engine);
:func:`effective_block_params` is re-exported here for compatibility.
This module is now a thin residency-composition adapter over it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.analyzer import ReliabilityAnalyzer
from repro.core.ensemble import BlockReliability
from repro.core.lifetime import ppm_to_reliability, solve_lifetime
from repro.errors import ConfigurationError
from repro.scenario.effective import (  # noqa: F401  (re-export)
    collapse_to_st_fast,
    effective_block_params,
    phase_dose_shares,
)

#: Tolerance for the phase time fractions summing to one.
_FRACTION_TOL = 1e-9


@dataclass(frozen=True)
class OperatingPhase:
    """One operating condition and the fraction of lifetime spent in it.

    Parameters
    ----------
    name:
        Phase label (e.g. ``"idle"``, ``"turbo"``).
    fraction:
        Fraction of total operating time spent in this phase.
    block_temperatures:
        Per-block temperatures in celsius (floorplan order), or a single
        float applied to every block.
    vdd:
        Supply voltage during the phase; ``None`` uses the OBD model's
        reference voltage.
    """

    name: str
    fraction: float
    block_temperatures: np.ndarray | float
    vdd: float | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("phase name must be non-empty")
        if not 0.0 < self.fraction <= 1.0:
            raise ConfigurationError(
                f"phase {self.name!r} fraction must be in (0, 1], "
                f"got {self.fraction}"
            )

    def temperatures_for(self, n_blocks: int) -> np.ndarray:
        """Per-block temperature vector for a design with ``n_blocks``."""
        temps = np.asarray(self.block_temperatures, dtype=float)
        if temps.ndim == 0:
            return np.full(n_blocks, float(temps))
        if temps.shape != (n_blocks,):
            raise ConfigurationError(
                f"phase {self.name!r}: expected {n_blocks} block "
                f"temperatures, got shape {temps.shape}"
            )
        return temps


@dataclass(frozen=True)
class MissionProfile:
    """A set of operating phases whose time fractions sum to one."""

    phases: tuple[OperatingPhase, ...]

    def __post_init__(self) -> None:
        if not self.phases:
            raise ConfigurationError("mission profile needs at least one phase")
        names = [phase.name for phase in self.phases]
        if len(set(names)) != len(names):
            raise ConfigurationError("phase names must be unique")
        total = sum(phase.fraction for phase in self.phases)
        if abs(total - 1.0) > _FRACTION_TOL:
            raise ConfigurationError(
                f"phase fractions must sum to 1, got {total}"
            )

    @property
    def n_phases(self) -> int:
        """Number of operating phases."""
        return len(self.phases)

    @property
    def fractions(self) -> np.ndarray:
        """Phase time fractions as an array."""
        return np.array([phase.fraction for phase in self.phases])


class MissionAnalyzer:
    """Ensemble reliability under a mission profile (cumulative exposure).

    Thin wrapper over :class:`StFastAnalyzer` at the per-block effective
    conditions; also reports each phase's share of the accumulated damage.
    """

    def __init__(
        self,
        blocks: list[BlockReliability],
        profile: MissionProfile,
        alphas: np.ndarray,
        bs: np.ndarray,
        l0: int = 10,
        tail: float = 1e-6,
        include_residual_fluctuation: bool = True,
    ) -> None:
        self.profile = profile
        self.alphas = np.asarray(alphas, dtype=float)
        self.bs = np.asarray(bs, dtype=float)
        if self.alphas.ndim != 2 or self.alphas.shape[1] != len(blocks):
            raise ConfigurationError(
                f"alphas must be (n_phases, {len(blocks)}), "
                f"got {self.alphas.shape}"
            )
        self.effective_blocks, self._analyzer = collapse_to_st_fast(
            blocks,
            profile.fractions,
            self.alphas,
            self.bs,
            l0=l0,
            tail=tail,
            include_residual_fluctuation=include_residual_fluctuation,
        )

    def reliability(
        self, times: np.ndarray | float, clip: bool = True
    ) -> np.ndarray | float:
        """Ensemble chip reliability under the mission profile."""
        return self._analyzer.reliability(times, clip=clip)

    def failure_probability(self, times: np.ndarray | float) -> np.ndarray | float:
        """``1 - R(t)`` under the mission profile."""
        return self._analyzer.failure_probability(times)

    def lifetime(self, ppm: float, t_guess: float = 1e5) -> float:
        """Mission lifetime at an n-per-million criterion."""
        return solve_lifetime(
            lambda t: float(self.reliability(t)),
            ppm_to_reliability(ppm),
            t_guess=t_guess,
        )

    def phase_damage_shares(self) -> np.ndarray:
        """``(n_phases, n_blocks)`` share of each block's damage per phase.

        Under cumulative exposure the dose rate of phase ``p`` in block
        ``j`` is ``w_p / alpha_{j,p}``; shares are normalized per block.
        A reliability manager uses this to see *which phase is aging which
        block*.
        """
        return phase_dose_shares(self.profile.fractions, self.alphas)


def mission_analyzer(
    analyzer: ReliabilityAnalyzer,
    profile: MissionProfile,
    l0: int | None = None,
) -> MissionAnalyzer:
    """Build a mission analyzer on top of a prepared design analysis.

    Each phase's per-block ``(alpha, b)`` comes from the design's OBD
    model at the phase's temperatures and voltage; the BLODs (process
    variation) are shared across phases — thickness does not change with
    the workload.
    """
    n_blocks = analyzer.floorplan.n_blocks
    alphas = np.empty((profile.n_phases, n_blocks))
    bs = np.empty((profile.n_phases, n_blocks))
    for p, phase in enumerate(profile.phases):
        temps = phase.temperatures_for(n_blocks)
        params = analyzer.obd_model.block_params(temps, phase.vdd)
        alphas[p] = [prm.alpha for prm in params]
        bs[p] = [prm.b for prm in params]
    return MissionAnalyzer(
        blocks=analyzer.blocks,
        profile=profile,
        alphas=alphas,
        bs=bs,
        l0=l0 if l0 is not None else analyzer.config.l0,
        tail=analyzer.config.tail,
        include_residual_fluctuation=analyzer.config.include_residual_fluctuation,
    )
