"""Monte-Carlo reference analyses over sample chips.

Two engines, both honouring the full variation model (shared inter-die +
spatial factors per chip, independent residual per device):

- :meth:`MonteCarloEngine.reliability_curve` — the paper's "1000 samples of
  MC" reference: draw sample chips, evaluate each chip's *conditional*
  reliability exactly from eq. (11) (every device's thickness enters the
  Weibull exponent), and average across chips. Resolves ppm-level targets
  because the conditional reliability is computed analytically.
- :meth:`MonteCarloEngine.failure_times` — the Fig. 10 reference: draw
  sample chips *and* every device's breakdown time, recording the chip's
  weakest-link failure time.

Device modes
------------
``exact``
    Per-device residual draws. Faithful but O(m) memory/time per chip —
    use for designs up to ~100K devices.
``binned`` (default)
    The residual standard normal is discretised into fine equal-width
    bins; per grid cell the device count per bin is drawn from the exact
    multinomial distribution. Because the devices of a cell are
    exchangeable, this is *distributionally identical* to per-device
    sampling up to the within-bin thickness quantisation (default 128 bins
    over +/-5 sigma, i.e. < 0.08 sigma quantisation — far below any other
    model error), while running orders of magnitude faster. The
    weakest-link property collapses each bin's minimum breakdown time to a
    single Weibull draw with the bin's aggregate area, keeping the
    failure-time engine exact under the same quantisation.

Execution
---------
Both engines run through :mod:`repro.exec`: chips are split into
fixed-size shards, each with its own ``SeedSequence.spawn`` child, and the
shard tasks are submitted to a serial/thread/process backend.  Per-shard
partial results are reduced in shard-index order, so for a given seed the
curves are **bit-identical** across backends, worker counts and
``chunk_size`` settings (``shard_size``, by contrast, is part of the
stream definition).  Long runs can pass ``checkpoint_path`` to persist
per-shard state atomically and resume after a kill to the same curve.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass
from functools import partial
from pathlib import Path
from typing import TYPE_CHECKING, Any

import numpy as np
from scipy import stats as sps

from repro.core.ensemble import BlockReliability
from repro.errors import ConfigurationError, NumericalError
from repro.exec.backends import ExecBackend, resolve_backend
from repro.exec.checkpoint import Checkpoint
from repro.exec.runner import run_sharded
from repro.exec.sharding import (
    DEFAULT_SHARD_SIZE,
    Shard,
    plan_shards,
    resolve_seed_sequence,
)
from repro.obs import metrics
from repro.obs.logging import get_logger
from repro.obs.trace import span
from repro.variation.sampling import ChipSampler

if TYPE_CHECKING:
    SeedLike = int | np.random.SeedSequence | np.random.Generator

logger = get_logger("core.montecarlo")

#: Exponent clip bound for survival exponent sums.
_EXP_CLIP = 700.0


@dataclass(frozen=True)
class ResidualBinning:
    """Equal-width discretisation of the residual standard normal."""

    n_bins: int = 128
    z_max: float = 5.0

    def __post_init__(self) -> None:
        if self.n_bins < 8:
            raise ConfigurationError(f"need >= 8 bins, got {self.n_bins}")
        if self.z_max <= 0.0:
            raise ConfigurationError(f"z_max must be positive, got {self.z_max}")

    @property
    def centers(self) -> np.ndarray:
        """Bin-centre z-scores."""
        edges = np.linspace(-self.z_max, self.z_max, self.n_bins + 1)
        return 0.5 * (edges[:-1] + edges[1:])

    @property
    def probabilities(self) -> np.ndarray:
        """Exact standard-normal bin probabilities (tails folded into the
        outermost bins so they sum to one)."""
        edges = np.linspace(-self.z_max, self.z_max, self.n_bins + 1)
        cdf = sps.norm.cdf(edges)
        probs = np.diff(cdf)
        probs[0] += cdf[0]
        probs[-1] += 1.0 - cdf[-1]
        return probs


@dataclass(frozen=True)
class ReliabilityCurve:
    """An ensemble reliability curve estimated by Monte Carlo."""

    times: np.ndarray
    reliability: np.ndarray
    std_error: np.ndarray
    n_chips: int

    def failure_probability(self) -> np.ndarray:
        """``1 - R(t)`` along the curve."""
        return 1.0 - self.reliability


class MonteCarloEngine:
    """Sample-chip Monte-Carlo reference for a prepared design.

    Parameters
    ----------
    sampler:
        Chip sampler binding the floorplan, grid and thickness model.
    blocks:
        Per-block BLOD + Weibull parameters (block order must match the
        sampler's floorplan).
    device_mode:
        ``"binned"`` (default) or ``"exact"`` — see the module docstring.
    binning:
        Residual discretisation for the binned mode.
    chunk_size:
        Target chips per submitted task (scheduling granularity only —
        never affects results).
    shard_size:
        Chips per seed shard.  Part of the deterministic stream
        definition: changing it redraws the sample, while backend, worker
        count and ``chunk_size`` never do.
    backend:
        Execution backend for shard tasks; defaults to the environment
        selection (``REPRO_EXEC_BACKEND``/``REPRO_JOBS``, serial when
        unset).
    """

    def __init__(
        self,
        sampler: ChipSampler,
        blocks: list[BlockReliability],
        device_mode: str = "binned",
        binning: ResidualBinning | None = None,
        chunk_size: int = 100,
        shard_size: int = DEFAULT_SHARD_SIZE,
        backend: ExecBackend | None = None,
    ) -> None:
        if device_mode not in ("binned", "exact"):
            raise ConfigurationError(f"unknown device mode {device_mode!r}")
        if len(blocks) != sampler.floorplan.n_blocks:
            raise ConfigurationError(
                "need one BlockReliability per floorplan block"
            )
        for block, fp_block in zip(blocks, sampler.floorplan.blocks, strict=True):
            if block.blod.name != fp_block.name:
                raise ConfigurationError(
                    f"block order mismatch: {block.blod.name!r} vs "
                    f"{fp_block.name!r}"
                )
        if chunk_size < 1:
            raise ConfigurationError(f"chunk_size must be >= 1, got {chunk_size}")
        if shard_size < 1:
            raise ConfigurationError(f"shard_size must be >= 1, got {shard_size}")
        self.sampler = sampler
        self.blocks = list(blocks)
        self.device_mode = device_mode
        self.binning = binning if binning is not None else ResidualBinning()
        self.chunk_size = chunk_size
        self.shard_size = shard_size
        self.backend = backend if backend is not None else resolve_backend()

    @property
    def _shards_per_task(self) -> int:
        """Consecutive shards bundled into one backend task."""
        return max(1, self.chunk_size // self.shard_size)

    def _checkpoint(
        self,
        checkpoint_path: str | Path | None,
        kind: str,
        n_chips: int,
        root: np.random.SeedSequence,
        times: np.ndarray | None,
        save_every: int,
    ) -> Checkpoint | None:
        """A checkpoint bound to this exact run, or None when not requested."""
        if checkpoint_path is None:
            return None
        meta: dict[str, Any] = {
            "kind": kind,
            "n_chips": n_chips,
            "shard_size": self.shard_size,
            "entropy": str(root.entropy),
            "device_mode": self.device_mode,
            "binning": {
                "n_bins": self.binning.n_bins,
                "z_max": self.binning.z_max,
            },
            "blocks": [
                {
                    "name": block.name,
                    "alpha": block.alpha,
                    "b": block.b,
                    "area": block.blod.area,
                }
                for block in self.blocks
            ],
        }
        if times is not None:
            meta["times"] = times
        return Checkpoint(checkpoint_path, meta, save_every=save_every)

    # ------------------------------------------------------------------
    # Conditional-reliability MC (Table III reference)
    # ------------------------------------------------------------------

    def reliability_curve(
        self,
        times: np.ndarray,
        n_chips: int,
        rng: SeedLike,
        checkpoint_path: str | Path | None = None,
        checkpoint_every: int = 16,
        cancel_check: Callable[[], bool] | None = None,
    ) -> ReliabilityCurve:
        """Ensemble reliability by averaging conditional chip reliability.

        ``R_hat(t) = mean_c exp(-sum_j sum_i a_i (t/alpha_j)^(b_j x_i))``
        over ``n_chips`` sample chips.  ``rng`` may be an integer seed, a
        ``SeedSequence`` or a ``Generator``; the sample is sharded
        deterministically (see the module docstring), so the curve depends
        only on the seed, ``n_chips`` and ``shard_size`` — never on the
        backend, worker count or ``chunk_size``.

        With ``checkpoint_path``, accumulated per-shard state is written
        atomically every ``checkpoint_every`` shards (plus on abnormal
        exit); rerunning the same call resumes from the file and produces
        a curve bit-identical to an uninterrupted run.  Pass an ``int`` or
        ``SeedSequence`` seed for resumable runs — a ``Generator`` draws
        fresh entropy per call, which a resume cannot reproduce.

        ``cancel_check`` (polled between task groups) cooperatively stops
        the run with :class:`~repro.errors.ExecutionInterrupted` after
        flushing the checkpoint — the hook the service layer uses for job
        cancellation and graceful shutdown.

        Chips whose exponent sum comes out non-finite (numerical blow-up in
        a pathological sample) are dropped with a warning and counted in
        the ``mc.nonfinite_chunks`` / ``mc.nonfinite_chips`` metrics; the
        returned curve then averages the remaining valid chips (its
        ``n_chips`` reflects the valid count).  Only when *every* chip is
        invalid does the method raise.
        """
        times = np.atleast_1d(np.asarray(times, dtype=float))
        with span(
            "mc.reliability_curve",
            chips=n_chips,
            times=times.size,
            device_mode=self.device_mode,
            backend=self.backend.name,
        ) as curve_span:
            payloads = self.shard_payloads(
                times,
                n_chips,
                rng,
                checkpoint_path=checkpoint_path,
                checkpoint_every=checkpoint_every,
                cancel_check=cancel_check,
            )
            curve = reduce_curve_payloads(times, payloads)
            curve_span.set(valid_chips=curve.n_chips)
        return curve

    def shard_payloads(
        self,
        times: np.ndarray,
        n_chips: int,
        rng: SeedLike,
        shard_indices: list[int] | tuple[int, ...] | None = None,
        checkpoint_path: str | Path | None = None,
        checkpoint_every: int = 16,
        cancel_check: Callable[[], bool] | None = None,
    ) -> dict[int, dict[str, np.ndarray]]:
        """Per-shard partial survival sums for (a subset of) the plan.

        The deterministic shard plan for ``(rng, n_chips, shard_size)`` is
        laid out in full, then only ``shard_indices`` (default: every
        shard) are evaluated — so a fleet worker handed an index subset
        draws exactly the streams a serial run would, and the merged
        payloads reduce to the identical curve via
        :func:`reduce_curve_payloads`.  Checkpoint entries are keyed by
        shard index, so partial checkpoints from *different* subsets of
        the same plan merge losslessly.  On success the checkpoint file is
        removed.
        """
        times = np.atleast_1d(np.asarray(times, dtype=float))
        if np.any(times < 0.0):
            raise ConfigurationError("times must be non-negative")
        if n_chips < 2:
            raise ConfigurationError(f"n_chips must be >= 2, got {n_chips}")
        root = resolve_seed_sequence(rng)
        shards = plan_shards(n_chips, root, self.shard_size)
        if shard_indices is not None:
            wanted = sorted({int(index) for index in shard_indices})
            out_of_range = [
                index for index in wanted if not 0 <= index < len(shards)
            ]
            if out_of_range:
                raise ConfigurationError(
                    f"shard indices {out_of_range} outside the plan "
                    f"(0..{len(shards) - 1} for {n_chips} chips of "
                    f"shard_size {self.shard_size})"
                )
            shards = [shards[index] for index in wanted]
        checkpoint = self._checkpoint(
            checkpoint_path,
            "reliability_curve",
            n_chips,
            root,
            times,
            checkpoint_every,
        )
        payloads = run_sharded(
            self.backend,
            partial(_curve_shard_task, self, times),
            shards,
            shards_per_task=self._shards_per_task,
            checkpoint=checkpoint,
            cancel_check=cancel_check,
        )
        if checkpoint is not None:
            checkpoint.clear()
        # A checkpoint may have restored indices beyond the requested
        # subset; hand back exactly what was asked for.
        return {shard.index: payloads[shard.index] for shard in shards}

    def _chunk_exponents(
        self, times: np.ndarray, n_chips: int, rng: np.random.Generator
    ) -> np.ndarray:
        """``(n_chips, n_times)`` Weibull exponent sums for a chip batch."""
        if self.device_mode == "binned":
            return self._chunk_exponents_binned(times, n_chips, rng)
        return self._chunk_exponents_exact(times, n_chips, rng)

    def _chunk_exponents_binned(
        self, times: np.ndarray, n_chips: int, rng: np.random.Generator
    ) -> np.ndarray:
        z = self.sampler.sample_factors(n_chips, rng)
        bases = self.sampler.block_base_thickness(z)
        centers = self.binning.centers
        probs = self.binning.probabilities
        sigma_r = self.sampler.model.sigma_independent
        exponents = np.zeros((n_chips, times.size))
        with np.errstate(divide="ignore"):
            log_times = np.where(times > 0.0, np.log(times), -np.inf)
        for j, block in enumerate(self.blocks):
            log_t_ratio = log_times - np.log(block.alpha)
            scaled = block.b * log_t_ratio  # (nt,)
            finite = np.isfinite(scaled)
            scaled_safe = np.where(finite, scaled, 0.0)
            # Residual weight matrix shared by every cell of the block.
            w = np.exp(
                np.clip(
                    np.outer(centers * sigma_r, scaled_safe), -_EXP_CLIP, _EXP_CLIP
                )
            )  # (n_bins, nt)
            assignment = self.sampler.assignments[j]
            a_avg = block.blod.area / block.blod.n_devices
            block_bases = bases[j]  # (n_chips, n_cells)
            cell_sums = np.zeros((n_chips, times.size))
            for c, m_cell in enumerate(assignment.device_counts):
                counts = rng.multinomial(int(m_cell), probs, size=n_chips)
                residual_sum = counts @ w  # (n_chips, nt)
                base_factor = np.exp(
                    np.clip(
                        np.outer(block_bases[:, c], scaled_safe),
                        -_EXP_CLIP,
                        _EXP_CLIP,
                    )
                )
                cell_sums += base_factor * residual_sum
            contribution = a_avg * cell_sums
            contribution[:, ~finite] = 0.0
            exponents += contribution
        return exponents

    def _chunk_exponents_exact(
        self, times: np.ndarray, n_chips: int, rng: np.random.Generator
    ) -> np.ndarray:
        z = self.sampler.sample_factors(n_chips, rng)
        exponents = np.zeros((n_chips, times.size))
        with np.errstate(divide="ignore"):
            log_times = np.where(times > 0.0, np.log(times), -np.inf)
        for c in range(n_chips):
            for j, block in enumerate(self.blocks):
                thickness = self.sampler.device_thicknesses(z[c], j, rng)
                log_t_ratio = log_times - np.log(block.alpha)
                scaled = block.b * log_t_ratio
                finite = np.isfinite(scaled)
                scaled_safe = np.where(finite, scaled, 0.0)
                a_avg = block.blod.area / block.blod.n_devices
                arg = np.clip(
                    np.outer(thickness, scaled_safe), -_EXP_CLIP, _EXP_CLIP
                )
                contribution = a_avg * np.exp(arg).sum(axis=0)
                contribution[~finite] = 0.0
                exponents[c] += contribution
        return exponents

    # ------------------------------------------------------------------
    # Failure-time MC (Fig. 10 reference)
    # ------------------------------------------------------------------

    def failure_times(
        self,
        n_chips: int,
        rng: SeedLike,
        checkpoint_path: str | Path | None = None,
        checkpoint_every: int = 16,
    ) -> np.ndarray:
        """Weakest-link chip failure times for ``n_chips`` sample chips.

        Sharded like :meth:`reliability_curve`: samples land at fixed
        positions in the output array, so the result is bit-identical for
        every backend and ``chunk_size``, and checkpointed runs resume to
        the same sample.
        """
        if n_chips < 1:
            raise ConfigurationError(f"n_chips must be >= 1, got {n_chips}")
        root = resolve_seed_sequence(rng)
        shards = plan_shards(n_chips, root, self.shard_size)
        checkpoint = self._checkpoint(
            checkpoint_path,
            "failure_times",
            n_chips,
            root,
            None,
            checkpoint_every,
        )
        out = np.empty(n_chips)
        with span(
            "mc.failure_times",
            chips=n_chips,
            device_mode=self.device_mode,
            backend=self.backend.name,
        ):
            payloads = run_sharded(
                self.backend,
                partial(_failure_shard_task, self),
                shards,
                shards_per_task=self._shards_per_task,
                checkpoint=checkpoint,
            )
            for shard in shards:
                out[shard.start : shard.stop] = payloads[shard.index]["times"]
                metrics.inc("mc.chips", shard.size)
        if checkpoint is not None:
            checkpoint.clear()
        return out

    def _chunk_failure_times_binned(
        self, n_chips: int, rng: np.random.Generator
    ) -> np.ndarray:
        z = self.sampler.sample_factors(n_chips, rng)
        bases = self.sampler.block_base_thickness(z)
        centers = self.binning.centers
        probs = self.binning.probabilities
        sigma_r = self.sampler.model.sigma_independent
        chip_min = np.full(n_chips, np.inf)
        for j, block in enumerate(self.blocks):
            assignment = self.sampler.assignments[j]
            a_avg = block.blod.area / block.blod.n_devices
            block_bases = bases[j]  # (n_chips, n_cells)
            for c, m_cell in enumerate(assignment.device_counts):
                counts = rng.multinomial(int(m_cell), probs, size=n_chips)
                thickness = (
                    block_bases[:, c : c + 1] + sigma_r * centers[None, :]
                )  # (n_chips, n_bins)
                beta = block.b * np.clip(thickness, 1e-3, None)
                # Weakest link within a bin: min of k iid Weibulls is a
                # Weibull with k-fold area.
                exponential = rng.exponential(size=(n_chips, counts.shape[1]))
                with np.errstate(divide="ignore"):
                    log_t = (
                        np.log(exponential) - np.log(counts * a_avg)
                    ) / beta + np.log(block.alpha)
                log_t = np.where(counts > 0, log_t, np.inf)
                chip_min = np.minimum(chip_min, log_t.min(axis=1))
        return np.exp(chip_min)

    def _chunk_failure_times_exact(
        self, n_chips: int, rng: np.random.Generator
    ) -> np.ndarray:
        z = self.sampler.sample_factors(n_chips, rng)
        chip_min = np.full(n_chips, np.inf)
        for c in range(n_chips):
            for j, block in enumerate(self.blocks):
                thickness = self.sampler.device_thicknesses(z[c], j, rng)
                beta = block.b * np.clip(thickness, 1e-3, None)
                a_avg = block.blod.area / block.blod.n_devices
                exponential = rng.exponential(size=thickness.size)
                log_t = (
                    np.log(exponential) - np.log(a_avg)
                ) / beta + np.log(block.alpha)
                chip_min[c] = min(chip_min[c], float(log_t.min()))
        return np.exp(chip_min)


# ----------------------------------------------------------------------
# Ordered reduction — shared by the in-process engine and repro.fleet
# ----------------------------------------------------------------------


def reduce_curve_payloads(
    times: np.ndarray,
    payloads: dict[int, dict[str, Any]],
    expected_shards: int | None = None,
) -> ReliabilityCurve:
    """Merge per-shard partial sums into the final reliability curve.

    Accumulates in ascending shard-index order, fixing the floating-point
    summation order — and therefore the curve, bit for bit — regardless of
    which backend, machine or worker produced each payload.  This is the
    single reduction used by :meth:`MonteCarloEngine.reliability_curve`
    and by the fleet coordinator merging remote shard-group results;
    payload values may be numpy arrays or plain lists (JSON round-trips
    float64 exactly).

    ``expected_shards`` (when given) guards against a truncated merge: a
    missing shard raises instead of silently averaging fewer chips.
    """
    times = np.atleast_1d(np.asarray(times, dtype=float))
    if expected_shards is not None and len(payloads) != expected_shards:
        raise NumericalError(
            f"shard-payload merge is incomplete: got {len(payloads)} of "
            f"{expected_shards} shards"
        )
    total = np.zeros(times.size)
    total_sq = np.zeros(times.size)
    n_valid = 0
    for index in sorted(payloads):
        payload = payloads[index]
        n_bad = int(np.asarray(payload["n_bad"]))
        shard_valid = int(np.asarray(payload["n_valid"]))
        if n_bad:
            metrics.inc("mc.nonfinite_chunks")
            metrics.inc("mc.nonfinite_chips", n_bad)
            logger.warning(
                "dropping %d of %d chips in MC chunk: non-finite "
                "Weibull exponent sums (curve will average the "
                "remaining valid chips)",
                n_bad,
                shard_valid + n_bad,
                extra={"metric": "mc.nonfinite_chunks"},
            )
        total += np.asarray(payload["total"], dtype=float)
        total_sq += np.asarray(payload["total_sq"], dtype=float)
        n_valid += shard_valid
        metrics.inc("mc.chips", shard_valid + n_bad)
    if n_valid == 0:
        raise NumericalError(
            "every MC chip produced non-finite Weibull exponents; "
            "check the variation budget and Weibull parameters"
        )
    mean = total / n_valid
    variance = np.clip(total_sq / n_valid - mean**2, 0.0, None)
    std_error = np.sqrt(variance / n_valid)
    return ReliabilityCurve(
        times=times, reliability=mean, std_error=std_error, n_chips=n_valid
    )


# ----------------------------------------------------------------------
# Shard tasks: module-level (picklable for the process backend) and pure —
# all metrics/logging happen in the parent during the ordered reduction.
# ----------------------------------------------------------------------


def _curve_shard_task(
    engine: MonteCarloEngine, times: np.ndarray, shard: Shard
) -> dict[str, np.ndarray]:
    """Partial survival sums for one shard of sample chips."""
    rng = shard.rng()
    exponents = engine._chunk_exponents(times, shard.size, rng)
    finite_rows = np.isfinite(exponents).all(axis=1)
    n_bad = shard.size - int(finite_rows.sum())
    if n_bad:
        exponents = exponents[finite_rows]
    survival = np.exp(-np.clip(exponents, 0.0, _EXP_CLIP))
    return {
        "total": survival.sum(axis=0),
        "total_sq": (survival**2).sum(axis=0),
        "n_valid": np.asarray(exponents.shape[0]),
        "n_bad": np.asarray(n_bad),
    }


def _failure_shard_task(
    engine: MonteCarloEngine, shard: Shard
) -> dict[str, np.ndarray]:
    """Weakest-link failure times for one shard of sample chips."""
    rng = shard.rng()
    if engine.device_mode == "binned":
        failure = engine._chunk_failure_times_binned(shard.size, rng)
    else:
        failure = engine._chunk_failure_times_exact(shard.size, rng)
    return {"times": failure}
