"""Monte-Carlo reference analyses over sample chips.

Two engines, both honouring the full variation model (shared inter-die +
spatial factors per chip, independent residual per device):

- :meth:`MonteCarloEngine.reliability_curve` — the paper's "1000 samples of
  MC" reference: draw sample chips, evaluate each chip's *conditional*
  reliability exactly from eq. (11) (every device's thickness enters the
  Weibull exponent), and average across chips. Resolves ppm-level targets
  because the conditional reliability is computed analytically.
- :meth:`MonteCarloEngine.failure_times` — the Fig. 10 reference: draw
  sample chips *and* every device's breakdown time, recording the chip's
  weakest-link failure time.

Device modes
------------
``exact``
    Per-device residual draws. Faithful but O(m) memory/time per chip —
    use for designs up to ~100K devices.
``binned`` (default)
    The residual standard normal is discretised into fine equal-width
    bins; per grid cell the device count per bin is drawn from the exact
    multinomial distribution. Because the devices of a cell are
    exchangeable, this is *distributionally identical* to per-device
    sampling up to the within-bin thickness quantisation (default 128 bins
    over +/-5 sigma, i.e. < 0.08 sigma quantisation — far below any other
    model error), while running orders of magnitude faster. The
    weakest-link property collapses each bin's minimum breakdown time to a
    single Weibull draw with the bin's aggregate area, keeping the
    failure-time engine exact under the same quantisation.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np
from scipy import stats as sps

from repro.core.ensemble import BlockReliability
from repro.errors import ConfigurationError, NumericalError
from repro.obs import metrics
from repro.obs.logging import get_logger
from repro.obs.trace import span
from repro.variation.sampling import ChipSampler

logger = get_logger("core.montecarlo")

#: Exponent clip bound for survival exponent sums.
_EXP_CLIP = 700.0


@dataclass(frozen=True)
class ResidualBinning:
    """Equal-width discretisation of the residual standard normal."""

    n_bins: int = 128
    z_max: float = 5.0

    def __post_init__(self) -> None:
        if self.n_bins < 8:
            raise ConfigurationError(f"need >= 8 bins, got {self.n_bins}")
        if self.z_max <= 0.0:
            raise ConfigurationError(f"z_max must be positive, got {self.z_max}")

    @property
    def centers(self) -> np.ndarray:
        """Bin-centre z-scores."""
        edges = np.linspace(-self.z_max, self.z_max, self.n_bins + 1)
        return 0.5 * (edges[:-1] + edges[1:])

    @property
    def probabilities(self) -> np.ndarray:
        """Exact standard-normal bin probabilities (tails folded into the
        outermost bins so they sum to one)."""
        edges = np.linspace(-self.z_max, self.z_max, self.n_bins + 1)
        cdf = sps.norm.cdf(edges)
        probs = np.diff(cdf)
        probs[0] += cdf[0]
        probs[-1] += 1.0 - cdf[-1]
        return probs


@dataclass(frozen=True)
class ReliabilityCurve:
    """An ensemble reliability curve estimated by Monte Carlo."""

    times: np.ndarray
    reliability: np.ndarray
    std_error: np.ndarray
    n_chips: int

    def failure_probability(self) -> np.ndarray:
        """``1 - R(t)`` along the curve."""
        return 1.0 - self.reliability


class MonteCarloEngine:
    """Sample-chip Monte-Carlo reference for a prepared design.

    Parameters
    ----------
    sampler:
        Chip sampler binding the floorplan, grid and thickness model.
    blocks:
        Per-block BLOD + Weibull parameters (block order must match the
        sampler's floorplan).
    device_mode:
        ``"binned"`` (default) or ``"exact"`` — see the module docstring.
    binning:
        Residual discretisation for the binned mode.
    chunk_size:
        Chips processed per vectorised batch.
    """

    def __init__(
        self,
        sampler: ChipSampler,
        blocks: list[BlockReliability],
        device_mode: str = "binned",
        binning: ResidualBinning | None = None,
        chunk_size: int = 100,
    ) -> None:
        if device_mode not in ("binned", "exact"):
            raise ConfigurationError(f"unknown device mode {device_mode!r}")
        if len(blocks) != sampler.floorplan.n_blocks:
            raise ConfigurationError(
                "need one BlockReliability per floorplan block"
            )
        for block, fp_block in zip(blocks, sampler.floorplan.blocks, strict=True):
            if block.blod.name != fp_block.name:
                raise ConfigurationError(
                    f"block order mismatch: {block.blod.name!r} vs "
                    f"{fp_block.name!r}"
                )
        if chunk_size < 1:
            raise ConfigurationError(f"chunk_size must be >= 1, got {chunk_size}")
        self.sampler = sampler
        self.blocks = list(blocks)
        self.device_mode = device_mode
        self.binning = binning if binning is not None else ResidualBinning()
        self.chunk_size = chunk_size

    # ------------------------------------------------------------------
    # Conditional-reliability MC (Table III reference)
    # ------------------------------------------------------------------

    def reliability_curve(
        self,
        times: np.ndarray,
        n_chips: int,
        rng: np.random.Generator,
    ) -> ReliabilityCurve:
        """Ensemble reliability by averaging conditional chip reliability.

        ``R_hat(t) = mean_c exp(-sum_j sum_i a_i (t/alpha_j)^(b_j x_i))``
        over ``n_chips`` sample chips.

        Chips whose exponent sum comes out non-finite (numerical blow-up in
        a pathological sample) are dropped with a warning and counted in
        the ``mc.nonfinite_chunks`` / ``mc.nonfinite_chips`` metrics; the
        returned curve then averages the remaining valid chips (its
        ``n_chips`` reflects the valid count).  Only when *every* chip is
        invalid does the method raise.
        """
        times = np.atleast_1d(np.asarray(times, dtype=float))
        if np.any(times < 0.0):
            raise ConfigurationError("times must be non-negative")
        if n_chips < 2:
            raise ConfigurationError(f"n_chips must be >= 2, got {n_chips}")
        total = np.zeros(times.size)
        total_sq = np.zeros(times.size)
        n_valid = 0
        done = 0
        started = time.perf_counter()
        with span(
            "mc.reliability_curve",
            chips=n_chips,
            times=times.size,
            device_mode=self.device_mode,
        ) as curve_span:
            while done < n_chips:
                batch = min(self.chunk_size, n_chips - done)
                exponents = self._chunk_exponents(times, batch, rng)
                finite_rows = np.isfinite(exponents).all(axis=1)
                if not finite_rows.all():
                    n_bad = batch - int(finite_rows.sum())
                    metrics.inc("mc.nonfinite_chunks")
                    metrics.inc("mc.nonfinite_chips", n_bad)
                    logger.warning(
                        "dropping %d of %d chips in MC chunk: non-finite "
                        "Weibull exponent sums (curve will average the "
                        "remaining valid chips)",
                        n_bad,
                        batch,
                        extra={"metric": "mc.nonfinite_chunks"},
                    )
                    exponents = exponents[finite_rows]
                survival = np.exp(-np.clip(exponents, 0.0, _EXP_CLIP))
                total += survival.sum(axis=0)
                total_sq += (survival**2).sum(axis=0)
                n_valid += exponents.shape[0]
                done += batch
                metrics.inc("mc.chips", batch)
                elapsed = time.perf_counter() - started
                eta = elapsed / done * (n_chips - done)
                logger.debug(
                    "mc progress: %d/%d chips (%.2fs elapsed, ETA %.2fs)",
                    done,
                    n_chips,
                    elapsed,
                    eta,
                )
            curve_span.set(valid_chips=n_valid)
        if n_valid == 0:
            raise NumericalError(
                "every MC chip produced non-finite Weibull exponents; "
                "check the variation budget and Weibull parameters"
            )
        mean = total / n_valid
        variance = np.clip(total_sq / n_valid - mean**2, 0.0, None)
        std_error = np.sqrt(variance / n_valid)
        return ReliabilityCurve(
            times=times, reliability=mean, std_error=std_error, n_chips=n_valid
        )

    def _chunk_exponents(
        self, times: np.ndarray, n_chips: int, rng: np.random.Generator
    ) -> np.ndarray:
        """``(n_chips, n_times)`` Weibull exponent sums for a chip batch."""
        if self.device_mode == "binned":
            return self._chunk_exponents_binned(times, n_chips, rng)
        return self._chunk_exponents_exact(times, n_chips, rng)

    def _chunk_exponents_binned(
        self, times: np.ndarray, n_chips: int, rng: np.random.Generator
    ) -> np.ndarray:
        z = self.sampler.sample_factors(n_chips, rng)
        bases = self.sampler.block_base_thickness(z)
        centers = self.binning.centers
        probs = self.binning.probabilities
        sigma_r = self.sampler.model.sigma_independent
        exponents = np.zeros((n_chips, times.size))
        with np.errstate(divide="ignore"):
            log_times = np.where(times > 0.0, np.log(times), -np.inf)
        for j, block in enumerate(self.blocks):
            log_t_ratio = log_times - np.log(block.alpha)
            scaled = block.b * log_t_ratio  # (nt,)
            finite = np.isfinite(scaled)
            scaled_safe = np.where(finite, scaled, 0.0)
            # Residual weight matrix shared by every cell of the block.
            w = np.exp(
                np.clip(
                    np.outer(centers * sigma_r, scaled_safe), -_EXP_CLIP, _EXP_CLIP
                )
            )  # (n_bins, nt)
            assignment = self.sampler.assignments[j]
            a_avg = block.blod.area / block.blod.n_devices
            block_bases = bases[j]  # (n_chips, n_cells)
            cell_sums = np.zeros((n_chips, times.size))
            for c, m_cell in enumerate(assignment.device_counts):
                counts = rng.multinomial(int(m_cell), probs, size=n_chips)
                residual_sum = counts @ w  # (n_chips, nt)
                base_factor = np.exp(
                    np.clip(
                        np.outer(block_bases[:, c], scaled_safe),
                        -_EXP_CLIP,
                        _EXP_CLIP,
                    )
                )
                cell_sums += base_factor * residual_sum
            contribution = a_avg * cell_sums
            contribution[:, ~finite] = 0.0
            exponents += contribution
        return exponents

    def _chunk_exponents_exact(
        self, times: np.ndarray, n_chips: int, rng: np.random.Generator
    ) -> np.ndarray:
        z = self.sampler.sample_factors(n_chips, rng)
        exponents = np.zeros((n_chips, times.size))
        with np.errstate(divide="ignore"):
            log_times = np.where(times > 0.0, np.log(times), -np.inf)
        for c in range(n_chips):
            for j, block in enumerate(self.blocks):
                thickness = self.sampler.device_thicknesses(z[c], j, rng)
                log_t_ratio = log_times - np.log(block.alpha)
                scaled = block.b * log_t_ratio
                finite = np.isfinite(scaled)
                scaled_safe = np.where(finite, scaled, 0.0)
                a_avg = block.blod.area / block.blod.n_devices
                arg = np.clip(
                    np.outer(thickness, scaled_safe), -_EXP_CLIP, _EXP_CLIP
                )
                contribution = a_avg * np.exp(arg).sum(axis=0)
                contribution[~finite] = 0.0
                exponents[c] += contribution
        return exponents

    # ------------------------------------------------------------------
    # Failure-time MC (Fig. 10 reference)
    # ------------------------------------------------------------------

    def failure_times(
        self, n_chips: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Weakest-link chip failure times for ``n_chips`` sample chips."""
        if n_chips < 1:
            raise ConfigurationError(f"n_chips must be >= 1, got {n_chips}")
        out = np.empty(n_chips)
        done = 0
        started = time.perf_counter()
        with span(
            "mc.failure_times", chips=n_chips, device_mode=self.device_mode
        ):
            while done < n_chips:
                batch = min(self.chunk_size, n_chips - done)
                if self.device_mode == "binned":
                    out[done : done + batch] = (
                        self._chunk_failure_times_binned(batch, rng)
                    )
                else:
                    out[done : done + batch] = (
                        self._chunk_failure_times_exact(batch, rng)
                    )
                done += batch
                metrics.inc("mc.chips", batch)
                elapsed = time.perf_counter() - started
                eta = elapsed / done * (n_chips - done)
                logger.debug(
                    "mc failure-time progress: %d/%d chips "
                    "(%.2fs elapsed, ETA %.2fs)",
                    done,
                    n_chips,
                    elapsed,
                    eta,
                )
        return out

    def _chunk_failure_times_binned(
        self, n_chips: int, rng: np.random.Generator
    ) -> np.ndarray:
        z = self.sampler.sample_factors(n_chips, rng)
        bases = self.sampler.block_base_thickness(z)
        centers = self.binning.centers
        probs = self.binning.probabilities
        sigma_r = self.sampler.model.sigma_independent
        chip_min = np.full(n_chips, np.inf)
        for j, block in enumerate(self.blocks):
            assignment = self.sampler.assignments[j]
            a_avg = block.blod.area / block.blod.n_devices
            block_bases = bases[j]  # (n_chips, n_cells)
            for c, m_cell in enumerate(assignment.device_counts):
                counts = rng.multinomial(int(m_cell), probs, size=n_chips)
                thickness = (
                    block_bases[:, c : c + 1] + sigma_r * centers[None, :]
                )  # (n_chips, n_bins)
                beta = block.b * np.clip(thickness, 1e-3, None)
                # Weakest link within a bin: min of k iid Weibulls is a
                # Weibull with k-fold area.
                exponential = rng.exponential(size=(n_chips, counts.shape[1]))
                with np.errstate(divide="ignore"):
                    log_t = (
                        np.log(exponential) - np.log(counts * a_avg)
                    ) / beta + np.log(block.alpha)
                log_t = np.where(counts > 0, log_t, np.inf)
                chip_min = np.minimum(chip_min, log_t.min(axis=1))
        return np.exp(chip_min)

    def _chunk_failure_times_exact(
        self, n_chips: int, rng: np.random.Generator
    ) -> np.ndarray:
        z = self.sampler.sample_factors(n_chips, rng)
        chip_min = np.full(n_chips, np.inf)
        for c in range(n_chips):
            for j, block in enumerate(self.blocks):
                thickness = self.sampler.device_thicknesses(z[c], j, rng)
                beta = block.b * np.clip(thickness, 1e-3, None)
                a_avg = block.blod.area / block.blod.n_devices
                exponential = rng.exponential(size=thickness.size)
                log_t = (
                    np.log(exponential) - np.log(a_avg)
                ) / beta + np.log(block.alpha)
                chip_min[c] = min(chip_min[c], float(log_t.min()))
        return np.exp(chip_min)
