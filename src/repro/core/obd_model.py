"""Device-level gate-oxide breakdown model (Sec. III, eq. (3)-(4)).

Time-to-breakdown of a device is Weibull with

    F(t) = 1 - exp(-a * (t / alpha)^(b x))

where the Weibull slope is linear in oxide thickness ``x`` (Degraeve [6])
and both the characteristic life ``alpha`` and the slope coefficient ``b``
depend on temperature and stress voltage (Wu [7], [8]; Degraeve [9];
Stathis [27]). The paper characterises ``alpha`` and ``b`` "using some
closed-form models or look-up tables w.r.t. temperature for a given
process"; this module provides both:

- :class:`OBDModel` — closed-form: Arrhenius-like temperature acceleration
  with a voltage-dependent effective activation energy (the
  voltage/temperature interplay of [7], [8]) and exponential voltage
  acceleration,
- :class:`TabulatedOBDModel` — look-up tables versus temperature with
  interpolation, as a fab would supply from test structures.

Calibration note: the defaults are tuned so the *chip-level* comparison
lands inside the bands the paper reports — guard-band lifetime pessimism
around 50 % (Table III: 42-56 %), temperature-unaware error between the
statistical methods and guard-band (Fig. 10), and ppm-level chip lifetimes
in the tens-of-years range at nominal conditions. That places the Weibull
slope at the nominal thickness around 3 and the block-to-block
characteristic-life ratio at ~2-4x over a 15 degC block spread; the
statistical machinery is insensitive to the absolute calibration (see
DESIGN.md for the full discussion of this substitution).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.stats.weibull import AreaScaledWeibull
from repro.units import BOLTZMANN_EV, celsius_to_kelvin


@dataclass(frozen=True)
class DeviceReliabilityParams:
    """The ``(alpha_j, b_j)`` pair of one temperature-uniform block."""

    alpha: float
    b: float

    def __post_init__(self) -> None:
        if self.alpha <= 0.0:
            raise ConfigurationError(f"alpha must be positive, got {self.alpha}")
        if self.b <= 0.0:
            raise ConfigurationError(f"b must be positive, got {self.b}")

    def beta(self, thickness: float) -> float:
        """Weibull slope at oxide thickness ``thickness`` (nm)."""
        return self.b * thickness

    def weibull(self, thickness: float, area: float = 1.0) -> AreaScaledWeibull:
        """The device failure-time law at a given thickness and area."""
        return AreaScaledWeibull(
            alpha=self.alpha, beta=self.beta(thickness), area=area
        )


@dataclass(frozen=True)
class OBDModel:
    """Closed-form temperature/voltage dependence of ``alpha`` and ``b``.

    Parameters
    ----------
    alpha_ref:
        Characteristic life (hours, unit area, nominal thickness exponent)
        at the reference temperature and voltage.
    b_ref:
        Weibull slope coefficient (1/nm) at the reference temperature.
    t_ref:
        Reference temperature in celsius.
    v_ref:
        Reference stress/supply voltage in volts.
    activation_energy:
        Effective Arrhenius activation energy (eV) of the characteristic
        life at the reference voltage.
    ea_voltage_slope:
        Reduction of the effective activation energy per volt above the
        reference — the voltage/temperature acceleration interplay of Wu
        [7], [8] (eV/V).
    voltage_acceleration:
        Exponential voltage-acceleration factor (1/V):
        ``alpha ~ exp(-gamma (V - v_ref))``.
    b_temp_slope:
        Relative change of ``b`` per kelvin (slightly negative: hotter
        oxides show a shallower Weibull slope).
    """

    alpha_ref: float = 3.7e8
    b_ref: float = 1.4
    t_ref: float = 100.0
    v_ref: float = 1.2
    activation_energy: float = 0.5
    ea_voltage_slope: float = 0.25
    voltage_acceleration: float = 12.0
    b_temp_slope: float = -6.0e-4

    def __post_init__(self) -> None:
        if self.alpha_ref <= 0.0:
            raise ConfigurationError("alpha_ref must be positive")
        if self.b_ref <= 0.0:
            raise ConfigurationError("b_ref must be positive")
        if self.activation_energy <= 0.0:
            raise ConfigurationError("activation energy must be positive")
        # Validate the reference temperature converts.
        celsius_to_kelvin(self.t_ref)

    def effective_activation_energy(self, vdd: float) -> float:
        """Voltage-dependent effective activation energy in eV.

        Clamped below at 0.05 eV so unphysical voltage extrapolations
        degrade gracefully instead of inverting the temperature trend.
        """
        ea = self.activation_energy - self.ea_voltage_slope * (vdd - self.v_ref)
        return max(ea, 0.05)

    def alpha(self, temperature: float, vdd: float | None = None) -> float:
        """Characteristic life (hours) at ``temperature`` (celsius)."""
        vdd = self.v_ref if vdd is None else vdd
        if vdd <= 0.0:
            raise ConfigurationError(f"vdd must be positive, got {vdd}")
        temp_k = celsius_to_kelvin(temperature)
        ref_k = celsius_to_kelvin(self.t_ref)
        ea = self.effective_activation_energy(vdd)
        arrhenius = np.exp(ea / BOLTZMANN_EV * (1.0 / temp_k - 1.0 / ref_k))
        voltage = np.exp(-self.voltage_acceleration * (vdd - self.v_ref))
        return float(self.alpha_ref * arrhenius * voltage)

    def b(self, temperature: float) -> float:
        """Weibull slope coefficient (1/nm) at ``temperature`` (celsius)."""
        temp_k = celsius_to_kelvin(temperature)
        ref_k = celsius_to_kelvin(self.t_ref)
        value = self.b_ref * (1.0 + self.b_temp_slope * (temp_k - ref_k))
        if value <= 0.0:
            raise ConfigurationError(
                f"b became non-positive at {temperature} degC; the linear "
                "temperature model is outside its validity range"
            )
        return float(value)

    def device_params(
        self, temperature: float, vdd: float | None = None
    ) -> DeviceReliabilityParams:
        """``(alpha, b)`` for devices at one temperature/voltage point."""
        return DeviceReliabilityParams(
            alpha=self.alpha(temperature, vdd), b=self.b(temperature)
        )

    def block_params(
        self, temperatures: np.ndarray, vdd: float | None = None
    ) -> list[DeviceReliabilityParams]:
        """Per-block parameters for an array of block temperatures."""
        return [
            self.device_params(float(temp), vdd)
            for temp in np.asarray(temperatures, dtype=float)
        ]

    def lifetime_acceleration(
        self, hot: float, cool: float, vdd: float | None = None
    ) -> float:
        """Characteristic-life ratio between a cool and a hot block.

        The paper notes a 30 degC difference corresponds to roughly one
        order of magnitude of device reliability.
        """
        return self.alpha(cool, vdd) / self.alpha(hot, vdd)


class TabulatedOBDModel:
    """Look-up-table characterisation of ``alpha(T)`` and ``b(T)``.

    The form a fab supplies from stress measurements on test capacitors:
    sampled temperatures with log-interpolated ``alpha`` and linearly
    interpolated ``b``. Voltage is fixed at the characterisation voltage.
    """

    def __init__(
        self,
        temperatures: np.ndarray,
        alphas: np.ndarray,
        bs: np.ndarray,
    ) -> None:
        temperatures = np.asarray(temperatures, dtype=float)
        alphas = np.asarray(alphas, dtype=float)
        bs = np.asarray(bs, dtype=float)
        if temperatures.ndim != 1 or len(temperatures) < 2:
            raise ConfigurationError("need at least two table temperatures")
        if alphas.shape != temperatures.shape or bs.shape != temperatures.shape:
            raise ConfigurationError("table columns must have matching lengths")
        if np.any(np.diff(temperatures) <= 0.0):
            raise ConfigurationError("table temperatures must be increasing")
        if np.any(alphas <= 0.0) or np.any(bs <= 0.0):
            raise ConfigurationError("alpha and b table entries must be positive")
        self.temperatures = temperatures
        self.log_alphas = np.log(alphas)
        self.bs = bs

    @classmethod
    def from_model(
        cls,
        model: OBDModel,
        temperatures: np.ndarray,
        vdd: float | None = None,
    ) -> "TabulatedOBDModel":
        """Sample a closed-form model into a table (for round-trip tests
        and for exporting characterisation data)."""
        temperatures = np.asarray(temperatures, dtype=float)
        alphas = np.array([model.alpha(float(t), vdd) for t in temperatures])
        bs = np.array([model.b(float(t)) for t in temperatures])
        return cls(temperatures, alphas, bs)

    def _check_range(self, temperature: float) -> None:
        if not (
            self.temperatures[0] <= temperature <= self.temperatures[-1]
        ):
            raise ConfigurationError(
                f"temperature {temperature} degC outside the table range "
                f"[{self.temperatures[0]}, {self.temperatures[-1]}]"
            )

    def alpha(self, temperature: float, vdd: float | None = None) -> float:
        """Interpolated characteristic life; ``vdd`` ignored (the table is
        characterised at a single voltage)."""
        self._check_range(temperature)
        return float(
            np.exp(np.interp(temperature, self.temperatures, self.log_alphas))
        )

    def b(self, temperature: float) -> float:
        """Interpolated Weibull slope coefficient."""
        self._check_range(temperature)
        return float(np.interp(temperature, self.temperatures, self.bs))

    def device_params(
        self, temperature: float, vdd: float | None = None
    ) -> DeviceReliabilityParams:
        """``(alpha, b)`` at one temperature."""
        return DeviceReliabilityParams(
            alpha=self.alpha(temperature, vdd), b=self.b(temperature)
        )

    def block_params(
        self, temperatures: np.ndarray, vdd: float | None = None
    ) -> list[DeviceReliabilityParams]:
        """Per-block parameters for an array of block temperatures."""
        return [
            self.device_params(float(temp), vdd)
            for temp in np.asarray(temperatures, dtype=float)
        ]
