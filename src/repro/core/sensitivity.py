"""Sensitivity analysis of the chip lifetime to model parameters.

Answers the design-review question "which knob moves the ppm lifetime
most?" with central finite differences of the st_fast lifetime w.r.t. the
operating point (Vdd, temperature margin) and the process assumptions
(total variation magnitude, variance split, correlation distance). All
sensitivities are reported as elasticities — percent lifetime change per
percent parameter change — so they compare across dimensionally different
knobs.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

import numpy as np

from repro.core.analyzer import ReliabilityAnalyzer
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class SensitivityResult:
    """One parameter's lifetime elasticity."""

    parameter: str
    base_value: float
    elasticity: float
    lifetime_low: float
    lifetime_high: float

    @property
    def magnitude(self) -> float:
        """Absolute elasticity, used for tornado ordering."""
        return abs(self.elasticity)


#: Parameters the analysis knows how to perturb.
PARAMETERS = (
    "vdd",
    "temperature_margin",
    "three_sigma_ratio",
    "global_fraction",
    "rho_dist",
)


def _rebuilt_lifetime(
    analyzer: ReliabilityAnalyzer,
    ppm: float,
    parameter: str,
    value: float,
) -> float:
    """Lifetime with one parameter replaced (analysis rebuilt as needed)."""
    budget = analyzer.budget
    config = analyzer.config
    temps = analyzer.block_temperatures
    if parameter == "vdd":
        config = dataclasses.replace(config, vdd=value)
    elif parameter == "temperature_margin":
        temps = temps + value
    elif parameter == "three_sigma_ratio":
        budget = dataclasses.replace(budget, three_sigma_ratio=value)
    elif parameter == "global_fraction":
        # Move variance between the global and independent components,
        # keeping the spatial share fixed and the split normalized.
        remaining = 1.0 - value - budget.spatial_fraction
        if remaining < 0.0:
            raise ConfigurationError(
                f"global fraction {value} leaves no room for the "
                "independent component"
            )
        budget = dataclasses.replace(
            budget, global_fraction=value, independent_fraction=remaining
        )
    elif parameter == "rho_dist":
        config = dataclasses.replace(config, rho_dist=value)
    else:
        raise ConfigurationError(
            f"unknown parameter {parameter!r}; expected one of {PARAMETERS}"
        )
    rebuilt = ReliabilityAnalyzer(
        analyzer.floorplan,
        budget=budget,
        obd_model=analyzer.obd_model,
        config=config,
        block_temperatures=temps,
    )
    return rebuilt.lifetime(ppm, method="st_fast")


def _base_value(analyzer: ReliabilityAnalyzer, parameter: str) -> float:
    if parameter == "vdd":
        vdd = analyzer.config.vdd
        return vdd if vdd is not None else analyzer.obd_model.v_ref
    if parameter == "temperature_margin":
        # Margin is an additive offset; elasticity is computed against the
        # mean block temperature so "percent" has a meaning.
        return 0.0
    if parameter == "three_sigma_ratio":
        return analyzer.budget.three_sigma_ratio
    if parameter == "global_fraction":
        return analyzer.budget.global_fraction
    if parameter == "rho_dist":
        return analyzer.config.rho_dist
    raise ConfigurationError(
        f"unknown parameter {parameter!r}; expected one of {PARAMETERS}"
    )


def lifetime_sensitivities(
    analyzer: ReliabilityAnalyzer,
    ppm: float = 10.0,
    parameters: tuple[str, ...] = PARAMETERS,
    relative_step: float = 0.05,
) -> list[SensitivityResult]:
    """Central-difference lifetime elasticities for the chosen parameters.

    ``temperature_margin`` perturbs all block temperatures by +/- 2 degC
    and reports the elasticity against the mean block temperature.
    """
    if not 0.0 < relative_step < 0.5:
        raise ConfigurationError(
            f"relative step must be in (0, 0.5), got {relative_step}"
        )
    base_lifetime = analyzer.lifetime(ppm, method="st_fast")
    results: list[SensitivityResult] = []
    for parameter in parameters:
        base = _base_value(analyzer, parameter)
        if parameter == "temperature_margin":
            step = 2.0
            reference = float(np.mean(analyzer.block_temperatures))
            lo_value, hi_value = -step, step
            denom = 2.0 * step / reference
        else:
            step = relative_step * base
            lo_value, hi_value = base - step, base + step
            denom = 2.0 * relative_step
        lifetime_low = _rebuilt_lifetime(analyzer, ppm, parameter, lo_value)
        lifetime_high = _rebuilt_lifetime(analyzer, ppm, parameter, hi_value)
        elasticity = (lifetime_high - lifetime_low) / base_lifetime / denom
        results.append(
            SensitivityResult(
                parameter=parameter,
                base_value=base,
                elasticity=float(elasticity),
                lifetime_low=lifetime_low,
                lifetime_high=lifetime_high,
            )
        )
    results.sort(key=lambda r: r.magnitude, reverse=True)
    return results


def tornado_text(results: list[SensitivityResult], width: int = 40) -> str:
    """A text tornado chart of the sensitivities."""
    if not results:
        raise ConfigurationError("no sensitivity results to render")
    peak = max(r.magnitude for r in results) or 1.0
    lines = []
    for r in results:
        bar_len = int(round(width * r.magnitude / peak))
        bar = ("+" if r.elasticity >= 0 else "-") * max(bar_len, 1)
        lines.append(
            f"{r.parameter:>20} {r.elasticity:+8.2f}  {bar}"
        )
    return "\n".join(lines)
