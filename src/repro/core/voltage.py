"""Supply-voltage screening: the maximum Vdd meeting a lifetime target.

The paper's introduction frames the value of accurate OBD analysis in
exactly these terms: "any pessimism in oxide reliability analysis limits
the maximum operating voltage and thus the maximum achievable
chip-performance". This module solves the inverse problem — given a ppm
lifetime target, find the largest supply voltage each analysis method
admits — and prices the difference in frequency with an alpha-power-law
delay model.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

import numpy as np
from scipy import optimize

from repro.core.analyzer import ReliabilityAnalyzer
from repro.errors import ConfigurationError, NumericalError


@dataclass(frozen=True)
class VoltageScreeningResult:
    """Outcome of a max-Vdd search for one method."""

    method: str
    max_vdd: float
    target_hours: float
    ppm: float

    def relative_frequency(
        self, vth: float = 0.35, alpha_power: float = 1.3, v_ref: float = 1.2
    ) -> float:
        """Alpha-power-law frequency relative to ``v_ref``."""
        if self.max_vdd <= vth:
            raise ConfigurationError("Vdd at or below threshold voltage")
        ref = (v_ref - vth) ** alpha_power / v_ref
        return ((self.max_vdd - vth) ** alpha_power / self.max_vdd) / ref


def max_vdd_for_target(
    analyzer: ReliabilityAnalyzer,
    target_hours: float,
    ppm: float = 10.0,
    method: str = "st_fast",
    vdd_range: tuple[float, float] = (0.9, 2.0),
    tolerance: float = 1e-4,
) -> VoltageScreeningResult:
    """Largest Vdd whose ``ppm`` lifetime still meets ``target_hours``.

    Rebuilds the analysis at each probed voltage (temperatures are held at
    the prepared analyzer's profile — voltage-dependent self-heating can
    be layered on by the caller via explicit block temperatures).

    Raises
    ------
    NumericalError
        When the target is unreachable even at the low end, or already met
        at the high end (widen ``vdd_range``).
    """
    if target_hours <= 0.0:
        raise ConfigurationError("target lifetime must be positive")
    lo, hi = vdd_range
    if not 0.0 < lo < hi:
        raise ConfigurationError("vdd_range must be positive and increasing")

    def margin(vdd: float) -> float:
        probe = ReliabilityAnalyzer(
            analyzer.floorplan,
            budget=analyzer.budget,
            obd_model=analyzer.obd_model,
            config=dataclasses.replace(analyzer.config, vdd=vdd),
            block_temperatures=analyzer.block_temperatures,
        )
        return probe.lifetime(ppm, method=method) - target_hours

    if margin(lo) < 0.0:
        raise NumericalError(
            f"lifetime target not met even at Vdd = {lo} V"
        )
    if margin(hi) > 0.0:
        raise NumericalError(
            f"lifetime target still met at Vdd = {hi} V; widen vdd_range"
        )
    root = float(optimize.brentq(margin, lo, hi, xtol=tolerance))
    return VoltageScreeningResult(
        method=method, max_vdd=root, target_hours=target_hours, ppm=ppm
    )


def voltage_headroom(
    analyzer: ReliabilityAnalyzer,
    target_hours: float,
    ppm: float = 10.0,
    methods: tuple[str, str] = ("guard", "st_fast"),
    vdd_range: tuple[float, float] = (0.9, 2.0),
) -> dict[str, VoltageScreeningResult]:
    """Max-Vdd comparison across methods (typically guard vs statistical).

    Returns a dict keyed by method; the headroom the accurate analysis
    reclaims is ``results["st_fast"].max_vdd - results["guard"].max_vdd``.
    """
    results = {
        method: max_vdd_for_target(
            analyzer, target_hours, ppm=ppm, method=method, vdd_range=vdd_range
        )
        for method in methods
    }
    ordered = [results[m].max_vdd for m in methods]
    if not np.all(np.isfinite(ordered)):
        raise NumericalError("voltage search produced non-finite results")
    return results
