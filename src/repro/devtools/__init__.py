"""repro.devtools — development-time tooling for the repro library.

The flagship tool is :mod:`repro.devtools.lint` ("reprolint"), a
domain-aware static-analysis pass that machine-checks the silent
invariants the reliability math depends on: kelvin-vs-celsius unit
discipline, explicitly-seeded ``np.random.Generator`` threading,
the :class:`repro.errors.ReproError` hierarchy at the API boundary,
structured logging instead of bare ``print``, and numerical-safety
rules for the statistical kernels.

Run it as::

    python -m repro.devtools.lint src/repro

See ``docs/static-analysis.md`` for the rule catalogue.
"""

from __future__ import annotations

from repro.devtools.engine import LintContext, lint_paths, lint_source
from repro.devtools.rules import ALL_RULES, Finding, Rule, get_rule, iter_rules

__all__ = [
    "ALL_RULES",
    "Finding",
    "LintContext",
    "Rule",
    "get_rule",
    "iter_rules",
    "lint_paths",
    "lint_source",
]
