"""repro.devtools — development-time tooling for the repro library.

The flagship tool is :mod:`repro.devtools.lint` ("reprolint"), a
domain-aware static-analysis pass that machine-checks the silent
invariants the reliability math depends on: kelvin-vs-celsius unit
discipline, explicitly-seeded ``np.random.Generator`` threading,
the :class:`repro.errors.ReproError` hierarchy at the API boundary,
structured logging instead of bare ``print``, and numerical-safety
rules for the statistical kernels.

Beyond the per-file rules, ``--project`` mode indexes a whole package
(:mod:`repro.devtools.graph`), builds an approximate call graph, and runs
the concurrency/determinism analyses in
:mod:`repro.devtools.concurrency`: unguarded shared-state writes
(RPL009), transitively blocking HTTP handlers (RPL010) and shard-task
RNG escapes (RPL011).

Run it as::

    python -m repro.devtools.lint src/repro              # per-file rules
    python -m repro.devtools.lint --project src/repro    # + call-graph rules

See ``docs/static-analysis.md`` for the rule catalogue, the findings
baseline and the SARIF/caching options.
"""

from __future__ import annotations

from repro.devtools.engine import (
    LintContext,
    lint_paths,
    lint_project,
    lint_source,
)
from repro.devtools.rules import (
    ALL_PROJECT_RULES,
    ALL_RULES,
    Finding,
    ProjectRule,
    Rule,
    get_project_rule,
    get_rule,
    iter_project_rules,
    iter_rules,
)

# Importing the analyzer registers the project rules (RPL009+), so
# ALL_PROJECT_RULES is populated for anyone importing the package.
import repro.devtools.concurrency  # noqa: E402,F401

__all__ = [
    "ALL_PROJECT_RULES",
    "ALL_RULES",
    "Finding",
    "LintContext",
    "ProjectRule",
    "Rule",
    "get_project_rule",
    "get_rule",
    "iter_project_rules",
    "iter_rules",
    "lint_paths",
    "lint_project",
    "lint_source",
]
