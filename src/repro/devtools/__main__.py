"""``python -m repro.devtools`` — alias for the reprolint CLI."""

from __future__ import annotations

import sys

from repro.devtools.lint import main

if __name__ == "__main__":
    sys.exit(main())
