"""Findings baseline: freeze pre-existing debt, fail on new violations.

Rolling out a new whole-project rule against a living codebase surfaces
findings that are real but not worth blocking every PR on.  The baseline
records those: a finding whose fingerprint appears in the committed
``.reprolint-baseline.json`` is filtered out (up to the recorded count),
anything new fails the build.

Fingerprints are ``sha256(rule :: path :: message)`` truncated to 16 hex
chars — deliberately **line-number independent**, so unrelated edits that
shift a baselined finding up or down the file do not resurrect it.  Two
identical findings in one file share a fingerprint; the ``count`` field
allows that many before the overflow is reported as new.
"""

from __future__ import annotations

import hashlib
import json
from collections.abc import Sequence
from pathlib import Path

from repro.devtools.engine import LintFileError
from repro.devtools.rules import Finding

__all__ = [
    "DEFAULT_BASELINE",
    "apply_baseline",
    "fingerprint",
    "load_baseline",
    "write_baseline",
]

#: Default baseline location, relative to the invocation directory.
DEFAULT_BASELINE = Path(".reprolint-baseline.json")

_FORMAT = "reprolint-baseline"
_VERSION = 1


def fingerprint(finding: Finding) -> str:
    """Stable, line-number-independent id for one finding."""
    key = f"{finding.rule}::{finding.path}::{finding.message}"
    return hashlib.sha256(key.encode("utf-8")).hexdigest()[:16]


def load_baseline(path: Path) -> dict[str, int]:
    """``fingerprint -> allowed count`` from a baseline file."""
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except OSError as exc:
        raise LintFileError(f"{path}: cannot read baseline: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise LintFileError(f"{path}: invalid baseline JSON: {exc}") from exc
    if (
        not isinstance(payload, dict)
        or payload.get("tool") != _FORMAT
        or not isinstance(payload.get("entries"), dict)
    ):
        raise LintFileError(f"{path}: not a reprolint baseline file")
    out: dict[str, int] = {}
    for fp, entry in payload["entries"].items():
        count = entry.get("count", 1) if isinstance(entry, dict) else 1
        out[str(fp)] = max(1, int(count))
    return out


def write_baseline(path: Path, findings: Sequence[Finding]) -> None:
    """Write (or rewrite) the baseline to cover exactly ``findings``."""
    entries: dict[str, dict[str, object]] = {}
    for finding in sorted(
        findings, key=lambda f: (f.path, f.line, f.col, f.rule)
    ):
        fp = fingerprint(finding)
        entry = entries.get(fp)
        if entry is None:
            entries[fp] = {
                "rule": finding.rule,
                "path": finding.path,
                "message": finding.message,
                "count": 1,
            }
        else:
            entry["count"] = int(entry["count"]) + 1  # type: ignore[call-overload]
    payload = {
        "tool": _FORMAT,
        "version": _VERSION,
        "entries": dict(sorted(entries.items())),
    }
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")


def apply_baseline(
    findings: Sequence[Finding], baseline: dict[str, int]
) -> tuple[list[Finding], int]:
    """Split findings into ``(new, n_baselined)``.

    The first ``count`` occurrences of each baselined fingerprint (in
    source order) are suppressed; any overflow is reported as new.
    """
    remaining = dict(baseline)
    fresh: list[Finding] = []
    suppressed = 0
    for finding in sorted(
        findings, key=lambda f: (f.path, f.line, f.col, f.rule)
    ):
        fp = fingerprint(finding)
        if remaining.get(fp, 0) > 0:
            remaining[fp] -= 1
            suppressed += 1
        else:
            fresh.append(finding)
    return fresh, suppressed
