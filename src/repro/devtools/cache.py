"""Incremental lint cache keyed on file content.

Per-file rules are pure functions of one file's bytes, so their findings
can be cached by content hash: CI and local re-runs skip every file that
has not changed.  The key covers the file's sha256, its display path
(finding paths embed it) and the active rule set, plus a format version
bumped whenever finding output changes shape.

Project-wide analyses (``--project`` graph rules) are *never* cached —
their results depend on every file in the package.

Entries are tiny JSON documents under ``.cache/reprolint/<k[:2]>/<k>.json``.
Corrupt or unreadable entries are treated as misses; write failures are
swallowed (a cache must never break the lint run).
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

from repro.devtools.rules import Finding, Rule

__all__ = ["CACHE_VERSION", "DEFAULT_CACHE_DIR", "LintCache"]

#: Bump when the Finding schema or rule semantics change incompatibly.
CACHE_VERSION = 1

#: Default cache location, relative to the invocation directory.
DEFAULT_CACHE_DIR = Path(".cache/reprolint")


def _rules_token(rules: list[Rule]) -> str:
    return ",".join(sorted(rule.rule_id for rule in rules))


class LintCache:
    """Content-addressed store of per-file lint results."""

    def __init__(self, root: Path = DEFAULT_CACHE_DIR) -> None:
        self.root = root
        self.hits = 0
        self.misses = 0

    def key(self, source: str, display_path: str, rules: list[Rule]) -> str:
        digest = hashlib.sha256()
        digest.update(f"v{CACHE_VERSION}\x00".encode())
        digest.update(f"{display_path}\x00".encode())
        digest.update(f"{_rules_token(rules)}\x00".encode())
        digest.update(source.encode("utf-8"))
        return digest.hexdigest()

    def _entry_path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> list[Finding] | None:
        """Cached findings for ``key``, or None on miss/corruption."""
        path = self._entry_path(key)
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
            findings = [
                Finding(
                    rule=str(item["rule"]),
                    path=str(item["path"]),
                    line=int(item["line"]),
                    col=int(item["col"]),
                    message=str(item["message"]),
                )
                for item in payload["findings"]
            ]
        except (OSError, ValueError, KeyError, TypeError):
            self.misses += 1
            return None
        self.hits += 1
        return findings

    def put(self, key: str, findings: list[Finding]) -> None:
        """Store findings under ``key`` (best-effort)."""
        path = self._entry_path(key)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            payload = {"findings": [f.as_dict() for f in findings]}
            tmp = path.with_suffix(".tmp")
            tmp.write_text(json.dumps(payload), encoding="utf-8")
            tmp.replace(path)
        except OSError:
            pass
