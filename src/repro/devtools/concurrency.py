"""Thread-safety and determinism analyses over the project call graph.

The service stack runs the same code from several kinds of thread at
once: ``ThreadingHTTPServer`` handler threads, the ``JobManager`` worker
pool, callables submitted to exec backends, and signal handlers.  A
per-file linter cannot tell that a handler reaches, three frames deep, a
function that mutates a module-level registry without a lock.  The three
rules here can, because they run over the
:class:`~repro.devtools.graph.ProjectIndex`:

- **RPL009 unguarded-shared-state** — a write to shared mutable state
  (a module global, or an attribute of an object type that multiple
  threads hold) that is reachable from two or more distinct *thread
  roots* and is neither lexically inside a ``with <lock>:`` block nor in
  a function whose every caller holds a lock.
- **RPL010 transitively-blocking-handler** — an HTTP handler method that
  reaches, through any call chain, a blocking primitive
  (``time.sleep``, synchronous ``subprocess``, ``os.system``).  This is
  RPL007 made transitive.
- **RPL011 shard-determinism** — a shard task handed to
  ``run_sharded`` whose reachable closure touches ``np.random`` global
  state or a module-level ``Generator`` singleton, breaking the
  bit-identical-reduction invariant (shard streams must derive from the
  shard plan).

All three are *approximate*: an unresolvable call produces no edge, so
they under-report rather than over-report.  Findings they do produce are
suppressible like any other (line-scoped ``# reprolint: disable=`` or a
file-level ``disable-file=``) and can be frozen with the findings
baseline (``.reprolint-baseline.json``; see ``docs/static-analysis.md``).
"""

from __future__ import annotations

import ast
from collections.abc import Iterator
from dataclasses import dataclass

from repro.devtools.graph import (
    ClassInfo,
    FunctionInfo,
    ProjectIndex,
    _is_lock_expr,
)
from repro.devtools.rules import (
    Finding,
    ProjectRule,
    register_project,
)

__all__ = [
    "BLOCKING_CALLS",
    "ThreadRoot",
    "infer_thread_roots",
    "lock_context_functions",
]

#: External callables that block the calling thread.
BLOCKING_CALLS = frozenset(
    {
        "time.sleep",
        "subprocess.run",
        "subprocess.call",
        "subprocess.check_call",
        "subprocess.check_output",
        "subprocess.Popen",
        "os.system",
    }
)

#: ``np.random`` Generator-API constructors that do not touch global state
#: (mirrors RPL001's allow-list).
_RNG_CONSTRUCTORS = frozenset(
    {
        "default_rng",
        "Generator",
        "BitGenerator",
        "SeedSequence",
        "PCG64",
        "PCG64DXSM",
        "Philox",
        "SFC64",
        "MT19937",
    }
)

#: Method names that mutate their receiver in place.
_MUTATOR_METHODS = frozenset(
    {
        "append",
        "appendleft",
        "clear",
        "discard",
        "extend",
        "insert",
        "move_to_end",
        "pop",
        "popitem",
        "popleft",
        "remove",
        "setdefault",
        "update",
    }
)

#: Methods where any write is construction, not shared mutation.
_CONSTRUCTOR_METHODS = frozenset({"__init__", "__new__", "__post_init__"})

#: The shared identity of every function nothing in-graph calls: they all
#: run on whichever thread drives the program's entry point.
MAIN_ROOT = "main"


@dataclass(frozen=True)
class ThreadRoot:
    """One inferred concurrent entry point into the code base."""

    qualname: str
    kind: str
    reason: str

    @property
    def identity(self) -> str:
        """The label used when counting *distinct* roots."""
        return MAIN_ROOT if self.kind == "main" else self.qualname


def _first_call_arg(call: ast.Call, keyword: str) -> ast.expr | None:
    for kw in call.keywords:
        if kw.arg == keyword:
            return kw.value
    return None


def infer_thread_roots(index: ProjectIndex) -> list[ThreadRoot]:
    """Every inferred thread root, deterministically ordered.

    Kinds:

    - ``http-handler`` — ``do_*`` methods on (transitive) subclasses of
      ``BaseHTTPRequestHandler``; each request runs one on its own thread.
    - ``thread-target`` — resolvable ``threading.Thread(target=...)``
      arguments.
    - ``pool-worker`` — resolvable first arguments of ``.submit(...)`` /
      ``.imap_unordered(...)`` calls that do *not* resolve to an ordinary
      in-project method of the receiver (``functools.partial`` unwrapped).
    - ``signal-handler`` — resolvable ``signal.signal(sig, handler)``
      handlers; they interrupt the main thread at arbitrary points.
    - ``main`` — every function with no in-graph caller.  These share a
      single root *identity*: they all run on the entry-point thread.
    """
    roots: dict[tuple[str, str], ThreadRoot] = {}

    def add(qualname: str | None, kind: str, reason: str) -> None:
        if qualname is None or qualname not in index.functions:
            return
        roots.setdefault((qualname, kind), ThreadRoot(qualname, kind, reason))

    for cls in index.classes.values():
        if not index.class_has_base(cls.qualname, "BaseHTTPRequestHandler"):
            continue
        for method, fn_qual in sorted(cls.methods.items()):
            if method.startswith("do_"):
                add(
                    fn_qual,
                    "http-handler",
                    f"HTTP method handler on {cls.qualname}",
                )

    for fn in index.functions.values():
        types = index.local_types(fn)
        for node in ast.walk(fn.node):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            terminal = (
                func.attr
                if isinstance(func, ast.Attribute)
                else func.id
                if isinstance(func, ast.Name)
                else None
            )
            if terminal == "Thread":
                target = _first_call_arg(node, "target")
                add(
                    index.resolve_callable_ref(fn, target, types)
                    if target is not None
                    else None,
                    "thread-target",
                    f"threading.Thread target in {fn.qualname}",
                )
            elif terminal == "signal" and (
                index.resolve_external(fn.module, func) == "signal.signal"
            ):
                if len(node.args) >= 2:
                    add(
                        index.resolve_callable_ref(fn, node.args[1], types),
                        "signal-handler",
                        f"signal handler registered in {fn.qualname}",
                    )
            elif terminal in ("submit", "imap_unordered") and isinstance(
                func, ast.Attribute
            ):
                # Skip calls that resolve to an ordinary in-project method
                # of the receiver (e.g. ``JobManager.submit`` takes a
                # request object, not a callable).
                receiver_cls = index.expr_class(fn, func.value, types)
                if (
                    receiver_cls is not None
                    and index.class_method(receiver_cls, terminal) is not None
                    and terminal == "submit"
                ):
                    continue
                if node.args:
                    add(
                        index.resolve_callable_ref(fn, node.args[0], types),
                        "pool-worker",
                        f"submitted to an executor in {fn.qualname}",
                    )

    explicit = {qualname for (qualname, _kind) in roots}
    for fn in index.functions.values():
        if fn.qualname in explicit:
            continue
        if not index.callers.get(fn.qualname):
            add(fn.qualname, "main", "no in-graph caller (entry point)")
    return sorted(roots.values(), key=lambda r: (r.kind, r.qualname))


def lock_context_functions(index: ProjectIndex) -> set[str]:
    """Functions provably only ever entered with a lock already held.

    Greatest fixpoint of: *f* is lock-context iff *f* has at least one
    in-graph caller and **every** incoming edge is either lexically
    inside a ``with <lock>:`` block or comes from a lock-context caller.
    Thread roots can never be lock-context (their caller is the runtime).
    """
    candidates = {
        qualname
        for qualname in index.functions
        if index.callers.get(qualname)
    }
    changed = True
    while changed:
        changed = False
        for qualname in list(candidates):
            for edge in index.callers.get(qualname, ()):
                if not edge.locked and edge.caller not in candidates:
                    candidates.discard(qualname)
                    changed = True
                    break
    return candidates


# ---------------------------------------------------------------------------
# shared-state access model
# ---------------------------------------------------------------------------

#: A shared-state key: ``("global", module, name)`` or
#: ``("attr", class_qualname, attr)``.
StateKey = tuple[str, str, str]


@dataclass(frozen=True)
class _Access:
    key: StateKey
    fn: str
    node: ast.AST
    is_write: bool
    locked: bool


def _function_global_decls(fn: FunctionInfo) -> set[str]:
    return {
        name
        for node in ast.walk(fn.node)
        for name in (node.names if isinstance(node, ast.Global) else ())
    }


def _function_local_names(fn: FunctionInfo) -> set[str]:
    """Names bound locally (params, assignments, loops, withs, comps)."""
    args = fn.node.args
    names = {
        a.arg
        for a in (*args.posonlyargs, *args.args, *args.kwonlyargs)
    }
    if args.vararg is not None:
        names.add(args.vararg.arg)
    if args.kwarg is not None:
        names.add(args.kwarg.arg)
    for node in ast.walk(fn.node):
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
            names.add(node.id)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if node is not fn.node:
                names.add(node.name)
        elif isinstance(node, ast.ClassDef):
            names.add(node.name)
    return names - _function_global_decls(fn)


def _shared_param_types(
    index: ProjectIndex, fn: FunctionInfo
) -> dict[str, str]:
    """Locals that hold objects *shared* with other threads.

    Parameter annotations and resolvable call results (``queue.get() ->
    Job``) qualify; a constructor call inside the function creates a
    fresh object, which only this function owns, so it does not.
    """
    types: dict[str, str] = {}
    if fn.cls is not None:
        types["self"] = fn.cls
    args = fn.node.args
    for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs):
        cls = index.annotation_class(fn.module, arg.annotation)
        if cls is not None:
            types[arg.arg] = cls.qualname
    all_types = index.local_types(fn)
    for stmt in ast.walk(fn.node):
        if not isinstance(stmt, ast.Assign) or len(stmt.targets) != 1:
            continue
        target, value = stmt.targets[0], stmt.value
        if not (isinstance(target, ast.Name) and isinstance(value, ast.Call)):
            continue
        callees = index.resolve_call_target(fn, value, all_types)
        if not callees:
            continue
        # Constructor call -> fresh object -> not shared.
        if any(
            c in index.classes or c.rpartition(".")[2] == "__init__"
            for c in callees
        ):
            continue
        inferred = all_types.get(target.id)
        if inferred is not None:
            types[target.id] = inferred
    return types


def _iter_nodes_with_lock_state(
    fn: FunctionInfo,
) -> Iterator[tuple[ast.AST, bool]]:
    """Every node under ``fn`` with its lexical lock containment."""
    pending: list[tuple[ast.AST, bool]] = [
        (stmt, False) for stmt in fn.node.body
    ]
    while pending:
        node, locked = pending.pop()
        yield node, locked
        if isinstance(node, (ast.With, ast.AsyncWith)):
            inner = locked or any(
                _is_lock_expr(item.context_expr) for item in node.items
            )
            for item in node.items:
                pending.append((item.context_expr, locked))
                if item.optional_vars is not None:
                    pending.append((item.optional_vars, locked))
            pending.extend((stmt, inner) for stmt in node.body)
            continue
        pending.extend((child, locked) for child in ast.iter_child_nodes(node))


def _collect_accesses(index: ProjectIndex) -> list[_Access]:
    """Every shared-state read and write site in the project."""
    accesses: list[_Access] = []
    for fn in index.functions.values():
        if fn.name in _CONSTRUCTOR_METHODS:
            continue
        module = index.modules[fn.module]
        global_decls = _function_global_decls(fn)
        local_names = _function_local_names(fn)
        shared_types = _shared_param_types(index, fn)
        cls: ClassInfo | None = (
            index.classes.get(fn.cls) if fn.cls is not None else None
        )

        def global_key(name: str) -> StateKey | None:
            if name in local_names and name not in global_decls:
                return None
            if name not in module.global_names:
                return None
            if name in module.thread_safe_globals:
                return None
            return ("global", fn.module, name)

        def attr_key(expr: ast.Attribute) -> StateKey | None:
            base = expr.value
            if not isinstance(base, ast.Name):
                return None
            base_cls_name = shared_types.get(base.id)
            if base_cls_name is None:
                return None
            base_cls = index.classes.get(base_cls_name)
            if base_cls is None:
                return None
            if expr.attr in base_cls.thread_safe_attrs:
                return None
            if cls is not None and base.id == "self":
                if expr.attr in cls.thread_safe_attrs:
                    return None
            return ("attr", base_cls_name, expr.attr)

        def classify_receiver(expr: ast.expr) -> StateKey | None:
            """Key for a *read* receiver being mutated in place
            (``X.clear()``, ``X[k] = v`` through ``X``)."""
            if isinstance(expr, ast.Name):
                return global_key(expr.id)
            if isinstance(expr, ast.Attribute):
                return attr_key(expr)
            if isinstance(expr, ast.Subscript):
                return classify_receiver(expr.value)
            return None

        def classify_target(expr: ast.expr) -> StateKey | None:
            """The shared-state key a *store* target writes, if any."""
            if isinstance(expr, ast.Name):
                # Rebinding a bare name is only a global write under a
                # ``global`` declaration; otherwise it creates a local.
                if expr.id in global_decls:
                    return global_key(expr.id)
                return None
            if isinstance(expr, ast.Attribute):
                return attr_key(expr)
            if isinstance(expr, ast.Subscript):
                return classify_receiver(expr.value)
            return None

        for node, locked in _iter_nodes_with_lock_state(fn):
            keys_written: list[tuple[StateKey, ast.AST]] = []
            keys_read: list[StateKey] = []
            if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    key = classify_target(target)
                    if key is not None:
                        keys_written.append((key, target))
            elif isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr in _MUTATOR_METHODS
                ):
                    key = classify_receiver(func.value)
                    if key is not None:
                        keys_written.append((key, node))
            elif isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
                key = global_key(node.id)
                if key is not None:
                    keys_read.append(key)
            elif isinstance(node, ast.Attribute) and isinstance(
                node.ctx, ast.Load
            ):
                key = attr_key(node)
                if key is not None:
                    keys_read.append(key)
            for key, anchor in keys_written:
                accesses.append(_Access(key, fn.qualname, anchor, True, locked))
            for key in keys_read:
                accesses.append(_Access(key, fn.qualname, node, False, locked))
    return accesses


def _roots_reaching(
    index: ProjectIndex, roots: list[ThreadRoot]
) -> dict[str, set[str]]:
    """``function qualname -> set of root identities that reach it``."""
    reached: dict[str, set[str]] = {}
    by_identity: dict[str, set[str]] = {}
    for root in roots:
        by_identity.setdefault(root.identity, set()).add(root.qualname)
    for identity, starts in by_identity.items():
        for qualname in index.reachable(starts):
            reached.setdefault(qualname, set()).add(identity)
    return reached


# ---------------------------------------------------------------------------
# RPL009 — unguarded shared state
# ---------------------------------------------------------------------------


@register_project
class UnguardedSharedState(ProjectRule):
    """Writes to multi-threaded state must hold a lock.

    A write site is *guarded* when it is lexically inside a ``with
    <lock>:`` block, or when its enclosing function is only ever entered
    with a lock held (every in-graph call edge is locked — the
    ``_finish``-style "caller holds the lock" contract).
    """

    rule_id = "RPL009"
    name = "unguarded-shared-state"
    summary = (
        "no lock-free writes to module globals or shared object "
        "attributes reachable from two or more thread roots"
    )

    def check(self, index: ProjectIndex) -> Iterator[Finding]:
        roots = infer_thread_roots(index)
        reached = _roots_reaching(index, roots)
        lock_context = lock_context_functions(index)
        accesses = _collect_accesses(index)

        touching: dict[StateKey, set[str]] = {}
        for access in accesses:
            touching.setdefault(access.key, set()).update(
                reached.get(access.fn, set())
            )

        for access in accesses:
            if not access.is_write or access.locked:
                continue
            if access.fn in lock_context:
                continue
            identities = sorted(touching.get(access.key, set()))
            if len(identities) < 2:
                continue
            kind, owner, name = access.key
            what = (
                f"module global {owner}.{name}"
                if kind == "global"
                else f"attribute {owner}.{name}"
            )
            fn = index.functions[access.fn]
            shown = ", ".join(identities[:3])
            yield self.finding(
                str(fn.path),
                access.node,
                f"unguarded write to {what} in {access.fn}; the state is "
                f"reachable from {len(identities)} thread roots "
                f"({shown}) — hold the guarding lock or make every call "
                "path lock-held",
            )


# ---------------------------------------------------------------------------
# RPL010 — transitively blocking handler
# ---------------------------------------------------------------------------


@register_project
class TransitivelyBlockingHandler(ProjectRule):
    """HTTP handler threads must never reach a blocking primitive.

    RPL007 catches ``time.sleep``/``subprocess`` written directly inside
    ``repro/service``; this rule follows the call graph, so a handler
    calling a helper in another package that blocks is caught too.
    """

    rule_id = "RPL010"
    name = "transitively-blocking-handler"
    summary = (
        "no call chain from an HTTP handler method to time.sleep, "
        "synchronous subprocess calls, or os.system"
    )

    def check(self, index: ProjectIndex) -> Iterator[Finding]:
        handler_roots = [
            root
            for root in infer_thread_roots(index)
            if root.kind == "http-handler"
        ]
        if not handler_roots:
            return

        blocking_sites: dict[str, list[tuple[ast.Call, str]]] = {}
        for fn in index.functions.values():
            for node in ast.walk(fn.node):
                if not isinstance(node, ast.Call):
                    continue
                origin = index.resolve_external(fn.module, node.func)
                if origin in BLOCKING_CALLS:
                    blocking_sites.setdefault(fn.qualname, []).append(
                        (node, origin)
                    )
        if not blocking_sites:
            return

        emitted: set[tuple[str, int, int, str]] = set()
        for root in sorted(handler_roots, key=lambda r: r.qualname):
            reachable = index.reachable([root.qualname])
            for qualname in sorted(reachable & blocking_sites.keys()):
                chain = index.call_path(root.qualname, qualname)
                if chain is None:
                    continue
                fn = index.functions[qualname]
                for node, origin in blocking_sites[qualname]:
                    dedup = (qualname, node.lineno, node.col_offset, origin)
                    if dedup in emitted:
                        continue
                    emitted.add(dedup)
                    yield self.finding(
                        str(fn.path),
                        node,
                        f"handler {root.qualname} reaches blocking call "
                        f"{origin}() via {' -> '.join(chain)}; move the "
                        "blocking work onto the JobManager worker pool",
                    )


# ---------------------------------------------------------------------------
# RPL011 — shard determinism
# ---------------------------------------------------------------------------


@register_project
class ShardDeterminism(ProjectRule):
    """Shard tasks must draw randomness only from the shard plan.

    The execution layer guarantees bit-identical reductions across
    serial/thread/process backends by deriving every stream from the
    shard plan (``shard.rng()``).  A shard task (any callable handed to
    ``run_sharded``) whose closure touches ``np.random`` global state or
    a module-level ``Generator`` singleton silently breaks that.
    """

    rule_id = "RPL011"
    name = "shard-determinism"
    summary = (
        "no np.random global state or module-level Generator singletons "
        "reachable from a run_sharded task"
    )

    def _shard_tasks(self, index: ProjectIndex) -> dict[str, str]:
        """``task qualname -> submitting function`` for run_sharded sites."""
        tasks: dict[str, str] = {}
        for fn in index.functions.values():
            types = index.local_types(fn)
            for node in ast.walk(fn.node):
                if not isinstance(node, ast.Call):
                    continue
                func = node.func
                terminal = (
                    func.attr
                    if isinstance(func, ast.Attribute)
                    else func.id
                    if isinstance(func, ast.Name)
                    else None
                )
                if terminal != "run_sharded":
                    continue
                task_expr = _first_call_arg(node, "task")
                if task_expr is None and len(node.args) >= 2:
                    task_expr = node.args[1]
                if task_expr is None:
                    continue
                task = index.resolve_callable_ref(fn, task_expr, types)
                if task is not None:
                    tasks.setdefault(task, fn.qualname)
        return tasks

    def check(self, index: ProjectIndex) -> Iterator[Finding]:
        tasks = self._shard_tasks(index)
        if not tasks:
            return
        emitted: set[tuple[str, int, int]] = set()
        for task in sorted(tasks):
            for qualname in sorted(index.reachable([task])):
                fn = index.functions.get(qualname)
                if fn is None:
                    continue
                module = index.modules[fn.module]
                for node in ast.walk(fn.node):
                    if not isinstance(node, ast.Call):
                        continue
                    message = self._classify(index, module.name, node)
                    if message is None:
                        continue
                    dedup = (qualname, node.lineno, node.col_offset)
                    if dedup in emitted:
                        continue
                    emitted.add(dedup)
                    yield self.finding(
                        str(fn.path),
                        node,
                        f"{message} in {qualname}, reachable from shard "
                        f"task {task}; derive the stream from the shard "
                        "plan (shard.rng()) instead",
                    )

    def _classify(
        self, index: ProjectIndex, module: str, node: ast.Call
    ) -> str | None:
        origin = index.resolve_external(module, node.func)
        if origin is not None and origin.startswith("numpy.random."):
            attr = origin.rpartition(".")[2]
            if attr not in _RNG_CONSTRUCTORS:
                return f"np.random global-state call np.random.{attr}()"
        func = node.func
        if isinstance(func, ast.Attribute) and isinstance(
            func.value, ast.Name
        ):
            info = index.modules.get(module)
            if info is not None:
                value = info.global_values.get(func.value.id)
                if isinstance(value, ast.Call):
                    ctor = value.func
                    ctor_name = (
                        ctor.attr
                        if isinstance(ctor, ast.Attribute)
                        else ctor.id
                        if isinstance(ctor, ast.Name)
                        else None
                    )
                    if ctor_name in ("default_rng", "Generator"):
                        return (
                            "draw from module-level RNG singleton "
                            f"{module}.{func.value.id}"
                        )
        return None
