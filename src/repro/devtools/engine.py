"""reprolint engine: file discovery, suppressions, rule dispatch.

The engine parses each Python file once, builds a :class:`LintContext`,
runs every selected rule over it, and filters out findings covered by a
``# reprolint: disable=RPL001[,RPL002]`` comment on the finding's line
(``disable=ALL`` silences every rule for that line).
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field
from pathlib import Path

from repro.devtools.rules import Finding, Rule, get_rule, iter_rules
from repro.errors import ConfigurationError

__all__ = ["LintContext", "LintFileError", "lint_paths", "lint_source"]

_SUPPRESS_RE = re.compile(
    r"#\s*reprolint:\s*disable=([A-Za-z0-9_]+(?:\s*,\s*[A-Za-z0-9_]+)*)"
)


class LintFileError(ConfigurationError):
    """A file could not be read or parsed (reported with exit code 2)."""


@dataclass(frozen=True)
class LintContext:
    """Everything a rule needs to know about one source file."""

    path: Path
    display_path: str
    source: str
    tree: ast.Module
    #: ``{line: {"RPL001", ...}}``; the sentinel ``"ALL"`` disables all rules.
    suppressions: dict[int, set[str]] = field(default_factory=dict)

    @property
    def filename(self) -> str:
        return self.path.name

    @property
    def is_test(self) -> bool:
        """Pytest test modules are exempt from discipline rules.

        Only ``test_*.py``/``*_test.py`` count: conftest and fixture
        helpers feed deterministic tests and stay under the full rules.
        """
        name = self.filename
        return name.startswith("test_") or name.endswith("_test.py")

    @property
    def in_stats(self) -> bool:
        """True inside the numerical kernels package ``repro/stats``."""
        return "stats" in self.path.parts

    @property
    def in_service(self) -> bool:
        """True inside the HTTP service package ``repro/service``."""
        return "service" in self.path.parts

    def is_suppressed(self, finding: Finding) -> bool:
        rules = self.suppressions.get(finding.line)
        if not rules:
            return False
        return "ALL" in rules or finding.rule in rules


def _extract_suppressions(source: str) -> dict[int, set[str]]:
    """Map line number -> rule ids disabled by a reprolint comment."""
    suppressions: dict[int, set[str]] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        comments = [
            (tok.start[0], tok.string)
            for tok in tokens
            if tok.type == tokenize.COMMENT
        ]
    except tokenize.TokenError:
        comments = [
            (lineno, line)
            for lineno, line in enumerate(source.splitlines(), start=1)
            if "#" in line
        ]
    for lineno, text in comments:
        match = _SUPPRESS_RE.search(text)
        if match is None:
            continue
        rules = {part.strip().upper() for part in match.group(1).split(",")}
        suppressions.setdefault(lineno, set()).update(rules)
    return suppressions


def build_context(path: Path, source: str, display_path: str | None = None) -> LintContext:
    """Parse ``source`` into a :class:`LintContext` for ``path``."""
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        raise LintFileError(f"{path}: syntax error: {exc.msg} (line {exc.lineno})") from exc
    return LintContext(
        path=path,
        display_path=display_path if display_path is not None else str(path),
        source=source,
        tree=tree,
        suppressions=_extract_suppressions(source),
    )


def resolve_rules(select: Iterable[str] | None = None) -> list[Rule]:
    """Rule instances for ``select`` ids, or the full registry when None."""
    if select is None:
        return list(iter_rules())
    rules = []
    for rule_id in select:
        try:
            rules.append(get_rule(rule_id.strip().upper()))
        except KeyError as exc:
            raise ConfigurationError(str(exc)) from exc
    return rules


def lint_source(
    source: str,
    path: Path | str = "<string>",
    rules: Sequence[Rule] | None = None,
) -> list[Finding]:
    """Lint one source string; returns unsuppressed findings, sorted."""
    ctx = build_context(Path(path), source)
    active = list(rules) if rules is not None else list(iter_rules())
    findings = [
        finding
        for rule in active
        for finding in rule.check(ctx)
        if not ctx.is_suppressed(finding)
    ]
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings


def iter_python_files(paths: Sequence[Path]) -> Iterable[Path]:
    """Expand files/directories into a sorted, de-duplicated .py file list."""
    seen: set[Path] = set()
    files: list[Path] = []
    for path in paths:
        if path.is_dir():
            candidates: Iterable[Path] = sorted(path.rglob("*.py"))
        elif path.exists():
            candidates = [path]
        else:
            raise LintFileError(f"{path}: no such file or directory")
        for candidate in candidates:
            if "__pycache__" in candidate.parts:
                continue
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                files.append(candidate)
    return files


def lint_paths(
    paths: Sequence[Path | str],
    select: Iterable[str] | None = None,
) -> tuple[list[Finding], int]:
    """Lint files and directories.

    Returns ``(findings, n_files_checked)``.  Unreadable or syntactically
    invalid files raise :class:`LintFileError`.
    """
    rules = resolve_rules(select)
    findings: list[Finding] = []
    files = list(iter_python_files([Path(p) for p in paths]))
    for file_path in files:
        try:
            source = file_path.read_text(encoding="utf-8")
        except OSError as exc:
            raise LintFileError(f"{file_path}: cannot read: {exc}") from exc
        findings.extend(lint_source(source, file_path, rules))
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings, len(files)
