"""reprolint engine: file discovery, suppressions, rule dispatch.

The engine parses each Python file once, builds a :class:`LintContext`,
runs every selected rule over it, and filters out findings covered by a
``# reprolint: disable=RPL001[,RPL002]`` comment on the finding's line
(``disable=ALL`` silences every rule for that line).  A
``# reprolint: disable-file=RPL004`` comment anywhere in a file silences
the listed rules for the whole file.

Two entry points: :func:`lint_paths` runs the per-file rules over files
and directories (optionally through a content-hash
:class:`~repro.devtools.cache.LintCache`); :func:`lint_project` indexes a
package with :func:`repro.devtools.graph.build_index` and additionally
runs the registered whole-project rules (RPL009+) over the call graph.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING

from repro.devtools.rules import (
    Finding,
    ProjectRule,
    Rule,
    get_project_rule,
    get_rule,
    iter_project_rules,
    iter_rules,
)
from repro.errors import ConfigurationError

if TYPE_CHECKING:
    from repro.devtools.cache import LintCache

__all__ = [
    "LintContext",
    "LintFileError",
    "lint_paths",
    "lint_project",
    "lint_source",
    "resolve_all_rules",
]

_SUPPRESS_RE = re.compile(
    r"#\s*reprolint:\s*disable(-file)?="
    r"([A-Za-z0-9_]+(?:\s*,\s*[A-Za-z0-9_]+)*)"
)


class LintFileError(ConfigurationError):
    """A file could not be read or parsed (reported with exit code 2)."""


@dataclass(frozen=True)
class LintContext:
    """Everything a rule needs to know about one source file."""

    path: Path
    display_path: str
    source: str
    tree: ast.Module
    #: ``{line: {"RPL001", ...}}``; the sentinel ``"ALL"`` disables all rules.
    suppressions: dict[int, set[str]] = field(default_factory=dict)
    #: rules disabled for the entire file via ``disable-file=``.
    file_suppressions: set[str] = field(default_factory=set)

    @property
    def filename(self) -> str:
        return self.path.name

    @property
    def is_test(self) -> bool:
        """Pytest test modules are exempt from discipline rules.

        Only ``test_*.py``/``*_test.py`` count: conftest and fixture
        helpers feed deterministic tests and stay under the full rules.
        """
        name = self.filename
        return name.startswith("test_") or name.endswith("_test.py")

    @property
    def in_stats(self) -> bool:
        """True inside the numerical kernels package ``repro/stats``."""
        return "stats" in self.path.parts

    @property
    def in_service(self) -> bool:
        """True inside the HTTP service package ``repro/service``."""
        return "service" in self.path.parts

    @property
    def in_kernels(self) -> bool:
        """True inside the fast-path package ``repro/kernels``."""
        return "kernels" in self.path.parts

    @property
    def in_mechanisms(self) -> bool:
        """True inside the failure-mechanism package ``repro/mechanisms``."""
        return "mechanisms" in self.path.parts

    def is_suppressed(self, finding: Finding) -> bool:
        if (
            "ALL" in self.file_suppressions
            or finding.rule in self.file_suppressions
        ):
            return True
        rules = self.suppressions.get(finding.line)
        if not rules:
            return False
        return "ALL" in rules or finding.rule in rules


def _extract_suppressions(
    source: str,
) -> tuple[dict[int, set[str]], set[str]]:
    """``(line -> rule ids, file-level rule ids)`` from reprolint comments.

    ``disable=`` scopes to the comment's line; ``disable-file=`` scopes to
    the whole file regardless of where the comment sits.  One comment can
    carry several comma-separated rule ids.
    """
    suppressions: dict[int, set[str]] = {}
    file_suppressions: set[str] = set()
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        comments = [
            (tok.start[0], tok.string)
            for tok in tokens
            if tok.type == tokenize.COMMENT
        ]
    except tokenize.TokenError:
        comments = [
            (lineno, line)
            for lineno, line in enumerate(source.splitlines(), start=1)
            if "#" in line
        ]
    for lineno, text in comments:
        for match in _SUPPRESS_RE.finditer(text):
            rules = {
                part.strip().upper() for part in match.group(2).split(",")
            }
            if match.group(1):
                file_suppressions.update(rules)
            else:
                suppressions.setdefault(lineno, set()).update(rules)
    return suppressions, file_suppressions


def build_context(path: Path, source: str, display_path: str | None = None) -> LintContext:
    """Parse ``source`` into a :class:`LintContext` for ``path``."""
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        raise LintFileError(f"{path}: syntax error: {exc.msg} (line {exc.lineno})") from exc
    line_suppressions, file_suppressions = _extract_suppressions(source)
    return LintContext(
        path=path,
        display_path=display_path if display_path is not None else str(path),
        source=source,
        tree=tree,
        suppressions=line_suppressions,
        file_suppressions=file_suppressions,
    )


def resolve_rules(select: Iterable[str] | None = None) -> list[Rule]:
    """Rule instances for ``select`` ids, or the full registry when None."""
    if select is None:
        return list(iter_rules())
    rules = []
    for rule_id in select:
        try:
            rules.append(get_rule(rule_id.strip().upper()))
        except KeyError as exc:
            raise ConfigurationError(str(exc)) from exc
    return rules


def resolve_all_rules(
    select: Iterable[str] | None = None,
) -> tuple[list[Rule], list[ProjectRule]]:
    """Split a selection into per-file and project rules (project mode).

    With ``select=None`` both registries run in full.  Each selected id
    must exist in one of the two registries; unknown ids raise
    :class:`~repro.errors.ConfigurationError`.
    """
    # Project rules register on import of the analyzer module.
    import repro.devtools.concurrency  # noqa: F401

    if select is None:
        return list(iter_rules()), list(iter_project_rules())
    file_rules: list[Rule] = []
    project_rules: list[ProjectRule] = []
    for raw in select:
        rule_id = raw.strip().upper()
        try:
            file_rules.append(get_rule(rule_id))
            continue
        except KeyError:
            pass
        try:
            project_rules.append(get_project_rule(rule_id))
        except KeyError:
            known = sorted(
                {r.rule_id for r in iter_rules()}
                | {r.rule_id for r in iter_project_rules()}
            )
            raise ConfigurationError(
                f"unknown rule {rule_id!r} (known: {', '.join(known)})"
            ) from None
    return file_rules, project_rules


def lint_source(
    source: str,
    path: Path | str = "<string>",
    rules: Sequence[Rule] | None = None,
) -> list[Finding]:
    """Lint one source string; returns unsuppressed findings, sorted."""
    ctx = build_context(Path(path), source)
    active = list(rules) if rules is not None else list(iter_rules())
    findings = [
        finding
        for rule in active
        for finding in rule.check(ctx)
        if not ctx.is_suppressed(finding)
    ]
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings


def iter_python_files(paths: Sequence[Path]) -> Iterable[Path]:
    """Expand files/directories into a sorted, de-duplicated .py file list."""
    seen: set[Path] = set()
    files: list[Path] = []
    for path in paths:
        if path.is_dir():
            candidates: Iterable[Path] = sorted(path.rglob("*.py"))
        elif path.exists():
            candidates = [path]
        else:
            raise LintFileError(f"{path}: no such file or directory")
        for candidate in candidates:
            if "__pycache__" in candidate.parts:
                continue
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                files.append(candidate)
    return files


def _lint_one_file(
    source: str,
    file_path: Path,
    rules: list[Rule],
    cache: LintCache | None,
) -> list[Finding]:
    """Per-file rules over one source, through the cache when given."""
    if cache is not None:
        key = cache.key(source, str(file_path), rules)
        cached = cache.get(key)
        if cached is not None:
            return cached
        findings = lint_source(source, file_path, rules)
        cache.put(key, findings)
        return findings
    return lint_source(source, file_path, rules)


def lint_paths(
    paths: Sequence[Path | str],
    select: Iterable[str] | None = None,
    cache: LintCache | None = None,
) -> tuple[list[Finding], int]:
    """Lint files and directories.

    Returns ``(findings, n_files_checked)``.  Unreadable or syntactically
    invalid files raise :class:`LintFileError`.  With ``cache``, per-file
    results are reused by content hash.
    """
    rules = resolve_rules(select)
    findings: list[Finding] = []
    files = list(iter_python_files([Path(p) for p in paths]))
    for file_path in files:
        try:
            source = file_path.read_text(encoding="utf-8")
        except OSError as exc:
            raise LintFileError(f"{file_path}: cannot read: {exc}") from exc
        findings.extend(_lint_one_file(source, file_path, rules, cache))
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings, len(files)


def lint_project(
    roots: Sequence[Path | str],
    select: Iterable[str] | None = None,
    cache: LintCache | None = None,
) -> tuple[list[Finding], int]:
    """Whole-project mode: per-file rules plus call-graph rules.

    Each entry in ``roots`` must be a package directory (e.g.
    ``src/repro``).  The package is indexed once
    (:func:`repro.devtools.graph.build_index`); per-file rules run over
    every module (through ``cache`` when given), then each registered
    :class:`~repro.devtools.rules.ProjectRule` runs over the index.
    Line- and file-scoped suppression comments apply to project findings
    exactly as they do to per-file ones.
    """
    from repro.devtools.graph import build_index

    file_rules, project_rules = resolve_all_rules(select)
    findings: list[Finding] = []
    n_files = 0
    for root in roots:
        index = build_index(Path(root))
        contexts: dict[str, LintContext] = {}
        for module in index.modules.values():
            ctx = build_context(module.path, module.source)
            contexts[str(module.path)] = ctx
            n_files += 1
            for finding in _lint_one_file(
                module.source, module.path, file_rules, cache
            ):
                if not ctx.is_suppressed(finding):
                    findings.append(finding)
        for project_rule in project_rules:
            for finding in project_rule.check(index):
                ctx_for_file = contexts.get(finding.path)
                if ctx_for_file is not None and ctx_for_file.is_suppressed(
                    finding
                ):
                    continue
                findings.append(finding)
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings, n_files
