"""Whole-project symbol index and approximate call graph.

Per-file AST rules cannot see that an HTTP handler calls, three frames
deep, a function that mutates shared state — that requires a *project*
view.  This module builds one:

- :class:`ProjectIndex` — every module under a package root, parsed once,
  with module-level functions, classes (including their attribute types)
  and resolved imports (relative imports, ``__init__`` re-exports and
  ``import numpy as np``-style aliases all resolve).
- an approximate **call graph**: for every function/method, the resolvable
  call edges out of it, each annotated with whether the call site sits
  inside a ``with <lock>:`` block.

Resolution is deliberately best-effort and *unsound in the safe
direction* for the analyses built on it (``repro.devtools.concurrency``):
an unresolvable call simply produces no edge.  The resolvers understand
the idioms this codebase actually uses — ``self.method()``, imported
module aliases, constructor calls, ``self.attr.method()`` chains typed by
``__init__``-parameter annotations, callables stored on ``self`` in
``__init__`` (``self._compute = compute`` with a resolvable default), and
``functools.partial(fn, ...)`` wrappers.

Nested functions and lambdas are attributed to their enclosing
module-level function or method: their call sites and state accesses
count as the parent's.  That matches how the concurrency analyses use the
graph (a closure runs on whatever thread invokes its parent's result).
"""

from __future__ import annotations

import ast
from collections.abc import Iterable, Iterator
from dataclasses import dataclass, field
from pathlib import Path

from repro.devtools.engine import LintFileError

__all__ = [
    "CallEdge",
    "ClassInfo",
    "FunctionInfo",
    "ImportTarget",
    "ModuleInfo",
    "ProjectIndex",
    "build_index",
]

#: Terminal identifiers treated as lock objects when they guard a ``with``.
_LOCK_TOKENS = ("lock", "mutex")

#: Constructors whose instances are inherently thread-safe — attribute
#: writes *through* such an object are not shared-state hazards.
_THREAD_SAFE_CTORS = frozenset(
    {
        "local",
        "Lock",
        "RLock",
        "Condition",
        "Event",
        "Semaphore",
        "BoundedSemaphore",
        "Barrier",
        "Queue",
        "LifoQueue",
        "PriorityQueue",
        "SimpleQueue",
    }
)


@dataclass(frozen=True)
class ImportTarget:
    """Where one imported name points.

    ``kind`` is ``"module"`` (an in-project module), ``"symbol"`` (a name
    inside an in-project module) or ``"external"`` (anything outside the
    package; ``module`` then holds the full dotted origin, e.g.
    ``"numpy"`` for ``import numpy as np``).
    """

    kind: str
    module: str
    symbol: str | None = None


@dataclass
class FunctionInfo:
    """One module-level function or method in the project."""

    qualname: str
    name: str
    module: str
    path: Path
    node: ast.FunctionDef | ast.AsyncFunctionDef
    cls: str | None = None

    @property
    def is_method(self) -> bool:
        return self.cls is not None


@dataclass
class ClassInfo:
    """One module-level class: bases, methods, and known attribute types."""

    qualname: str
    name: str
    module: str
    path: Path
    node: ast.ClassDef
    #: Raw dotted base expressions as written (``"BaseHTTPRequestHandler"``,
    #: ``"http.server.BaseHTTPRequestHandler"``).
    bases: list[str] = field(default_factory=list)
    #: method name -> function qualname.
    methods: dict[str, str] = field(default_factory=dict)
    #: attribute name -> class qualname (from annotations and ``__init__``).
    attr_types: dict[str, str] = field(default_factory=dict)
    #: attribute name -> function qualname for callables stored on self.
    attr_callables: dict[str, str] = field(default_factory=dict)
    #: attributes initialised from a thread-safe constructor (locks,
    #: queues, events, thread-locals) — exempt from shared-state checks.
    thread_safe_attrs: set[str] = field(default_factory=set)


@dataclass
class ModuleInfo:
    """One parsed module and its top-level namespace."""

    name: str
    path: Path
    source: str
    tree: ast.Module
    #: local binding -> import target.
    imports: dict[str, ImportTarget] = field(default_factory=dict)
    #: module-level def name -> function qualname.
    functions: dict[str, str] = field(default_factory=dict)
    #: module-level class name -> class qualname.
    classes: dict[str, str] = field(default_factory=dict)
    #: every name bound by module-level statements (the module's globals).
    global_names: set[str] = field(default_factory=set)
    #: module-level name -> the value expression it was last assigned.
    global_values: dict[str, ast.expr] = field(default_factory=dict)
    #: globals initialised from thread-safe constructors (see above).
    thread_safe_globals: set[str] = field(default_factory=set)


@dataclass(frozen=True)
class CallEdge:
    """One resolved call site: ``caller`` invokes ``callee``."""

    caller: str
    callee: str
    node: ast.Call
    #: True when the call site is lexically inside a ``with <lock>:``.
    locked: bool

    @property
    def lineno(self) -> int:
        return self.node.lineno


def _is_lock_expr(expr: ast.expr) -> bool:
    """True for ``_lock`` / ``self._lock`` / ``registry.mutex``-style names."""
    terminal: str | None = None
    if isinstance(expr, ast.Name):
        terminal = expr.id
    elif isinstance(expr, ast.Attribute):
        terminal = expr.attr
    elif isinstance(expr, ast.Call):
        # ``with lock_for(key):`` — a call returning a lock.
        return _is_lock_expr(expr.func)
    if terminal is None:
        return False
    lowered = terminal.lower()
    return any(token in lowered for token in _LOCK_TOKENS)


def _is_thread_safe_ctor(expr: ast.expr) -> bool:
    """True when ``expr`` constructs an inherently thread-safe object."""
    if not isinstance(expr, ast.Call):
        return False
    func = expr.func
    name: str | None = None
    if isinstance(func, ast.Name):
        name = func.id
    elif isinstance(func, ast.Attribute):
        name = func.attr
    return name in _THREAD_SAFE_CTORS


def _dotted(expr: ast.expr) -> str | None:
    """``"a.b.c"`` for a Name/Attribute chain, else None."""
    parts: list[str] = []
    node = expr
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def _annotation_name(annotation: ast.expr | None) -> str | None:
    """The dotted name of a plain annotation (unwraps ``Optional[X]``-ish)."""
    if annotation is None:
        return None
    if isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
        # String annotation: take the first dotted token.
        text = annotation.value.strip()
        head = text.split("[", 1)[0].split("|", 1)[0].strip()
        return head or None
    if isinstance(annotation, (ast.Name, ast.Attribute)):
        return _dotted(annotation)
    if isinstance(annotation, ast.Subscript):
        return _annotation_name(annotation.value)
    if isinstance(annotation, ast.BinOp) and isinstance(annotation.op, ast.BitOr):
        # ``X | None`` — resolve through the non-None side.
        left = _annotation_name(annotation.left)
        if left is not None and left != "None":
            return left
        return _annotation_name(annotation.right)
    return None


def iter_calls_with_lock_state(
    body: Iterable[ast.stmt],
) -> Iterator[tuple[ast.Call, bool]]:
    """Every call in ``body`` (descending into nested defs) with lock state.

    The second element is True when the call site sits lexically inside a
    ``with`` statement over a lock-named object.
    """
    pending: list[tuple[ast.AST, bool]] = [(stmt, False) for stmt in body]
    while pending:
        node, locked = pending.pop()
        if isinstance(node, ast.Call):
            yield node, locked
        if isinstance(node, (ast.With, ast.AsyncWith)):
            inner = locked or any(
                _is_lock_expr(item.context_expr) for item in node.items
            )
            for item in node.items:
                pending.append((item.context_expr, locked))
                if item.optional_vars is not None:
                    pending.append((item.optional_vars, locked))
            pending.extend((stmt, inner) for stmt in node.body)
            continue
        pending.extend(
            (child, locked) for child in ast.iter_child_nodes(node)
        )


class ProjectIndex:
    """The project-wide symbol table and call graph (see module docstring)."""

    def __init__(self, package: str, root: Path) -> None:
        self.package = package
        self.root = root
        self.modules: dict[str, ModuleInfo] = {}
        self.functions: dict[str, FunctionInfo] = {}
        self.classes: dict[str, ClassInfo] = {}
        #: caller qualname -> outgoing edges, built by :meth:`build_calls`.
        self.calls: dict[str, list[CallEdge]] = {}
        #: callee qualname -> incoming edges.
        self.callers: dict[str, list[CallEdge]] = {}

    # ------------------------------------------------------------------
    # name resolution
    # ------------------------------------------------------------------

    def is_internal(self, dotted: str) -> bool:
        """True when a dotted module path belongs to this package."""
        return dotted == self.package or dotted.startswith(self.package + ".")

    def resolve_symbol(
        self, module: str, name: str, _seen: frozenset[tuple[str, str]] = frozenset()
    ) -> FunctionInfo | ClassInfo | None:
        """Resolve ``name`` in ``module``'s top-level namespace.

        Follows import chains (so an ``__init__`` re-export resolves to
        the defining module) with a cycle guard; returns None for
        external or unresolvable names.
        """
        if (module, name) in _seen:
            return None
        info = self.modules.get(module)
        if info is None:
            return None
        if name in info.functions:
            return self.functions[info.functions[name]]
        if name in info.classes:
            return self.classes[info.classes[name]]
        target = info.imports.get(name)
        if target is None:
            return None
        seen = _seen | {(module, name)}
        if target.kind == "symbol":
            assert target.symbol is not None
            return self.resolve_symbol(target.module, target.symbol, seen)
        return None

    def resolve_import_module(self, module: str, alias: str) -> str | None:
        """The in-project module an alias is bound to, if any."""
        info = self.modules.get(module)
        if info is None:
            return None
        target = info.imports.get(alias)
        if target is not None and target.kind == "module":
            return target.module
        return None

    def resolve_external(self, module: str, expr: ast.expr) -> str | None:
        """The full external dotted origin of a call target, if external.

        ``time.sleep`` with ``import time`` resolves to ``"time.sleep"``;
        ``pause`` with ``from time import sleep as pause`` resolves the
        same way; ``np.random.rand`` resolves to ``"numpy.random.rand"``.
        """
        info = self.modules.get(module)
        if info is None:
            return None
        dotted = _dotted(expr)
        if dotted is None:
            return None
        head, _, rest = dotted.partition(".")
        target = info.imports.get(head)
        if target is None or target.kind != "external":
            return None
        origin = target.module
        if target.symbol is not None:
            origin = f"{origin}.{target.symbol}"
        return f"{origin}.{rest}" if rest else origin

    def class_method(self, cls: str, name: str) -> str | None:
        """Method qualname on ``cls`` or its in-project base classes."""
        seen: set[str] = set()
        stack = [cls]
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            info = self.classes.get(current)
            if info is None:
                continue
            if name in info.methods:
                return info.methods[name]
            for base in info.bases:
                resolved = self._resolve_class_ref(info.module, base)
                if resolved is not None:
                    stack.append(resolved.qualname)
        return None

    def _resolve_class_ref(self, module: str, dotted: str) -> ClassInfo | None:
        """Resolve a dotted class reference written inside ``module``."""
        head, _, rest = dotted.partition(".")
        if not rest:
            resolved = self.resolve_symbol(module, head)
            return resolved if isinstance(resolved, ClassInfo) else None
        target_module = self.resolve_import_module(module, head)
        if target_module is None:
            # ``repro.thermal.grid.PackageModel`` written out in full.
            maybe_module, _, symbol = dotted.rpartition(".")
            if self.is_internal(maybe_module):
                resolved = self.resolve_symbol(maybe_module, symbol)
                return resolved if isinstance(resolved, ClassInfo) else None
            return None
        resolved = self.resolve_symbol(target_module, rest)
        return resolved if isinstance(resolved, ClassInfo) else None

    def class_has_base(self, cls: str, base_terminal: str) -> bool:
        """True when ``cls`` (transitively) lists a base whose terminal
        identifier equals ``base_terminal`` (external bases included)."""
        seen: set[str] = set()
        stack = [cls]
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            info = self.classes.get(current)
            if info is None:
                continue
            for base in info.bases:
                if base.rpartition(".")[2] == base_terminal:
                    return True
                resolved = self._resolve_class_ref(info.module, base)
                if resolved is not None:
                    stack.append(resolved.qualname)
        return False

    # ------------------------------------------------------------------
    # local type inference
    # ------------------------------------------------------------------

    def annotation_class(
        self, module: str, annotation: ast.expr | None
    ) -> ClassInfo | None:
        """The in-project class an annotation names, if any."""
        name = _annotation_name(annotation)
        if name is None:
            return None
        return self._resolve_class_ref(module, name)

    def local_types(self, fn: FunctionInfo) -> dict[str, str]:
        """Best-effort ``local name -> class qualname`` for one function.

        Covers parameter annotations, ``x = ClassName(...)`` constructor
        assignments, and ``x = call()`` where the callee's return
        annotation resolves to an in-project class.  ``self`` maps to the
        enclosing class.
        """
        types: dict[str, str] = {}
        if fn.cls is not None:
            types["self"] = fn.cls
        args = fn.node.args
        for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs):
            cls = self.annotation_class(fn.module, arg.annotation)
            if cls is not None:
                types[arg.arg] = cls.qualname
        for stmt in ast.walk(fn.node):
            target: ast.expr | None = None
            value: ast.expr | None = None
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target, value = stmt.targets[0], stmt.value
            elif isinstance(stmt, ast.AnnAssign):
                target, value = stmt.target, stmt.value
                if value is None:
                    cls = self.annotation_class(fn.module, stmt.annotation)
                    if cls is not None and isinstance(target, ast.Name):
                        types[target.id] = cls.qualname
                    continue
            if (
                target is None
                or value is None
                or not isinstance(target, ast.Name)
                or not isinstance(value, ast.Call)
            ):
                continue
            inferred = self._call_result_class(fn, value, types)
            if inferred is not None:
                types[target.id] = inferred
        return types

    def _call_result_class(
        self, fn: FunctionInfo, call: ast.Call, types: dict[str, str]
    ) -> str | None:
        """The class a call expression evaluates to, when resolvable."""
        for callee in self.resolve_call_target(fn, call, types):
            if callee in self.classes:
                return callee
            info = self.functions.get(callee)
            if info is not None:
                cls = self.annotation_class(info.module, info.node.returns)
                if cls is not None:
                    return cls.qualname
        return None

    def expr_class(
        self, fn: FunctionInfo, expr: ast.expr, types: dict[str, str]
    ) -> str | None:
        """The in-project class an expression is an instance of, if known."""
        if isinstance(expr, ast.Name):
            if expr.id in types:
                return types[expr.id]
            module = self.modules[fn.module]
            value = module.global_values.get(expr.id)
            if value is not None and isinstance(value, ast.Call):
                resolved = self._module_level_ctor_class(fn.module, value)
                if resolved is not None:
                    return resolved
            return None
        if isinstance(expr, ast.Attribute):
            base = self.expr_class(fn, expr.value, types)
            if base is None:
                return None
            cls = self.classes.get(base)
            if cls is None:
                return None
            attr_type = cls.attr_types.get(expr.attr)
            if attr_type is not None:
                return attr_type
            return None
        if isinstance(expr, ast.Call):
            return self._call_result_class(fn, expr, types)
        return None

    def _module_level_ctor_class(self, module: str, call: ast.Call) -> str | None:
        """Class of a module-level ``x = SomeClass(...)`` singleton."""
        dotted = _dotted(call.func)
        if dotted is None:
            return None
        resolved = self._resolve_class_ref(module, dotted)
        return resolved.qualname if resolved is not None else None

    # ------------------------------------------------------------------
    # call resolution
    # ------------------------------------------------------------------

    def resolve_callable_ref(
        self, fn: FunctionInfo, expr: ast.expr, types: dict[str, str]
    ) -> str | None:
        """Resolve a *reference* to a callable (a thread target, a task
        argument) to a function qualname.  Unwraps ``partial(f, ...)``."""
        if isinstance(expr, ast.Call):
            func_name = _dotted(expr.func)
            if func_name is not None and func_name.rpartition(".")[2] == "partial":
                if expr.args:
                    return self.resolve_callable_ref(fn, expr.args[0], types)
            return None
        if isinstance(expr, ast.Name):
            resolved = self.resolve_symbol(fn.module, expr.id)
            if isinstance(resolved, FunctionInfo):
                return resolved.qualname
            if isinstance(resolved, ClassInfo):
                return self.class_method(resolved.qualname, "__init__")
            return None
        if isinstance(expr, ast.Attribute):
            base_cls = self.expr_class(fn, expr.value, types)
            if base_cls is not None:
                method = self.class_method(base_cls, expr.attr)
                if method is not None:
                    return method
                cls = self.classes.get(base_cls)
                if cls is not None and expr.attr in cls.attr_callables:
                    return cls.attr_callables[expr.attr]
                return None
            base = expr.value
            if isinstance(base, ast.Name):
                target_module = self.resolve_import_module(fn.module, base.id)
                if target_module is not None:
                    resolved = self.resolve_symbol(target_module, expr.attr)
                    if isinstance(resolved, FunctionInfo):
                        return resolved.qualname
                    if isinstance(resolved, ClassInfo):
                        return self.class_method(resolved.qualname, "__init__")
            return None
        return None

    def resolve_call_target(
        self, fn: FunctionInfo, call: ast.Call, types: dict[str, str]
    ) -> list[str]:
        """Candidate callee qualnames (and/or class qualnames) of a call.

        A constructor call resolves to the class's ``__init__`` when it
        has one, else to the class qualname itself (so reachability still
        flows through dataclasses without an explicit ``__init__``).
        """
        func = call.func
        out: list[str] = []
        if isinstance(func, ast.Name):
            resolved = self.resolve_symbol(fn.module, func.id)
            if isinstance(resolved, FunctionInfo):
                out.append(resolved.qualname)
            elif isinstance(resolved, ClassInfo):
                init = self.class_method(resolved.qualname, "__init__")
                out.append(init if init is not None else resolved.qualname)
        elif isinstance(func, ast.Attribute):
            base_cls = self.expr_class(fn, func.value, types)
            if base_cls is not None:
                method = self.class_method(base_cls, func.attr)
                if method is not None:
                    out.append(method)
                else:
                    cls = self.classes.get(base_cls)
                    if cls is not None and func.attr in cls.attr_callables:
                        out.append(cls.attr_callables[func.attr])
            elif isinstance(func.value, ast.Name):
                target_module = self.resolve_import_module(
                    fn.module, func.value.id
                )
                if target_module is not None:
                    resolved = self.resolve_symbol(target_module, func.attr)
                    if isinstance(resolved, FunctionInfo):
                        out.append(resolved.qualname)
                    elif isinstance(resolved, ClassInfo):
                        init = self.class_method(resolved.qualname, "__init__")
                        out.append(
                            init if init is not None else resolved.qualname
                        )
        return out

    # ------------------------------------------------------------------
    # graph construction / traversal
    # ------------------------------------------------------------------

    def build_calls(self) -> None:
        """Populate :attr:`calls` / :attr:`callers` for every function."""
        self.calls = {}
        self.callers = {}
        for fn in self.functions.values():
            types = self.local_types(fn)
            edges: list[CallEdge] = []
            for call, locked in iter_calls_with_lock_state(fn.node.body):
                for callee in self.resolve_call_target(fn, call, types):
                    edges.append(
                        CallEdge(
                            caller=fn.qualname,
                            callee=callee,
                            node=call,
                            locked=locked,
                        )
                    )
            self.calls[fn.qualname] = edges
            for edge in edges:
                self.callers.setdefault(edge.callee, []).append(edge)

    def reachable(self, starts: Iterable[str]) -> set[str]:
        """Every function qualname reachable from ``starts`` (inclusive)."""
        seen: set[str] = set()
        stack = [s for s in starts if s in self.functions or s in self.classes]
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            for edge in self.calls.get(current, ()):
                if edge.callee not in seen:
                    stack.append(edge.callee)
        return seen

    def call_path(self, start: str, goal: str) -> list[str] | None:
        """A shortest call chain ``start -> ... -> goal`` (BFS), or None."""
        if start == goal:
            return [start]
        prev: dict[str, str] = {}
        queue = [start]
        seen = {start}
        while queue:
            current = queue.pop(0)
            for edge in self.calls.get(current, ()):
                if edge.callee in seen:
                    continue
                prev[edge.callee] = current
                if edge.callee == goal:
                    path = [goal]
                    while path[-1] != start:
                        path.append(prev[path[-1]])
                    return list(reversed(path))
                seen.add(edge.callee)
                queue.append(edge.callee)
        return None


# ---------------------------------------------------------------------------
# index construction
# ---------------------------------------------------------------------------


def _module_name(package: str, root: Path, path: Path) -> str:
    relative = path.relative_to(root)
    parts = [package, *relative.parts[:-1]]
    stem = relative.parts[-1][: -len(".py")]
    if stem != "__init__":
        parts.append(stem)
    return ".".join(parts)


def _record_imports(
    info: ModuleInfo, package: str, is_package_init: bool
) -> None:
    """Fill ``info.imports`` from the module's import statements."""

    def classify(dotted: str, symbol: str | None = None) -> ImportTarget:
        if dotted == package or dotted.startswith(package + "."):
            if symbol is None:
                return ImportTarget("module", dotted)
            return ImportTarget("symbol", dotted, symbol)
        return ImportTarget("external", dotted, symbol)

    module_pkg = info.name if is_package_init else info.name.rpartition(".")[0]
    for node in ast.walk(info.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.partition(".")[0]
                # ``import repro.exec.cache`` binds ``repro``; with an
                # asname it binds the full dotted module.
                dotted = alias.name if alias.asname else alias.name.partition(".")[0]
                info.imports[local] = classify(dotted)
        elif isinstance(node, ast.ImportFrom):
            if node.level > 0:
                base_parts = module_pkg.split(".") if module_pkg else []
                drop = node.level - 1
                if drop > len(base_parts):
                    continue
                base = base_parts[: len(base_parts) - drop]
                origin = ".".join(
                    [*base, *(node.module.split(".") if node.module else [])]
                )
            else:
                origin = node.module or ""
            if not origin:
                continue
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                # ``from repro.service import jobs`` may bind a module.
                submodule = f"{origin}.{alias.name}"
                if origin == package or origin.startswith(package + "."):
                    info.imports[local] = ImportTarget(
                        "symbol", origin, alias.name
                    )
                    # Patched to a module target later when it names one.
                    info.imports[local + "\x00candidate"] = ImportTarget(
                        "module", submodule
                    )
                else:
                    info.imports[local] = classify(origin, alias.name)


def _finalize_submodule_imports(index: ProjectIndex) -> None:
    """Turn ``from pkg import mod`` symbol targets into module targets."""
    for info in index.modules.values():
        for local in list(info.imports):
            if local.endswith("\x00candidate"):
                candidate = info.imports.pop(local)
                real = local[: -len("\x00candidate")]
                target = info.imports.get(real)
                if (
                    candidate.module in index.modules
                    and target is not None
                    and target.kind == "symbol"
                    and index.resolve_symbol(
                        target.module, target.symbol or ""
                    )
                    is None
                ):
                    info.imports[real] = candidate


def _record_module_globals(info: ModuleInfo) -> None:
    for stmt in info.tree.body:
        targets: list[ast.expr] = []
        value: ast.expr | None = None
        if isinstance(stmt, ast.Assign):
            targets, value = list(stmt.targets), stmt.value
        elif isinstance(stmt, ast.AnnAssign):
            targets, value = [stmt.target], stmt.value
        elif isinstance(stmt, ast.AugAssign):
            targets = [stmt.target]
        for target in targets:
            names = [
                n.id
                for n in ast.walk(target)
                if isinstance(n, ast.Name)
                and isinstance(n.ctx, (ast.Store, ast.Del))
            ]
            for name in names:
                info.global_names.add(name)
                if value is not None:
                    info.global_values[name] = value
                    if _is_thread_safe_ctor(value):
                        info.thread_safe_globals.add(name)


def _record_class(
    index: ProjectIndex, info: ModuleInfo, node: ast.ClassDef
) -> None:
    qualname = f"{info.name}.{node.name}"
    cls = ClassInfo(
        qualname=qualname,
        name=node.name,
        module=info.name,
        path=info.path,
        node=node,
        bases=[d for d in (_dotted(b) for b in node.bases) if d is not None],
    )
    index.classes[qualname] = cls
    info.classes[node.name] = qualname
    for stmt in node.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            fn_qual = f"{qualname}.{stmt.name}"
            index.functions[fn_qual] = FunctionInfo(
                qualname=fn_qual,
                name=stmt.name,
                module=info.name,
                path=info.path,
                node=stmt,
                cls=qualname,
            )
            cls.methods[stmt.name] = fn_qual
        elif isinstance(stmt, ast.AnnAssign) and isinstance(
            stmt.target, ast.Name
        ):
            # Class-level annotation: dataclass field or declared attr.
            name = _annotation_name(stmt.annotation)
            if name is not None:
                cls.attr_types[stmt.target.id] = name  # resolved later
            if stmt.value is not None and _is_thread_safe_ctor(stmt.value):
                cls.thread_safe_attrs.add(stmt.target.id)
            if (
                name is not None
                and name.rpartition(".")[2] in _THREAD_SAFE_CTORS
            ):
                cls.thread_safe_attrs.add(stmt.target.id)


def _resolve_class_attr_types(index: ProjectIndex) -> None:
    """Second pass: resolve attr types and ``__init__`` assignments."""
    for cls in index.classes.values():
        # Resolve class-level annotations recorded as raw dotted names.
        for attr, raw in list(cls.attr_types.items()):
            resolved = index._resolve_class_ref(cls.module, raw)
            if resolved is not None:
                cls.attr_types[attr] = resolved.qualname
            else:
                del cls.attr_types[attr]
        init_qual = cls.methods.get("__init__")
        if init_qual is None:
            continue
        init = index.functions[init_qual]
        args = init.node.args
        param_ann: dict[str, str] = {}
        param_default_fn: dict[str, str] = {}
        positional = [*args.posonlyargs, *args.args]
        defaults: dict[str, ast.expr] = {}
        for arg, default in zip(
            positional[len(positional) - len(args.defaults) :], args.defaults
        ):
            defaults[arg.arg] = default
        for arg, kw_default in zip(args.kwonlyargs, args.kw_defaults):
            if kw_default is not None:
                defaults[arg.arg] = kw_default
        for arg in (*positional, *args.kwonlyargs):
            resolved_cls = index.annotation_class(cls.module, arg.annotation)
            if resolved_cls is not None:
                param_ann[arg.arg] = resolved_cls.qualname
            default = defaults.get(arg.arg)
            if isinstance(default, ast.Name):
                symbol = index.resolve_symbol(cls.module, default.id)
                if isinstance(symbol, FunctionInfo):
                    param_default_fn[arg.arg] = symbol.qualname

        def value_class(value: ast.expr) -> str | None:
            if isinstance(value, ast.IfExp):
                return value_class(value.body) or value_class(value.orelse)
            if isinstance(value, ast.Name):
                return param_ann.get(value.id)
            if isinstance(value, ast.Call):
                return index._module_level_ctor_class(cls.module, value)
            return None

        for stmt in ast.walk(init.node):
            if not isinstance(stmt, ast.Assign) or len(stmt.targets) != 1:
                continue
            target = stmt.targets[0]
            if not (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                continue
            attr = target.attr
            if _is_thread_safe_ctor(stmt.value):
                cls.thread_safe_attrs.add(attr)
                continue
            resolved_type = value_class(stmt.value)
            if resolved_type is not None:
                cls.attr_types.setdefault(attr, resolved_type)
            if isinstance(stmt.value, ast.Name):
                fn_qual = param_default_fn.get(stmt.value.id)
                if fn_qual is not None:
                    cls.attr_callables.setdefault(attr, fn_qual)
                else:
                    symbol = index.resolve_symbol(cls.module, stmt.value.id)
                    if isinstance(symbol, FunctionInfo):
                        cls.attr_callables.setdefault(attr, symbol.qualname)


def build_index(root: Path | str, package: str | None = None) -> ProjectIndex:
    """Index every module under ``root`` (a package directory).

    ``package`` defaults to the directory name (``src/repro`` indexes the
    ``repro`` package).  Unreadable or syntactically invalid files raise
    :class:`~repro.devtools.engine.LintFileError`.
    """
    root_path = Path(root)
    if not root_path.is_dir():
        raise LintFileError(f"{root_path}: not a directory (project root)")
    pkg = package if package is not None else root_path.name
    index = ProjectIndex(pkg, root_path)
    for path in sorted(root_path.rglob("*.py")):
        if "__pycache__" in path.parts:
            continue
        try:
            source = path.read_text(encoding="utf-8")
        except OSError as exc:
            raise LintFileError(f"{path}: cannot read: {exc}") from exc
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError as exc:
            raise LintFileError(
                f"{path}: syntax error: {exc.msg} (line {exc.lineno})"
            ) from exc
        name = _module_name(pkg, root_path, path)
        info = ModuleInfo(name=name, path=path, source=source, tree=tree)
        index.modules[name] = info
        _record_imports(info, pkg, is_package_init=path.name == "__init__.py")
        _record_module_globals(info)
        for stmt in tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = f"{name}.{stmt.name}"
                index.functions[qualname] = FunctionInfo(
                    qualname=qualname,
                    name=stmt.name,
                    module=name,
                    path=path,
                    node=stmt,
                )
                info.functions[stmt.name] = qualname
            elif isinstance(stmt, ast.ClassDef):
                _record_class(index, info, stmt)
    _finalize_submodule_imports(index)
    _resolve_class_attr_types(index)
    index.build_calls()
    return index
