"""reprolint command line: ``python -m repro.devtools.lint [paths...]``.

Exit codes
----------
- ``0`` — no findings (or ``--report-only`` was given).
- ``1`` — at least one finding.
- ``2`` — usage error, unknown rule, unreadable file, or syntax error.

Modes
-----
Default mode runs the per-file rules over files/directories.
``--project`` treats each path as a *package root* (e.g. ``src/repro``),
indexes it, and additionally runs the whole-project call-graph rules
(RPL009 unguarded-shared-state, RPL010 transitively-blocking-handler,
RPL011 shard-determinism).

Output is plain text (one ``path:line:col: RULE message`` per finding),
a JSON document (``--format json``), or SARIF 2.1.0 (``--format sarif``)
for GitHub code-scanning upload.

A committed findings baseline (``.reprolint-baseline.json``) freezes
pre-existing debt: baselined findings are filtered from the output and
the exit code; ``--update-baseline`` rewrites the file to cover exactly
the current findings.  Per-file results are cached by content hash under
``.cache/reprolint`` (``--no-cache`` disables, ``--cache-dir`` moves it).
"""

from __future__ import annotations

import argparse
import json
import sys
from collections import Counter
from collections.abc import Sequence
from pathlib import Path

from repro.devtools.baseline import (
    DEFAULT_BASELINE,
    apply_baseline,
    load_baseline,
    write_baseline,
)
from repro.devtools.cache import DEFAULT_CACHE_DIR, LintCache
from repro.devtools.engine import lint_paths, lint_project
from repro.devtools.rules import Finding, iter_project_rules, iter_rules
from repro.errors import ReproError

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="reprolint",
        description=(
            "Domain-aware static analysis for the repro library: RNG "
            "discipline, unit hygiene, error hierarchy, print discipline, "
            "numerical safety and (in --project mode) call-graph "
            "thread-safety and shard-determinism checks."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (package roots with --project)",
    )
    parser.add_argument(
        "--project",
        action="store_true",
        help=(
            "whole-project mode: index each path as a package, run the "
            "per-file rules plus the call-graph rules (RPL009+)"
        ),
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--select",
        default=None,
        metavar="IDS",
        help="comma-separated rule ids to run (default: all rules)",
    )
    parser.add_argument(
        "--report-only",
        action="store_true",
        help="always exit 0, even with findings (CI advisory mode)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        metavar="FILE",
        help=(
            "findings baseline to filter against (default: "
            f"{DEFAULT_BASELINE} when it exists)"
        ),
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline file",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help=(
            "rewrite the baseline to cover exactly the current findings "
            "and exit 0"
        ),
    )
    parser.add_argument(
        "--cache-dir",
        type=Path,
        default=DEFAULT_CACHE_DIR,
        metavar="DIR",
        help=f"per-file result cache location (default: {DEFAULT_CACHE_DIR})",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the per-file result cache",
    )
    return parser


def _render_text(
    findings: Sequence[Finding], n_files: int, n_baselined: int
) -> str:
    lines = [finding.render() for finding in findings]
    noun = "file" if n_files == 1 else "files"
    suffix = f" ({n_baselined} baselined)" if n_baselined else ""
    if findings:
        counts = Counter(finding.rule for finding in findings)
        breakdown = ", ".join(
            f"{rule}: {count}" for rule, count in sorted(counts.items())
        )
        lines.append(
            f"{len(findings)} finding(s) in {n_files} {noun} "
            f"({breakdown}){suffix}"
        )
    else:
        lines.append(f"{n_files} {noun} checked, no findings{suffix}")
    return "\n".join(lines) + "\n"


def _render_json(
    findings: Sequence[Finding], n_files: int, n_baselined: int
) -> str:
    counts = Counter(finding.rule for finding in findings)
    payload = {
        "tool": "reprolint",
        "checked_files": n_files,
        "baselined": n_baselined,
        "counts": dict(sorted(counts.items())),
        "findings": [finding.as_dict() for finding in findings],
    }
    return json.dumps(payload, indent=2) + "\n"


def _render_rule_list() -> str:
    # Importing the analyzer registers the project rules.
    import repro.devtools.concurrency  # noqa: F401

    lines = []
    for rule in iter_rules():
        lines.append(f"{rule.rule_id}  {rule.name}")
        lines.append(f"    {rule.summary}")
    for project_rule in iter_project_rules():
        lines.append(
            f"{project_rule.rule_id}  {project_rule.name}  [--project]"
        )
        lines.append(f"    {project_rule.summary}")
    return "\n".join(lines) + "\n"


def main(argv: Sequence[str] | None = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        sys.stdout.write(_render_rule_list())
        return 0
    if not args.paths:
        parser.print_usage(sys.stderr)
        sys.stderr.write("reprolint: error: no paths given\n")
        return 2

    select = args.select.split(",") if args.select else None
    cache = None if args.no_cache else LintCache(args.cache_dir)
    try:
        if args.project:
            findings, n_files = lint_project(
                args.paths, select=select, cache=cache
            )
        else:
            findings, n_files = lint_paths(
                args.paths, select=select, cache=cache
            )
    except ReproError as exc:
        sys.stderr.write(f"reprolint: error: {exc}\n")
        return 2

    baseline_path = args.baseline
    if baseline_path is None and DEFAULT_BASELINE.exists():
        baseline_path = DEFAULT_BASELINE
    if args.update_baseline:
        target = baseline_path if baseline_path is not None else DEFAULT_BASELINE
        write_baseline(target, findings)
        sys.stdout.write(
            f"reprolint: baseline {target} updated "
            f"({len(findings)} finding(s))\n"
        )
        return 0

    n_baselined = 0
    if baseline_path is not None and not args.no_baseline:
        try:
            baseline = load_baseline(baseline_path)
        except ReproError as exc:
            sys.stderr.write(f"reprolint: error: {exc}\n")
            return 2
        findings, n_baselined = apply_baseline(findings, baseline)

    if args.format == "json":
        sys.stdout.write(_render_json(findings, n_files, n_baselined))
    elif args.format == "sarif":
        from repro.devtools.sarif import render_sarif

        sys.stdout.write(render_sarif(findings))
    else:
        sys.stdout.write(_render_text(findings, n_files, n_baselined))

    if findings and not args.report_only:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
