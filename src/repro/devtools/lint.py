"""reprolint command line: ``python -m repro.devtools.lint [paths...]``.

Exit codes
----------
- ``0`` — no findings (or ``--report-only`` was given).
- ``1`` — at least one finding.
- ``2`` — usage error, unknown rule, unreadable file, or syntax error.

Output is plain text (one ``path:line:col: RULE message`` per finding)
or a JSON document (``--format json``) with ``findings``, per-rule
``counts`` and the number of ``checked_files``.
"""

from __future__ import annotations

import argparse
import json
import sys
from collections import Counter
from collections.abc import Sequence

from repro.devtools.engine import lint_paths
from repro.devtools.rules import Finding, iter_rules
from repro.errors import ReproError

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="reprolint",
        description=(
            "Domain-aware static analysis for the repro library: RNG "
            "discipline, unit hygiene, error hierarchy, print discipline "
            "and numerical safety."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (e.g. src/repro)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--select",
        default=None,
        metavar="IDS",
        help="comma-separated rule ids to run (default: all rules)",
    )
    parser.add_argument(
        "--report-only",
        action="store_true",
        help="always exit 0, even with findings (CI advisory mode)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    return parser


def _render_text(findings: Sequence[Finding], n_files: int) -> str:
    lines = [finding.render() for finding in findings]
    noun = "file" if n_files == 1 else "files"
    if findings:
        counts = Counter(finding.rule for finding in findings)
        breakdown = ", ".join(
            f"{rule}: {count}" for rule, count in sorted(counts.items())
        )
        lines.append(
            f"{len(findings)} finding(s) in {n_files} {noun} ({breakdown})"
        )
    else:
        lines.append(f"{n_files} {noun} checked, no findings")
    return "\n".join(lines) + "\n"


def _render_json(findings: Sequence[Finding], n_files: int) -> str:
    counts = Counter(finding.rule for finding in findings)
    payload = {
        "tool": "reprolint",
        "checked_files": n_files,
        "counts": dict(sorted(counts.items())),
        "findings": [finding.as_dict() for finding in findings],
    }
    return json.dumps(payload, indent=2) + "\n"


def _render_rule_list() -> str:
    lines = []
    for rule in iter_rules():
        lines.append(f"{rule.rule_id}  {rule.name}")
        lines.append(f"    {rule.summary}")
    return "\n".join(lines) + "\n"


def main(argv: Sequence[str] | None = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        sys.stdout.write(_render_rule_list())
        return 0
    if not args.paths:
        parser.print_usage(sys.stderr)
        sys.stderr.write("reprolint: error: no paths given\n")
        return 2

    select = args.select.split(",") if args.select else None
    try:
        findings, n_files = lint_paths(args.paths, select=select)
    except ReproError as exc:
        sys.stderr.write(f"reprolint: error: {exc}\n")
        return 2

    if args.format == "json":
        sys.stdout.write(_render_json(findings, n_files))
    else:
        sys.stdout.write(_render_text(findings, n_files))

    if findings and not args.report_only:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
