"""Rule catalogue for reprolint.

Each rule is an AST pass that enforces one of the silent invariants the
reliability analysis depends on.  Rules are registered in a module-level
registry keyed by rule id (``RPL001`` ...); the engine instantiates every
registered rule unless the caller narrows the selection.

Rule ids are stable and documented in ``docs/static-analysis.md``.  A
finding on line *N* can be suppressed with a ``# reprolint: disable=RPLxxx``
comment on that line.
"""

from __future__ import annotations

import ast
import re
from collections.abc import Iterator
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.errors import ConfigurationError

if TYPE_CHECKING:
    from repro.devtools.engine import LintContext
    from repro.devtools.graph import ProjectIndex

__all__ = [
    "ALL_PROJECT_RULES",
    "ALL_RULES",
    "Finding",
    "ProjectRule",
    "Rule",
    "get_project_rule",
    "get_rule",
    "iter_project_rules",
    "iter_rules",
    "register",
    "register_project",
]


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def render(self) -> str:
        """The canonical one-line text form."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def as_dict(self) -> dict[str, object]:
        """JSON-serializable form (``--format json``)."""
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }


class Rule:
    """Base class for reprolint rules.

    Subclasses set :attr:`rule_id`/:attr:`name`/:attr:`summary` and
    implement :meth:`check`, yielding a :class:`Finding` per violation.
    """

    rule_id: str = ""
    name: str = ""
    summary: str = ""

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, ctx: LintContext, node: ast.AST, message: str) -> Finding:
        """A :class:`Finding` anchored at ``node`` in ``ctx``'s file."""
        return Finding(
            rule=self.rule_id,
            path=ctx.display_path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            message=message,
        )


_REGISTRY: dict[str, type[Rule]] = {}


def register(cls: type[Rule]) -> type[Rule]:
    """Class decorator adding a rule to the global registry."""
    if not cls.rule_id:
        raise ConfigurationError(f"rule {cls.__name__} has no rule_id")
    if cls.rule_id in _REGISTRY:
        raise ConfigurationError(f"duplicate rule id {cls.rule_id}")
    _REGISTRY[cls.rule_id] = cls
    return cls


def iter_rules() -> Iterator[Rule]:
    """Instances of every registered rule, in id order."""
    for rule_id in sorted(_REGISTRY):
        yield _REGISTRY[rule_id]()


def get_rule(rule_id: str) -> Rule:
    """Instantiate one registered rule by id."""
    try:
        return _REGISTRY[rule_id]()
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown rule {rule_id!r} (known: {known})") from None


class ProjectRule:
    """Base class for whole-project rules (``--project`` mode).

    Unlike :class:`Rule`, a project rule sees the complete
    :class:`~repro.devtools.graph.ProjectIndex` — symbol table, class
    model and call graph — instead of one file's AST.  Subclasses set
    :attr:`rule_id`/:attr:`name`/:attr:`summary` and implement
    :meth:`check`, yielding :class:`Finding`\\ s whose ``path`` is the
    module path as indexed (line-scoped and file-level suppression
    comments still apply).
    """

    rule_id: str = ""
    name: str = ""
    summary: str = ""

    def check(self, index: ProjectIndex) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, path: str, node: ast.AST, message: str) -> Finding:
        """A :class:`Finding` anchored at ``node`` in ``path``."""
        return Finding(
            rule=self.rule_id,
            path=path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            message=message,
        )


_PROJECT_REGISTRY: dict[str, type[ProjectRule]] = {}


def register_project(cls: type[ProjectRule]) -> type[ProjectRule]:
    """Class decorator adding a project rule to the project registry."""
    if not cls.rule_id:
        raise ConfigurationError(f"project rule {cls.__name__} has no rule_id")
    if cls.rule_id in _PROJECT_REGISTRY or cls.rule_id in _REGISTRY:
        raise ConfigurationError(f"duplicate rule id {cls.rule_id}")
    _PROJECT_REGISTRY[cls.rule_id] = cls
    return cls


def iter_project_rules() -> Iterator[ProjectRule]:
    """Instances of every registered project rule, in id order."""
    for rule_id in sorted(_PROJECT_REGISTRY):
        yield _PROJECT_REGISTRY[rule_id]()


def get_project_rule(rule_id: str) -> ProjectRule:
    """Instantiate one registered project rule by id."""
    try:
        return _PROJECT_REGISTRY[rule_id]()
    except KeyError:
        known = ", ".join(sorted(_PROJECT_REGISTRY))
        raise KeyError(
            f"unknown project rule {rule_id!r} (known: {known})"
        ) from None


# ---------------------------------------------------------------------------
# Shared AST helpers
# ---------------------------------------------------------------------------

_NUMPY_NAMES = frozenset({"np", "numpy"})


def _np_random_attr(func: ast.AST) -> str | None:
    """``'rand'`` for ``np.random.rand`` / ``numpy.random.rand``, else None."""
    if (
        isinstance(func, ast.Attribute)
        and isinstance(func.value, ast.Attribute)
        and func.value.attr == "random"
        and isinstance(func.value.value, ast.Name)
        and func.value.value.id in _NUMPY_NAMES
    ):
        return func.attr
    return None


def _name_suffix_kind(node: ast.AST) -> str | None:
    """``'c'``/``'k'`` when a name follows the unit-suffix convention."""
    if isinstance(node, ast.Name):
        ident = node.id
    elif isinstance(node, ast.Attribute):
        ident = node.attr
    else:
        return None
    if ident.endswith(("_c", "_celsius")):
        return "c"
    if ident.endswith(("_k", "_kelvin")):
        return "k"
    return None


def _walk_excluding_nested(body: list[ast.stmt]) -> Iterator[ast.AST]:
    """Walk statements without descending into nested function bodies."""
    pending: list[ast.AST] = list(body)
    while pending:
        node = pending.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        pending.extend(ast.iter_child_nodes(node))


def _function_params(node: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    args = node.args
    names = {
        a.arg
        for a in (*args.posonlyargs, *args.args, *args.kwonlyargs)
        if a.arg not in ("self", "cls")
    }
    if args.vararg is not None:
        names.add(args.vararg.arg)
    if args.kwarg is not None:
        names.add(args.kwarg.arg)
    return names


# ---------------------------------------------------------------------------
# RPL001 — RNG discipline
# ---------------------------------------------------------------------------


@register
class GlobalRandomState(Rule):
    """Monte-Carlo results must be bit-for-bit reproducible.

    Global-state ``np.random.*`` calls (or an unseeded ``default_rng()``)
    make reliability curves change run to run; Generators must be created
    from an explicit seed and threaded through call signatures.
    """

    rule_id = "RPL001"
    name = "rng-discipline"
    summary = (
        "no global-state np.random calls, unseeded default_rng(), or "
        "seed parameters that default to None outside test code"
    )

    #: Constructors of the new-style Generator API that are fine to touch.
    _ALLOWED = frozenset(
        {
            "default_rng",
            "Generator",
            "BitGenerator",
            "SeedSequence",
            "PCG64",
            "PCG64DXSM",
            "Philox",
            "SFC64",
            "MT19937",
        }
    )

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        if ctx.is_test:
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                yield from self._check_call(ctx, node)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_seed_defaults(ctx, node)

    def _check_call(self, ctx: LintContext, node: ast.Call) -> Iterator[Finding]:
        attr = _np_random_attr(node.func)
        if attr is not None and attr not in self._ALLOWED:
            yield self.finding(
                ctx,
                node,
                f"global-state RNG call np.random.{attr}(); create an "
                "explicitly-seeded np.random.default_rng(seed) and thread "
                "it through instead",
            )
            return
        is_default_rng = attr == "default_rng" or (
            isinstance(node.func, ast.Name) and node.func.id == "default_rng"
        )
        if is_default_rng:
            unseeded = not node.args and not node.keywords
            if node.args and isinstance(node.args[0], ast.Constant):
                unseeded = unseeded or node.args[0].value is None
            if unseeded:
                yield self.finding(
                    ctx,
                    node,
                    "unseeded default_rng() is not reproducible; pass an "
                    "explicit seed",
                )

    def _check_seed_defaults(
        self, ctx: LintContext, node: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> Iterator[Finding]:
        args = node.args
        positional = [*args.posonlyargs, *args.args]
        for arg, default in zip(
            positional[len(positional) - len(args.defaults) :],
            args.defaults,
            strict=True,
        ):
            yield from self._check_one_default(ctx, node, arg, default)
        for arg, kw_default in zip(args.kwonlyargs, args.kw_defaults, strict=True):
            if kw_default is not None:
                yield from self._check_one_default(ctx, node, arg, kw_default)

    def _check_one_default(
        self,
        ctx: LintContext,
        func: ast.FunctionDef | ast.AsyncFunctionDef,
        arg: ast.arg,
        default: ast.expr,
    ) -> Iterator[Finding]:
        if (
            arg.arg == "seed"
            and isinstance(default, ast.Constant)
            and default.value is None
        ):
            yield self.finding(
                ctx,
                func,
                f"parameter 'seed' of {func.name}() defaults to None, which "
                "means an unseeded (non-reproducible) default_rng(None); "
                "default to an explicit integer seed",
            )


# ---------------------------------------------------------------------------
# RPL002 — unit hygiene
# ---------------------------------------------------------------------------


@register
class UnitHygiene(Rule):
    """Temperatures are kelvin inside models, celsius at the boundary.

    Inline ``+ 273.15`` arithmetic (or mixing ``*_c`` and ``*_k`` operands)
    silently produces plausible-but-wrong Arrhenius factors; conversions
    must go through :mod:`repro.units`.
    """

    rule_id = "RPL002"
    name = "unit-hygiene"
    summary = (
        "no raw 273.15 temperature-offset arithmetic or mixed *_c/*_k "
        "operands; use repro.units conversions"
    )

    _OFFSETS = frozenset({273.15})
    _ARITH_OPS = (ast.Add, ast.Sub, ast.Mult, ast.Div)

    def _is_offset_literal(self, node: ast.AST) -> bool:
        if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
            node = node.operand
        if not isinstance(node, ast.Constant):
            return False
        value = node.value
        if isinstance(value, bool):
            return False
        if isinstance(value, float):
            return value in self._OFFSETS
        return isinstance(value, int) and value == 273

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        if ctx.is_test or ctx.filename == "units.py":
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.BinOp):
                continue
            if isinstance(node.op, (ast.Add, ast.Sub)) and (
                self._is_offset_literal(node.left)
                or self._is_offset_literal(node.right)
            ):
                yield self.finding(
                    ctx,
                    node,
                    "raw temperature-offset arithmetic with 273.15; use "
                    "units.celsius_to_kelvin / units.kelvin_to_celsius "
                    "(or units.CELSIUS_OFFSET if you really mean the "
                    "constant)",
                )
                continue
            if isinstance(node.op, self._ARITH_OPS):
                kinds = {
                    _name_suffix_kind(node.left),
                    _name_suffix_kind(node.right),
                }
                if kinds >= {"c", "k"}:
                    yield self.finding(
                        ctx,
                        node,
                        "arithmetic mixes a celsius-suffixed and a "
                        "kelvin-suffixed operand; convert one side via "
                        "repro.units first",
                    )


# ---------------------------------------------------------------------------
# RPL003 — error hierarchy
# ---------------------------------------------------------------------------


@register
class ErrorHierarchy(Rule):
    """Library internals raise the :class:`repro.errors.ReproError` tree.

    Callers of the public API catch ``ReproError`` at the boundary; a bare
    ``ValueError``/``RuntimeError`` escapes that contract.
    """

    rule_id = "RPL003"
    name = "error-hierarchy"
    summary = (
        "no raise ValueError/RuntimeError from library internals; use the "
        "repro.errors.ReproError hierarchy"
    )

    _BANNED = frozenset({"ValueError", "RuntimeError"})

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        if ctx.is_test:
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Raise) or node.exc is None:
                continue
            exc = node.exc
            name: str | None = None
            if isinstance(exc, ast.Call) and isinstance(exc.func, ast.Name):
                name = exc.func.id
            elif isinstance(exc, ast.Name):
                name = exc.id
            if name in self._BANNED:
                yield self.finding(
                    ctx,
                    node,
                    f"raise {name} from library code; raise a "
                    "repro.errors.ReproError subclass (ConfigurationError, "
                    "NumericalError, ...) so API callers can catch one type",
                )


# ---------------------------------------------------------------------------
# RPL004 — print discipline
# ---------------------------------------------------------------------------


@register
class PrintDiscipline(Rule):
    """Diagnostics go through :mod:`repro.obs.logging`, not ``print``.

    A bare ``print`` bypasses log levels, the ``--log-json`` machine
    format, and stream separation (stderr diagnostics vs stdout results).
    """

    rule_id = "RPL004"
    name = "print-discipline"
    summary = (
        "no bare print() outside cli.py; route diagnostics through "
        "repro.obs.logging.get_logger(...)"
    )

    _ALLOWED_FILES = frozenset({"cli.py"})

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        if ctx.is_test or ctx.filename in self._ALLOWED_FILES:
            return
        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "print"
            ):
                yield self.finding(
                    ctx,
                    node,
                    "bare print() outside cli.py; use "
                    "repro.obs.logging.get_logger(...) so output respects "
                    "--log-level/--log-json",
                )


# ---------------------------------------------------------------------------
# RPL005 — numerical safety
# ---------------------------------------------------------------------------


@register
class NumericalSafety(Rule):
    """Float comparisons and transcendental kernels need guards.

    ``==``/``!=`` against a float literal is almost never the intended
    predicate, and ``np.exp``/``np.log`` applied to unvalidated inputs in
    the :mod:`repro.stats` kernels silently propagates NaN/Inf into
    reliability curves.
    """

    rule_id = "RPL005"
    name = "numerical-safety"
    summary = (
        "no ==/!= against float literals; np.exp/np.log on function inputs "
        "in stats/ kernels requires a finiteness guard in the function"
    )

    _TRANSCENDENTAL = frozenset(
        {"exp", "expm1", "exp2", "log", "log1p", "log2", "log10"}
    )
    _GUARD_TOKENS = (
        "isfinite",
        "isnan",
        "isinf",
        "isclose",
        "errstate",
        "nan_to_num",
        "validate",
        "ensure_finite",
        "check_finite",
    )

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        yield from self._check_float_eq(ctx)
        if ctx.in_stats and not ctx.is_test:
            yield from self._check_transcendental(ctx)

    def _is_float_literal(self, node: ast.AST) -> bool:
        if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
            node = node.operand
        return isinstance(node, ast.Constant) and isinstance(node.value, float)

    def _check_float_eq(self, ctx: LintContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for i, op in enumerate(node.ops):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                if self._is_float_literal(operands[i]) or self._is_float_literal(
                    operands[i + 1]
                ):
                    yield self.finding(
                        ctx,
                        node,
                        "==/!= comparison against a float literal; use an "
                        "explicit tolerance (math.isclose / np.isclose) or "
                        "an inequality, or suppress if exact equality is "
                        "genuinely intended",
                    )
                    break

    def _has_guard(self, func: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
        for node in ast.walk(func):
            if not isinstance(node, ast.Call):
                continue
            target = node.func
            ident = ""
            if isinstance(target, ast.Name):
                ident = target.id
            elif isinstance(target, ast.Attribute):
                ident = target.attr
            if any(token in ident for token in self._GUARD_TOKENS):
                return True
        return False

    def _transcendental_name(self, func: ast.AST) -> str | None:
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id in _NUMPY_NAMES
            and func.attr in self._TRANSCENDENTAL
        ):
            return func.attr
        return None

    def _check_transcendental(self, ctx: LintContext) -> Iterator[Finding]:
        for func in ast.walk(ctx.tree):
            if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            params = _function_params(func)
            if not params or self._has_guard(func):
                continue
            for node in _walk_excluding_nested(func.body):
                if not isinstance(node, ast.Call):
                    continue
                name = self._transcendental_name(node.func)
                if name is None:
                    continue
                arg_names = {
                    n.id
                    for arg in node.args
                    for n in ast.walk(arg)
                    if isinstance(n, ast.Name) and isinstance(n.ctx, ast.Load)
                }
                touched = sorted(arg_names & params)
                if touched:
                    yield self.finding(
                        ctx,
                        node,
                        f"np.{name} applied to unvalidated input "
                        f"{', '.join(touched)!s} of {func.name}() without a "
                        "finiteness guard; validate with np.isfinite/"
                        "np.isnan (or wrap in np.errstate) first",
                    )


# ---------------------------------------------------------------------------
# RPL006 — worker RNG discipline
# ---------------------------------------------------------------------------


@register
class WorkerRngDiscipline(Rule):
    """Parallel worker kernels must not build ad-hoc generators.

    The execution subsystem guarantees bit-identical results across
    backends by deriving every stream from the shard plan
    (:mod:`repro.exec.sharding`).  A ``default_rng(<constant>)`` inside a
    chunk/worker/shard function silently gives every shard the *same*
    stream (correlated samples) or re-keys the run outside the plan.
    """

    rule_id = "RPL006"
    name = "worker-rng-discipline"
    summary = (
        "no direct np.random.default_rng(...) inside chunk/worker/shard "
        "functions; derive the stream from the shard (shard.rng()) or a "
        "seed parameter"
    )

    _MARKERS = ("chunk", "worker", "shard")

    def _is_default_rng(self, func: ast.AST) -> bool:
        if _np_random_attr(func) == "default_rng":
            return True
        return isinstance(func, ast.Name) and func.id == "default_rng"

    @staticmethod
    def _references_param(node: ast.Call, params: set[str]) -> bool:
        loaded = {
            n.id
            for arg in (*node.args, *(kw.value for kw in node.keywords))
            for n in ast.walk(arg)
            if isinstance(n, ast.Name) and isinstance(n.ctx, ast.Load)
        }
        return bool(loaded & params)

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        if ctx.is_test:
            return
        for func in ast.walk(ctx.tree):
            if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            lowered = func.name.lower()
            if not any(marker in lowered for marker in self._MARKERS):
                continue
            params = _function_params(func)
            for node in _walk_excluding_nested(func.body):
                if not isinstance(node, ast.Call):
                    continue
                if not self._is_default_rng(node.func):
                    continue
                if self._references_param(node, params):
                    continue
                yield self.finding(
                    ctx,
                    node,
                    f"default_rng(...) inside worker function {func.name}() "
                    "does not derive its stream from the shard plan; use "
                    "shard.rng() (repro.exec.sharding) or thread a seed "
                    "parameter through so results stay backend-invariant",
                )


# ---------------------------------------------------------------------------
# RPL007 — service handler discipline
# ---------------------------------------------------------------------------


@register
class ServiceBlockingCalls(Rule):
    """Service request paths must not block the handler thread.

    The HTTP layer promises that request threads only validate, enqueue
    and read dictionaries — analysis work belongs on the job-manager
    worker pool.  A ``time.sleep`` or a synchronous ``subprocess`` call in
    :mod:`repro.service` stalls every client behind it (and under graceful
    shutdown, stalls the drain).
    """

    rule_id = "RPL007"
    name = "service-blocking-calls"
    summary = (
        "no time.sleep or blocking subprocess calls inside repro/service; "
        "long work belongs on the JobManager worker pool"
    )

    _SUBPROCESS_BLOCKING = frozenset(
        {"run", "call", "check_call", "check_output", "Popen"}
    )

    def _blocking_call_name(self, ctx: LintContext, func: ast.AST) -> str | None:
        if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
            base, attr = func.value.id, func.attr
            if base == "time" and attr == "sleep":
                return "time.sleep"
            if base == "subprocess" and attr in self._SUBPROCESS_BLOCKING:
                return f"subprocess.{attr}"
            return None
        if isinstance(func, ast.Name):
            origin = self._from_imports(ctx).get(func.id)
            if origin is not None:
                return origin
        return None

    def _from_imports(self, ctx: LintContext) -> dict[str, str]:
        """Local name -> blocking origin for ``from time import sleep``-style
        imports (including aliases)."""
        mapping: dict[str, str] = {}
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ImportFrom) or node.module is None:
                continue
            for alias in node.names:
                local = alias.asname or alias.name
                if node.module == "time" and alias.name == "sleep":
                    mapping[local] = "time.sleep"
                elif (
                    node.module == "subprocess"
                    and alias.name in self._SUBPROCESS_BLOCKING
                ):
                    mapping[local] = f"subprocess.{alias.name}"
        return mapping

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        if ctx.is_test or not ctx.in_service:
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = self._blocking_call_name(ctx, node.func)
            if name is not None:
                yield self.finding(
                    ctx,
                    node,
                    f"{name}() blocks a service thread; move the wait onto "
                    "the JobManager worker pool (or an Event with a "
                    "timeout) so request handling and shutdown drain stay "
                    "responsive",
                )


# ---------------------------------------------------------------------------
# RPL008 — metric/span naming discipline
# ---------------------------------------------------------------------------


@register
class MetricNamingDiscipline(Rule):
    """Metric and span names form a static, enumerable namespace.

    Dashboards, alerts and the Prometheus rendering all assume the set of
    metric families is known ahead of time.  A name built at runtime
    (``f"service.errors.{code}"``) silently creates one family per dynamic
    value — unbounded registry growth and un-alertable series.  The fix is
    a literal lookup table keyed by the dynamic part (the table's values
    stay greppable); names themselves are dotted lowercase.
    """

    rule_id = "RPL008"
    name = "metric-naming"
    summary = (
        "metric/span names passed to span()/inc()/gauge()/observe() must "
        "be static dotted-lowercase strings, never f-strings/format/"
        "concatenation; route dynamic parts through a literal dict"
    )

    _CALLS = frozenset({"span", "inc", "gauge", "observe"})
    _BASES = frozenset({"obs", "metrics", "trace"})
    _NAME_RE = re.compile(r"^[a-z][a-z0-9_]*(\.[a-z0-9_]+)*$")

    def _call_label(self, func: ast.AST) -> str | None:
        """``'metrics.inc'`` for a metric/span call, else None."""
        if isinstance(func, ast.Name) and func.id in self._CALLS:
            return func.id
        if (
            isinstance(func, ast.Attribute)
            and func.attr in self._CALLS
            and isinstance(func.value, ast.Name)
            and func.value.id in self._BASES
        ):
            return f"{func.value.id}.{func.attr}"
        return None

    @staticmethod
    def _is_stringy(node: ast.AST) -> bool:
        if isinstance(node, ast.JoinedStr):
            return True
        return isinstance(node, ast.Constant) and isinstance(node.value, str)

    def _dynamic_kind(self, arg: ast.expr) -> str | None:
        """How the name is being built at runtime, if it is."""
        if isinstance(arg, ast.JoinedStr) and any(
            isinstance(part, ast.FormattedValue) for part in arg.values
        ):
            return "an f-string"
        if (
            isinstance(arg, ast.Call)
            and isinstance(arg.func, ast.Attribute)
            and arg.func.attr == "format"
            and self._is_stringy(arg.func.value)
        ):
            return "str.format()"
        if isinstance(arg, ast.BinOp):
            if isinstance(arg.op, ast.Mod) and self._is_stringy(arg.left):
                return "%-formatting"
            if isinstance(arg.op, ast.Add) and (
                self._is_stringy(arg.left) or self._is_stringy(arg.right)
            ):
                return "string concatenation"
        return None

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        if ctx.is_test:
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call) or not node.args:
                continue
            label = self._call_label(node.func)
            if label is None:
                continue
            arg = node.args[0]
            dynamic = self._dynamic_kind(arg)
            if dynamic is not None:
                yield self.finding(
                    ctx,
                    node,
                    f"metric/span name passed to {label}() is built with "
                    f"{dynamic}; every dynamic value mints a new metric "
                    "family — map the dynamic part through a literal dict "
                    "of static names instead",
                )
                continue
            if (
                isinstance(arg, ast.Constant)
                and isinstance(arg.value, str)
                and not self._NAME_RE.match(arg.value)
            ):
                yield self.finding(
                    ctx,
                    node,
                    f"metric/span name {arg.value!r} passed to {label}() is "
                    "not dotted lowercase (expected e.g. "
                    "'service.latency.jobs_submit')",
                )


# ---------------------------------------------------------------------------
# RPL012 — network calls need explicit timeouts
# ---------------------------------------------------------------------------


@register
class NetworkTimeoutDiscipline(Rule):
    """Every stdlib network call must carry an explicit timeout.

    ``urllib.request.urlopen``, ``socket.create_connection`` and the
    ``http.client`` connection classes all default to *blocking forever*.
    In a distributed fleet, one hung worker then wedges the caller — a
    coordinator dispatcher thread, a service drain, a CLI.  The shared
    :class:`repro.fleet.client.HttpClient` passes its per-request timeout
    everywhere; direct call sites must do the same with an explicit
    ``timeout=`` (or the positional equivalent).
    """

    rule_id = "RPL012"
    name = "network-timeout-discipline"
    summary = (
        "stdlib network calls (urllib.request.urlopen, "
        "socket.create_connection, http.client connections) must pass an "
        "explicit timeout"
    )

    #: Canonical dotted origin -> minimum positional-argument count that
    #: already covers the timeout parameter.
    _TIMEOUT_POSITION = {
        "urllib.request.urlopen": 3,
        "socket.create_connection": 2,
        "http.client.HTTPConnection": 3,
        "http.client.HTTPSConnection": 3,
    }

    def _from_imports(self, ctx: LintContext) -> dict[str, str]:
        """Local name -> canonical origin, alias-aware.

        Covers ``from urllib.request import urlopen [as x]`` and module
        aliases like ``import urllib.request as req``.
        """
        mapping: dict[str, str] = {}
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ImportFrom) and node.module is not None:
                for alias in node.names:
                    origin = f"{node.module}.{alias.name}"
                    if origin in self._TIMEOUT_POSITION:
                        mapping[alias.asname or alias.name] = origin
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname is not None:
                        mapping[alias.asname] = alias.name
        return mapping

    def _call_origin(self, ctx: LintContext, func: ast.AST) -> str | None:
        """The canonical dotted origin of a call target, or ``None``."""
        parts: list[str] = []
        node = func
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if isinstance(node, ast.Name):
            mapping = self._from_imports(ctx)
            parts.append(mapping.get(node.id, node.id))
            dotted = ".".join(reversed(parts))
            if dotted in self._TIMEOUT_POSITION:
                return dotted
        return None

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        if ctx.is_test:
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            origin = self._call_origin(ctx, node.func)
            if origin is None:
                continue
            if any(kw.arg == "timeout" for kw in node.keywords):
                continue
            if len(node.args) >= self._TIMEOUT_POSITION[origin]:
                continue
            yield self.finding(
                ctx,
                node,
                f"{origin}() without an explicit timeout blocks forever on "
                "a hung peer; pass timeout= (the fleet HttpClient does "
                "this for you)",
            )


# ---------------------------------------------------------------------------
# RPL013 — dtype hygiene in the kernels package
# ---------------------------------------------------------------------------


@register
class KernelDtypeHygiene(Rule):
    """Kernel-layer array allocations must pin their dtype explicitly.

    ``repro.kernels`` owns the precision tier (``float64``/``fast32``,
    see :mod:`repro.kernels.config`): every array a kernel allocates is
    either part of the float64 result contract or deliberately cast to
    the compute dtype.  A bare ``np.empty(shape)`` silently allocates
    float64 and hides that decision — under ``fast32`` it re-widens
    intermediates and costs the memory-traffic win; under ``float64`` it
    works by accident.  Constructors must pass ``dtype=`` (or the
    positional equivalent), and ``.astype`` must name a width-explicit
    numpy dtype — builtin ``float``/``int`` or dtype *strings* pin
    whatever the platform default is, invisibly to the tier switch.
    """

    rule_id = "RPL013"
    name = "kernel-dtype-hygiene"
    summary = (
        "repro.kernels array constructors (np.empty/zeros/ones/full/"
        "arange/linspace) must pass an explicit dtype, and .astype must "
        "use a numpy dtype, not a builtin or string"
    )

    #: Canonical dotted origin -> minimum positional-argument count that
    #: already covers the dtype parameter.
    _DTYPE_POSITION = {
        "numpy.empty": 2,
        "numpy.zeros": 2,
        "numpy.ones": 2,
        "numpy.full": 3,
        "numpy.arange": 4,
        "numpy.linspace": 6,
    }

    #: Builtin type names whose width is a platform default, not a choice.
    _BUILTIN_DTYPES = frozenset({"float", "int", "bool", "complex"})

    def _from_imports(self, ctx: LintContext) -> dict[str, str]:
        """Local name -> canonical origin, alias-aware.

        Covers ``from numpy import zeros [as z]`` and module aliases
        like ``import numpy as np``.
        """
        mapping: dict[str, str] = {}
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ImportFrom) and node.module is not None:
                for alias in node.names:
                    origin = f"{node.module}.{alias.name}"
                    if origin in self._DTYPE_POSITION:
                        mapping[alias.asname or alias.name] = origin
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname is not None:
                        mapping[alias.asname] = alias.name
        return mapping

    def _call_origin(self, ctx: LintContext, func: ast.AST) -> str | None:
        """The canonical dotted origin of a call target, or ``None``."""
        parts: list[str] = []
        node = func
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if isinstance(node, ast.Name):
            mapping = self._from_imports(ctx)
            parts.append(mapping.get(node.id, node.id))
            dotted = ".".join(reversed(parts))
            if dotted in self._DTYPE_POSITION:
                return dotted
        return None

    def _bad_astype_arg(self, node: ast.Call) -> ast.AST | None:
        """The offending dtype argument of an ``.astype`` call, if any."""
        arg: ast.AST | None = None
        if node.args:
            arg = node.args[0]
        for kw in node.keywords:
            if kw.arg == "dtype":
                arg = kw.value
        if isinstance(arg, ast.Name) and arg.id in self._BUILTIN_DTYPES:
            return arg
        if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
            return arg
        return None

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        if ctx.is_test or not ctx.in_kernels:
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            origin = self._call_origin(ctx, node.func)
            if origin is not None:
                if any(kw.arg == "dtype" for kw in node.keywords):
                    continue
                if len(node.args) >= self._DTYPE_POSITION[origin]:
                    continue
                yield self.finding(
                    ctx,
                    node,
                    f"{origin}() without an explicit dtype allocates the "
                    "platform default behind the precision tier's back; "
                    "pass dtype=",
                )
            elif (
                isinstance(node.func, ast.Attribute)
                and node.func.attr == "astype"
                and self._bad_astype_arg(node) is not None
            ):
                yield self.finding(
                    ctx,
                    node,
                    ".astype with a builtin type or dtype string pins a "
                    "platform-default width invisibly to the precision "
                    "tier; use an explicit numpy dtype (np.float64, "
                    "np.float32, ...)",
                )


# ---------------------------------------------------------------------------
# RPL014 — mechanism stress parameters must declare their units
# ---------------------------------------------------------------------------


@register
class MechanismStressUnits(Rule):
    """Mechanism plugins must declare units on stress parameters.

    A :mod:`repro.mechanisms` plugin is parameterized by physical stress
    constants — reference temperatures, supply voltages, activation
    energies.  A bare ``t_ref_c = 100.0`` carries its unit only in the
    author's head: a kelvin/celsius or eV/J mix-up changes an Arrhenius
    acceleration by orders of magnitude and is invisible in review.  The
    :mod:`repro.units` helpers (``celsius``, ``kelvin``, ``volts``,
    ``electron_volts``) make the unit part of the declaration *and*
    range-check the value at import time, so class-level stress constants
    must be wrapped in one: ``t_ref_c = celsius(100.0)``.
    """

    rule_id = "RPL014"
    name = "mechanism-stress-units"
    summary = (
        "repro.mechanisms class-level temperature/voltage/energy "
        "constants must declare units via a repro.units helper "
        "(celsius/kelvin/volts/electron_volts), not a bare float"
    )

    #: Substrings and suffixes that mark an attribute as a stress
    #: parameter carrying a physical unit.
    _STRESS_SUBSTRINGS = ("temp", "volt", "vdd")
    _STRESS_SUFFIXES = ("_c", "_k", "_v", "_ev")

    #: Dimensionless modifiers — a ``voltage_exponent`` or ``b_temp_slope``
    #: scales a unit-bearing quantity but carries none itself.
    _DIMENSIONLESS_SUFFIXES = (
        "_exponent", "_slope", "_shape", "_scale", "_factor",
    )

    def _is_stress_name(self, name: str) -> bool:
        lowered = name.lower()
        if lowered.endswith(self._DIMENSIONLESS_SUFFIXES):
            return False
        return any(
            token in lowered for token in self._STRESS_SUBSTRINGS
        ) or lowered.endswith(self._STRESS_SUFFIXES)

    @staticmethod
    def _bare_number(node: ast.AST | None) -> bool:
        if (
            isinstance(node, ast.UnaryOp)
            and isinstance(node.op, (ast.USub, ast.UAdd))
        ):
            node = node.operand
        return (
            isinstance(node, ast.Constant)
            and isinstance(node.value, (int, float))
            and not isinstance(node.value, bool)
        )

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        if ctx.is_test or not ctx.in_mechanisms:
            return
        for class_node in ast.walk(ctx.tree):
            if not isinstance(class_node, ast.ClassDef):
                continue
            for stmt in class_node.body:
                if isinstance(stmt, ast.AnnAssign):
                    targets: list[ast.AST] = [stmt.target]
                    value = stmt.value
                elif isinstance(stmt, ast.Assign):
                    targets = list(stmt.targets)
                    value = stmt.value
                else:
                    continue
                if value is None or not self._bare_number(value):
                    continue
                for target in targets:
                    if not isinstance(target, ast.Name):
                        continue
                    if not self._is_stress_name(target.id):
                        continue
                    yield self.finding(
                        ctx,
                        stmt,
                        f"stress parameter {target.id!r} is a bare number; "
                        "declare its unit with a repro.units helper "
                        "(celsius/kelvin/volts/electron_volts) so the "
                        "value is range-checked and the unit is part of "
                        "the declaration",
                    )


#: The full registry, id -> rule class (read-only view for callers).
ALL_RULES: dict[str, type[Rule]] = _REGISTRY

#: The project-rule registry (populated by ``repro.devtools.concurrency``).
ALL_PROJECT_RULES: dict[str, type[ProjectRule]] = _PROJECT_REGISTRY
