"""SARIF 2.1.0 rendering for reprolint findings.

SARIF (Static Analysis Results Interchange Format) is what GitHub code
scanning ingests: uploading the document annotates findings inline on
pull requests.  The renderer emits one run with the ``reprolint`` driver,
a ``rules`` array restricted to the rule ids actually referenced by the
results (keeps golden files stable as the catalogue grows), and one
``result`` per finding with a physical location.

Only the small subset of SARIF that code scanning consumes is emitted;
the document validates against the 2.1.0 schema.
"""

from __future__ import annotations

import json
from collections.abc import Sequence
from typing import Any

from repro.devtools.rules import (
    ALL_PROJECT_RULES,
    ALL_RULES,
    Finding,
    ProjectRule,
    Rule,
)

__all__ = ["render_sarif"]

_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def _rule_catalogue() -> dict[str, Rule | ProjectRule]:
    catalogue: dict[str, Rule | ProjectRule] = {
        rule_id: cls() for rule_id, cls in ALL_RULES.items()
    }
    catalogue.update(
        {rule_id: cls() for rule_id, cls in ALL_PROJECT_RULES.items()}
    )
    return catalogue


def render_sarif(findings: Sequence[Finding]) -> str:
    """The findings as a SARIF 2.1.0 JSON document (trailing newline)."""
    catalogue = _rule_catalogue()
    used_ids = sorted({finding.rule for finding in findings})
    rules: list[dict[str, Any]] = []
    rule_index: dict[str, int] = {}
    for rule_id in used_ids:
        rule_index[rule_id] = len(rules)
        rule = catalogue.get(rule_id)
        descriptor: dict[str, Any] = {"id": rule_id}
        if rule is not None:
            descriptor["name"] = rule.name
            descriptor["shortDescription"] = {"text": rule.summary}
        rules.append(descriptor)

    results: list[dict[str, Any]] = []
    for finding in findings:
        results.append(
            {
                "ruleId": finding.rule,
                "ruleIndex": rule_index[finding.rule],
                "level": "error",
                "message": {"text": finding.message},
                "locations": [
                    {
                        "physicalLocation": {
                            "artifactLocation": {
                                "uri": finding.path.replace("\\", "/"),
                            },
                            "region": {
                                "startLine": finding.line,
                                "startColumn": finding.col,
                            },
                        }
                    }
                ],
            }
        )

    document = {
        "$schema": _SCHEMA,
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "reprolint",
                        "rules": rules,
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(document, indent=2) + "\n"
