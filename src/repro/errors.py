"""Exception hierarchy for the repro (oxsure) library.

All library-specific errors derive from :class:`ReproError` so callers can
catch a single exception type at the API boundary.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """An input object (budget, floorplan, model) is inconsistent."""


class FloorplanError(ConfigurationError):
    """A floorplan violates a geometric constraint (overlap, out of die)."""


class NumericalError(ReproError):
    """A numerical routine failed to converge or produced invalid values."""


class SolverError(NumericalError):
    """A linear or nonlinear solver failed."""
