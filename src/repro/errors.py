"""Exception hierarchy for the repro (oxsure) library.

All library-specific errors derive from :class:`ReproError` so callers can
catch a single exception type at the API boundary.  Input-validation and
numerical errors additionally derive from :class:`ValueError`: the library
historically raised bare ``ValueError`` from those sites, and the dual
inheritance keeps ``except ValueError`` callers working while the
``reprolint`` RPL003 rule forbids new bare raises.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError, ValueError):
    """An input object (budget, floorplan, model) is inconsistent."""


class FloorplanError(ConfigurationError):
    """A floorplan violates a geometric constraint (overlap, out of die)."""


class UnitError(ConfigurationError):
    """A unit conversion was fed an out-of-domain value (e.g. below 0 K)."""


class NumericalError(ReproError, ValueError):
    """A numerical routine failed to converge or produced invalid values."""


class SolverError(NumericalError):
    """A linear or nonlinear solver failed."""


class ExecutionInterrupted(ReproError):
    """A sharded run was cancelled cooperatively before completing.

    Raised by :func:`repro.exec.runner.run_sharded` when its
    ``cancel_check`` hook fires; completed shards are flushed to the
    checkpoint (when one is attached) before the exception propagates, so
    the interrupted run can later resume bit-identically.
    """


class ServiceError(ReproError):
    """A request to the :mod:`repro.service` HTTP layer was rejected.

    Carries the HTTP ``status`` and a machine-readable ``code`` that the
    structured error-response envelope exposes to clients.
    """

    def __init__(
        self,
        message: str,
        *,
        status: int = 400,
        code: str = "invalid_request",
        retry_after_s: float | None = None,
    ) -> None:
        super().__init__(message)
        self.status = status
        self.code = code
        self.retry_after_s = retry_after_s


class AdmissionError(ServiceError):
    """The service refused new work (queue depth or rate limit).

    Always maps to HTTP 429 with a ``Retry-After`` hint.
    """

    def __init__(
        self, message: str, *, code: str, retry_after_s: float
    ) -> None:
        super().__init__(
            message, status=429, code=code, retry_after_s=retry_after_s
        )


class FleetError(ReproError):
    """A distributed fleet run could not complete.

    Raised by :mod:`repro.fleet` when coordination itself fails — for
    example when every worker has died with shard groups still pending.
    Individual worker failures are *not* errors: the coordinator reassigns
    their work and only raises once no survivor remains.
    """


class WorkerUnavailable(FleetError):
    """A fleet worker could not be reached after exhausting retries.

    Carries the worker base ``url`` and the number of ``attempts`` the
    HTTP client made (including backoff retries), so the coordinator can
    log the loss precisely before reassigning the worker's shard groups.
    """

    def __init__(self, message: str, *, url: str = "", attempts: int = 0) -> None:
        super().__init__(message)
        self.url = url
        self.attempts = attempts
