"""Exception hierarchy for the repro (oxsure) library.

All library-specific errors derive from :class:`ReproError` so callers can
catch a single exception type at the API boundary.  Input-validation and
numerical errors additionally derive from :class:`ValueError`: the library
historically raised bare ``ValueError`` from those sites, and the dual
inheritance keeps ``except ValueError`` callers working while the
``reprolint`` RPL003 rule forbids new bare raises.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError, ValueError):
    """An input object (budget, floorplan, model) is inconsistent."""


class FloorplanError(ConfigurationError):
    """A floorplan violates a geometric constraint (overlap, out of die)."""


class UnitError(ConfigurationError):
    """A unit conversion was fed an out-of-domain value (e.g. below 0 K)."""


class NumericalError(ReproError, ValueError):
    """A numerical routine failed to converge or produced invalid values."""


class SolverError(NumericalError):
    """A linear or nonlinear solver failed."""
