"""repro.exec — parallel execution engine for the analysis pipeline.

The subsystem has four orthogonal parts:

- **Deterministic seed sharding** (:mod:`repro.exec.sharding`): work is
  split into fixed-size shards, each owning a ``SeedSequence.spawn`` child,
  so results are bit-identical for any backend, worker count or task
  grouping.
- **Backends** (:mod:`repro.exec.backends`): ``serial``/``thread``/
  ``process`` executors selected by config, ``REPRO_EXEC_BACKEND`` /
  ``REPRO_JOBS``, or the CLI ``--jobs`` flag.
- **Content-addressed result cache** (:mod:`repro.exec.cache`): ``.npz``
  entries under ``$REPRO_CACHE_DIR`` (default ``~/.cache/repro``) keyed by
  a stable fingerprint of design + configuration + code version, with
  ``exec.cache.*`` metrics and a ``repro cache`` CLI.
- **Checkpoint/resume** (:mod:`repro.exec.checkpoint`): periodic atomic
  snapshots of per-shard state so killed Monte-Carlo runs resume to the
  same curve.

:mod:`repro.exec.batch` (the ``repro batch`` sweep runner) is deliberately
*not* re-exported here: it imports :mod:`repro.core`, and the core engines
import ``repro.exec`` — import it directly where needed.

See ``docs/execution.md`` for the full guarantees and file formats.
"""

from repro.exec.backends import (
    BACKEND_NAMES,
    ExecBackend,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    resolve_backend,
    resolve_jobs,
)
from repro.exec.cache import (
    CacheStats,
    ResultCache,
    default_cache_dir,
    default_shared_cache_dir,
    fingerprint,
)
from repro.exec.checkpoint import Checkpoint
from repro.exec.runner import run_sharded
from repro.exec.sharding import (
    DEFAULT_SHARD_SIZE,
    Shard,
    plan_shards,
    resolve_seed_sequence,
)

__all__ = [
    "BACKEND_NAMES",
    "DEFAULT_SHARD_SIZE",
    "CacheStats",
    "Checkpoint",
    "ExecBackend",
    "ProcessBackend",
    "ResultCache",
    "SerialBackend",
    "Shard",
    "ThreadBackend",
    "default_cache_dir",
    "default_shared_cache_dir",
    "fingerprint",
    "plan_shards",
    "resolve_backend",
    "resolve_jobs",
    "resolve_seed_sequence",
    "run_sharded",
]
