"""Execution backends: where shard tasks actually run.

Three interchangeable backends execute task lists:

- :class:`SerialBackend` — in-process, in-order; the default and the
  reference semantics.
- :class:`ThreadBackend` — a ``ThreadPoolExecutor``; effective when the
  task bodies release the GIL (large NumPy kernels).
- :class:`ProcessBackend` — a ``ProcessPoolExecutor``; true parallelism
  for Python-loop-heavy tasks.  Task callables and their arguments must be
  picklable (module-level functions / ``functools.partial`` of them).

Because the engines built on top reduce per-shard results in shard-index
order (see :mod:`repro.exec.sharding`), **the backend choice never changes
numerical results** — only wall-clock time.

Selection follows config > environment > default: pass an explicit name,
or set ``REPRO_EXEC_BACKEND`` (``serial``/``thread``/``process``) and
``REPRO_JOBS``; with a worker count but no name, :func:`resolve_backend`
picks ``process``, the backend that helps the Monte-Carlo loops most.

Pools are created lazily and reused across calls; they are shut down on
:meth:`ExecBackend.close` or interpreter exit.
"""

from __future__ import annotations

import os
import weakref
from collections.abc import Callable, Iterator, Sequence
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures import as_completed as _as_completed
from typing import Any

from repro.errors import ConfigurationError
from repro.obs import metrics
from repro.obs.trace import span

__all__ = [
    "BACKEND_NAMES",
    "ExecBackend",
    "ProcessBackend",
    "SerialBackend",
    "ThreadBackend",
    "resolve_backend",
    "resolve_jobs",
]

#: Recognised backend names, in the order shown to users.
BACKEND_NAMES = ("serial", "thread", "process")


class ExecBackend:
    """Abstract task executor.

    Subclasses implement :meth:`imap_unordered`; everything else (ordered
    ``map``, instrumentation, lifecycle) is shared.
    """

    name: str = "base"

    def __init__(self, jobs: int = 1) -> None:
        if not isinstance(jobs, int) or isinstance(jobs, bool) or jobs < 1:
            raise ConfigurationError(f"jobs must be a positive int, got {jobs!r}")
        self.jobs = jobs

    def imap_unordered(
        self, fn: Callable[[Any], Any], items: Sequence[Any]
    ) -> Iterator[tuple[int, Any]]:
        """Yield ``(index, fn(item))`` pairs as tasks complete.

        Completion order is backend-dependent; callers that care about
        determinism must reduce by index.
        """
        raise NotImplementedError

    def map(self, fn: Callable[[Any], Any], items: Sequence[Any]) -> list[Any]:
        """Ordered results of ``fn`` over ``items``."""
        out: list[Any] = [None] * len(items)
        for index, result in self.imap_unordered(fn, items):
            out[index] = result
        return out

    def close(self) -> None:
        """Release any pooled workers (idempotent)."""

    def _record(self, n_tasks: int) -> None:
        metrics.inc("exec.tasks", n_tasks)
        metrics.gauge("exec.jobs", self.jobs)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(jobs={self.jobs})"


class SerialBackend(ExecBackend):
    """Run every task inline, in submission order."""

    name = "serial"

    def __init__(self) -> None:
        super().__init__(jobs=1)

    def imap_unordered(
        self, fn: Callable[[Any], Any], items: Sequence[Any]
    ) -> Iterator[tuple[int, Any]]:
        self._record(len(items))
        with span("exec.map", backend=self.name, tasks=len(items), jobs=1):
            for index, item in enumerate(items):
                yield index, fn(item)


class _PoolBackend(ExecBackend):
    """Shared lazy-pool machinery for the executor-based backends."""

    def __init__(self, jobs: int) -> None:
        super().__init__(jobs=jobs)
        self._pool: Executor | None = None
        self._finalizer: weakref.finalize | None = None

    def _make_pool(self) -> Executor:
        raise NotImplementedError

    def _ensure_pool(self) -> Executor:
        if self._pool is None:
            self._pool = self._make_pool()
            self._finalizer = weakref.finalize(
                self, _shutdown_pool, self._pool
            )
        return self._pool

    def imap_unordered(
        self, fn: Callable[[Any], Any], items: Sequence[Any]
    ) -> Iterator[tuple[int, Any]]:
        self._record(len(items))
        pool = self._ensure_pool()
        with span(
            "exec.map", backend=self.name, tasks=len(items), jobs=self.jobs
        ):
            futures = {
                pool.submit(fn, item): index
                for index, item in enumerate(items)
            }
            try:
                for future in _as_completed(futures):
                    yield futures[future], future.result()
            finally:
                for future in futures:
                    future.cancel()

    def close(self) -> None:
        if self._finalizer is not None:
            self._finalizer()
            self._finalizer = None
        self._pool = None

    def __getstate__(self) -> dict[str, Any]:
        # Engines that carry their backend must stay picklable for the
        # process pool; the live pool (thread locks) never crosses —
        # workers receive an unpooled copy they are not meant to use.
        return {"jobs": self.jobs}

    def __setstate__(self, state: dict[str, Any]) -> None:
        self.jobs = state["jobs"]
        self._pool = None
        self._finalizer = None


def _shutdown_pool(pool: Executor) -> None:
    pool.shutdown(wait=True, cancel_futures=True)


class ThreadBackend(_PoolBackend):
    """A thread pool; best when tasks spend their time in NumPy kernels."""

    name = "thread"

    def _make_pool(self) -> Executor:
        return ThreadPoolExecutor(
            max_workers=self.jobs, thread_name_prefix="repro-exec"
        )


class ProcessBackend(_PoolBackend):
    """A process pool; tasks and arguments must be picklable."""

    name = "process"

    def _make_pool(self) -> Executor:
        return ProcessPoolExecutor(max_workers=self.jobs)


def resolve_jobs(jobs: int | None = None) -> int:
    """Worker count from argument > ``REPRO_JOBS`` env > CPU count."""
    if jobs is None:
        raw = os.environ.get("REPRO_JOBS", "").strip()
        if raw:
            try:
                jobs = int(raw)
            except ValueError:
                raise ConfigurationError(
                    f"REPRO_JOBS must be an integer, got {raw!r}"
                ) from None
        else:
            jobs = os.cpu_count() or 1
    if jobs < 1:
        raise ConfigurationError(f"jobs must be >= 1, got {jobs}")
    return jobs


def resolve_backend(
    name: str | None = None, jobs: int | None = None
) -> ExecBackend:
    """Build a backend from explicit arguments and the environment.

    ``name`` falls back to ``REPRO_EXEC_BACKEND``; with no name anywhere,
    a requested ``jobs > 1`` implies ``process`` and the default otherwise
    is ``serial``.  ``jobs`` falls back to ``REPRO_JOBS``, then CPU count
    (parallel backends only — ``serial`` always runs one-wide).
    """
    if name is None:
        env = os.environ.get("REPRO_EXEC_BACKEND", "").strip().lower()
        if env:
            name = env
        elif jobs is not None and jobs > 1:
            name = "process"
        else:
            name = "serial"
    name = name.strip().lower()
    if name not in BACKEND_NAMES:
        raise ConfigurationError(
            f"unknown execution backend {name!r}; expected one of "
            f"{', '.join(BACKEND_NAMES)}"
        )
    if name == "serial":
        if jobs is not None and jobs > 1:
            raise ConfigurationError(
                f"serial backend cannot run {jobs} jobs; pick thread/process"
            )
        return SerialBackend()
    resolved = resolve_jobs(jobs)
    if name == "thread":
        return ThreadBackend(resolved)
    return ProcessBackend(resolved)
