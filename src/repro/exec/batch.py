"""Batch sweep runner: benchmarks x temperatures x methods in one shot.

A :class:`SweepSpec` names the paper's benchmark designs, an optional list
of uniform operating temperatures, and the evaluation methods to compare;
:func:`run_batch` evaluates every cell of the cross product, serves
repeated cells from the content-addressed result cache, and emits one
consolidated report (JSON document + aligned text table).

This module is imported lazily by the CLI so that the rest of
:mod:`repro.exec` stays importable from :mod:`repro.core` without a cycle.
"""

from __future__ import annotations

import time
from dataclasses import asdict, dataclass, field
from typing import Any

import numpy as np

from repro.chip.benchmarks import BENCHMARK_DEVICE_COUNTS, make_benchmark
from repro.core.analyzer import METHODS, AnalysisConfig, ReliabilityAnalyzer
from repro.core.ensemble import sweep_reliabilities
from repro.core.lifetime import ppm_to_reliability, solve_lifetime
from repro.errors import ConfigurationError
from repro.exec.backends import ExecBackend
from repro.exec.cache import ResultCache, fingerprint
from repro.kernels.config import fast_paths_enabled, precision
from repro.obs import metrics
from repro.obs.logging import get_logger
from repro.obs.trace import span
from repro.payloads import stamp_envelope
from repro.units import hours_to_years

__all__ = ["SweepSpec", "batch_table", "run_batch"]

logger = get_logger("exec.batch")


@dataclass(frozen=True)
class SweepSpec:
    """One batch sweep: designs x temperatures x methods.

    Parameters
    ----------
    designs:
        Benchmark design names (``C1`` ... ``C6``).
    methods:
        Evaluation methods from :data:`repro.core.analyzer.METHODS`.
    temperatures_c:
        Uniform block temperatures to sweep; empty means "use each
        design's own thermal profile" (one cell per design x method).
    ppm:
        Failure criterion for the lifetime solves.
    grid_size:
        Spatial-correlation grid resolution.
    mc_chips, seed:
        Monte-Carlo reference sample count and seed (``method="mc"``).
    scenario:
        Optional scenario document (:mod:`repro.scenario`); every cell is
        then evaluated under the phase schedule instead of the steady
        operating point (``st_fast`` cells only).  The canonicalised
        schedule folds into each cell's fingerprint.
    """

    designs: tuple[str, ...]
    methods: tuple[str, ...]
    temperatures_c: tuple[float, ...] = ()
    ppm: float = 10.0
    grid_size: int = 25
    mc_chips: int = 500
    seed: int = 0
    scenario: dict[str, Any] | None = None

    def __post_init__(self) -> None:
        if not self.designs:
            raise ConfigurationError("sweep needs at least one design")
        if not self.methods:
            raise ConfigurationError("sweep needs at least one method")
        if self.scenario is not None:
            from repro.scenario.schedule import Scenario

            object.__setattr__(
                self,
                "scenario",
                Scenario.from_dict(self.scenario).as_dict(),
            )
            if any(method != "st_fast" for method in self.methods):
                raise ConfigurationError(
                    "scenario sweeps evaluate the st_fast method only"
                )
        for design in self.designs:
            if design not in BENCHMARK_DEVICE_COUNTS:
                raise ConfigurationError(
                    f"unknown design {design!r}; expected one of "
                    f"{', '.join(sorted(BENCHMARK_DEVICE_COUNTS))}"
                )
        for method in self.methods:
            if method not in METHODS:
                raise ConfigurationError(
                    f"unknown method {method!r}; expected one of {METHODS}"
                )
        if self.ppm <= 0.0:
            raise ConfigurationError(f"ppm must be positive, got {self.ppm}")

    def cells(self) -> list[dict[str, Any]]:
        """The sweep's cells in deterministic report order."""
        temps: tuple[float | None, ...] = self.temperatures_c or (None,)
        return [
            {"design": design, "temperature_c": temp, "method": method}
            for design in self.designs
            for temp in temps
            for method in self.methods
        ]


@dataclass
class _CellResult:
    design: str
    temperature_c: float | None
    method: str
    lifetime_hours: float
    cached: bool
    elapsed_s: float

    def as_dict(self) -> dict[str, Any]:
        return {
            "design": self.design,
            "temperature_c": self.temperature_c,
            "method": self.method,
            "lifetime_hours": self.lifetime_hours,
            "lifetime_years": hours_to_years(self.lifetime_hours),
            "cached": self.cached,
            "elapsed_s": self.elapsed_s,
        }


@dataclass
class _AnalyzerPool:
    """Build each (design, temperature) analyzer once per sweep."""

    spec: SweepSpec
    backend: ExecBackend | None
    _made: dict[tuple[str, float | None], ReliabilityAnalyzer] = field(
        default_factory=dict
    )

    def get(
        self, design: str, temperature_c: float | None
    ) -> ReliabilityAnalyzer:
        key = (design, temperature_c)
        if key not in self._made:
            floorplan = make_benchmark(design)
            config = AnalysisConfig(
                grid_size=self.spec.grid_size,
                exec_backend=self.backend.name if self.backend else None,
                exec_jobs=self.backend.jobs if self.backend else None,
            )
            block_temperatures = None
            if temperature_c is not None:
                block_temperatures = np.full(
                    floorplan.n_blocks, float(temperature_c)
                )
            self._made[key] = ReliabilityAnalyzer(
                floorplan,
                config=config,
                block_temperatures=block_temperatures,
            )
        return self._made[key]


def _cell_key(spec: SweepSpec, cell: dict[str, Any]) -> str:
    """Content-address of one cell: spec knobs + cell coordinates."""
    document = {
        "kind": "batch.lifetime",
        "cell": cell,
        "ppm": spec.ppm,
        "grid_size": spec.grid_size,
        "mc_chips": spec.mc_chips,
        "seed": spec.seed,
        "precision": precision(),
    }
    if spec.scenario is not None:
        # Folded only when present, so steady-sweep fingerprints (and the
        # cache entries behind them) predate-and-survive this field.
        document["scenario"] = spec.scenario
    return fingerprint(document)


# Methods whose reliability evaluation reduces to one StFastAnalyzer whose
# rule tables are temperature-independent, so a temperature axis can share
# a single fused kernel dispatch per bracketing rung.
_FUSABLE_METHODS = frozenset({"st_fast", "temp_unaware"})


def _fused_group_lifetimes(
    pool: _AnalyzerPool,
    spec: SweepSpec,
    design: str,
    method: str,
    temps: list[float],
) -> dict[float, float]:
    """Solve one design/method's lifetimes across a temperature axis fused.

    Replays :func:`repro.core.lifetime.solve_lifetime`'s geometric
    bracketing ladder lock-step for every temperature, evaluating each
    rung's candidate times for all still-unbracketed temperatures through
    one :func:`sweep_reliabilities` kernel call and memoizing the
    ``t -> R(t)`` pairs.  The per-temperature :func:`solve_lifetime` then
    re-walks its ladder entirely from the memo (bitwise-identical floats,
    since the rung times are produced by the same sequence of operations)
    and only Brent's interior probes fall through to the ordinary
    per-point evaluation — so the returned lifetimes are bit-identical to
    the unfused path.  Returns whatever subset it could fuse (empty when
    the kernel declines); missing temps fall back to per-cell evaluation.
    """
    analyzers = [pool.get(design, temp) for temp in temps]
    subs = [
        analyzer.st_fast if method == "st_fast" else analyzer.temp_unaware
        for analyzer in analyzers
    ]
    target = ppm_to_reliability(spec.ppm)
    guesses = [analyzer.guard.lifetime(target) for analyzer in analyzers]
    memos: list[dict[float, float]] = [{} for _ in temps]

    def evaluate(indices: list[int], log_ts: list[float]) -> bool:
        """One fused rung: memoize R(exp(log_t)) for each active temp."""
        times = [float(np.exp(log_t)) for log_t in log_ts]
        values = sweep_reliabilities([subs[i] for i in indices], times)
        if values is None:
            return False
        for i, t, value in zip(indices, times, values, strict=True):
            memos[i][t] = float(value[0])
        return True

    # Lock-step replica of solve_lifetime's bracket expansion.  Stopping
    # early (kernel declined, or max_expansions exhausted) is safe: the
    # memo simply ends and solve_lifetime continues per-point from there.
    step = np.log(4.0)
    los = [float(np.log(guess)) for guess in guesses]
    his = list(los)
    if not evaluate(list(range(len(temps))), los):
        return {}
    climbing: list[tuple[int, bool]] = []
    for i in range(len(temps)):
        value = memos[i][float(np.exp(los[i]))] - target
        if value != 0.0:  # reprolint: disable=RPL005 (mirrors solve_lifetime's exact-root check)
            climbing.append((i, value > 0.0))
    for _ in range(80):  # solve_lifetime's max_expansions default
        if not climbing:
            break
        log_ts = []
        for i, upward in climbing:
            if upward:
                his[i] = his[i] + step
                log_ts.append(his[i])
            else:
                los[i] = los[i] - step
                log_ts.append(los[i])
        if not evaluate([i for i, _ in climbing], log_ts):
            break
        still: list[tuple[int, bool]] = []
        for (i, upward), log_t in zip(climbing, log_ts, strict=True):
            value = memos[i][float(np.exp(log_t))] - target
            if upward and value > 0.0:
                los[i] = his[i]
                still.append((i, upward))
            elif not upward and value < 0.0:
                his[i] = los[i]
                still.append((i, upward))
        climbing = still

    lifetimes: dict[float, float] = {}
    for temp, analyzer, guess, memo in zip(
        temps, analyzers, guesses, memos, strict=True
    ):
        def reliability_fn(
            t: float,
            _memo: dict[float, float] = memo,
            _analyzer: ReliabilityAnalyzer = analyzer,
        ) -> float:
            hit = _memo.get(t)
            if hit is not None:
                return hit
            return float(_analyzer.reliability(t, method=method))

        with span("analyzer.lifetime", method=method, ppm=spec.ppm):
            lifetimes[temp] = solve_lifetime(
                reliability_fn, target, t_guess=guess
            )
    metrics.inc("exec.batch.fused_cells", len(lifetimes))
    return lifetimes


def run_batch(
    spec: SweepSpec,
    backend: ExecBackend | None = None,
    cache: ResultCache | None = None,
    use_cache: bool = True,
    fuse: bool = True,
) -> dict[str, Any]:
    """Evaluate every sweep cell; returns the consolidated report document.

    Cells whose fingerprint is already in the cache are served from it
    (``exec.cache.hit``); fresh results are stored on the way out.  The MC
    reference method runs through ``backend`` when one is given.

    With ``fuse=True`` (default) the temperature axis of ``st_fast`` /
    ``temp_unaware`` cells is evaluated through one fused kernel dispatch
    per design and bracketing rung (bit-identical results; see
    :func:`_fused_group_lifetimes`); other methods fall back transparently
    to per-cell evaluation.
    """
    if use_cache and cache is None:
        cache = ResultCache()
    pool = _AnalyzerPool(spec, backend)
    results: list[_CellResult] = []
    fused: dict[tuple[str, float | None, str], float] = {}
    fused_attempted: set[tuple[str, str]] = set()
    fused_cells = 0
    started = time.perf_counter()
    with span(
        "exec.batch",
        cells=len(spec.cells()),
        designs=len(spec.designs),
        methods=len(spec.methods),
    ):
        for cell in spec.cells():
            cell_started = time.perf_counter()
            key = _cell_key(spec, cell)
            cached = None
            if use_cache and cache is not None:
                cached = cache.get(key)
            if cached is not None:
                lifetime = float(cached["lifetime_hours"][()])
                results.append(
                    _CellResult(
                        design=cell["design"],
                        temperature_c=cell["temperature_c"],
                        method=cell["method"],
                        lifetime_hours=lifetime,
                        cached=True,
                        elapsed_s=time.perf_counter() - cell_started,
                    )
                )
                continue
            coords = (cell["design"], cell["temperature_c"], cell["method"])
            group = (cell["design"], cell["method"])
            if (
                fuse
                and spec.scenario is None
                and cell["method"] in _FUSABLE_METHODS
                and len(spec.temperatures_c) > 1
                and fast_paths_enabled()
                and group not in fused_attempted
            ):
                fused_attempted.add(group)
                # Fuse only the temps this sweep will actually compute:
                # peek at cache entry paths (no counter side effects; the
                # authoritative, counted get already ran or will run).
                missing = [
                    temp
                    for temp in spec.temperatures_c
                    if cache is None
                    or not use_cache
                    or not cache.path_for(
                        _cell_key(spec, dict(cell, temperature_c=temp))
                    ).exists()
                ]
                if len(missing) > 1:
                    solved = _fused_group_lifetimes(
                        pool, spec, cell["design"], cell["method"], missing
                    )
                    fused.update(
                        {
                            (cell["design"], temp, cell["method"]): value
                            for temp, value in solved.items()
                        }
                    )
            analyzer = pool.get(cell["design"], cell["temperature_c"])
            fused_value = fused.pop(coords, None)
            if fused_value is not None:
                lifetime = fused_value
                fused_cells += 1
            elif spec.scenario is not None:
                from repro.scenario import Scenario, ScenarioAnalyzer

                lifetime = ScenarioAnalyzer(
                    analyzer, Scenario.from_dict(spec.scenario)
                ).lifetime(spec.ppm)
            elif cell["method"] == "mc":
                lifetime = analyzer.mc_lifetime(
                    spec.ppm, n_chips=spec.mc_chips, seed=spec.seed
                )
            else:
                lifetime = analyzer.lifetime(spec.ppm, method=cell["method"])
            if use_cache and cache is not None:
                cache.put(
                    key,
                    {"lifetime_hours": np.asarray(lifetime)},
                    meta={"cell": cell, "ppm": spec.ppm},
                )
            metrics.inc("exec.batch.cells")
            results.append(
                _CellResult(
                    design=cell["design"],
                    temperature_c=cell["temperature_c"],
                    method=cell["method"],
                    lifetime_hours=lifetime,
                    cached=False,
                    elapsed_s=time.perf_counter() - cell_started,
                )
            )
    hits = sum(1 for r in results if r.cached)
    logger.info(
        "batch sweep: %d cells, %d from cache, %.2fs",
        len(results),
        hits,
        time.perf_counter() - started,
    )
    return stamp_envelope({
        "spec": asdict(spec),
        "execution": {
            "backend": backend.name if backend is not None else "serial",
            "jobs": backend.jobs if backend is not None else 1,
            "cache": use_cache,
            "fuse": fuse,
            "fused_cells": fused_cells,
            "precision": precision(),
        },
        "cells": [r.as_dict() for r in results],
        "totals": {
            "cells": len(results),
            "cache_hits": hits,
            "elapsed_s": time.perf_counter() - started,
        },
    })


def batch_table(report: dict[str, Any]) -> str:
    """Render a :func:`run_batch` report as an aligned text table."""
    header = ["design", "temp_c", "method", "lifetime_h", "years", "cache"]
    rows = []
    for cell in report["cells"]:
        temp = cell["temperature_c"]
        rows.append(
            [
                cell["design"],
                "-" if temp is None else f"{temp:.1f}",
                cell["method"],
                f"{cell['lifetime_hours']:.4e}",
                f"{cell['lifetime_years']:.1f}",
                "hit" if cell["cached"] else "miss",
            ]
        )
    widths = [
        max(len(header[i]), *(len(row[i]) for row in rows)) if rows else len(header[i])
        for i in range(len(header))
    ]
    fmt = "  ".join(f"{{:>{w}}}" for w in widths)
    lines = [fmt.format(*header), "  ".join("-" * w for w in widths)]
    lines.extend(fmt.format(*row) for row in rows)
    totals = report["totals"]
    lines.append(
        f"{totals['cells']} cells, {totals['cache_hits']} served from "
        f"cache, {totals['elapsed_s']:.2f}s"
    )
    return "\n".join(lines)
