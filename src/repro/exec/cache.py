"""Content-addressed result cache for expensive analyses.

Results are stored as single ``.npz`` entries under a two-level directory
keyed by a **stable fingerprint** of everything that determines the result:
the design, the analysis configuration, the request parameters, and the
library version (:func:`fingerprint` folds the code version and a cache
schema number in automatically, so upgrading either invalidates every
stale entry without a migration step).

Layout::

    <root>/<key[:2]>/<key>.npz      # arrays + JSON meta, written atomically

``<root>`` is ``$REPRO_CACHE_DIR`` when set, else ``~/.cache/repro``.

Behavioural contract:

- a **hit** returns arrays bit-identical to what was stored
  (``exec.cache.hit`` counter);
- a **miss** returns ``None`` (``exec.cache.miss``);
- a **corrupted or partial entry** is logged, counted
  (``exec.cache.corrupt``) and treated as a miss — callers recompute and
  overwrite; corruption is never allowed to crash an analysis.
"""

from __future__ import annotations

import hashlib
import io
import json
import os
import tempfile
import time
import zipfile
from dataclasses import dataclass
from pathlib import Path
from typing import Any

import numpy as np

from repro.errors import ConfigurationError
from repro.obs import metrics
from repro.obs.logging import get_logger

__all__ = [
    "CACHE_SCHEMA",
    "CacheStats",
    "ResultCache",
    "default_cache_dir",
    "fingerprint",
]

logger = get_logger("exec.cache")

#: Bump to invalidate every existing cache entry on a format change.
CACHE_SCHEMA = 1

_META_KEY = "__meta__"


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR`` when set, else ``~/.cache/repro``."""
    env = os.environ.get("REPRO_CACHE_DIR", "").strip()
    if env:
        return Path(env).expanduser()
    return Path.home() / ".cache" / "repro"


def _canonical(obj: Any) -> Any:
    """A JSON-serialisable canonical form with stable float/array encoding."""
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    if isinstance(obj, float):
        # repr(np.float64(x)) differs from repr(x); normalise first.
        return repr(float(obj))
    if isinstance(obj, (np.bool_, np.integer)):
        return int(obj)
    if isinstance(obj, np.floating):
        return repr(float(obj))
    if isinstance(obj, np.ndarray):
        digest = hashlib.sha256(np.ascontiguousarray(obj).tobytes())
        return {
            "__ndarray__": digest.hexdigest(),
            "dtype": str(obj.dtype),
            "shape": list(obj.shape),
        }
    if isinstance(obj, dict):
        return {
            str(key): _canonical(value)
            for key, value in sorted(obj.items(), key=lambda kv: str(kv[0]))
        }
    if isinstance(obj, (list, tuple)):
        return [_canonical(item) for item in obj]
    raise ConfigurationError(
        f"cannot fingerprint value of type {type(obj).__name__}"
    )


def fingerprint(payload: Any) -> str:
    """A stable sha256 hex key for ``payload``.

    The cache schema number and the library version are folded in, so any
    code upgrade re-keys (and thereby invalidates) every entry.
    """
    # Imported lazily: repro/__init__ -> core -> exec would otherwise cycle.
    from repro import __version__

    document = {
        "schema": CACHE_SCHEMA,
        "version": __version__,
        "payload": _canonical(payload),
    }
    encoded = json.dumps(document, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(encoded.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class CacheStats:
    """A point-in-time summary of the cache directory."""

    root: str
    entries: int
    total_bytes: int

    def as_dict(self) -> dict[str, Any]:
        """JSON-ready form for the ``repro cache stats`` CLI."""
        return {
            "root": self.root,
            "entries": self.entries,
            "total_bytes": self.total_bytes,
        }


class ResultCache:
    """Content-addressed array store (see the module docstring).

    Parameters
    ----------
    root:
        Cache directory; defaults to :func:`default_cache_dir`.
    """

    def __init__(self, root: str | Path | None = None) -> None:
        self.root = Path(root) if root is not None else default_cache_dir()

    def path_for(self, key: str) -> Path:
        """Entry path for a fingerprint key."""
        if len(key) < 3:
            raise ConfigurationError(f"malformed cache key {key!r}")
        return self.root / key[:2] / f"{key}.npz"

    # ------------------------------------------------------------------
    # get / put
    # ------------------------------------------------------------------

    def get(self, key: str) -> dict[str, np.ndarray] | None:
        """The stored arrays for ``key``, or ``None`` on miss/corruption."""
        lookup_started = time.perf_counter()
        try:
            return self._get(key)
        finally:
            metrics.observe(
                "exec.cache.lookup_seconds",
                time.perf_counter() - lookup_started,
            )

    def _get(self, key: str) -> dict[str, np.ndarray] | None:
        path = self.path_for(key)
        if not path.exists():
            metrics.inc("exec.cache.miss")
            return None
        try:
            with np.load(path, allow_pickle=False) as handle:
                arrays = {
                    name: handle[name]
                    for name in handle.files
                    if name != _META_KEY
                }
                if _META_KEY not in handle.files:
                    raise ConfigurationError("cache entry missing metadata")
        except (
            OSError,
            ValueError,
            KeyError,
            ConfigurationError,
            zipfile.BadZipFile,
        ) as exc:
            metrics.inc("exec.cache.corrupt")
            metrics.inc("exec.cache.miss")
            logger.warning(
                "corrupted cache entry %s (%s); recomputing",
                path,
                exc,
                extra={"metric": "exec.cache.corrupt"},
            )
            return None
        metrics.inc("exec.cache.hit")
        return arrays

    def get_meta(self, key: str) -> dict[str, Any] | None:
        """The stored metadata for ``key`` (``None`` on miss/corruption)."""
        path = self.path_for(key)
        try:
            with np.load(path, allow_pickle=False) as handle:
                meta = json.loads(str(handle[_META_KEY][()]))
                return meta if isinstance(meta, dict) else None
        except (OSError, ValueError, KeyError, zipfile.BadZipFile):
            return None

    def put(
        self,
        key: str,
        arrays: dict[str, np.ndarray],
        meta: dict[str, Any] | None = None,
    ) -> Path:
        """Atomically store ``arrays`` (+ JSON ``meta``) under ``key``."""
        if _META_KEY in arrays:
            raise ConfigurationError(f"{_META_KEY!r} is a reserved array name")
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        buffer = io.BytesIO()
        payload = {
            name: np.asarray(value) for name, value in arrays.items()
        }
        payload[_META_KEY] = np.array(
            json.dumps({"key": key, **(meta or {})}, sort_keys=True)
        )
        np.savez(buffer, **payload)
        fd, tmp_name = tempfile.mkstemp(
            dir=path.parent, prefix=".tmp-", suffix=".npz"
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(buffer.getvalue())
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        metrics.inc("exec.cache.store")
        return path

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------

    def _entries(self) -> list[Path]:
        if not self.root.is_dir():
            return []
        return sorted(self.root.glob("??/*.npz"))

    def stats(self) -> CacheStats:
        """Entry count and total size on disk."""
        entries = self._entries()
        total = sum(path.stat().st_size for path in entries)
        return CacheStats(
            root=str(self.root), entries=len(entries), total_bytes=total
        )

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        entries = self._entries()
        for path in entries:
            path.unlink(missing_ok=True)
            try:
                path.parent.rmdir()
            except OSError:
                pass  # shared prefix directory still holds other entries
        return len(entries)
