"""Content-addressed result cache for expensive analyses.

Results are stored as single ``.npz`` entries under a two-level directory
keyed by a **stable fingerprint** of everything that determines the result:
the design, the analysis configuration, the request parameters, and the
library version (:func:`fingerprint` folds the code version and a cache
schema number in automatically, so upgrading either invalidates every
stale entry without a migration step).

Layout::

    <root>/<key[:2]>/<key>.npz      # arrays + JSON meta, written atomically

``<root>`` is ``$REPRO_CACHE_DIR`` when set, else ``~/.cache/repro``.

Behavioural contract:

- a **hit** returns arrays bit-identical to what was stored
  (``exec.cache.hit`` counter);
- a **miss** returns ``None`` (``exec.cache.miss``);
- a **corrupted or partial entry** is logged, counted
  (``exec.cache.corrupt``) and treated as a miss — callers recompute and
  overwrite; corruption is never allowed to crash an analysis.

Tiers
-----
A cache instance belongs to one of two **tiers** — ``"local"`` (the
default: one machine's private store) or ``"shared"`` (the
coordinator-merged store a :mod:`repro.fleet` run deduplicates shard
work through).  The tier labels the per-instance counters
(``exec.cache.local.hit`` / ``exec.cache.shared.hit`` and friends, a
static two-entry namespace) on top of the legacy untiered family, so
``repro cache stats`` and ``/metrics`` can report hit ratios per tier.
The shared tier's default root is ``$REPRO_SHARED_CACHE_DIR`` when set,
else ``<local root>/shared``.
"""

from __future__ import annotations

import hashlib
import io
import json
import os
import tempfile
import time
import zipfile
from dataclasses import dataclass
from pathlib import Path
from typing import Any

import numpy as np

from repro.errors import ConfigurationError
from repro.obs import metrics
from repro.obs.logging import get_logger

__all__ = [
    "CACHE_SCHEMA",
    "CACHE_TIERS",
    "CacheStats",
    "ResultCache",
    "default_cache_dir",
    "default_shared_cache_dir",
    "fingerprint",
    "get_json_payload",
    "put_json_payload",
]

logger = get_logger("exec.cache")

#: Bump to invalidate every existing cache entry on a format change.
CACHE_SCHEMA = 1

#: The cache tiers a :class:`ResultCache` instance can belong to.
CACHE_TIERS = ("local", "shared")

#: Static per-tier metric families (RPL008: dynamic parts route through a
#: literal dict, so the metric namespace stays enumerable).
_BASE_COUNTERS = {
    "hit": "exec.cache.hit",
    "miss": "exec.cache.miss",
    "corrupt": "exec.cache.corrupt",
    "store": "exec.cache.store",
}

_TIER_COUNTERS = {
    "local": {
        "hit": "exec.cache.local.hit",
        "miss": "exec.cache.local.miss",
        "corrupt": "exec.cache.local.corrupt",
        "store": "exec.cache.local.store",
    },
    "shared": {
        "hit": "exec.cache.shared.hit",
        "miss": "exec.cache.shared.miss",
        "corrupt": "exec.cache.shared.corrupt",
        "store": "exec.cache.shared.store",
    },
}

_META_KEY = "__meta__"

#: JSON document key under which whole-payload entries are cached (the
#: service's finished job results and the fleet's shard-group results).
_PAYLOAD_FIELD = "payload_json"


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR`` when set, else ``~/.cache/repro``."""
    env = os.environ.get("REPRO_CACHE_DIR", "").strip()
    if env:
        return Path(env).expanduser()
    return Path.home() / ".cache" / "repro"


def default_shared_cache_dir() -> Path:
    """``$REPRO_SHARED_CACHE_DIR`` when set, else ``<local root>/shared``.

    Nested under the local root by default so a single ``rm -rf`` clears
    both tiers, while the two-level ``??/`` entry layout keeps the tiers'
    entry lists disjoint.
    """
    env = os.environ.get("REPRO_SHARED_CACHE_DIR", "").strip()
    if env:
        return Path(env).expanduser()
    return default_cache_dir() / "shared"


def _canonical(obj: Any) -> Any:
    """A JSON-serialisable canonical form with stable float/array encoding."""
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    if isinstance(obj, float):
        # repr(np.float64(x)) differs from repr(x); normalise first.
        return repr(float(obj))
    if isinstance(obj, (np.bool_, np.integer)):
        return int(obj)
    if isinstance(obj, np.floating):
        return repr(float(obj))
    if isinstance(obj, np.ndarray):
        digest = hashlib.sha256(np.ascontiguousarray(obj).tobytes())
        return {
            "__ndarray__": digest.hexdigest(),
            "dtype": str(obj.dtype),
            "shape": list(obj.shape),
        }
    if isinstance(obj, dict):
        return {
            str(key): _canonical(value)
            for key, value in sorted(obj.items(), key=lambda kv: str(kv[0]))
        }
    if isinstance(obj, (list, tuple)):
        return [_canonical(item) for item in obj]
    raise ConfigurationError(
        f"cannot fingerprint value of type {type(obj).__name__}"
    )


def fingerprint(payload: Any) -> str:
    """A stable sha256 hex key for ``payload``.

    The cache schema number and the library version are folded in, so any
    code upgrade re-keys (and thereby invalidates) every entry.
    """
    # Imported lazily: repro/__init__ -> core -> exec would otherwise cycle.
    from repro import __version__

    document = {
        "schema": CACHE_SCHEMA,
        "version": __version__,
        "payload": _canonical(payload),
    }
    encoded = json.dumps(document, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(encoded.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class CacheStats:
    """A point-in-time summary of one cache tier's directory.

    ``hits``/``misses`` are the process-lifetime counters of the tier's
    metric family (not persisted on disk), so the reported hit ratio
    describes the current process — exactly what the fleet's ≥90%%
    shared-hit acceptance gate measures.
    """

    root: str
    entries: int
    total_bytes: int
    tier: str = "local"
    hits: int = 0
    misses: int = 0

    @property
    def hit_ratio(self) -> float:
        """Process-lifetime hit fraction (0.0 when the tier is untouched)."""
        lookups = self.hits + self.misses
        if lookups == 0:
            return 0.0
        return self.hits / lookups

    def as_dict(self) -> dict[str, Any]:
        """JSON-ready form for the ``repro cache stats`` CLI."""
        return {
            "root": self.root,
            "tier": self.tier,
            "entries": self.entries,
            "total_bytes": self.total_bytes,
            "hits": self.hits,
            "misses": self.misses,
            "hit_ratio": self.hit_ratio,
        }


class ResultCache:
    """Content-addressed array store (see the module docstring).

    Parameters
    ----------
    root:
        Cache directory; defaults to :func:`default_cache_dir` for the
        local tier and :func:`default_shared_cache_dir` for the shared
        tier.
    tier:
        ``"local"`` (default) or ``"shared"`` — labels this instance's
        metric counters and stats; never changes entry semantics.

    Subclasses (the kernels-layer ``ArtifactCache``) override the class
    attributes below to relabel the metric namespace and the default
    roots while inheriting the entry format, atomic writes and
    corruption handling unchanged.
    """

    #: Untiered counter family every instance increments.
    _base_counters: dict[str, str] = _BASE_COUNTERS
    #: Per-tier counter families (also defines the valid tier names).
    _tier_counters: dict[str, dict[str, str]] = _TIER_COUNTERS
    #: Histogram observed once per ``get`` call.
    _lookup_metric: str = "exec.cache.lookup_seconds"

    def __init__(
        self, root: str | Path | None = None, tier: str = "local"
    ) -> None:
        tier_counters = type(self)._tier_counters
        if tier not in tier_counters:
            raise ConfigurationError(
                f"unknown cache tier {tier!r}; "
                f"expected one of {tuple(tier_counters)}"
            )
        if root is not None:
            self.root = Path(root)
        else:
            self.root = type(self)._default_root(tier)
        self.tier = tier
        self._counters = tier_counters[tier]

    @classmethod
    def _default_root(cls, tier: str) -> Path:
        """The tier's root when none is given (overridden by subclasses)."""
        if tier == "shared":
            return default_shared_cache_dir()
        return default_cache_dir()

    def _count(self, event: str) -> None:
        """Increment the untiered and tiered counters for one event."""
        metrics.inc(self._base_counters[event])
        metrics.inc(self._counters[event])

    def path_for(self, key: str) -> Path:
        """Entry path for a fingerprint key."""
        if len(key) < 3:
            raise ConfigurationError(f"malformed cache key {key!r}")
        return self.root / key[:2] / f"{key}.npz"

    # ------------------------------------------------------------------
    # get / put
    # ------------------------------------------------------------------

    def get(self, key: str) -> dict[str, np.ndarray] | None:
        """The stored arrays for ``key``, or ``None`` on miss/corruption."""
        lookup_started = time.perf_counter()
        try:
            return self._get(key)
        finally:
            metrics.observe(
                self._lookup_metric,
                time.perf_counter() - lookup_started,
            )

    def _get(self, key: str) -> dict[str, np.ndarray] | None:
        path = self.path_for(key)
        if not path.exists():
            self._count("miss")
            return None
        try:
            with np.load(path, allow_pickle=False) as handle:
                arrays = {
                    name: handle[name]
                    for name in handle.files
                    if name != _META_KEY
                }
                if _META_KEY not in handle.files:
                    raise ConfigurationError("cache entry missing metadata")
        except (
            OSError,
            ValueError,
            KeyError,
            ConfigurationError,
            zipfile.BadZipFile,
        ) as exc:
            self._count("corrupt")
            self._count("miss")
            logger.warning(
                "corrupted cache entry %s (%s); recomputing",
                path,
                exc,
                extra={"metric": self._base_counters["corrupt"]},
            )
            return None
        self._count("hit")
        return arrays

    def get_meta(self, key: str) -> dict[str, Any] | None:
        """The stored metadata for ``key`` (``None`` on miss/corruption)."""
        path = self.path_for(key)
        try:
            with np.load(path, allow_pickle=False) as handle:
                meta = json.loads(str(handle[_META_KEY][()]))
                return meta if isinstance(meta, dict) else None
        except (OSError, ValueError, KeyError, zipfile.BadZipFile):
            return None

    def put(
        self,
        key: str,
        arrays: dict[str, np.ndarray],
        meta: dict[str, Any] | None = None,
    ) -> Path:
        """Atomically store ``arrays`` (+ JSON ``meta``) under ``key``."""
        if _META_KEY in arrays:
            raise ConfigurationError(f"{_META_KEY!r} is a reserved array name")
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        buffer = io.BytesIO()
        payload = {
            name: np.asarray(value) for name, value in arrays.items()
        }
        payload[_META_KEY] = np.array(
            json.dumps({"key": key, **(meta or {})}, sort_keys=True)
        )
        np.savez(buffer, **payload)
        fd, tmp_name = tempfile.mkstemp(
            dir=path.parent, prefix=".tmp-", suffix=".npz"
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(buffer.getvalue())
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self._count("store")
        return path

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------

    def _entries(self) -> list[Path]:
        if not self.root.is_dir():
            return []
        return sorted(self.root.glob("??/*.npz"))

    def stats(self) -> CacheStats:
        """Entry count, total size on disk, and this process's hit ratio."""
        entries = self._entries()
        total = sum(path.stat().st_size for path in entries)
        return CacheStats(
            root=str(self.root),
            entries=len(entries),
            total_bytes=total,
            tier=self.tier,
            hits=int(metrics.get_counter(self._counters["hit"])),
            misses=int(metrics.get_counter(self._counters["miss"])),
        )

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        entries = self._entries()
        for path in entries:
            path.unlink(missing_ok=True)
            try:
                path.parent.rmdir()
            except OSError:
                pass  # shared prefix directory still holds other entries
        return len(entries)


# ----------------------------------------------------------------------
# Whole-payload (JSON document) entries
# ----------------------------------------------------------------------
#
# The service's job results and the fleet's shard-group results are JSON
# documents, not array bundles; both store them as a single 0-d string
# array under one reserved field so the two layers share entry format,
# corruption handling and metrics.


def get_json_payload(
    cache: ResultCache | None, key: str
) -> dict[str, Any] | None:
    """A cached JSON payload for ``key``, or ``None`` on miss/corruption."""
    if cache is None:
        return None
    arrays = cache.get(key)
    if arrays is None or _PAYLOAD_FIELD not in arrays:
        return None
    try:
        payload = json.loads(str(arrays[_PAYLOAD_FIELD][()]))
    except ValueError:
        metrics.inc("exec.cache.corrupt")
        logger.warning(
            "cached payload for %s is not valid JSON; recomputing", key[:12]
        )
        return None
    return payload if isinstance(payload, dict) else None


def put_json_payload(
    cache: ResultCache | None,
    key: str,
    payload: dict[str, Any],
    meta: dict[str, Any] | None = None,
) -> None:
    """Store a JSON payload under ``key`` (I/O errors logged, not raised)."""
    if cache is None:
        return
    try:
        cache.put(
            key,
            {_PAYLOAD_FIELD: np.array(json.dumps(payload))},
            meta=meta,
        )
    except OSError as exc:
        logger.warning("cannot store result in cache: %s", exc)
