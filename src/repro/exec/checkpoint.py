"""Checkpoint/resume for long sharded runs.

A :class:`Checkpoint` persists the accumulated per-shard payloads of a run
to a single ``.npz`` file so a killed process can resume without losing
completed work.  Because shards are the unit of both work and randomness
(:mod:`repro.exec.sharding`), a resumed run re-executes only the missing
shards and reduces to a curve **bit-identical** to an uninterrupted run.

File format (version :data:`CHECKPOINT_VERSION`)::

    __checkpoint__            JSON header: format version + meta fingerprint
    s<index>__<field>         one array per payload field per shard

Writes are atomic (temp file + ``os.replace``), so a kill mid-save leaves
the previous consistent snapshot in place.  On load, a header whose meta
fingerprint does not match the current run (different seed, sample count,
engine parameters or library version) is rejected with a warning and the
run starts from scratch — a stale checkpoint can never leak shards into a
different analysis.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
import zipfile
from pathlib import Path
from typing import Any

import numpy as np

from repro.exec.cache import fingerprint
from repro.obs import flight, metrics
from repro.obs.logging import get_logger

__all__ = ["CHECKPOINT_VERSION", "Checkpoint"]

logger = get_logger("exec.checkpoint")

#: Bump on any incompatible change to the on-disk layout.
CHECKPOINT_VERSION = 1

_HEADER_KEY = "__checkpoint__"


class Checkpoint:
    """Accumulates per-shard payloads and persists them periodically.

    Parameters
    ----------
    path:
        Checkpoint file location.
    meta:
        Everything that identifies the run (seed entropy, shard plan,
        engine parameters...).  Its :func:`~repro.exec.cache.fingerprint`
        guards resume against mismatched checkpoints.
    save_every:
        Flush to disk after this many newly added shards.  The engine also
        flushes on abnormal exit, so at most ``save_every`` shards of work
        are ever lost.
    """

    def __init__(
        self,
        path: str | Path,
        meta: dict[str, Any],
        save_every: int = 16,
    ) -> None:
        self.path = Path(path)
        self.meta_fingerprint = fingerprint(meta)
        self.save_every = max(1, int(save_every))
        self._payloads: dict[int, dict[str, np.ndarray]] = {}
        self._unsaved = 0
        # Reentrant: fleet dispatcher threads add() concurrently, and
        # add() flushes inline once save_every is reached.
        self._lock = threading.RLock()

    @property
    def completed(self) -> set[int]:
        """Indices of shards already accounted for."""
        with self._lock:
            return set(self._payloads)

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------

    def load(self) -> dict[int, dict[str, np.ndarray]]:
        """Restore per-shard payloads from disk (empty on absence/mismatch).

        Corrupted files and meta-fingerprint mismatches are logged, counted
        (``exec.checkpoint.stale``) and treated as "no checkpoint".
        """
        with self._lock:
            return self._load_locked()

    def _load_locked(self) -> dict[int, dict[str, np.ndarray]]:
        self._payloads = {}
        self._unsaved = 0
        if not self.path.exists():
            return {}
        try:
            with np.load(self.path, allow_pickle=False) as handle:
                header = json.loads(str(handle[_HEADER_KEY][()]))
                if (
                    header.get("version") != CHECKPOINT_VERSION
                    or header.get("meta") != self.meta_fingerprint
                ):
                    metrics.inc("exec.checkpoint.stale")
                    logger.warning(
                        "checkpoint %s does not match this run "
                        "(stale seed/config/code); ignoring it",
                        self.path,
                    )
                    return {}
                payloads: dict[int, dict[str, np.ndarray]] = {}
                for name in handle.files:
                    if name == _HEADER_KEY:
                        continue
                    shard_part, _, field = name.partition("__")
                    index = int(shard_part[1:])
                    payloads.setdefault(index, {})[field] = handle[name]
        except (OSError, ValueError, KeyError, zipfile.BadZipFile) as exc:
            metrics.inc("exec.checkpoint.stale")
            logger.warning(
                "unreadable checkpoint %s (%s); restarting from scratch",
                self.path,
                exc,
            )
            return {}
        self._payloads = payloads
        metrics.inc("exec.checkpoint.resumed_shards", len(payloads))
        logger.info(
            "resuming from checkpoint %s: %d shard(s) already complete",
            self.path,
            len(payloads),
        )
        return dict(payloads)

    def add(self, index: int, payload: dict[str, np.ndarray]) -> None:
        """Record one completed shard, flushing every ``save_every``."""
        with self._lock:
            self._payloads[index] = payload
            self._unsaved += 1
            if self._unsaved >= self.save_every:
                self.flush()

    def flush(self) -> None:
        """Atomically write the current state to :attr:`path`."""
        with self._lock:
            if not self._payloads:
                return
            header = json.dumps(
                {"version": CHECKPOINT_VERSION, "meta": self.meta_fingerprint}
            )
            arrays: dict[str, np.ndarray] = {_HEADER_KEY: np.array(header)}
            for index, payload in self._payloads.items():
                for field, value in payload.items():
                    arrays[f"s{index}__{field}"] = np.asarray(value)
            self.path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp_name = tempfile.mkstemp(
                dir=self.path.parent, prefix=".ckpt-", suffix=".npz"
            )
            try:
                with os.fdopen(fd, "wb") as handle:
                    np.savez(handle, **arrays)
                os.replace(tmp_name, self.path)
            except BaseException:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
                raise
            self._unsaved = 0
            metrics.inc("exec.checkpoint.saves")
            flight.emit("checkpoint.flush", shards=len(self._payloads))

    def clear(self) -> None:
        """Delete the checkpoint file (after a successful run)."""
        with self._lock:
            self.path.unlink(missing_ok=True)
            self._payloads = {}
            self._unsaved = 0
