"""Sharded run orchestration: backend + shards + optional checkpoint.

:func:`run_sharded` is the one loop every sharded engine shares: skip
shards already restored from a checkpoint, group the rest into tasks of
``shards_per_task`` consecutive shards (scheduling granularity only —
grouping never changes results), execute the groups on a backend, feed
completed payloads into the checkpoint, and hand the full
``{shard_index: payload}`` map back for an in-order reduction.

The per-shard ``task`` callable (and its bound arguments) must be
picklable for :class:`~repro.exec.backends.ProcessBackend` — build it with
``functools.partial`` over a module-level function.
"""

from __future__ import annotations

import time
from collections.abc import Callable
from functools import partial
from typing import Any

import numpy as np

from repro.errors import ExecutionInterrupted
from repro.exec.backends import ExecBackend
from repro.exec.checkpoint import Checkpoint
from repro.exec.sharding import Shard
from repro.obs import flight, metrics, trace
from repro.obs.logging import get_logger
from repro.obs.propagate import TraceContext, current_trace_context, record_subtree

__all__ = ["run_sharded"]

logger = get_logger("exec.runner")

ShardPayload = dict[str, np.ndarray]

GroupResult = tuple[
    list[tuple[int, ShardPayload]], list[dict[str, Any]] | None
]


def _run_group(
    task: Callable[[Shard], ShardPayload],
    trace_ctx: TraceContext | None,
    group: list[Shard],
) -> GroupResult:
    """Execute one task group; module-level so process backends can pickle.

    With a ``trace_ctx`` (tracing enabled at the submission site), each
    shard's work is recorded as a detached span subtree on the worker —
    thread or separate process alike — and the serialized spans ship back
    alongside the payloads for the parent to graft into its tree.
    """
    if trace_ctx is None:
        return [(shard.index, task(shard)) for shard in group], None
    results: list[tuple[int, ShardPayload]] = []
    span_docs: list[dict[str, Any]] = []
    for shard in group:
        with record_subtree(
            "exec.shard", trace_ctx, shard=shard.index, size=shard.size
        ) as node:
            results.append((shard.index, task(shard)))
        span_docs.append(node.to_dict())
    return results, span_docs


def run_sharded(
    backend: ExecBackend,
    task: Callable[[Shard], ShardPayload],
    shards: list[Shard],
    shards_per_task: int = 1,
    checkpoint: Checkpoint | None = None,
    cancel_check: Callable[[], bool] | None = None,
) -> dict[int, ShardPayload]:
    """Run ``task`` over every shard; returns payloads keyed by shard index.

    With a ``checkpoint``, previously completed shards are restored instead
    of re-run, newly completed shards are persisted periodically, and the
    current state is flushed even when a worker raises — so a killed or
    failed run loses at most ``checkpoint.save_every`` shards of work.

    ``cancel_check`` is polled after every completed task group; when it
    returns True, the run stops consuming results, flushes the checkpoint
    (when one is attached) and raises
    :class:`~repro.errors.ExecutionInterrupted`.  Cancellation is
    cooperative — tasks already submitted to a pool backend run to
    completion but their results are discarded; resuming from the flushed
    checkpoint reproduces the uninterrupted result bit-identically.
    """
    done: dict[int, ShardPayload] = {}
    if checkpoint is not None:
        done = checkpoint.load()
    pending = [shard for shard in shards if shard.index not in done]
    metrics.inc("exec.shards", len(pending))
    if not pending:
        return done
    width = max(1, shards_per_task)
    groups = [
        pending[i : i + width] for i in range(0, len(pending), width)
    ]
    # Built once at the submission site: workers parent their shard spans
    # onto whatever span is open here (None keeps the disabled path free).
    trace_ctx = current_trace_context()
    started = time.perf_counter()
    completed = 0
    try:
        for _, group_result in backend.imap_unordered(
            partial(_run_group, task, trace_ctx), groups
        ):
            results, span_docs = group_result
            for index, payload in results:
                done[index] = payload
                if checkpoint is not None:
                    checkpoint.add(index, payload)
            if span_docs:
                trace.graft(span_docs)
                for doc in span_docs:
                    metrics.observe(
                        "exec.shard.seconds", float(doc["wall_time_s"])
                    )
            completed += len(results)
            flight.emit(
                "shard.progress", done=completed, total=len(pending)
            )
            elapsed = time.perf_counter() - started
            eta = elapsed / completed * (len(pending) - completed)
            logger.debug(
                "sharded run: %d/%d shards (%.2fs elapsed, ETA %.2fs)",
                completed,
                len(pending),
                elapsed,
                eta,
            )
            if cancel_check is not None and cancel_check():
                metrics.inc("exec.cancelled_runs")
                logger.info(
                    "sharded run cancelled after %d/%d shards; "
                    "checkpointed state %s",
                    completed,
                    len(pending),
                    "flushed" if checkpoint is not None else "not requested",
                )
                raise ExecutionInterrupted(
                    f"sharded run cancelled after {completed} of "
                    f"{len(pending)} pending shards"
                )
    except BaseException:
        # Preserve completed work across kills and worker failures.
        if checkpoint is not None:
            checkpoint.flush()
        raise
    if checkpoint is not None:
        checkpoint.flush()
    return done
