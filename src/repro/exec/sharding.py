"""Deterministic seed sharding for parallel Monte-Carlo execution.

A *shard* is the atomic unit of both work and randomness: a run over
``n_items`` samples is split into fixed-size shards, and each shard owns a
child :class:`numpy.random.SeedSequence` spawned from one root.  The shard
layout and the spawn tree depend only on ``(n_items, shard_size, root)`` —
never on the execution backend, the worker count, or how shards are grouped
into tasks — so results reduced in shard-index order are **bit-identical**
for every execution plan.

Consequences worth spelling out:

- ``shard_size`` *is part of the random-stream definition*: changing it
  yields a different (equally valid) sample.  It therefore has a stable
  default (:data:`DEFAULT_SHARD_SIZE`) that engines expose separately from
  their scheduling granularity (``chunk_size``).
- The root may be an ``int`` seed, a ``SeedSequence``, or an existing
  ``Generator``.  A Generator root draws fresh entropy from the generator
  (advancing it), which preserves the historical "two calls with the same
  generator give different samples" semantics while still being fully
  reproducible from the generator's own seed.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError

__all__ = [
    "DEFAULT_SHARD_SIZE",
    "Shard",
    "plan_shards",
    "resolve_seed_sequence",
]

#: Default chips/samples per shard.  Part of the deterministic stream
#: definition (see the module docstring), hence a named constant rather
#: than something derived from worker count or chunk size.
DEFAULT_SHARD_SIZE = 64


class Shard:
    """One fixed slice of a sharded run plus its private seed.

    Parameters
    ----------
    index:
        Position in the shard plan (also the spawn-tree child index).
    start:
        First item index covered by this shard.
    size:
        Number of items in this shard.
    seed:
        The child :class:`numpy.random.SeedSequence` owned by this shard.
    """

    __slots__ = ("index", "seed", "size", "start")

    def __init__(
        self, index: int, start: int, size: int, seed: np.random.SeedSequence
    ) -> None:
        self.index = index
        self.start = start
        self.size = size
        self.seed = seed

    @property
    def stop(self) -> int:
        """One past the last item index covered by this shard."""
        return self.start + self.size

    def rng(self) -> np.random.Generator:
        """A fresh generator over this shard's private stream."""
        return np.random.default_rng(self.seed)

    def __repr__(self) -> str:
        return (
            f"Shard(index={self.index}, start={self.start}, "
            f"size={self.size})"
        )


def resolve_seed_sequence(
    seed: int | np.random.SeedSequence | np.random.Generator,
) -> np.random.SeedSequence:
    """Normalise a seed-like value into a root :class:`SeedSequence`.

    ``int`` and ``SeedSequence`` map to themselves (stable across calls);
    a ``Generator`` contributes freshly drawn entropy, advancing its state,
    so repeated calls with one generator produce independent roots.
    """
    if isinstance(seed, np.random.SeedSequence):
        return seed
    if isinstance(seed, np.random.Generator):
        entropy = [int(word) for word in seed.integers(0, 2**32, size=8)]
        return np.random.SeedSequence(entropy)
    if isinstance(seed, (int, np.integer)) and not isinstance(seed, bool):
        if seed < 0:
            raise ConfigurationError(f"seed must be non-negative, got {seed}")
        return np.random.SeedSequence(int(seed))
    raise ConfigurationError(
        f"cannot derive a SeedSequence from {type(seed).__name__}; pass an "
        "int, np.random.SeedSequence or np.random.Generator"
    )


def plan_shards(
    n_items: int,
    root: int | np.random.SeedSequence | np.random.Generator,
    shard_size: int = DEFAULT_SHARD_SIZE,
) -> list[Shard]:
    """Split ``n_items`` into seeded shards of ``shard_size``.

    The final shard absorbs the remainder, so every item is covered exactly
    once.  Child seeds come from one ``root.spawn(n_shards)`` call, making
    the plan a pure function of ``(n_items, shard_size, root)``.
    """
    if n_items < 1:
        raise ConfigurationError(f"n_items must be >= 1, got {n_items}")
    if shard_size < 1:
        raise ConfigurationError(f"shard_size must be >= 1, got {shard_size}")
    seed_seq = resolve_seed_sequence(root)
    n_shards = -(-n_items // shard_size)
    children = seed_seq.spawn(n_shards)
    shards = []
    for index in range(n_shards):
        start = index * shard_size
        size = min(shard_size, n_items - start)
        shards.append(Shard(index, start, size, children[index]))
    return shards
