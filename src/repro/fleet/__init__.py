"""Distributed fleet execution: a coordinator over ``repro serve`` workers.

The fleet layer fans the deterministic Monte-Carlo shard plan out to a
set of :mod:`repro.service` workers over the HTTP job API, collects the
per-shard partial sums and reduces them in shard order, so the merged
result is **bit-identical** to a serial in-process run (see
``docs/fleet.md``).

- :mod:`repro.fleet.client` — shared stdlib HTTP client: per-request
  timeouts, jittered exponential backoff, ``Retry-After`` honouring.
- :mod:`repro.fleet.transport` — one shard-group round trip: submit an
  ``mc_shards`` job, poll it, fetch the result.
- :mod:`repro.fleet.coordinator` — dispatch, health checks, failover and
  the order-preserving reduction.
"""

from __future__ import annotations

from repro.fleet.client import BackoffPolicy, HttpClient, HttpResponse
from repro.fleet.coordinator import FleetCoordinator
from repro.fleet.transport import FakeTransport, HttpTransport, WorkerTransport

__all__ = [
    "BackoffPolicy",
    "FakeTransport",
    "FleetCoordinator",
    "HttpClient",
    "HttpResponse",
    "HttpTransport",
    "WorkerTransport",
]
