"""Shared stdlib HTTP client for talking to ``repro serve`` workers.

Every request carries an explicit per-request timeout, retryable
failures back off exponentially with jitter, and a server-supplied
``Retry-After`` header (the service sends one on 429/503 shed responses)
overrides the computed delay.  The clock and randomness are injectable
so the backoff schedule is unit-testable without sleeping.

Used by the fleet coordinator/transport and by ``scripts/service_load.py``
(which disables status retries so shed responses stay visible to the
load measurement).
"""

from __future__ import annotations

import http.client
import json
import random
import time
import urllib.error
import urllib.request
from collections.abc import Callable
from dataclasses import dataclass
from typing import Any

from repro.errors import WorkerUnavailable
from repro.obs import metrics
from repro.obs.logging import get_logger

__all__ = ["BackoffPolicy", "HttpClient", "HttpResponse"]

logger = get_logger("fleet.client")


@dataclass(frozen=True)
class HttpResponse:
    """One HTTP exchange: status, raw body, response headers."""

    status: int
    body: bytes
    headers: dict[str, str]

    def json(self) -> Any:
        """Decode the body as JSON (raises ``ValueError`` when it isn't)."""
        return json.loads(self.body.decode("utf-8"))

    @property
    def retry_after_s(self) -> float | None:
        """The ``Retry-After`` delay in seconds, when present and valid."""
        raw = self.headers.get("retry-after")
        if raw is None:
            return None
        try:
            value = float(raw)
        except ValueError:
            return None
        return value if value >= 0.0 else None


@dataclass(frozen=True)
class BackoffPolicy:
    """Jittered exponential backoff: ``base * factor**attempt``, capped.

    A server-supplied ``Retry-After`` overrides the computed delay (it
    knows its own queue), clamped to ``retry_after_cap_s`` so a
    misbehaving header cannot stall the caller for minutes.
    """

    retries: int = 4
    base_s: float = 0.25
    factor: float = 2.0
    max_s: float = 8.0
    jitter: float = 0.25
    retry_after_cap_s: float = 30.0

    def delay_s(
        self,
        attempt: int,
        rng: random.Random,
        retry_after_s: float | None = None,
    ) -> float:
        """The delay before retry number ``attempt`` (0-based)."""
        if retry_after_s is not None:
            return min(retry_after_s, self.retry_after_cap_s)
        delay = min(self.base_s * self.factor**attempt, self.max_s)
        return delay * (1.0 + self.jitter * rng.random())


class HttpClient:
    """stdlib HTTP with timeouts, backoff and ``Retry-After`` honouring.

    Connection-level failures (refused, reset, DNS, timeout) are retried
    per ``policy`` and raise :class:`WorkerUnavailable` once exhausted.
    Responses whose status is in ``retry_statuses`` are retried the same
    way but the *last response is returned* when retries run out — the
    caller decides whether a still-shedding worker is fatal.  Pass
    ``retry_statuses=()`` to surface every status immediately (the load
    generator does, so shed responses stay measurable).

    ``sleep`` and ``rng`` are injectable for deterministic tests.
    """

    def __init__(
        self,
        timeout_s: float = 30.0,
        policy: BackoffPolicy | None = None,
        retry_statuses: tuple[int, ...] = (429, 503),
        sleep: Callable[[float], None] = time.sleep,
        rng: random.Random | None = None,
    ) -> None:
        self.timeout_s = timeout_s
        self.policy = policy or BackoffPolicy()
        self.retry_statuses = retry_statuses
        self._sleep = sleep
        self._rng = rng or random.Random()

    # ------------------------------------------------------------------
    # request machinery
    # ------------------------------------------------------------------

    def request(
        self,
        method: str,
        url: str,
        body: bytes | None = None,
        headers: dict[str, str] | None = None,
    ) -> HttpResponse:
        """One logical request, retried per the backoff policy."""
        attempts = self.policy.retries + 1
        last_error: Exception | None = None
        response: HttpResponse | None = None
        for attempt in range(attempts):
            started = time.perf_counter()
            try:
                response = self._send(method, url, body, headers)
            except (
                urllib.error.URLError,
                http.client.HTTPException,
                TimeoutError,
                ConnectionError,
                OSError,
            ) as exc:
                last_error = exc
                response = None
            finally:
                metrics.observe(
                    "fleet.client.request_seconds",
                    time.perf_counter() - started,
                )
            if response is not None and response.status not in self.retry_statuses:
                return response
            if attempt + 1 >= attempts:
                break
            retry_after = response.retry_after_s if response is not None else None
            delay = self.policy.delay_s(attempt, self._rng, retry_after)
            metrics.inc("fleet.client.retries")
            logger.debug(
                "retrying %s %s in %.2fs (attempt %d/%d): %s",
                method,
                url,
                delay,
                attempt + 1,
                attempts,
                last_error if response is None else f"HTTP {response.status}",
            )
            self._sleep(delay)
        if response is not None:
            return response
        raise WorkerUnavailable(
            f"{method} {url} failed after {attempts} attempt(s): {last_error}",
            url=url,
            attempts=attempts,
        )

    def _send(
        self,
        method: str,
        url: str,
        body: bytes | None,
        headers: dict[str, str] | None,
    ) -> HttpResponse:
        """One wire-level exchange; an HTTP error status is a response."""
        request = urllib.request.Request(
            url, data=body, method=method, headers=dict(headers or {})
        )
        if body is not None and "Content-Type" not in (headers or {}):
            request.add_header("Content-Type", "application/json")
        try:
            with urllib.request.urlopen(request, timeout=self.timeout_s) as raw:
                return HttpResponse(
                    status=raw.status,
                    body=raw.read(),
                    headers={k.lower(): v for k, v in raw.headers.items()},
                )
        except urllib.error.HTTPError as exc:
            # A non-2xx status is still a response, not a transport fault.
            with exc:
                return HttpResponse(
                    status=exc.code,
                    body=exc.read(),
                    headers={k.lower(): v for k, v in exc.headers.items()},
                )

    # ------------------------------------------------------------------
    # JSON conveniences
    # ------------------------------------------------------------------

    def get_json(self, url: str) -> HttpResponse:
        return self.request("GET", url)

    def post_json(self, url: str, document: dict[str, Any]) -> HttpResponse:
        body = json.dumps(document).encode("utf-8")
        return self.request("POST", url, body=body)
