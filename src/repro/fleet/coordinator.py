"""The fleet coordinator: fan shard groups out, merge bit-identically.

The coordinator owns the deterministic plan: it computes the MC time
grid locally, slices the shard index space into groups, and dispatches
each group as an ``mc_shards`` job to whichever worker is free.  Workers
return per-shard partial sums; the coordinator merges them with the
*same* :func:`repro.core.montecarlo.reduce_curve_payloads` a serial run
uses, in shard order, so the final payload is byte-identical to
``repro lifetime --json`` no matter how many workers ran or died.

Fault tolerance: a worker that becomes unreachable mid-group has its
group requeued for the survivors; finished shards land in an exec-layer
checkpoint so even a coordinator crash resumes without recomputation.
Results are also stored per group in the *shared* result-cache tier, so
a rerun of the same sweep is served from cache instead of the fleet.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

import numpy as np

from repro.core.montecarlo import reduce_curve_payloads
from repro.errors import FleetError, WorkerUnavailable
from repro.exec.cache import ResultCache, get_json_payload, put_json_payload
from repro.exec.checkpoint import Checkpoint
from repro.fleet.transport import HttpTransport, WorkerTransport
from repro.obs import metrics, trace
from repro.obs.logging import get_logger
from repro.service.requests import JobRequest, run_job

__all__ = ["FleetCoordinator"]

logger = get_logger("fleet.coordinator")

#: Shard indices dispatched per worker job.  Small enough to rebalance
#: around a lost worker, large enough that HTTP overhead stays noise.
DEFAULT_GROUP_SIZE = 4


@dataclass
class _RunState:
    """Mutable coordination state shared by the dispatcher threads."""

    pending: deque[list[int]]
    lock: threading.Lock = field(default_factory=threading.Lock)
    done: threading.Event = field(default_factory=threading.Event)
    merged: dict[int, dict[str, Any]] = field(default_factory=dict)
    trace_docs: list[dict[str, Any]] = field(default_factory=list)
    alive: set[str] = field(default_factory=set)
    in_flight: int = 0
    completed_groups: int = 0
    reassigned_groups: int = 0
    workers_lost: int = 0
    failure: FleetError | None = None
    #: Idle dispatchers must not exit while a peer still holds a group:
    #: if that peer dies, its group is requeued and someone has to pick
    #: it up.  They wait on this condition instead; completion, requeue,
    #: failure, and done all notify it.
    wakeup: threading.Condition = field(init=False)

    def __post_init__(self) -> None:
        self.wakeup = threading.Condition(self.lock)


class FleetCoordinator:
    """Drives one analysis across a set of ``repro serve`` workers.

    Parameters
    ----------
    workers:
        Worker base URLs (``http://host:port``).
    transport:
        How shard groups reach workers; defaults to the real HTTP
        transport.  Tests inject :class:`~repro.fleet.transport.FakeTransport`.
    group_size:
        Shard indices per dispatched job.
    shared_cache:
        The coordinator-merged cache tier.  Defaults to a
        :class:`ResultCache` in the shared tier directory; a str/Path
        becomes a shared-tier cache rooted there; pass ``False`` to
        disable caching.
    checkpoint_path:
        Where finished shards accumulate for crash resume.
    heartbeat_every_s:
        A dispatcher re-probes its worker's ``/readyz`` when this much
        time passed since the last successful exchange.
    """

    def __init__(
        self,
        workers: list[str],
        transport: WorkerTransport | None = None,
        group_size: int = DEFAULT_GROUP_SIZE,
        shared_cache: ResultCache | str | Path | bool | None = None,
        checkpoint_path: str | None = None,
        heartbeat_every_s: float = 5.0,
    ) -> None:
        if not workers:
            raise FleetError("a fleet needs at least one worker URL")
        if group_size < 1:
            raise FleetError(f"group_size must be >= 1, got {group_size}")
        self.workers = [url.rstrip("/") for url in workers]
        self.transport = transport or HttpTransport()
        self.group_size = group_size
        if shared_cache is False:
            self.shared_cache: ResultCache | None = None
        elif shared_cache is None or shared_cache is True:
            self.shared_cache = ResultCache(tier="shared")
        elif isinstance(shared_cache, ResultCache):
            self.shared_cache = shared_cache
        elif isinstance(shared_cache, (str, Path)):
            self.shared_cache = ResultCache(shared_cache, tier="shared")
        else:
            raise FleetError(
                "shared_cache must be a ResultCache, a directory path, "
                f"a bool, or None; got {type(shared_cache).__name__}"
            )
        self.checkpoint_path = checkpoint_path
        self.heartbeat_every_s = heartbeat_every_s
        self.last_run_stats: dict[str, Any] = {}

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------

    def status(self) -> list[dict[str, Any]]:
        """One ``/readyz`` probe per worker: ``{url, ready, info}``."""
        report = []
        for url in self.workers:
            info = self.transport.ready(url)
            report.append({"url": url, "ready": info is not None, "info": info})
        return report

    def run(self, request: JobRequest) -> dict[str, Any]:
        """Evaluate ``request`` across the fleet.

        Only the sharded MC reference is distributed; requests without
        an ``mc`` method have nothing to fan out and run locally.  The
        returned payload is byte-identical to the serial equivalent.
        """
        if not (request.kind == "lifetime" and "mc" in request.methods):
            logger.info(
                "request kind=%s methods=%s has no MC shards to "
                "distribute; running locally",
                request.kind,
                ",".join(request.methods),
            )
            return run_job(request)
        started = time.perf_counter()
        with trace.span(
            "fleet.run", workers=len(self.workers), mc_chips=request.mc_chips
        ) as run_span:
            payload = self._run_distributed(request, started)
            run_span.set(
                groups_reassigned=self.last_run_stats["groups_reassigned"],
                workers_lost=self.last_run_stats["workers_lost"],
            )
        return payload

    # ------------------------------------------------------------------
    # the distributed MC path
    # ------------------------------------------------------------------

    def _run_distributed(
        self, request: JobRequest, started: float
    ) -> dict[str, Any]:
        from repro.core.lifetime import lifetime_from_curve, ppm_to_reliability
        from repro.payloads import lifetime_payload

        analyzer = request.build_analyzer()
        times = analyzer.mc_time_grid(request.ppm)
        shard_size = analyzer.mc_engine.shard_size
        n_shards = -(-request.mc_chips // shard_size)
        checkpoint = self._checkpoint(request, times)
        state = _RunState(pending=deque())
        state.alive = set(self.workers)
        # Dispatcher threads do not exist yet, but planning mutates the
        # same state they will share, so it runs under the state lock.
        with state.lock:
            if checkpoint is not None:
                for index, payload in checkpoint.load().items():
                    if 0 <= index < n_shards:
                        state.merged[index] = payload
            cache_hits = self._plan_groups(request, times, n_shards, state)
        if state.pending:
            self._dispatch(request, times, state, checkpoint)
        if state.failure is not None:
            if checkpoint is not None:
                checkpoint.flush()
            raise state.failure
        metrics.gauge("fleet.workers.alive", float(len(state.alive)))
        curve = reduce_curve_payloads(
            times, state.merged, expected_shards=n_shards
        )
        mc_hours = lifetime_from_curve(
            curve.times, curve.reliability, ppm_to_reliability(request.ppm)
        )
        # Graft worker trace subtrees from the coordinating thread, so
        # they land under the open ``fleet.run`` span (graft is
        # thread-local).
        if state.trace_docs:
            trace.graft(state.trace_docs)
        payload = lifetime_payload(
            analyzer,
            request.ppm,
            request.methods,
            mc_chips=request.mc_chips,
            seed=request.seed,
            mc_lifetime_fn=lambda: mc_hours,
        )
        if checkpoint is not None:
            checkpoint.clear()
        self.last_run_stats = {
            "workers": len(self.workers),
            "workers_lost": state.workers_lost,
            "groups": -(-n_shards // self.group_size),
            "groups_completed": state.completed_groups,
            "groups_reassigned": state.reassigned_groups,
            "shared_cache_hits": cache_hits,
            "shards": n_shards,
            "wall_s": time.perf_counter() - started,
        }
        return payload

    def _checkpoint(
        self, request: JobRequest, times: np.ndarray
    ) -> Checkpoint | None:
        if self.checkpoint_path is None:
            return None
        return Checkpoint(
            self.checkpoint_path,
            meta={
                "kind": "fleet.mc_lifetime",
                "request": request.as_dict(),
                "times": times.tolist(),
            },
        )

    def _plan_groups(
        self,
        request: JobRequest,
        times: np.ndarray,
        n_shards: int,
        state: _RunState,
    ) -> int:
        """Queue shard groups still to compute; merge cached/resumed ones.

        Returns the number of groups served from the shared cache tier.
        """
        cache_hits = 0
        for start in range(0, n_shards, self.group_size):
            indices = [
                i
                for i in range(start, min(start + self.group_size, n_shards))
                if i not in state.merged
            ]
            if not indices:
                continue
            doc = self._group_doc(request, times, indices)
            cached = get_json_payload(
                self.shared_cache, JobRequest.from_dict(doc).key
            )
            if cached is not None:
                self._merge_payload(state, indices, cached)
                cache_hits += 1
                metrics.inc("fleet.groups.cache_hits")
                continue
            state.pending.append(indices)
        return cache_hits

    def _group_doc(
        self, request: JobRequest, times: np.ndarray, indices: list[int]
    ) -> dict[str, Any]:
        """The ``mc_shards`` job document for one shard group.

        Deliberately excludes ``methods`` (and carries the explicit
        ``times`` instead of ``ppm``): the partial sums depend on
        neither, so requests differing only in their method list share
        cache entries and coalesce on the workers.
        """
        doc: dict[str, Any] = {
            "kind": "mc_shards",
            "design": request.design,
            "setup": request.setup,
            "grid": request.grid,
            "rho": request.rho,
            "vdd": request.vdd,
            "mc_chips": request.mc_chips,
            "seed": request.seed,
            "shards": list(indices),
            "times": [float(t) for t in times],
        }
        return {key: value for key, value in doc.items() if value is not None}

    def _merge_payload(
        self,
        state: _RunState,
        indices: list[int],
        payload: dict[str, Any],
    ) -> None:
        """Fold one worker/cache payload's shards into the merged map."""
        shards = payload.get("shards")
        if not isinstance(shards, dict):
            raise FleetError("worker payload has no 'shards' map")
        missing = [i for i in indices if str(i) not in shards]
        if missing:
            raise FleetError(
                f"worker payload is missing shard(s) {missing}"
            )
        for index in indices:
            state.merged[index] = shards[str(index)]

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------

    def _dispatch(
        self,
        request: JobRequest,
        times: np.ndarray,
        state: _RunState,
        checkpoint: Checkpoint | None,
    ) -> None:
        threads = [
            threading.Thread(
                target=self._worker_loop,
                args=(url, request, times, state, checkpoint),
                name=f"fleet-{url}",
                daemon=True,
            )
            for url in self.workers
        ]
        for thread in threads:
            thread.start()
        state.done.wait()
        for thread in threads:
            thread.join()

    def _worker_loop(
        self,
        url: str,
        request: JobRequest,
        times: np.ndarray,
        state: _RunState,
        checkpoint: Checkpoint | None,
    ) -> None:
        last_ok = time.monotonic()
        while True:
            with state.lock:
                while (
                    not state.pending
                    and state.in_flight > 0
                    and state.failure is None
                    and not state.done.is_set()
                ):
                    state.wakeup.wait()
                if (
                    state.failure is not None
                    or state.done.is_set()
                    or not state.pending
                ):
                    # Failure recorded, or the queue drained with
                    # nothing left in flight: the run is over.
                    state.done.set()
                    state.wakeup.notify_all()
                    return
                indices = state.pending.popleft()
                state.in_flight += 1
            if time.monotonic() - last_ok > self.heartbeat_every_s:
                if self.transport.ready(url) is None:
                    self._lose_worker(url, state, indices)
                    return
                last_ok = time.monotonic()
            doc = self._group_doc(request, times, indices)
            group_started = time.perf_counter()
            try:
                payload, trace_docs = self.transport.run_shard_group(url, doc)
            except WorkerUnavailable as exc:
                logger.warning("worker %s lost: %s", url, exc)
                self._lose_worker(url, state, indices)
                return
            except FleetError as exc:
                with state.lock:
                    state.failure = exc
                    state.in_flight -= 1
                    state.done.set()
                    state.wakeup.notify_all()
                return
            metrics.inc("fleet.groups.dispatched")
            metrics.observe(
                "fleet.group.seconds", time.perf_counter() - group_started
            )
            last_ok = time.monotonic()
            self._store_shared(doc, payload)
            with state.lock:
                try:
                    self._merge_payload(state, indices, payload)
                except FleetError as exc:
                    state.failure = exc
                    state.in_flight -= 1
                    state.done.set()
                    state.wakeup.notify_all()
                    return
                if checkpoint is not None:
                    for index in indices:
                        checkpoint.add(
                            index,
                            {
                                key: np.asarray(value)
                                for key, value in state.merged[index].items()
                            },
                        )
                state.trace_docs.extend(trace_docs)
                state.in_flight -= 1
                state.completed_groups += 1
                metrics.inc("fleet.groups.completed")
                state.wakeup.notify_all()

    def _lose_worker(
        self, url: str, state: _RunState, indices: list[int]
    ) -> None:
        """Requeue the lost worker's group; fail when no one is left."""
        metrics.inc("fleet.workers.lost")
        metrics.inc("fleet.groups.reassigned")
        with state.lock:
            state.alive.discard(url)
            state.pending.appendleft(indices)
            state.in_flight -= 1
            state.workers_lost += 1
            state.reassigned_groups += 1
            if not state.alive:
                state.failure = FleetError(
                    "all fleet workers are unreachable; "
                    f"{len(state.pending)} shard group(s) unfinished"
                )
                state.done.set()
            state.wakeup.notify_all()

    def _store_shared(
        self, doc: dict[str, Any], payload: dict[str, Any]
    ) -> None:
        if self.shared_cache is None:
            return
        put_json_payload(
            self.shared_cache,
            JobRequest.from_dict(doc).key,
            payload,
            meta={"kind": "fleet.mc_shards"},
        )
