"""One shard-group round trip against a worker's job API.

:class:`HttpTransport` is the real thing: submit an ``mc_shards`` job to
a ``repro serve`` worker, poll it to completion, fetch the result (and
its trace when tracing is on).  :class:`FakeTransport` runs the same job
in-process with injectable failures, which is what the determinism
property tests and the coordinator unit tests drive.

Error contract (the coordinator's failover hinges on it):

- :class:`repro.errors.WorkerUnavailable` — the *worker* failed
  (unreachable, timed out, kept shedding).  The shard group is intact
  and gets reassigned to a survivor.
- :class:`repro.errors.FleetError` — the *job* failed deterministically
  (the worker reported ``failed``/``cancelled``).  Retrying elsewhere
  would fail the same way, so the run aborts.
"""

from __future__ import annotations

import time
from collections.abc import Callable
from typing import Any

from repro.errors import FleetError, WorkerUnavailable
from repro.fleet.client import BackoffPolicy, HttpClient
from repro.obs import trace
from repro.obs.logging import get_logger

__all__ = ["FakeTransport", "HttpTransport", "WorkerTransport"]

logger = get_logger("fleet.transport")

#: Job states the service reports as terminal.
_TERMINAL_OK = "done"
_TERMINAL_BAD = ("failed", "cancelled", "interrupted")


class WorkerTransport:
    """How the coordinator talks to one worker (swappable in tests)."""

    def ready(self, base_url: str) -> dict[str, Any] | None:
        """The worker's ``/readyz`` document, or ``None`` when not ready."""
        raise NotImplementedError

    def run_shard_group(
        self, base_url: str, request_doc: dict[str, Any]
    ) -> tuple[dict[str, Any], list[dict[str, Any]]]:
        """Run one ``mc_shards`` job; returns ``(payload, trace_docs)``."""
        raise NotImplementedError


class HttpTransport(WorkerTransport):
    """The real transport: the worker's HTTP job API, polled to done."""

    def __init__(
        self,
        client: HttpClient | None = None,
        poll_interval_s: float = 0.1,
        job_timeout_s: float = 600.0,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self.client = client or HttpClient()
        #: Health probes fail fast — a dead worker should be noticed in
        #: seconds, not after the full request backoff schedule.
        self.probe_client = HttpClient(
            timeout_s=5.0, policy=BackoffPolicy(retries=1, base_s=0.1, max_s=0.5)
        )
        self.poll_interval_s = poll_interval_s
        self.job_timeout_s = job_timeout_s
        self._sleep = sleep

    def ready(self, base_url: str) -> dict[str, Any] | None:
        try:
            response = self.probe_client.get_json(f"{base_url}/readyz")
        except WorkerUnavailable:
            return None
        if response.status != 200:
            return None
        try:
            doc = response.json()
        except ValueError:
            return None
        return doc if doc.get("status") == "ready" else None

    def run_shard_group(
        self, base_url: str, request_doc: dict[str, Any]
    ) -> tuple[dict[str, Any], list[dict[str, Any]]]:
        job = self._submit(base_url, request_doc)
        job = self._poll(base_url, job)
        payload = self._fetch_result(base_url, job)
        return payload, self._fetch_trace(base_url, job)

    # ------------------------------------------------------------------
    # job lifecycle
    # ------------------------------------------------------------------

    def _submit(self, base_url: str, request_doc: dict[str, Any]) -> dict[str, Any]:
        response = self.client.post_json(f"{base_url}/v1/jobs", request_doc)
        if response.status in (429, 503):
            raise WorkerUnavailable(
                f"worker {base_url} kept shedding (HTTP {response.status})",
                url=base_url,
            )
        if response.status not in (200, 201):
            raise FleetError(
                f"worker {base_url} rejected the shard-group job "
                f"(HTTP {response.status}): {response.body[:200]!r}"
            )
        return response.json()

    def _poll(self, base_url: str, job: dict[str, Any]) -> dict[str, Any]:
        job_id = job["id"]
        deadline = time.monotonic() + self.job_timeout_s
        while True:
            state = job.get("state")
            if state == _TERMINAL_OK:
                return job
            if state in _TERMINAL_BAD:
                error = job.get("error") or {}
                raise FleetError(
                    f"shard-group job {job_id} on {base_url} is {state}: "
                    f"{error.get('message', 'no detail')}"
                )
            if time.monotonic() >= deadline:
                raise WorkerUnavailable(
                    f"worker {base_url} did not finish job {job_id} within "
                    f"{self.job_timeout_s:.0f}s",
                    url=base_url,
                )
            self._sleep(self.poll_interval_s)
            response = self.client.request("GET", f"{base_url}/v1/jobs/{job_id}")
            if response.status != 200:
                raise WorkerUnavailable(
                    f"worker {base_url} lost job {job_id} "
                    f"(HTTP {response.status})",
                    url=base_url,
                )
            job = response.json()

    def _fetch_result(
        self, base_url: str, job: dict[str, Any]
    ) -> dict[str, Any]:
        url = f"{base_url}/v1/jobs/{job['id']}/result"
        response = self.client.request("GET", url)
        if response.status != 200:
            raise WorkerUnavailable(
                f"worker {base_url} could not serve the result of job "
                f"{job['id']} (HTTP {response.status})",
                url=base_url,
            )
        return response.json()

    def _fetch_trace(
        self, base_url: str, job: dict[str, Any]
    ) -> list[dict[str, Any]]:
        """The job's trace subtree, when tracing is on (best effort)."""
        if not trace.is_enabled():
            return []
        try:
            response = self.client.request(
                "GET", f"{base_url}/v1/jobs/{job['id']}/trace"
            )
        except WorkerUnavailable:
            return []
        if response.status != 200:
            return []
        try:
            doc = response.json()
        except ValueError:
            return []
        subtree = doc.get("trace")
        return [subtree] if isinstance(subtree, dict) else []


class FakeTransport(WorkerTransport):
    """In-process transport with scripted failures, for tests.

    Runs :func:`repro.service.requests.run_job` directly (so results are
    exactly what a real worker would return) and raises
    :class:`WorkerUnavailable` per ``kill_schedule`` — a mapping of
    worker base URL to the number of shard-group calls it completes
    before "dying".  A dead worker stays dead: later calls fail
    immediately, like a SIGKILLed process.
    """

    def __init__(self, kill_schedule: dict[str, int] | None = None) -> None:
        self.kill_schedule = dict(kill_schedule or {})
        self.calls: dict[str, int] = {}
        self.dead: set[str] = set()

    def ready(self, base_url: str) -> dict[str, Any] | None:
        if base_url in self.dead:
            return None
        return {"status": "ready", "queue_depth": 0, "running": 0}

    def run_shard_group(
        self, base_url: str, request_doc: dict[str, Any]
    ) -> tuple[dict[str, Any], list[dict[str, Any]]]:
        from repro.service.requests import JobRequest, run_job

        if base_url in self.dead:
            raise WorkerUnavailable(
                f"worker {base_url} is dead", url=base_url
            )
        done = self.calls.get(base_url, 0)
        budget = self.kill_schedule.get(base_url)
        if budget is not None and done >= budget:
            self.dead.add(base_url)
            raise WorkerUnavailable(
                f"worker {base_url} died mid-run", url=base_url
            )
        self.calls[base_url] = done + 1
        request = JobRequest.from_dict(request_doc)
        return run_job(request), []
