"""File-format support: HotSpot floorplans/traces, JSON setups, tables."""

from repro.io.design_json import (
    floorplan_from_dict,
    floorplan_to_dict,
    load_setup,
    save_setup,
    setup_from_dict,
    setup_to_dict,
)
from repro.io.hotspot_files import (
    apply_ptrace_sample,
    format_flp,
    format_ptrace,
    parse_flp,
    parse_ptrace,
    read_flp,
    read_ptrace,
    write_flp,
    write_ptrace,
)
from repro.io.tables import (
    format_obd_table,
    load_hybrid_tables,
    load_obd_table,
    parse_obd_table,
    save_hybrid_tables,
    save_obd_table,
)

__all__ = [
    "apply_ptrace_sample",
    "floorplan_from_dict",
    "floorplan_to_dict",
    "format_flp",
    "format_obd_table",
    "format_ptrace",
    "load_hybrid_tables",
    "load_obd_table",
    "load_setup",
    "parse_flp",
    "parse_obd_table",
    "parse_ptrace",
    "read_flp",
    "read_ptrace",
    "save_hybrid_tables",
    "save_obd_table",
    "save_setup",
    "setup_from_dict",
    "setup_to_dict",
    "write_flp",
    "write_ptrace",
]
