"""JSON serialisation of designs and analysis setups.

A portable, versioned description of everything the analysis consumes:
the floorplan (blocks with device counts and powers), the variation
budget, the OBD model calibration, and the analysis configuration. The
round-trip is exact so a design characterised once can be archived and
re-analysed later or on another machine.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Any

from repro.chip.floorplan import Block, Floorplan
from repro.chip.geometry import Rect
from repro.core.analyzer import AnalysisConfig
from repro.core.obd_model import OBDModel
from repro.errors import ConfigurationError
from repro.variation.components import VariationBudget

#: Format version written into every file (bump on breaking change).
FORMAT_VERSION = 1


def floorplan_to_dict(floorplan: Floorplan) -> dict[str, Any]:
    """A JSON-ready dictionary describing a floorplan."""
    return {
        "width": floorplan.width,
        "height": floorplan.height,
        "blocks": [
            {
                "name": block.name,
                "x": block.rect.x,
                "y": block.rect.y,
                "width": block.rect.width,
                "height": block.rect.height,
                "n_devices": block.n_devices,
                "avg_device_area": block.avg_device_area,
                "power": block.power,
            }
            for block in floorplan.blocks
        ],
    }


def floorplan_from_dict(data: dict[str, Any]) -> Floorplan:
    """Rebuild a floorplan from its dictionary form."""
    try:
        blocks = tuple(
            Block(
                name=entry["name"],
                rect=Rect(
                    entry["x"], entry["y"], entry["width"], entry["height"]
                ),
                n_devices=int(entry["n_devices"]),
                avg_device_area=float(entry.get("avg_device_area", 1.0)),
                power=float(entry.get("power", 0.0)),
            )
            for entry in data["blocks"]
        )
        return Floorplan(
            width=float(data["width"]),
            height=float(data["height"]),
            blocks=blocks,
        )
    except KeyError as exc:
        raise ConfigurationError(f"floorplan JSON missing field {exc}") from exc


def setup_to_dict(
    floorplan: Floorplan,
    budget: VariationBudget | None = None,
    obd_model: OBDModel | None = None,
    config: AnalysisConfig | None = None,
) -> dict[str, Any]:
    """Bundle a complete analysis setup into one dictionary."""
    return {
        "format_version": FORMAT_VERSION,
        "floorplan": floorplan_to_dict(floorplan),
        "budget": dataclasses.asdict(
            budget if budget is not None else VariationBudget.table2()
        ),
        "obd_model": dataclasses.asdict(
            obd_model if obd_model is not None else OBDModel()
        ),
        "config": dataclasses.asdict(
            config if config is not None else AnalysisConfig()
        ),
    }


def setup_from_dict(
    data: dict[str, Any],
) -> tuple[Floorplan, VariationBudget, OBDModel, AnalysisConfig]:
    """Rebuild the full analysis setup from its dictionary form."""
    version = data.get("format_version")
    if version != FORMAT_VERSION:
        raise ConfigurationError(
            f"unsupported setup format version {version!r} "
            f"(expected {FORMAT_VERSION})"
        )
    floorplan = floorplan_from_dict(data["floorplan"])
    budget = VariationBudget(**data["budget"])
    obd_model = OBDModel(**data["obd_model"])
    config = AnalysisConfig(**data["config"])
    return floorplan, budget, obd_model, config


def save_setup(
    path: str | Path,
    floorplan: Floorplan,
    budget: VariationBudget | None = None,
    obd_model: OBDModel | None = None,
    config: AnalysisConfig | None = None,
) -> None:
    """Write a complete analysis setup to a JSON file."""
    payload = setup_to_dict(floorplan, budget, obd_model, config)
    Path(path).write_text(json.dumps(payload, indent=2) + "\n")


def load_setup(
    path: str | Path,
) -> tuple[Floorplan, VariationBudget, OBDModel, AnalysisConfig]:
    """Read a complete analysis setup from a JSON file."""
    try:
        data = json.loads(Path(path).read_text())
    except json.JSONDecodeError as exc:
        raise ConfigurationError(f"invalid setup JSON: {exc}") from exc
    return setup_from_dict(data)
