"""HotSpot-compatible file formats: floorplans (.flp) and power traces.

HotSpot [10] — the thermal simulator the paper uses — consumes a
floorplan file with one line per block::

    <name> <width_m> <height_m> <left_x_m> <bottom_y_m>

(dimensions in metres) and a power trace file with a header line of block
names followed by rows of per-block watts. Supporting these formats lets
users drop in existing HotSpot designs; device counts, which HotSpot does
not track, are estimated from block area by a configurable density unless
supplied explicitly.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.chip.floorplan import Block, Floorplan
from repro.chip.geometry import Rect
from repro.errors import ConfigurationError

#: Metres per millimetre (HotSpot files are in metres, repro uses mm).
_M_TO_MM = 1000.0

#: Default device density used when a .flp file carries no device counts,
#: devices per mm^2 (a mixed logic/SRAM figure for a mature planar node).
DEFAULT_DEVICE_DENSITY = 4000.0


def parse_flp(
    text: str,
    device_density: float = DEFAULT_DEVICE_DENSITY,
    device_counts: dict[str, int] | None = None,
) -> Floorplan:
    """Parse a HotSpot ``.flp`` floorplan from its text contents.

    Parameters
    ----------
    text:
        File contents; ``#`` comments and blank lines are ignored.
    device_density:
        Devices per mm^2 used to populate blocks (HotSpot floorplans do
        not carry device counts).
    device_counts:
        Optional explicit per-block device counts overriding the density
        estimate.
    """
    if device_density <= 0.0:
        raise ConfigurationError("device density must be positive")
    blocks: list[Block] = []
    max_x = max_y = 0.0
    entries: list[tuple[str, float, float, float, float]] = []
    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        parts = line.split()
        if len(parts) < 5:
            raise ConfigurationError(
                f"flp line {line_no}: expected 'name w h x y', got {raw!r}"
            )
        name = parts[0]
        try:
            width, height, left, bottom = (float(p) for p in parts[1:5])
        except ValueError as exc:
            raise ConfigurationError(
                f"flp line {line_no}: non-numeric geometry in {raw!r}"
            ) from exc
        entries.append((name, width, height, left, bottom))
        max_x = max(max_x, (left + width) * _M_TO_MM)
        max_y = max(max_y, (bottom + height) * _M_TO_MM)

    if not entries:
        raise ConfigurationError("flp file contains no blocks")

    for name, width, height, left, bottom in entries:
        rect = Rect(
            left * _M_TO_MM,
            bottom * _M_TO_MM,
            width * _M_TO_MM,
            height * _M_TO_MM,
        )
        if device_counts is not None and name in device_counts:
            n_devices = device_counts[name]
        else:
            n_devices = max(1, round(rect.area * device_density))
        blocks.append(Block(name=name, rect=rect, n_devices=n_devices))
    return Floorplan(width=max_x, height=max_y, blocks=tuple(blocks))


def read_flp(
    path: str | Path,
    device_density: float = DEFAULT_DEVICE_DENSITY,
    device_counts: dict[str, int] | None = None,
) -> Floorplan:
    """Read a HotSpot ``.flp`` floorplan file."""
    return parse_flp(
        Path(path).read_text(),
        device_density=device_density,
        device_counts=device_counts,
    )


def format_flp(floorplan: Floorplan) -> str:
    """Render a floorplan in HotSpot ``.flp`` format (metres)."""
    lines = [
        "# HotSpot floorplan written by repro",
        "# name\twidth(m)\theight(m)\tleft(m)\tbottom(m)",
    ]
    for block in floorplan.blocks:
        rect = block.rect
        lines.append(
            f"{block.name}\t{rect.width / _M_TO_MM:.6e}\t"
            f"{rect.height / _M_TO_MM:.6e}\t{rect.x / _M_TO_MM:.6e}\t"
            f"{rect.y / _M_TO_MM:.6e}"
        )
    return "\n".join(lines) + "\n"


def write_flp(floorplan: Floorplan, path: str | Path) -> None:
    """Write a floorplan as a HotSpot ``.flp`` file."""
    Path(path).write_text(format_flp(floorplan))


def parse_ptrace(text: str) -> tuple[list[str], np.ndarray]:
    """Parse a HotSpot power trace: header of block names + rows of watts.

    Returns ``(block_names, powers)`` with ``powers`` of shape
    ``(n_samples, n_blocks)``.
    """
    lines = [
        line.split("#", 1)[0].strip()
        for line in text.splitlines()
    ]
    lines = [line for line in lines if line]
    if len(lines) < 2:
        raise ConfigurationError("ptrace needs a header and at least one row")
    names = lines[0].split()
    rows = []
    for line_no, line in enumerate(lines[1:], start=2):
        parts = line.split()
        if len(parts) != len(names):
            raise ConfigurationError(
                f"ptrace line {line_no}: expected {len(names)} values, "
                f"got {len(parts)}"
            )
        try:
            rows.append([float(p) for p in parts])
        except ValueError as exc:
            raise ConfigurationError(
                f"ptrace line {line_no}: non-numeric power"
            ) from exc
    powers = np.asarray(rows)
    if np.any(powers < 0.0):
        raise ConfigurationError("ptrace powers must be non-negative")
    return names, powers


def read_ptrace(path: str | Path) -> tuple[list[str], np.ndarray]:
    """Read a HotSpot ``.ptrace`` power trace file."""
    return parse_ptrace(Path(path).read_text())


def format_ptrace(names: list[str], powers: np.ndarray) -> str:
    """Render block names and per-sample powers as a ``.ptrace`` file."""
    powers = np.atleast_2d(np.asarray(powers, dtype=float))
    if powers.shape[1] != len(names):
        raise ConfigurationError(
            f"expected {len(names)} power columns, got {powers.shape[1]}"
        )
    lines = ["\t".join(names)]
    for row in powers:
        lines.append("\t".join(f"{p:.6g}" for p in row))
    return "\n".join(lines) + "\n"


def write_ptrace(
    names: list[str], powers: np.ndarray, path: str | Path
) -> None:
    """Write a HotSpot ``.ptrace`` power trace file."""
    Path(path).write_text(format_ptrace(names, powers))


def apply_ptrace_sample(
    floorplan: Floorplan, names: list[str], powers: np.ndarray, sample: int = 0
) -> Floorplan:
    """A floorplan with powers taken from one row of a power trace."""
    powers = np.atleast_2d(np.asarray(powers, dtype=float))
    if not 0 <= sample < powers.shape[0]:
        raise ConfigurationError(
            f"sample {sample} out of range for {powers.shape[0]} trace rows"
        )
    mapping = dict(zip(names, powers[sample].tolist(), strict=True))
    unknown = set(mapping) - set(floorplan.block_names)
    if unknown:
        raise ConfigurationError(
            f"trace names not in the floorplan: {sorted(unknown)}"
        )
    return floorplan.with_powers(mapping)
