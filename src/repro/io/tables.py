"""Persistence for characterisation tables and hybrid look-up tables.

Two artefacts worth archiving per design/process:

- the OBD characterisation table ``alpha(T), b(T)`` a fab supplies
  (CSV, human-editable),
- the hybrid analyzer's per-block look-up tables (``.npz``), which take
  seconds to build and milliseconds to load — the reliability-monitoring
  deployment path of Sec. IV-E.
"""

from __future__ import annotations

import io
from pathlib import Path

import numpy as np

from repro.core.ensemble import BlockReliability
from repro.core.hybrid import HybridAnalyzer
from repro.core.obd_model import TabulatedOBDModel
from repro.errors import ConfigurationError

#: CSV header of an OBD characterisation table.
_OBD_HEADER = "temperature_c,alpha_hours,b_per_nm"


def format_obd_table(model: TabulatedOBDModel) -> str:
    """Render a tabulated OBD model as CSV text."""
    lines = [_OBD_HEADER]
    for temp, log_alpha, b in zip(
        model.temperatures, model.log_alphas, model.bs, strict=True
    ):
        lines.append(f"{temp:.6g},{np.exp(log_alpha):.8e},{b:.8g}")
    return "\n".join(lines) + "\n"


def parse_obd_table(text: str) -> TabulatedOBDModel:
    """Parse a CSV OBD characterisation table."""
    reader = io.StringIO(text)
    header = reader.readline().strip()
    if header.replace(" ", "") != _OBD_HEADER:
        raise ConfigurationError(
            f"unexpected OBD table header {header!r}; expected {_OBD_HEADER!r}"
        )
    temps, alphas, bs = [], [], []
    for line_no, raw in enumerate(reader, start=2):
        line = raw.strip()
        if not line:
            continue
        parts = line.split(",")
        if len(parts) != 3:
            raise ConfigurationError(
                f"OBD table line {line_no}: expected 3 columns"
            )
        try:
            temps.append(float(parts[0]))
            alphas.append(float(parts[1]))
            bs.append(float(parts[2]))
        except ValueError as exc:
            raise ConfigurationError(
                f"OBD table line {line_no}: non-numeric value"
            ) from exc
    return TabulatedOBDModel(
        np.asarray(temps), np.asarray(alphas), np.asarray(bs)
    )


def save_obd_table(model: TabulatedOBDModel, path: str | Path) -> None:
    """Write an OBD characterisation table as CSV."""
    Path(path).write_text(format_obd_table(model))


def load_obd_table(path: str | Path) -> TabulatedOBDModel:
    """Read an OBD characterisation table from CSV."""
    return parse_obd_table(Path(path).read_text())


def save_hybrid_tables(hybrid: HybridAnalyzer, path: str | Path) -> None:
    """Persist a hybrid analyzer's look-up tables to an ``.npz`` archive.

    Stores the shared index axes, the per-block log-failure tables, and
    the nominal per-block (alpha, b, area, name) needed to query with the
    design's default profile.
    """
    np.savez_compressed(
        Path(path),
        log_t_axis=hybrid.log_t_axis,
        b_axis=hybrid.b_axis,
        tables=hybrid.tables,
        alphas=np.array([block.alpha for block in hybrid.blocks]),
        bs=np.array([block.b for block in hybrid.blocks]),
        names=np.array([block.name for block in hybrid.blocks]),
    )


def load_hybrid_tables(
    path: str | Path, blocks: list[BlockReliability]
) -> HybridAnalyzer:
    """Restore a hybrid analyzer from an ``.npz`` archive.

    ``blocks`` must be the same design's block list (checked by name);
    the expensive table build is skipped entirely.
    """
    with np.load(Path(path), allow_pickle=False) as archive:
        names = [str(n) for n in archive["names"]]
        if names != [block.name for block in blocks]:
            raise ConfigurationError(
                "archived tables do not match the supplied block list"
            )
        # Build a minimal instance without recomputing tables.
        analyzer = HybridAnalyzer.__new__(HybridAnalyzer)
        analyzer.blocks = list(blocks)
        analyzer.log_t_axis = archive["log_t_axis"].copy()
        analyzer.b_axis = archive["b_axis"].copy()
        analyzer.tables = archive["tables"].copy()
    expected_shape = (
        len(blocks),
        analyzer.log_t_axis.size,
        analyzer.b_axis.size,
    )
    if analyzer.tables.shape != expected_shape:
        raise ConfigurationError(
            f"archived tables have shape {analyzer.tables.shape}, "
            f"expected {expected_shape}"
        )
    return analyzer
