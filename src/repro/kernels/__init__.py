"""Numerical kernel fast paths.

The hot inner kernels of the analysis pipeline — the sparse thermal
solve inside the power-thermal fixed point, the per-block survival
quadrature of the ensemble analyzers, and the Imhof reference inversion
— each have an optimised implementation guarded by a process-wide
switch (see :mod:`repro.kernels.config`):

========================  =============================================
fast path                 lives in
========================  =============================================
conductance assembly      ``repro.thermal.solver`` (numpy index math)
factorization cache       ``repro.thermal.factor_cache``
batched block survival    ``repro.kernels.survival``
vectorised Imhof          ``repro.stats.quadform.QuadraticForm.imhof_sf``
========================  =============================================

Every fast path is covered by an equivalence test against the reference
implementation it replaces, and ``repro bench kernels`` (or
``benchmarks/test_kernels.py``) times both sides.  See
``docs/performance.md``.
"""

from repro.kernels.artifacts import (
    ArtifactCache,
    artifacts_enabled,
    default_artifact_cache_dir,
    get_artifact_cache,
    memoize_artifact,
    set_artifacts_enabled,
    use_artifacts,
)
from repro.kernels.config import (
    PRECISIONS,
    fast_paths_enabled,
    precision,
    set_fast_paths,
    set_precision,
    use_fast_paths,
    use_precision,
)
from repro.kernels.survival import (
    batched_rule_expectations,
    batched_sample_expectations,
    pad_rule_tables,
    sweep_rule_expectations,
)

__all__ = [
    "PRECISIONS",
    "ArtifactCache",
    "artifacts_enabled",
    "batched_rule_expectations",
    "batched_sample_expectations",
    "default_artifact_cache_dir",
    "fast_paths_enabled",
    "get_artifact_cache",
    "memoize_artifact",
    "pad_rule_tables",
    "precision",
    "set_artifacts_enabled",
    "set_fast_paths",
    "set_precision",
    "sweep_rule_expectations",
    "use_artifacts",
    "use_fast_paths",
    "use_precision",
]
