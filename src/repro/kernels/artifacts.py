"""Cross-request artifact cache for expensive derived kernels inputs.

A busy ``repro serve`` / ``repro fleet`` deployment rebuilds the same
derived artifacts on every request over a given design: the canonical
PCA thickness model (one dense ``eigh`` of the grid covariance), the
BLOD characterisation (per-block quadratic forms, plus their lazy
``_v_eigensystem`` eigendecompositions), and the batched hybrid lookup
tables.  None of those depend on the request's times or ppm target —
only on the design, the analysis configuration and the code version —
so they are perfect content-addressed cache entries.

:class:`ArtifactCache` is a thin :class:`~repro.exec.cache.ResultCache`
subclass: same two-level ``.npz`` layout, atomic tempfile+rename writes,
and corruption→recompute contract, but with its own metric namespace
(``kernels.artifacts.{hit,miss,store,corrupt}`` plus the tiered
``kernels.artifacts.{local,shared}.*`` families) and its own root
(``$REPRO_ARTIFACT_CACHE_DIR``, default ``<result root>/artifacts``) so
``repro cache clear --artifacts`` can purge it without touching result
entries.  Keys go through :func:`~repro.exec.cache.fingerprint`, which
folds the cache schema and the library version in — upgrading the code
invalidates every stale artifact without a migration step.

The cache is **on by default** (it only ever stores values that are
bit-exact reconstructions of what the compute path returns — see the
round-trip tests in ``tests/kernels/test_artifacts.py``); set
``REPRO_ARTIFACTS=off`` to disable it, e.g. when benchmarking the cold
path.
"""

from __future__ import annotations

import os
import threading
from collections.abc import Callable, Iterator
from contextlib import contextmanager
from pathlib import Path
from typing import Any

import numpy as np

from repro.exec.cache import (
    ResultCache,
    default_cache_dir,
    default_shared_cache_dir,
    fingerprint,
)
from repro.obs.logging import get_logger

__all__ = [
    "ArtifactCache",
    "artifact_key",
    "artifacts_enabled",
    "default_artifact_cache_dir",
    "get_artifact_cache",
    "load_artifact",
    "memoize_artifact",
    "set_artifacts_enabled",
    "store_artifact",
    "use_artifacts",
]

logger = get_logger("kernels.artifacts")

_DISABLE_VALUES = frozenset({"off", "0", "false", "no"})

_lock = threading.Lock()
_enabled: bool = (
    os.environ.get("REPRO_ARTIFACTS", "on").strip().lower()
    not in _DISABLE_VALUES
)

#: Untiered counter family (mirrors ``exec.cache.*`` for results).
_ARTIFACT_COUNTERS = {
    "hit": "kernels.artifacts.hit",
    "miss": "kernels.artifacts.miss",
    "corrupt": "kernels.artifacts.corrupt",
    "store": "kernels.artifacts.store",
}

#: Tiered counter families (RPL008: dynamic parts route through a
#: literal dict, keeping the metric namespace enumerable).
_ARTIFACT_TIER_COUNTERS = {
    "local": {
        "hit": "kernels.artifacts.local.hit",
        "miss": "kernels.artifacts.local.miss",
        "corrupt": "kernels.artifacts.local.corrupt",
        "store": "kernels.artifacts.local.store",
    },
    "shared": {
        "hit": "kernels.artifacts.shared.hit",
        "miss": "kernels.artifacts.shared.miss",
        "corrupt": "kernels.artifacts.shared.corrupt",
        "store": "kernels.artifacts.shared.store",
    },
}


def default_artifact_cache_dir() -> Path:
    """``$REPRO_ARTIFACT_CACHE_DIR`` when set, else ``<result root>/artifacts``.

    Nested under the result-cache root so one ``rm -rf`` clears
    everything, while keeping the artifact entries out of the result
    tiers' two-level entry globs.
    """
    env = os.environ.get("REPRO_ARTIFACT_CACHE_DIR", "").strip()
    if env:
        return Path(env).expanduser()
    return default_cache_dir() / "artifacts"


def _default_shared_artifact_dir() -> Path:
    return default_shared_cache_dir() / "artifacts"


class ArtifactCache(ResultCache):
    """Content-addressed store for derived kernel artifacts.

    Entry semantics are inherited from :class:`ResultCache`; only the
    metric names and the default roots differ.
    """

    _base_counters = _ARTIFACT_COUNTERS
    _tier_counters = _ARTIFACT_TIER_COUNTERS
    _lookup_metric = "kernels.artifacts.lookup_seconds"

    @classmethod
    def _default_root(cls, tier: str) -> Path:
        if tier == "shared":
            return _default_shared_artifact_dir()
        return default_artifact_cache_dir()


def artifacts_enabled() -> bool:
    """True when artifact memoization is active."""
    return _enabled


def set_artifacts_enabled(enabled: bool) -> None:
    """Globally enable or disable artifact memoization."""
    global _enabled
    with _lock:
        _enabled = bool(enabled)


@contextmanager
def use_artifacts(enabled: bool) -> Iterator[None]:
    """Temporarily force artifact memoization on or off (tests, benches)."""
    previous = _enabled
    set_artifacts_enabled(enabled)
    try:
        yield
    finally:
        set_artifacts_enabled(previous)


def get_artifact_cache() -> ArtifactCache | None:
    """The process's local-tier artifact cache, or ``None`` when disabled.

    Constructed per call (cheap: a path + dict assignment) so tests and
    long-lived services always see the current
    ``$REPRO_ARTIFACT_CACHE_DIR``.
    """
    if not _enabled:
        return None
    return ArtifactCache()


def artifact_key(kind: str, payload: Any) -> str:
    """A stable fingerprint for one artifact of the given ``kind``.

    ``payload`` must contain everything that determines the artifact's
    value (design geometry, configuration knobs, input arrays); the
    code version and cache schema are folded in by ``fingerprint``.
    """
    return fingerprint(
        {"kind": "kernels.artifact", "artifact": kind, "payload": payload}
    )


def load_artifact(
    kind: str, payload: Any
) -> dict[str, np.ndarray] | None:
    """Cached arrays for the artifact, or ``None`` (miss/corrupt/disabled)."""
    cache = get_artifact_cache()
    if cache is None:
        return None
    return cache.get(artifact_key(kind, payload))


def store_artifact(
    kind: str,
    payload: Any,
    arrays: dict[str, np.ndarray],
    meta: dict[str, Any] | None = None,
) -> None:
    """Best-effort store: I/O failures are logged, never raised."""
    cache = get_artifact_cache()
    if cache is None:
        return
    try:
        cache.put(
            artifact_key(kind, payload),
            arrays,
            meta={"artifact": kind, **(meta or {})},
        )
    except OSError as exc:
        logger.warning("cannot store %s artifact: %s", kind, exc)


def memoize_artifact(
    kind: str,
    payload: Any,
    compute: Callable[[], dict[str, np.ndarray]],
    required: tuple[str, ...] = (),
) -> dict[str, np.ndarray]:
    """Return the cached arrays for ``(kind, payload)`` or compute+store.

    The contract callers rely on: the returned dict is bit-identical
    whether it came from ``compute()`` or from disk (``.npz`` round-trips
    arrays exactly), so enabling the cache can never change results.
    ``required`` names that are missing from a stored entry demote it to
    a recompute-and-overwrite, so truncated entries can never surface.
    """
    cache = get_artifact_cache()
    if cache is None:
        return compute()
    key = artifact_key(kind, payload)
    cached = cache.get(key)
    if cached is not None and all(name in cached for name in required):
        return cached
    arrays = compute()
    try:
        cache.put(key, arrays, meta={"artifact": kind})
    except OSError as exc:
        logger.warning("cannot store %s artifact: %s", kind, exc)
    return arrays
