"""Kernel fast-path benchmark harness.

Times every fast path of :mod:`repro.kernels` against the reference
implementation it replaces — the same code paths the equivalence tests
compare numerically — plus one end-to-end serial analyzer run (workload
power-thermal fixed point, analyzer preparation, st_fast lifetime and
reliability curve, Imhof reference check).

Used two ways:

- ``repro bench kernels`` (CLI) runs :func:`run_kernel_benchmarks` and
  writes ``BENCH_kernels.json``;
- ``benchmarks/test_kernels.py`` wraps the same entry points in the
  pytest benchmark harness and enforces the speedup/regression gates.

All timings are best-of-``repeats`` wall clock.  Results are reported as
raw seconds plus the dimensionless fast-vs-reference speedup; the CI
regression gate compares *speedups* (machine-portable), never absolute
times.
"""

from __future__ import annotations

import json
import os
import shutil
import tempfile
import time
from collections.abc import Callable
from contextlib import contextmanager
from pathlib import Path
from typing import Any

import numpy as np

from repro.chip.benchmarks import make_benchmark
from repro.chip.geometry import GridSpec
from repro.core.analyzer import AnalysisConfig, ReliabilityAnalyzer
from repro.core.ensemble import (
    BlockReliability,
    StFastAnalyzer,
    StMcAnalyzer,
    sweep_reliabilities,
)
from repro.errors import NumericalError
from repro.core.hybrid import HybridAnalyzer
from repro.kernels.artifacts import use_artifacts
from repro.kernels.config import use_fast_paths
from repro.power.activity import ActivityProfile
from repro.power.loop import solve_power_thermal
from repro.thermal.factor_cache import clear_factor_cache, factor_cache_stats
from repro.thermal.grid import PackageModel
from repro.thermal.hotspot import HotSpotLite
from repro.thermal.solver import (
    _build_conductance_matrix,
    _build_conductance_matrix_reference,
)

__all__ = [
    "DEFAULT_BENCH_PATH",
    "format_kernel_report",
    "run_kernel_benchmarks",
    "write_bench_json",
]

#: Committed baseline location (repo root).
DEFAULT_BENCH_PATH = "BENCH_kernels.json"

#: Workload knobs per scale; "quick" keeps the whole suite under ~2 min.
_SCALES: dict[str, dict[str, Any]] = {
    "quick": {
        "design": "C2",
        "mesh": 64,
        "conductance_mesh": 96,
        "repeats": 3,
        "curve_points": 100,
        "st_mc_samples": 4000,
        "hybrid_table": 60,
        "imhof_points": 16,
    },
    "full": {
        "design": "C3",
        "mesh": 96,
        "conductance_mesh": 192,
        "repeats": 5,
        "curve_points": 200,
        "st_mc_samples": 20000,
        "hybrid_table": 100,
        "imhof_points": 32,
    },
}


def _best_of(fn: Callable[[], Any], repeats: int) -> float:
    """Best-of-``repeats`` wall time of ``fn`` in seconds."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _entry(reference_s: float, fast_s: float, **extra: Any) -> dict[str, Any]:
    speedup = reference_s / fast_s if fast_s > 0.0 else float("inf")
    return {
        "reference_s": round(reference_s, 6),
        "fast_s": round(fast_s, 6),
        "speedup": round(speedup, 3),
        **extra,
    }


def _bench_conductance(mesh: int, repeats: int) -> dict[str, Any]:
    """Conductance-matrix assembly: per-cell loop vs index arithmetic."""
    grid = GridSpec(nx=mesh, ny=mesh, width=0.016, height=0.016)
    package = PackageModel()
    ref = _best_of(
        lambda: _build_conductance_matrix_reference(grid, package), repeats
    )
    fast = _best_of(lambda: _build_conductance_matrix(grid, package), repeats)
    return _entry(ref, fast, cells=grid.n_cells)


def _bench_power_thermal(
    design: str, mesh: int, repeats: int
) -> dict[str, Any]:
    """The leakage-temperature fixed point with/without the factor cache."""
    floorplan = make_benchmark(design)
    thermal_model = HotSpotLite(mesh_resolution=mesh)
    profiles = [
        ActivityProfile.preset(name, floorplan)
        for name in ("typical", "int_heavy", "memory_bound")
    ]

    def sweep() -> None:
        for profile in profiles:
            solve_power_thermal(
                floorplan, profile, thermal_model=thermal_model
            )

    with use_fast_paths(False):
        ref = _best_of(sweep, repeats)
    clear_factor_cache()
    with use_fast_paths(True):
        fast = _best_of(sweep, repeats)
    stats = factor_cache_stats()
    return _entry(
        ref,
        fast,
        profiles=len(profiles),
        cache_hits=stats["hits"],
        cache_misses=stats["misses"],
    )


def _bench_ensemble(
    analyzer: ReliabilityAnalyzer,
    times: np.ndarray,
    st_mc_samples: int,
    repeats: int,
) -> dict[str, dict[str, Any]]:
    """Batched vs per-block-loop ensemble failure probabilities."""
    st_fast = StFastAnalyzer(analyzer.blocks, l0=analyzer.config.l0)
    with use_fast_paths(False):
        ref = _best_of(
            lambda: st_fast.block_failure_probabilities(times), repeats
        )
    with use_fast_paths(True):
        fast = _best_of(
            lambda: st_fast.block_failure_probabilities(times), repeats
        )
    out = {
        "st_fast_curve": _entry(
            ref, fast, blocks=len(analyzer.blocks), times=int(times.size)
        )
    }

    st_mc = StMcAnalyzer(analyzer.blocks, n_samples=st_mc_samples, seed=0)
    with use_fast_paths(False):
        ref = _best_of(
            lambda: st_mc.block_failure_probabilities(times), repeats
        )
    with use_fast_paths(True):
        fast = _best_of(
            lambda: st_mc.block_failure_probabilities(times), repeats
        )
    out["st_mc_curve"] = _entry(
        ref, fast, samples=st_mc_samples, times=int(times.size)
    )
    return out


def _bench_hybrid(
    analyzer: ReliabilityAnalyzer,
    times: np.ndarray,
    table: int,
    repeats: int,
) -> dict[str, dict[str, Any]]:
    """Shared-scaled-grid table build and batched query interpolation."""

    def build() -> HybridAnalyzer:
        return HybridAnalyzer(
            analyzer.blocks, n_alpha=table, n_b=table, l0=analyzer.config.l0
        )

    # Artifacts off: this entry isolates the fused table-build kernel;
    # the artifact warm path has its own benchmark (artifact_warm_rerun).
    with use_artifacts(False):
        with use_fast_paths(False):
            ref_build = _best_of(build, repeats)
        with use_fast_paths(True):
            fast_build = _best_of(build, repeats)
            hybrid = build()
    query_times = times[times < 0.3 * min(b.alpha for b in analyzer.blocks)]
    with use_fast_paths(False):
        ref_query = _best_of(
            lambda: hybrid.block_failure_probabilities(query_times), repeats
        )
    with use_fast_paths(True):
        fast_query = _best_of(
            lambda: hybrid.block_failure_probabilities(query_times), repeats
        )
    return {
        "hybrid_build": _entry(
            ref_build, fast_build, blocks=len(analyzer.blocks), table=table
        ),
        "hybrid_query": _entry(
            ref_query, fast_query, times=int(query_times.size)
        ),
    }


def _bench_batch_fusion(
    analyzer: ReliabilityAnalyzer, repeats: int
) -> dict[str, Any]:
    """Fused temperature-axis sweep vs per-analyzer kernel dispatch.

    Models the ``repro batch`` bracketing ladder: many same-design
    ensembles (here Weibull rescalings standing in for temperatures,
    sharing the per-block quadrature tables) each probed at a handful of
    times.  Both sides run the fast kernels; the entry isolates the
    dispatch-fusion win of :func:`repro.core.ensemble.sweep_reliabilities`
    over one kernel call per ensemble.
    """
    factors = np.linspace(0.8, 1.6, 16, dtype=np.float64)
    subs = [
        StFastAnalyzer(
            [
                BlockReliability(
                    blod=block.blod,
                    alpha=block.alpha * float(factor),
                    b=block.b,
                )
                for block in analyzer.blocks
            ],
            l0=analyzer.config.l0,
        )
        for factor in factors
    ]
    alpha_min = min(block.alpha for block in analyzer.blocks)
    # A couple of probe times per ensemble, like the bracketing ladder:
    # short time axes keep the workload dispatch-bound, which is the
    # regime fusion targets (long curves amortise dispatch on their own).
    times = np.geomspace(0.05 * alpha_min, 0.5 * alpha_min, 2)
    times_list = [times] * len(subs)

    def fused() -> None:
        if sweep_reliabilities(subs, times_list) is None:
            raise NumericalError("fused sweep unexpectedly declined")

    def per_analyzer() -> None:
        for sub in subs:
            sub.reliability(times)

    with use_fast_paths(True):
        per_analyzer()  # prime the lazily built rule tables
        ref = _best_of(per_analyzer, repeats)
        fast = _best_of(fused, repeats)
    return _entry(
        ref, fast, profiles=len(subs), times=int(times.size)
    )


@contextmanager
def _artifact_dir(path: str | Path) -> Any:
    """Point the artifact cache at ``path`` for the duration."""
    previous = os.environ.get("REPRO_ARTIFACT_CACHE_DIR")
    os.environ["REPRO_ARTIFACT_CACHE_DIR"] = str(path)
    try:
        yield
    finally:
        if previous is None:
            os.environ.pop("REPRO_ARTIFACT_CACHE_DIR", None)
        else:
            os.environ["REPRO_ARTIFACT_CACHE_DIR"] = previous


def _clear_dir(path: str | Path) -> None:
    root = Path(path)
    for child in root.iterdir():
        if child.is_dir():
            shutil.rmtree(child)
        else:
            child.unlink()


def _bench_artifacts(design: str, repeats: int) -> dict[str, Any]:
    """Analyzer preparation from a cold vs a warm artifact cache.

    ``reference`` is the cold build (empty artifact directory, so the
    timing includes the store overhead); ``fast`` is the identical build
    served from the warm cache — the cross-request path of a service
    worker or a repeated CLI invocation.
    """
    floorplan = make_benchmark(design)

    def build() -> ReliabilityAnalyzer:
        return ReliabilityAnalyzer(
            floorplan, config=AnalysisConfig(exec_backend="serial")
        )

    with tempfile.TemporaryDirectory() as tmp:
        with _artifact_dir(tmp), use_fast_paths(True):
            cold = float("inf")
            for _ in range(repeats):
                _clear_dir(tmp)
                start = time.perf_counter()
                build()
                cold = min(cold, time.perf_counter() - start)
            build()  # ensure the cache is warm before timing hits
            warm = _best_of(build, repeats)
    return _entry(cold, warm, design=design, blocks=floorplan.n_blocks)


def _widest_form(analyzer: ReliabilityAnalyzer):
    """The quadratic form of the BLOD spanning the most grid cells."""
    spans = [a.grid_indices.size for a in analyzer.sampler.assignments]
    return analyzer.blods[int(np.argmax(spans))].v_quadratic_form()


def _bench_imhof(
    analyzer: ReliabilityAnalyzer, n_points: int, repeats: int
) -> dict[str, Any]:
    """Batched composite-rule Imhof inversion vs per-point adaptive quad."""
    form = _widest_form(analyzer)
    match = form.chi2_match()
    xs = np.asarray(match.ppf(np.linspace(0.05, 0.98, n_points, dtype=np.float64)))
    with use_fast_paths(False):
        ref = _best_of(lambda: form.imhof_sf(xs), 1)
    with use_fast_paths(True):
        form.imhof_sf(xs)  # build + cache the node tables once
        fast = _best_of(lambda: form.imhof_sf(xs), repeats)
    return _entry(ref, fast, points=n_points)


def _bench_end_to_end(
    design: str,
    mesh: int,
    curve_points: int,
    imhof_points: int,
) -> tuple[dict[str, Any], dict[str, Any]]:
    """One full serial analyzer run, reference vs fast paths.

    Workload power-thermal fixed points over three activity modes (the
    multi-mode sweep of a reliability-management study, where the
    factorization cache is reused across modes), analyzer preparation at
    the typical-mode temperatures, st_fast 10-ppm lifetime, a reliability
    curve, and a small Imhof reference check — the serial flow a designer
    runs per design point.

    Returns two entries: the cold run (empty artifact cache, so the
    fast timing pays the artifact *store* overhead — comparable to the
    pre-artifact baselines) and the warm rerun of the same scenario,
    where analyzer preparation is served from the artifact cache.
    """

    def run() -> dict[str, Any]:
        floorplan = make_benchmark(design)
        thermal_model = HotSpotLite(mesh_resolution=mesh)
        iterations = 0
        for mode in ("int_heavy", "memory_bound", "typical"):
            profile = ActivityProfile.preset(mode, floorplan)
            solution = solve_power_thermal(
                floorplan, profile, thermal_model=thermal_model
            )
            iterations += solution.iterations
        analyzer = ReliabilityAnalyzer(
            solution.floorplan,
            config=AnalysisConfig(exec_backend="serial"),
            block_temperatures=solution.block_temperatures,
        )
        center = analyzer.lifetime(10.0, method="st_fast")
        times = np.geomspace(center / 100.0, 2.0 * center, curve_points)
        analyzer.reliability(times, method="st_fast")
        form = _widest_form(analyzer)
        xs = np.asarray(
            form.chi2_match().ppf(
                np.linspace(0.1, 0.95, imhof_points, dtype=np.float64)
            )
        )
        form.imhof_sf(xs)
        return {"iterations": iterations}

    with tempfile.TemporaryDirectory() as tmp:
        with _artifact_dir(tmp):
            with use_fast_paths(False):
                start = time.perf_counter()
                info = run()
                ref = time.perf_counter() - start
            _clear_dir(tmp)
            clear_factor_cache()
            with use_fast_paths(True):
                start = time.perf_counter()
                info = run()
                fast = time.perf_counter() - start
                stats = factor_cache_stats()
                start = time.perf_counter()
                run()
                warm = time.perf_counter() - start
    cold_entry = _entry(
        ref,
        fast,
        power_loop_iterations=info["iterations"],
        cache_hits=stats["hits"],
        cache_misses=stats["misses"],
    )
    warm_entry = _entry(
        ref, warm, power_loop_iterations=info["iterations"]
    )
    return cold_entry, warm_entry


def run_kernel_benchmarks(scale: str = "quick") -> dict[str, Any]:
    """Run every kernel benchmark at the given scale; returns the report.

    The report is JSON-serialisable and shaped for ``BENCH_kernels.json``:
    ``{"schema": 1, "scale": ..., "micro": {...}, "end_to_end": {...}}``.
    """
    from repro.errors import ConfigurationError

    if scale not in _SCALES:
        raise ConfigurationError(
            f"unknown benchmark scale {scale!r}; expected one of "
            f"{sorted(_SCALES)}"
        )
    knobs = _SCALES[scale]
    repeats = knobs["repeats"]

    analyzer = ReliabilityAnalyzer(
        make_benchmark(knobs["design"]),
        config=AnalysisConfig(exec_backend="serial"),
    )
    alpha_min = min(b.alpha for b in analyzer.blocks)
    times = np.concatenate(
        [
            [0.0],
            np.geomspace(
                1e-3 * alpha_min, 0.8 * alpha_min, knobs["curve_points"] - 1
            ),
        ]
    )

    micro: dict[str, Any] = {}
    micro["conductance_build"] = _bench_conductance(
        knobs["conductance_mesh"], repeats
    )
    micro["power_thermal_sweep"] = _bench_power_thermal(
        knobs["design"], knobs["mesh"], repeats
    )
    micro.update(
        _bench_ensemble(analyzer, times, knobs["st_mc_samples"], repeats)
    )
    micro.update(_bench_hybrid(analyzer, times, knobs["hybrid_table"], repeats))
    micro["imhof_batch"] = _bench_imhof(
        analyzer, knobs["imhof_points"], repeats
    )
    micro["batch_fusion"] = _bench_batch_fusion(analyzer, repeats)
    micro["artifact_warm_build"] = _bench_artifacts(knobs["design"], repeats)
    end_to_end, end_to_end_warm = _bench_end_to_end(
        knobs["design"],
        knobs["mesh"],
        knobs["curve_points"],
        max(knobs["imhof_points"] // 2, 4),
    )
    return {
        "schema": 1,
        "scale": scale,
        "design": knobs["design"],
        "micro": micro,
        "end_to_end": end_to_end,
        "end_to_end_warm": end_to_end_warm,
    }


def write_bench_json(
    results: dict[str, Any], path: str | Path = DEFAULT_BENCH_PATH
) -> Path:
    """Persist a benchmark report as pretty-printed JSON."""
    target = Path(path)
    target.write_text(json.dumps(results, indent=2, sort_keys=True) + "\n")
    return target


def format_kernel_report(results: dict[str, Any]) -> str:
    """Human-readable table of a :func:`run_kernel_benchmarks` report."""
    lines = [
        f"kernel benchmarks (scale={results['scale']}, "
        f"design={results['design']})",
        "",
        f"{'benchmark':<22} {'reference':>12} {'fast':>12} {'speedup':>9}",
        "-" * 58,
    ]
    entries = dict(results["micro"])
    entries["end_to_end"] = results["end_to_end"]
    if "end_to_end_warm" in results:
        entries["end_to_end_warm"] = results["end_to_end_warm"]
    for name, entry in entries.items():
        lines.append(
            f"{name:<22} {entry['reference_s']:>10.4f}s "
            f"{entry['fast_s']:>10.4f}s {entry['speedup']:>8.2f}x"
        )
    e2e = results["end_to_end"]
    lines += [
        "",
        f"factor cache (end-to-end): {e2e['cache_hits']} hits / "
        f"{e2e['cache_misses']} misses over "
        f"{e2e['power_loop_iterations']} power-loop iterations",
    ]
    return "\n".join(lines)
