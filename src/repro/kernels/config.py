"""Fast-path switch for the numerical kernel layer.

Every optimised kernel (cached thermal factorization, batched ensemble
quadrature, vectorised Imhof inversion) is guarded by one module-level
switch so that

- the *reference* implementations stay first-class: equivalence tests and
  the kernel benchmarks run both paths in one process and compare them;
- an escape hatch exists for debugging: ``REPRO_KERNELS=off`` (or ``0`` /
  ``false``) in the environment restores the pre-fast-path behaviour
  everywhere.

The switch is read once per call site through :func:`fast_paths_enabled`
(a single module-attribute load, mirroring the ``repro.obs`` design), and
:func:`use_fast_paths` flips it temporarily for tests/benchmarks.

Precision tier
--------------
The same module owns the **precision tier**: ``"float64"`` (the default,
bit-exact reference arithmetic) or ``"fast32"`` (the fused survival
tensors and the array-Imhof kernel run their inner loops in float32 and
cast back at the boundary — roughly half the memory traffic for
interactive/optimizer traffic that tolerates ~1e-5 relative error; see
``docs/performance.md`` for the measured bounds).  The tier is selected
with ``REPRO_PRECISION`` in the environment, ``--precision`` on the CLI,
or the ``precision`` job-payload field, and read per call site through
:func:`precision`.  ``fast32`` only changes kernels that document it;
reference implementations always stay float64.
"""

from __future__ import annotations

import os
import threading
from collections.abc import Iterator
from contextlib import contextmanager

from repro.errors import ConfigurationError

__all__ = [
    "PRECISIONS",
    "fast_paths_enabled",
    "precision",
    "set_fast_paths",
    "set_precision",
    "use_fast_paths",
    "use_precision",
]

_DISABLE_VALUES = frozenset({"off", "0", "false", "no"})

#: Supported precision tiers, default first.
PRECISIONS = ("float64", "fast32")

_lock = threading.Lock()
_enabled: bool = (
    os.environ.get("REPRO_KERNELS", "on").strip().lower() not in _DISABLE_VALUES
)


def _precision_from_env() -> str:
    raw = os.environ.get("REPRO_PRECISION", "float64").strip().lower()
    return raw if raw in PRECISIONS else "float64"


_precision: str = _precision_from_env()


def precision() -> str:
    """The active precision tier (``"float64"`` or ``"fast32"``)."""
    return _precision


def set_precision(tier: str) -> None:
    """Globally select the precision tier.

    Raises :class:`~repro.errors.ConfigurationError` for unknown tiers so
    a typo'd tier surfaced through the CLI/service layers fails loudly
    rather than silently running full precision.
    """
    if tier not in PRECISIONS:
        raise ConfigurationError(
            f"unknown precision tier {tier!r}; expected one of {PRECISIONS}"
        )
    global _precision
    with _lock:
        _precision = tier


@contextmanager
def use_precision(tier: str) -> Iterator[None]:
    """Temporarily select a precision tier (tests, job execution)."""
    previous = _precision
    set_precision(tier)
    try:
        yield
    finally:
        set_precision(previous)


def fast_paths_enabled() -> bool:
    """True when the optimised kernel implementations are active."""
    return _enabled


def set_fast_paths(enabled: bool) -> None:
    """Globally enable or disable the fast paths."""
    global _enabled
    with _lock:
        _enabled = bool(enabled)


@contextmanager
def use_fast_paths(enabled: bool) -> Iterator[None]:
    """Temporarily force the fast paths on or off (tests, benchmarks)."""
    previous = _enabled
    set_fast_paths(enabled)
    try:
        yield
    finally:
        set_fast_paths(previous)
