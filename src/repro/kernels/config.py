"""Fast-path switch for the numerical kernel layer.

Every optimised kernel (cached thermal factorization, batched ensemble
quadrature, vectorised Imhof inversion) is guarded by one module-level
switch so that

- the *reference* implementations stay first-class: equivalence tests and
  the kernel benchmarks run both paths in one process and compare them;
- an escape hatch exists for debugging: ``REPRO_KERNELS=off`` (or ``0`` /
  ``false``) in the environment restores the pre-fast-path behaviour
  everywhere.

The switch is read once per call site through :func:`fast_paths_enabled`
(a single module-attribute load, mirroring the ``repro.obs`` design), and
:func:`use_fast_paths` flips it temporarily for tests/benchmarks.
"""

from __future__ import annotations

import os
import threading
from collections.abc import Iterator
from contextlib import contextmanager

__all__ = ["fast_paths_enabled", "set_fast_paths", "use_fast_paths"]

_DISABLE_VALUES = frozenset({"off", "0", "false", "no"})

_lock = threading.Lock()
_enabled: bool = (
    os.environ.get("REPRO_KERNELS", "on").strip().lower() not in _DISABLE_VALUES
)


def fast_paths_enabled() -> bool:
    """True when the optimised kernel implementations are active."""
    return _enabled


def set_fast_paths(enabled: bool) -> None:
    """Globally enable or disable the fast paths."""
    global _enabled
    with _lock:
        _enabled = bool(enabled)


@contextmanager
def use_fast_paths(enabled: bool) -> Iterator[None]:
    """Temporarily force the fast paths on or off (tests, benchmarks)."""
    previous = _enabled
    set_fast_paths(enabled)
    try:
        yield
    finally:
        set_fast_paths(previous)
