"""Batched survival-integral kernels for the ensemble analyzers.

The eq. (28) ensemble reliability is a sum of per-block double integrals
of the conditional survival ``exp(-A_j g(u, v))``.  The reference
implementations in :mod:`repro.core.ensemble` evaluate one block at a
time; the kernels here fuse the per-block Python loops into single
broadcast evaluations over a ``(block, time, node)`` tensor:

- :func:`batched_rule_expectations` — all blocks x times against
  per-block quadrature node/weight tables (st_fast, and the histogram
  mid-point grids of st_mc),
- :func:`batched_sample_expectations` — all blocks x times against a
  shared Monte-Carlo sample cloud (the st_mc ``samples`` estimator).

Both reproduce the reference results to floating-point round-off (the
operations are the same multiplies/exponentials, evaluated in one fused
pass); equivalence is enforced by ``tests/core/test_kernels_equivalence``.

Blocks may carry different node counts (a degenerate BLOD variance
collapses to a single point-mass node); tables are padded to the widest
block with zero-weight nodes, which drop out of the weighted sums
exactly.
"""

from __future__ import annotations

import numpy as np

from repro.core.closed_form import _EXP_MAX, _EXP_MIN
from repro.errors import ConfigurationError
from repro.obs import metrics

__all__ = [
    "batched_rule_expectations",
    "batched_sample_expectations",
    "pad_rule_tables",
]

#: Soft cap on the scratch-tensor size of one fused evaluation; larger
#: workloads are processed in time-axis chunks of at most this many
#: elements.  Deliberately sized to a few MB of scratch — keeping the
#: working set inside the CPU caches measures ~4x faster than one huge
#: fused tensor, besides bounding peak memory.
_MAX_CHUNK_ELEMENTS = 250_000

#: Largest per-factor exponent magnitude for which the separable
#: evaluation ``exp(s u) * exp(0.5 s^2 v)`` is used.  Within this bound
#: neither factor saturates (|exponent| < 709), so the product equals the
#: reference ``exp(s u + 0.5 s^2 v)`` to round-off while computing
#: O(P + Q) transcendentals per time step instead of O(P * Q).  Beyond it
#: (absurd times, ~e^300 alphas away) the log-sum path preserves the
#: reference clipping semantics exactly.
_FACTOR_SAFE_EXP = 700.0


def pad_rule_tables(
    points: list[np.ndarray], weights: list[np.ndarray]
) -> tuple[np.ndarray, np.ndarray]:
    """Stack per-block 1-D node/weight arrays into padded 2-D tables.

    Shorter rows are padded by repeating the last node with weight zero:
    padded nodes contribute ``weight * survival = 0`` to every weighted
    sum, so the padded evaluation is exactly the unpadded one.
    """
    if len(points) != len(weights) or not points:
        raise ConfigurationError("need matching, non-empty point/weight lists")
    width = max(p.size for p in points)
    n = len(points)
    out_points = np.empty((n, width))
    out_weights = np.zeros((n, width))
    for j, (p, w) in enumerate(zip(points, weights, strict=True)):
        out_points[j, : p.size] = p
        out_points[j, p.size :] = p[-1]
        out_weights[j, : w.size] = w
    return out_points, out_weights


def _expectation_chunk(
    scaled: np.ndarray,
    finite: np.ndarray,
    log_areas: np.ndarray,
    u_points: np.ndarray,
    u_weights: np.ndarray,
    v_points: np.ndarray,
    v_weights: np.ndarray,
) -> np.ndarray:
    """One fused ``(J, T, P, Q)`` tensor-rule evaluation -> ``(J, T)``."""
    scaled_safe = np.where(finite, scaled, 0.0)
    max_scale = float(np.max(np.abs(scaled_safe), initial=0.0))
    max_u = float(np.max(np.abs(u_points), initial=0.0))
    max_v = float(np.max(np.abs(v_points), initial=0.0))
    if (
        max_scale * max_u <= _FACTOR_SAFE_EXP
        and 0.5 * max_scale**2 * max_v <= _FACTOR_SAFE_EXP
    ):
        # Separable evaluation: exp(log_a + s u + 0.5 s^2 v) factors into
        # an outer product over the (u, v) nodes, cutting the dominant
        # exp() count from 2 J T P Q to J T (P + Q) + J T P Q.  Product
        # over/underflow saturates survival at exactly 0/1, matching the
        # reference clip.
        with np.errstate(over="ignore"):
            area = np.exp(np.clip(log_areas, _EXP_MIN, _EXP_MAX))
            e_u = np.exp(scaled_safe[:, :, None] * u_points[:, None, :])
            e_v = np.exp(
                0.5 * scaled_safe[:, :, None] ** 2 * v_points[:, None, :]
            )
            survival = np.exp(
                -(
                    area[:, None, None, None]
                    * e_u[:, :, :, None]
                    * e_v[:, :, None, :]
                )
            )
    else:
        log_g = (
            scaled_safe[:, :, None, None] * u_points[:, None, :, None]
            + 0.5
            * scaled_safe[:, :, None, None] ** 2
            * v_points[:, None, None, :]
        )
        exponent = np.clip(
            log_areas[:, None, None, None] + log_g, _EXP_MIN, _EXP_MAX
        )
        survival = np.exp(-np.exp(exponent))
    expectation = np.einsum("jtpq,jp,jq->jt", survival, u_weights, v_weights)
    # t = 0 (log ratio -inf) survives with probability exactly 1.
    return np.where(finite, expectation, 1.0)


def batched_rule_expectations(
    log_t_ratios: np.ndarray,
    log_areas: np.ndarray,
    u_points: np.ndarray,
    u_weights: np.ndarray,
    v_points: np.ndarray,
    v_weights: np.ndarray,
) -> np.ndarray:
    """``E[exp(-A_j g(u_j, v_j))]`` for all blocks and times at once.

    Parameters
    ----------
    log_t_ratios:
        ``(n_blocks, n_times)`` per-block ``b_j * ln(t / alpha_j)``
        already scaled by the Weibull slope (entries of ``-inf`` mark
        ``t = 0`` and map to survival 1).
    log_areas:
        ``(n_blocks,)`` per-block ``ln(A_j)``.
    u_points, u_weights, v_points, v_weights:
        ``(n_blocks, n_nodes)`` padded quadrature tables (see
        :func:`pad_rule_tables`).

    Returns the ``(n_blocks, n_times)`` expectation matrix.
    """
    n_blocks, n_times = log_t_ratios.shape
    finite = np.isfinite(log_t_ratios)
    per_time = max(n_blocks * u_points.shape[1] * v_points.shape[1], 1)
    chunk = max(_MAX_CHUNK_ELEMENTS // per_time, 1)
    metrics.inc(
        "kernels.rule_nodes",
        n_blocks * n_times * u_points.shape[1] * v_points.shape[1],
    )
    if n_times <= chunk:
        return _expectation_chunk(
            log_t_ratios, finite, log_areas,
            u_points, u_weights, v_points, v_weights,
        )
    out = np.empty((n_blocks, n_times))
    for start in range(0, n_times, chunk):
        stop = min(start + chunk, n_times)
        out[:, start:stop] = _expectation_chunk(
            log_t_ratios[:, start:stop],
            finite[:, start:stop],
            log_areas,
            u_points, u_weights, v_points, v_weights,
        )
    return out


def batched_sample_expectations(
    log_t_ratios: np.ndarray,
    log_areas: np.ndarray,
    u_samples: np.ndarray,
    v_samples: np.ndarray,
) -> np.ndarray:
    """Sample-average block expectations for all blocks and times at once.

    ``u_samples``/``v_samples`` are ``(n_blocks, n_samples)`` clouds of
    the BLOD moments evaluated on one shared factor draw (the st_mc
    estimator); the result is the ``(n_blocks, n_times)`` mean survival.
    """
    n_blocks, n_times = log_t_ratios.shape
    n_samples = u_samples.shape[1]
    finite = np.isfinite(log_t_ratios)
    per_time = max(n_blocks * n_samples, 1)
    chunk = max(_MAX_CHUNK_ELEMENTS // per_time, 1)
    metrics.inc("kernels.sample_evals", n_blocks * n_times * n_samples)
    out = np.empty((n_blocks, n_times))
    for start in range(0, n_times, chunk):
        stop = min(start + chunk, n_times)
        scaled = np.where(
            finite[:, start:stop], log_t_ratios[:, start:stop], 0.0
        )
        log_g = (
            scaled[:, :, None] * u_samples[:, None, :]
            + 0.5 * scaled[:, :, None] ** 2 * v_samples[:, None, :]
        )
        exponent = np.clip(
            log_areas[:, None, None] + log_g, _EXP_MIN, _EXP_MAX
        )
        survival = np.exp(-np.exp(exponent))
        out[:, start:stop] = np.where(
            finite[:, start:stop], survival.mean(axis=2), 1.0
        )
    return out
