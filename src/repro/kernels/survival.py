"""Batched survival-integral kernels for the ensemble analyzers.

The eq. (28) ensemble reliability is a sum of per-block double integrals
of the conditional survival ``exp(-A_j g(u, v))``.  The reference
implementations in :mod:`repro.core.ensemble` evaluate one block at a
time; the kernels here fuse the per-block Python loops into single
broadcast evaluations over a ``(block, time, node)`` tensor:

- :func:`batched_rule_expectations` — all blocks x times against
  per-block quadrature node/weight tables (st_fast, and the histogram
  mid-point grids of st_mc),
- :func:`batched_sample_expectations` — all blocks x times against a
  shared Monte-Carlo sample cloud (the st_mc ``samples`` estimator).

Both reproduce the reference results to floating-point round-off (the
operations are the same multiplies/exponentials, evaluated in one fused
pass); equivalence is enforced by ``tests/core/test_kernels_equivalence``.

Blocks may carry different node counts (a degenerate BLOD variance
collapses to a single point-mass node); tables are padded to the widest
block with zero-weight nodes, which drop out of the weighted sums
exactly.

Precision tier
--------------
Under ``precision() == "fast32"`` (see :mod:`repro.kernels.config`) the
fused evaluations cast their inputs to float32, run the transcendental
inner loops in float32, and cast back to float64 at the boundary.  The
saturation semantics are preserved naturally: a float32 ``exp`` that
overflows returns ``inf`` so survival saturates at exactly 0, and an
underflowing one returns 0 so survival saturates at exactly 1 — the same
limits the float64 clip produces.  Accuracy against the float64
reference is gated by ``tests/kernels/test_fast32.py`` and the measured
bounds are documented in ``docs/performance.md``.
"""

from __future__ import annotations

import numpy as np

from repro.core.closed_form import _EXP_MAX, _EXP_MIN
from repro.errors import ConfigurationError
from repro.kernels.config import precision
from repro.obs import metrics

__all__ = [
    "batched_rule_expectations",
    "batched_sample_expectations",
    "pad_rule_tables",
    "sweep_rule_expectations",
]

#: Soft cap on the scratch-tensor size of one fused evaluation; larger
#: workloads are processed in time-axis chunks of at most this many
#: elements.  Deliberately sized to a few MB of scratch — keeping the
#: working set inside the CPU caches measures ~4x faster than one huge
#: fused tensor, besides bounding peak memory.
_MAX_CHUNK_ELEMENTS = 250_000

#: Largest per-factor exponent magnitude for which the separable
#: evaluation ``exp(s u) * exp(0.5 s^2 v)`` is used.  Within this bound
#: neither factor saturates (|exponent| < 709), so the product equals the
#: reference ``exp(s u + 0.5 s^2 v)`` to round-off while computing
#: O(P + Q) transcendentals per time step instead of O(P * Q).  Beyond it
#: (absurd times, ~e^300 alphas away) the log-sum path preserves the
#: reference clipping semantics exactly.
_FACTOR_SAFE_EXP = 700.0


def _compute_dtype() -> type[np.floating]:
    """The active inner-loop dtype (float32 only under ``fast32``)."""
    return np.float32 if precision() == "fast32" else np.float64


def pad_rule_tables(
    points: list[np.ndarray], weights: list[np.ndarray]
) -> tuple[np.ndarray, np.ndarray]:
    """Stack per-block 1-D node/weight arrays into padded 2-D tables.

    Shorter rows are padded by repeating the last node with weight zero:
    padded nodes contribute ``weight * survival = 0`` to every weighted
    sum, so the padded evaluation is exactly the unpadded one.
    """
    if len(points) != len(weights) or not points:
        raise ConfigurationError("need matching, non-empty point/weight lists")
    width = max(p.size for p in points)
    n = len(points)
    out_points = np.empty((n, width), dtype=np.float64)
    out_weights = np.zeros((n, width), dtype=np.float64)
    for j, (p, w) in enumerate(zip(points, weights, strict=True)):
        out_points[j, : p.size] = p
        out_points[j, p.size :] = p[-1]
        out_weights[j, : w.size] = w
    return out_points, out_weights


def _expectation_chunk(
    scaled: np.ndarray,
    finite: np.ndarray,
    log_areas: np.ndarray,
    u_points: np.ndarray,
    u_weights: np.ndarray,
    v_points: np.ndarray,
    v_weights: np.ndarray,
) -> np.ndarray:
    """One fused ``(J, T, P, Q)`` tensor-rule evaluation -> ``(J, T)``."""
    scaled_safe = np.where(finite, scaled, 0.0)
    max_scale = float(np.max(np.abs(scaled_safe), initial=0.0))
    max_u = float(np.max(np.abs(u_points), initial=0.0))
    max_v = float(np.max(np.abs(v_points), initial=0.0))
    if (
        max_scale * max_u <= _FACTOR_SAFE_EXP
        and 0.5 * max_scale**2 * max_v <= _FACTOR_SAFE_EXP
    ):
        # Separable evaluation: exp(log_a + s u + 0.5 s^2 v) factors into
        # an outer product over the (u, v) nodes, cutting the dominant
        # exp() count from 2 J T P Q to J T (P + Q) + J T P Q.  Product
        # over/underflow saturates survival at exactly 0/1, matching the
        # reference clip.
        with np.errstate(over="ignore"):
            area = np.exp(np.clip(log_areas, _EXP_MIN, _EXP_MAX))
            e_u = np.exp(scaled_safe[:, :, None] * u_points[:, None, :])
            e_v = np.exp(
                0.5 * scaled_safe[:, :, None] ** 2 * v_points[:, None, :]
            )
            survival = np.exp(
                -(
                    area[:, None, None, None]
                    * e_u[:, :, :, None]
                    * e_v[:, :, None, :]
                )
            )
    else:
        log_g = (
            scaled_safe[:, :, None, None] * u_points[:, None, :, None]
            + 0.5
            * scaled_safe[:, :, None, None] ** 2
            * v_points[:, None, None, :]
        )
        exponent = np.clip(
            log_areas[:, None, None, None] + log_g, _EXP_MIN, _EXP_MAX
        )
        # The float64 clip keeps exp() finite; float32 (fast32 tier) can
        # still overflow to inf here, which saturates survival at the
        # same exact 0 the reference limit reaches.
        with np.errstate(over="ignore"):
            survival = np.exp(-np.exp(exponent))
    expectation = np.einsum("jtpq,jp,jq->jt", survival, u_weights, v_weights)
    # t = 0 (log ratio -inf) survives with probability exactly 1.
    return np.where(finite, expectation, 1.0)


def batched_rule_expectations(
    log_t_ratios: np.ndarray,
    log_areas: np.ndarray,
    u_points: np.ndarray,
    u_weights: np.ndarray,
    v_points: np.ndarray,
    v_weights: np.ndarray,
) -> np.ndarray:
    """``E[exp(-A_j g(u_j, v_j))]`` for all blocks and times at once.

    Parameters
    ----------
    log_t_ratios:
        ``(n_blocks, n_times)`` per-block ``b_j * ln(t / alpha_j)``
        already scaled by the Weibull slope (entries of ``-inf`` mark
        ``t = 0`` and map to survival 1).
    log_areas:
        ``(n_blocks,)`` per-block ``ln(A_j)``.
    u_points, u_weights, v_points, v_weights:
        ``(n_blocks, n_nodes)`` padded quadrature tables (see
        :func:`pad_rule_tables`).

    Returns the ``(n_blocks, n_times)`` expectation matrix (always
    float64; under the ``fast32`` tier the inner loops run in float32
    and the result is upcast at this boundary).
    """
    n_blocks, n_times = log_t_ratios.shape
    finite = np.isfinite(log_t_ratios)
    dtype = _compute_dtype()
    log_t_ratios = log_t_ratios.astype(dtype=dtype, copy=False)
    log_areas = log_areas.astype(dtype=dtype, copy=False)
    u_points = u_points.astype(dtype=dtype, copy=False)
    u_weights = u_weights.astype(dtype=dtype, copy=False)
    v_points = v_points.astype(dtype=dtype, copy=False)
    v_weights = v_weights.astype(dtype=dtype, copy=False)
    per_time = max(n_blocks * u_points.shape[1] * v_points.shape[1], 1)
    chunk = max(_MAX_CHUNK_ELEMENTS // per_time, 1)
    metrics.inc(
        "kernels.rule_nodes",
        n_blocks * n_times * u_points.shape[1] * v_points.shape[1],
    )
    if n_times <= chunk:
        return _expectation_chunk(
            log_t_ratios, finite, log_areas,
            u_points, u_weights, v_points, v_weights,
        ).astype(dtype=np.float64, copy=False)
    out = np.empty((n_blocks, n_times), dtype=np.float64)
    for start in range(0, n_times, chunk):
        stop = min(start + chunk, n_times)
        out[:, start:stop] = _expectation_chunk(
            log_t_ratios[:, start:stop],
            finite[:, start:stop],
            log_areas,
            u_points, u_weights, v_points, v_weights,
        )
    return out


def batched_sample_expectations(
    log_t_ratios: np.ndarray,
    log_areas: np.ndarray,
    u_samples: np.ndarray,
    v_samples: np.ndarray,
) -> np.ndarray:
    """Sample-average block expectations for all blocks and times at once.

    ``u_samples``/``v_samples`` are ``(n_blocks, n_samples)`` clouds of
    the BLOD moments evaluated on one shared factor draw (the st_mc
    estimator); the result is the ``(n_blocks, n_times)`` mean survival.
    """
    n_blocks, n_times = log_t_ratios.shape
    n_samples = u_samples.shape[1]
    finite = np.isfinite(log_t_ratios)
    dtype = _compute_dtype()
    log_t_ratios = log_t_ratios.astype(dtype=dtype, copy=False)
    log_areas = log_areas.astype(dtype=dtype, copy=False)
    u_samples = u_samples.astype(dtype=dtype, copy=False)
    v_samples = v_samples.astype(dtype=dtype, copy=False)
    per_time = max(n_blocks * n_samples, 1)
    chunk = max(_MAX_CHUNK_ELEMENTS // per_time, 1)
    metrics.inc("kernels.sample_evals", n_blocks * n_times * n_samples)
    out = np.empty((n_blocks, n_times), dtype=np.float64)
    for start in range(0, n_times, chunk):
        stop = min(start + chunk, n_times)
        scaled = np.where(
            finite[:, start:stop], log_t_ratios[:, start:stop], 0.0
        )
        log_g = (
            scaled[:, :, None] * u_samples[:, None, :]
            + 0.5 * scaled[:, :, None] ** 2 * v_samples[:, None, :]
        )
        exponent = np.clip(
            log_areas[:, None, None] + log_g, _EXP_MIN, _EXP_MAX
        )
        with np.errstate(over="ignore"):
            survival = np.exp(-np.exp(exponent))
        out[:, start:stop] = np.where(
            finite[:, start:stop], survival.mean(axis=2), 1.0
        )
    return out


def sweep_rule_expectations(
    ratio_profiles: list[np.ndarray],
    log_areas: np.ndarray,
    u_points: np.ndarray,
    u_weights: np.ndarray,
    v_points: np.ndarray,
    v_weights: np.ndarray,
) -> list[np.ndarray] | None:
    """Evaluate many scaled-ratio profiles through **one** fused call.

    ``ratio_profiles`` is a list of ``(n_blocks, n_times_k)`` matrices —
    typically one per temperature of a ``repro batch`` sweep, sharing the
    per-block quadrature tables (BLODs are temperature-independent) while
    differing in the Weibull ``(alpha_j, b_j)`` scaling baked into the
    ratios.  The profiles are concatenated along the time axis and sent
    through :func:`batched_rule_expectations` as a single kernel
    dispatch.

    Returns the per-profile ``(n_blocks, n_times_k)`` expectation
    matrices, or ``None`` when fusing cannot be proven **bit-identical**
    to evaluating each profile separately, in which case the caller must
    fall back to per-profile dispatch.  Identity holds exactly when

    - the concatenated time axis fits one evaluation chunk (then both
      the fused and every per-profile call are single-chunk), and
    - every profile would take the separable fast branch on its own
      (the fused chunk's maximum is one of the per-profile maxima, so
      the fused call takes the same branch; all remaining operations
      are elementwise per time column or reduce over the node axes
      only).
    """
    if not ratio_profiles:
        return []
    dtype = _compute_dtype()
    profiles = [
        np.asarray(p).astype(dtype=dtype, copy=False)
        for p in ratio_profiles
    ]
    n_blocks = profiles[0].shape[0]
    if any(p.ndim != 2 or p.shape[0] != n_blocks for p in profiles):
        raise ConfigurationError(
            "every ratio profile needs shape (n_blocks, n_times)"
        )
    total_times = sum(p.shape[1] for p in profiles)
    per_time = max(n_blocks * u_points.shape[1] * v_points.shape[1], 1)
    chunk = max(_MAX_CHUNK_ELEMENTS // per_time, 1)
    if total_times > chunk:
        return None
    max_u = float(np.max(np.abs(u_points), initial=0.0))
    max_v = float(np.max(np.abs(v_points), initial=0.0))
    for p in profiles:
        scaled_safe = np.where(np.isfinite(p), p, 0.0)
        max_scale = float(np.max(np.abs(scaled_safe), initial=0.0))
        if (
            max_scale * max_u > _FACTOR_SAFE_EXP
            or 0.5 * max_scale**2 * max_v > _FACTOR_SAFE_EXP
        ):
            return None
    fused = batched_rule_expectations(
        np.concatenate(profiles, axis=1),
        log_areas,
        u_points,
        u_weights,
        v_points,
        v_weights,
    )
    metrics.inc("kernels.sweep_fused_profiles", len(profiles))
    out: list[np.ndarray] = []
    start = 0
    for p in profiles:
        stop = start + p.shape[1]
        out.append(fused[:, start:stop])
        start = stop
    return out
