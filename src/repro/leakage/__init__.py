"""Gate-leakage degradation simulation (SBD to HBD traces)."""
