"""Gate-leakage degradation simulator: SBD to HBD (Sec. III, Fig. 3).

The paper motivates its soft-breakdown failure criterion with a measured
gate-leakage trace of a stressed 45 nm device (3.1 V, 100 degC): leakage is
flat until the first soft breakdown (SBD), jumps by 10-20x, then grows
monotonically as the percolation path wears until hard breakdown (HBD).
Real measurement data is not available, so this module implements the
standard successive-breakdown picture (Sune-Wu [28], Kaczer [29]):

- the SBD time is Weibull (the same device-level OBD law used everywhere),
- after SBD the breakdown-path conductance grows as a power law of the
  time past SBD,
- HBD triggers when the path current crosses a hardness threshold; further
  breakdowns of fresh percolation paths superpose.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.stats.weibull import AreaScaledWeibull


@dataclass(frozen=True)
class DegradationParams:
    """Parameters of the SBD-to-HBD leakage trace model.

    Parameters
    ----------
    baseline_current:
        Pre-breakdown direct-tunneling gate leakage (A).
    sbd_jump_ratio:
        Leakage multiplication at the first soft breakdown (the paper
        quotes 10-20x for logic devices).
    growth_exponent:
        Power-law exponent of the post-SBD wear-out current.
    growth_time_constant:
        Time scale (hours) of the post-SBD growth: the path current grows
        as ``(1 + (t - t_sbd)/tau)^p``. ``None`` (default) resolves to a
        fixed fraction of the SBD law's characteristic life, so the trace
        shape is invariant to the stress level — the wear-out rate of a
        percolation path accelerates with bias just like the breakdown
        itself [28].
    hbd_current_ratio:
        Current (relative to baseline) that defines hard breakdown.
    """

    baseline_current: float = 1.0e-9
    sbd_jump_ratio: float = 15.0
    growth_exponent: float = 2.0
    growth_time_constant: float | None = None
    hbd_current_ratio: float = 1.0e3

    #: Fraction of the SBD characteristic life used when the growth time
    #: constant is not given explicitly.
    RELATIVE_GROWTH_TIME: float = 0.25

    def __post_init__(self) -> None:
        if self.baseline_current <= 0.0:
            raise ConfigurationError("baseline current must be positive")
        if self.sbd_jump_ratio <= 1.0:
            raise ConfigurationError("SBD must increase leakage (ratio > 1)")
        if self.growth_exponent <= 0.0:
            raise ConfigurationError("growth exponent must be positive")
        if self.growth_time_constant is not None and self.growth_time_constant <= 0.0:
            raise ConfigurationError("growth time constant must be positive")
        if self.hbd_current_ratio <= self.sbd_jump_ratio:
            raise ConfigurationError(
                "HBD threshold must sit above the SBD jump"
            )


@dataclass(frozen=True)
class DegradationTrace:
    """A simulated gate-leakage-versus-time trace.

    Attributes
    ----------
    times:
        Sample times in hours (stress time).
    current:
        Gate leakage in amperes at each sample time.
    sbd_time:
        Time of the first soft breakdown.
    hbd_time:
        Time of hard breakdown (``inf`` when not reached in the window).
    """

    times: np.ndarray
    current: np.ndarray
    sbd_time: float
    hbd_time: float

    @property
    def reached_hbd(self) -> bool:
        """Whether the trace reaches hard breakdown inside the window."""
        return np.isfinite(self.hbd_time)

    def leakage_ratio(self) -> np.ndarray:
        """Leakage normalized to the pre-breakdown baseline."""
        return self.current / self.current[0]


class GateLeakageSimulator:
    """Simulates stressed-device leakage traces like Fig. 3.

    Parameters
    ----------
    sbd_law:
        Weibull law of the first soft breakdown at the stress condition
        (build it from :class:`repro.core.obd_model.OBDModel` at the
        stress voltage/temperature).
    params:
        Trace-shape parameters.
    """

    def __init__(
        self,
        sbd_law: AreaScaledWeibull,
        params: DegradationParams | None = None,
    ) -> None:
        self.sbd_law = sbd_law
        self.params = params if params is not None else DegradationParams()

    @property
    def growth_time_constant(self) -> float:
        """The resolved post-SBD growth time constant in hours."""
        if self.params.growth_time_constant is not None:
            return self.params.growth_time_constant
        return (
            DegradationParams.RELATIVE_GROWTH_TIME
            * self.sbd_law.characteristic_life()
        )

    def path_current(self, time_since_sbd: np.ndarray) -> np.ndarray:
        """Current of one percolation path ``dt`` after its breakdown."""
        p = self.params
        dt = np.clip(np.asarray(time_since_sbd, dtype=float), 0.0, None)
        initial = (p.sbd_jump_ratio - 1.0) * p.baseline_current
        return initial * (1.0 + dt / self.growth_time_constant) ** p.growth_exponent

    def simulate(
        self,
        times: np.ndarray,
        rng: np.random.Generator,
        max_breakdowns: int = 4,
    ) -> DegradationTrace:
        """Simulate one device's leakage trace on the given time grid.

        Successive breakdowns are drawn from the same Weibull law applied
        to the remaining (fresh) oxide — the memoryless-in-hazard
        approximation of successive-breakdown statistics [28].
        """
        times = np.asarray(times, dtype=float)
        if times.ndim != 1 or times.size < 2:
            raise ConfigurationError("need a 1-D time grid of >= 2 points")
        if np.any(times < 0.0) or np.any(np.diff(times) <= 0.0):
            raise ConfigurationError("times must be non-negative and increasing")
        if max_breakdowns < 1:
            raise ConfigurationError("max_breakdowns must be >= 1")

        p = self.params
        breakdown_times: list[float] = []
        t_origin = 0.0
        for _ in range(max_breakdowns):
            draw = float(self.sbd_law.sample(rng))
            event = t_origin + draw
            if event > times[-1]:
                break
            breakdown_times.append(event)
            t_origin = event

        current = np.full_like(times, p.baseline_current)
        for event in breakdown_times:
            current = current + np.where(
                times >= event, self.path_current(times - event), 0.0
            )

        sbd_time = breakdown_times[0] if breakdown_times else float("inf")
        hbd_level = p.hbd_current_ratio * p.baseline_current
        above = np.nonzero(current >= hbd_level)[0]
        if above.size and breakdown_times:
            hbd_time = float(times[above[0]])
        else:
            hbd_time = float("inf")
        return DegradationTrace(
            times=times, current=current, sbd_time=sbd_time, hbd_time=hbd_time
        )

    def simulate_until_hbd(
        self,
        rng: np.random.Generator,
        n_points: int = 400,
        window_factor: float = 6.0,
        max_attempts: int = 64,
    ) -> DegradationTrace:
        """Simulate traces until one reaches HBD (for Fig. 3 style plots).

        The time grid spans ``window_factor`` characteristic lives so the
        full flat -> SBD -> growth -> HBD shape is visible.
        """
        horizon = window_factor * self.sbd_law.characteristic_life()
        times = np.linspace(1e-6, horizon, n_points)
        for _ in range(max_attempts):
            trace = self.simulate(times, rng)
            if trace.reached_hbd:
                return trace
        raise ConfigurationError(
            "no trace reached HBD; widen the window or soften the threshold"
        )
