"""Chip-level gate-leakage growth from accumulating soft breakdowns.

Section III's argument for the SBD failure criterion is economic: each
soft breakdown multiplies a device's gate leakage by 10-20x, and "such
significant leakage increase may easily lead to cache failure, which
dominates the CPU lifetest fallout". This module lifts the single-device
trace of Fig. 3 to the chip: the number of SBD events by time ``t`` across
the chip's oxide area is (to first order, while events are rare) a Poisson
process driven by the Weibull hazard, and every event contributes a
growing percolation-path current.

Both an analytic expectation and a Monte-Carlo sampler are provided, so a
designer can set a chip leakage budget and read off the time at which
accumulated breakdowns exceed it — a *leakage-based* end-of-life criterion
complementing the first-breakdown criterion of the main analysis.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import integrate

from repro.errors import ConfigurationError
from repro.leakage.degradation import DegradationParams
from repro.stats.weibull import AreaScaledWeibull


@dataclass(frozen=True)
class ChipLeakagePopulation:
    """SBD-event population of a full chip.

    Parameters
    ----------
    sbd_law:
        Device-level Weibull breakdown law at the operating condition
        (unit area).
    total_area:
        Chip's total normalized oxide area.
    params:
        Post-SBD path-growth parameters (shared with the Fig. 3 model).
    """

    sbd_law: AreaScaledWeibull
    total_area: float
    params: DegradationParams = DegradationParams()

    def __post_init__(self) -> None:
        if self.total_area <= 0.0:
            raise ConfigurationError("total area must be positive")

    @property
    def growth_time_constant(self) -> float:
        """Resolved post-SBD growth time constant (hours)."""
        if self.params.growth_time_constant is not None:
            return self.params.growth_time_constant
        return (
            DegradationParams.RELATIVE_GROWTH_TIME
            * self.sbd_law.characteristic_life()
        )

    def expected_events(self, t: np.ndarray | float) -> np.ndarray | float:
        """Expected number of SBD events on the chip by time ``t``.

        The per-unit-area cumulative hazard of the Weibull law is
        ``(t/alpha)^beta``; summed over the chip area it gives the Poisson
        mean while breakdowns are rare (each device contributes at most a
        handful of paths).
        """
        t = np.asarray(t, dtype=float)
        out = self.total_area * (t / self.sbd_law.alpha) ** self.sbd_law.beta
        return out if out.ndim else float(out)

    def _path_current(self, age: np.ndarray) -> np.ndarray:
        p = self.params
        initial = (p.sbd_jump_ratio - 1.0) * p.baseline_current
        return initial * (1.0 + age / self.growth_time_constant) ** p.growth_exponent

    def expected_extra_current(self, t: float) -> float:
        """Expected breakdown-induced chip leakage at time ``t`` (A).

        Integrates the path current over the event-age distribution: an
        event at time ``s <= t`` has age ``t - s`` and arrival density
        proportional to the hazard ``beta s^(beta-1)``.
        """
        if t < 0.0:
            raise ConfigurationError("time must be non-negative")
        if t <= 0.0:
            return 0.0
        beta = self.sbd_law.beta
        rate_scale = self.total_area / self.sbd_law.alpha**beta

        def integrand(s: float) -> float:
            density = rate_scale * beta * s ** (beta - 1.0)
            return density * float(self._path_current(np.asarray(t - s)))

        value, _err = integrate.quad(integrand, 0.0, t, limit=200)
        return value

    def baseline_current(self) -> float:
        """Pre-breakdown chip gate leakage (A)."""
        return self.total_area * self.params.baseline_current

    def sample_total_current(
        self,
        times: np.ndarray,
        n_chips: int,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Monte-Carlo chip leakage traces: ``(n_chips, n_times)`` amperes.

        Events are a non-homogeneous Poisson process with mean
        :meth:`expected_events`; event times are drawn from the
        conditional arrival distribution ``(s/t)^beta``.
        """
        times = np.asarray(times, dtype=float)
        if times.ndim != 1 or times.size < 1:
            raise ConfigurationError("need a 1-D time grid")
        if np.any(times < 0.0) or np.any(np.diff(times) <= 0.0):
            raise ConfigurationError("times must be non-negative, increasing")
        if n_chips < 1:
            raise ConfigurationError("need at least one chip")
        horizon = float(times[-1])
        mean_events = float(self.expected_events(horizon))
        beta = self.sbd_law.beta
        traces = np.full((n_chips, times.size), self.baseline_current())
        counts = rng.poisson(mean_events, size=n_chips)
        for c in range(n_chips):
            if counts[c] == 0:
                continue
            # Conditional arrival CDF on [0, horizon] is (s/horizon)^beta.
            arrivals = horizon * rng.random(counts[c]) ** (1.0 / beta)
            for s in arrivals:
                active = times >= s
                traces[c, active] += self._path_current(times[active] - s)
        return traces

    def time_to_budget(
        self,
        budget_ratio: float,
        t_guess: float | None = None,
    ) -> float:
        """Time until expected chip leakage reaches ``budget_ratio`` times
        the baseline (a leakage-based end-of-life criterion)."""
        if budget_ratio <= 1.0:
            raise ConfigurationError("budget ratio must exceed 1")
        from scipy import optimize

        target_extra = (budget_ratio - 1.0) * self.baseline_current()
        t0 = t_guess if t_guess is not None else self.sbd_law.characteristic_life()

        def objective(log_t: float) -> float:
            return self.expected_extra_current(float(np.exp(log_t))) - target_extra

        lo = hi = float(np.log(t0))
        for _ in range(200):
            if objective(lo) < 0.0:
                break
            lo -= 1.0
        for _ in range(200):
            if objective(hi) > 0.0:
                break
            hi += 1.0
        root = optimize.brentq(objective, lo, hi, xtol=1e-10)
        return float(np.exp(root))
