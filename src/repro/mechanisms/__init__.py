"""Failure-mechanism plugin registry (see :mod:`repro.mechanisms.base`).

Importing the package registers the built-in mechanisms (``obd``,
``nbti``, ``em``); scenario documents name mechanisms by their registry
slug.
"""

from repro.mechanisms.base import (
    FailureMechanism,
    MechanismContext,
    StressCondition,
    get_mechanism,
    mechanism_names,
    register_mechanism,
)
from repro.mechanisms.builtin import EM, NBTI, OxideBreakdown

__all__ = [
    "EM",
    "NBTI",
    "FailureMechanism",
    "MechanismContext",
    "OxideBreakdown",
    "StressCondition",
    "get_mechanism",
    "mechanism_names",
    "register_mechanism",
]
