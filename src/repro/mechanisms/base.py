"""Failure-mechanism plugin protocol and registry.

The paper's chip-level machinery — BLOD characterisation, the first-order
weakest-link combination of eq. (18)/(28) — is agnostic to *which* wearout
physics supplies the per-block Weibull parameters.  This module opens that
seam: a :class:`FailureMechanism` maps a steady stress condition
(per-block temperatures + supply voltage) onto per-block
``(alpha, b)`` pairs, exactly the contract
:meth:`repro.core.obd_model.OBDModel.block_params` already fulfils for
oxide breakdown.  The scenario engine races every registered mechanism's
blocks in one weakest-link sum, so a chip fails when its *weakest device
under its weakest mechanism* fails.

Plugins register under a stable name with :func:`register_mechanism`::

    @register_mechanism
    class Corrosion(FailureMechanism):
        name = "corrosion"

        def block_params(self, context, stress):
            ...

Stress parameters on mechanism classes must declare their units via the
:mod:`repro.units` helpers (``celsius``/``volts``/``electron_volts``) —
enforced by reprolint rule RPL014.
"""

from __future__ import annotations

import threading
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.errors import ConfigurationError

if TYPE_CHECKING:
    from repro.core.obd_model import DeviceReliabilityParams, OBDModel

__all__ = [
    "FailureMechanism",
    "MechanismContext",
    "StressCondition",
    "get_mechanism",
    "mechanism_names",
    "register_mechanism",
]


@dataclass(frozen=True)
class StressCondition:
    """One steady stress point: per-block temperatures and supply voltage.

    Parameters
    ----------
    temperatures_c:
        Per-block temperatures in celsius (floorplan order).
    vdd:
        Supply voltage in volts; ``None`` means each mechanism's own
        reference voltage.
    """

    temperatures_c: np.ndarray
    vdd: float | None = None

    def __post_init__(self) -> None:
        temps = np.asarray(self.temperatures_c, dtype=float)
        if temps.ndim != 1 or temps.size == 0:
            raise ConfigurationError(
                "stress condition needs a 1-D per-block temperature vector"
            )
        if self.vdd is not None and self.vdd <= 0.0:
            raise ConfigurationError(
                f"stress vdd must be positive, got {self.vdd}"
            )
        object.__setattr__(self, "temperatures_c", temps)


@dataclass(frozen=True)
class MechanismContext:
    """What a mechanism may read from the prepared design analysis.

    Parameters
    ----------
    obd_model:
        The design's calibrated oxide-breakdown model (reference point of
        the analysis; :class:`OxideBreakdown` delegates to it directly).
    nominal_thickness_nm:
        Nominal oxide thickness of the process (nm).  Mechanisms whose
        Weibull shape does not scale with thickness divide their shape
        parameter by it, so ``beta = b * x`` lands on the intended slope
        at the nominal thickness.
    """

    obd_model: OBDModel
    nominal_thickness_nm: float

    def __post_init__(self) -> None:
        if self.nominal_thickness_nm <= 0.0:
            raise ConfigurationError(
                "nominal thickness must be positive, got "
                f"{self.nominal_thickness_nm}"
            )


class FailureMechanism(ABC):
    """One wearout physics: stress condition -> per-block Weibull params.

    Subclasses set a unique class-level ``name`` and implement
    :meth:`block_params`; registering with :func:`register_mechanism`
    makes the mechanism available to scenario documents by that name.
    """

    #: Registry key; subclasses must override with a non-empty slug.
    name: str = ""

    @abstractmethod
    def block_params(
        self, context: MechanismContext, stress: StressCondition
    ) -> list[DeviceReliabilityParams]:
        """Per-block ``(alpha, b)`` under one steady stress condition."""

    def aging_rates(
        self, context: MechanismContext, stress: StressCondition
    ) -> np.ndarray:
        """Per-block effective-age advance rate (1/hours) under ``stress``.

        The cumulative-exposure damage rate: one hour at this condition
        advances a block's effective age by ``1 / alpha`` of its
        characteristic life.  Shared by every mechanism; the scenario
        engine integrates these rates over a phase schedule.
        """
        params = self.block_params(context, stress)
        return np.array([1.0 / p.alpha for p in params])


_REGISTRY: dict[str, type[FailureMechanism]] = {}
#: Registration normally happens at import time, but a service worker
#: thread may import a plugin module lazily — guard the check-then-insert.
_REGISTRY_LOCK = threading.Lock()


def register_mechanism(
    cls: type[FailureMechanism],
) -> type[FailureMechanism]:
    """Class decorator: register a :class:`FailureMechanism` by its name."""
    if not issubclass(cls, FailureMechanism):
        raise ConfigurationError(
            f"{cls!r} must subclass FailureMechanism to register"
        )
    name = cls.name
    if not name or not isinstance(name, str):
        raise ConfigurationError(
            f"mechanism {cls.__name__} must set a non-empty 'name'"
        )
    with _REGISTRY_LOCK:
        existing = _REGISTRY.get(name)
        if existing is not None and existing is not cls:
            raise ConfigurationError(
                f"mechanism name {name!r} is already registered by "
                f"{existing.__name__}"
            )
        _REGISTRY[name] = cls
    return cls


def get_mechanism(name: str) -> FailureMechanism:
    """Instantiate the registered mechanism called ``name``."""
    try:
        cls = _REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown mechanism {name!r}; registered: "
            f"{', '.join(mechanism_names())}"
        ) from None
    return cls()


def mechanism_names() -> tuple[str, ...]:
    """Registered mechanism names, sorted."""
    return tuple(sorted(_REGISTRY))
