"""Built-in failure mechanisms: oxide breakdown, NBTI, electromigration.

:class:`OxideBreakdown` delegates to the design's calibrated
:class:`~repro.core.obd_model.OBDModel`, so a scenario that races only
``obd`` is bit-identical to the paper's single-mechanism analysis.

:class:`NBTI` and :class:`EM` follow the ``oldspot`` parameterization
(SNIPPETS.md snippet 3): Weibull shape 2 at the nominal condition, NBTI
with the interface-trap activation energy ``E_A = 0.58 eV`` and voltage
exponent ``Gamma = 2.2``, EM as Black's equation with current-density
exponent ``n = 2`` and ``E_A = 0.8 eV``.  Their characteristic lives sit
above the OBD life at the reference condition, but their shallower
Weibull slope (shape 2 against the oxide's ~3 at nominal thickness)
gives them a fatter early-failure tail, so at ppm criteria they broaden
the weakest-link race rather than merely trailing oxide breakdown.

Every temperature/voltage/energy constant declares its unit through the
:mod:`repro.units` helpers (reprolint RPL014).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.obd_model import DeviceReliabilityParams
from repro.mechanisms.base import (
    FailureMechanism,
    MechanismContext,
    StressCondition,
    register_mechanism,
)
from repro.units import (
    BOLTZMANN_EV,
    celsius,
    celsius_to_kelvin,
    electron_volts,
    volts,
)

__all__ = ["EM", "NBTI", "OxideBreakdown"]


@register_mechanism
class OxideBreakdown(FailureMechanism):
    """Gate-oxide breakdown: the paper's model, verbatim.

    Delegates to the analysis' own OBD model, so the returned per-block
    parameters are float-for-float identical to the single-mechanism
    path of :class:`~repro.core.analyzer.ReliabilityAnalyzer`.
    """

    name = "obd"

    def block_params(
        self, context: MechanismContext, stress: StressCondition
    ) -> list[DeviceReliabilityParams]:
        return context.obd_model.block_params(
            stress.temperatures_c, stress.vdd
        )


@dataclass(frozen=True)
class _ArrheniusVoltageMechanism(FailureMechanism):
    """Shared Arrhenius x power-law-voltage acceleration form.

    ``alpha(T, V) = alpha_ref * exp(Ea/k (1/T - 1/Tref))
    * (v_ref / V)^voltage_exponent`` with a thickness-independent Weibull
    shape: ``beta = weibull_shape`` at the nominal oxide thickness, so
    ``b = weibull_shape / x_nominal``.
    """

    alpha_ref_hours: float = 1.0e9
    t_ref_c: float = celsius(100.0)
    v_ref_v: float = volts(1.2)
    activation_energy_ev: float = electron_volts(0.5)
    voltage_exponent: float = 2.0
    weibull_shape: float = 2.0

    def alpha(self, temperature_c: float, vdd: float | None = None) -> float:
        """Characteristic life (hours) at one temperature/voltage point."""
        vdd = self.v_ref_v if vdd is None else vdd
        temp_k = celsius_to_kelvin(temperature_c)
        ref_k = celsius_to_kelvin(self.t_ref_c)
        arrhenius = np.exp(
            self.activation_energy_ev
            / BOLTZMANN_EV
            * (1.0 / temp_k - 1.0 / ref_k)
        )
        voltage = (self.v_ref_v / vdd) ** self.voltage_exponent
        return float(self.alpha_ref_hours * arrhenius * voltage)

    def block_params(
        self, context: MechanismContext, stress: StressCondition
    ) -> list[DeviceReliabilityParams]:
        b = self.weibull_shape / context.nominal_thickness_nm
        return [
            DeviceReliabilityParams(
                alpha=self.alpha(float(temp), stress.vdd), b=b
            )
            for temp in np.asarray(stress.temperatures_c, dtype=float)
        ]


@register_mechanism
@dataclass(frozen=True)
class NBTI(_ArrheniusVoltageMechanism):
    """Negative-bias temperature instability (oldspot parameterization).

    Interface-trap generation: activation energy ``E_ADH2 = 0.58 eV``,
    voltage acceleration exponent ``Gamma_IT = 2.2``, Weibull shape 2.
    """

    name = "nbti"

    alpha_ref_hours: float = 9.0e8
    activation_energy_ev: float = electron_volts(0.58)
    voltage_exponent: float = 2.2


@register_mechanism
@dataclass(frozen=True)
class EM(_ArrheniusVoltageMechanism):
    """Electromigration via Black's equation (oldspot parameterization).

    ``MTTF ~ j^-n exp(Ea/kT)`` with ``n = 2`` and ``E_A = 0.8 eV``; the
    block current density scales with the supply voltage, so the
    power-law voltage term stands in for ``j / j_ref``.
    """

    name = "em"

    alpha_ref_hours: float = 1.4e9
    activation_energy_ev: float = electron_volts(0.8)
    voltage_exponent: float = 2.0
