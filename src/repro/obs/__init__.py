"""repro.obs — observability for the analysis pipeline.

Structured tracing (:mod:`repro.obs.trace`), stage metrics
(:mod:`repro.obs.metrics`), structured logging (:mod:`repro.obs.logging`)
and profiling hooks (:mod:`repro.obs.profile`) behind one import:

    from repro import obs

    obs.enable()
    with obs.span("blod.characterize", blocks=8):
        obs.inc("blod.blocks", 8)
    print(obs.timing_summary())

Everything is a **no-op while disabled** (the default): a disabled span
allocates no trace node and a disabled counter touches no registry, so the
paper's Table III runtimes are unperturbed by the instrumentation.

``observability_snapshot()`` bundles the span tree and the metric registry
into the JSON document the CLI's ``--trace FILE`` writes.
"""

from __future__ import annotations

from typing import Any

from repro.obs.flight import FlightRecorder
from repro.obs.logging import JsonFormatter, configure_logging, get_logger
from repro.obs.metrics import (
    Histogram,
    gauge,
    get_counter,
    get_gauge,
    get_histogram,
    inc,
    log_buckets,
    metrics_snapshot,
    observe,
    reset_metrics,
)
from repro.obs.profile import (
    SpanBudgets,
    clear_span_end,
    on_span_end,
    remove_span_end,
    render_trace,
    stage_times,
    timing_summary,
)
from repro.obs.propagate import (
    TraceContext,
    current_trace_context,
    current_trace_id,
    record_subtree,
    set_trace_id,
)
from repro.obs.trace import (
    NOOP_SPAN,
    SpanNode,
    current_span,
    disable,
    enable,
    enabled,
    get_clock,
    graft,
    is_enabled,
    set_clock,
    span,
    trace_snapshot,
)
from repro.obs.trace import reset as _reset_trace

__all__ = [
    "FlightRecorder",
    "Histogram",
    "JsonFormatter",
    "NOOP_SPAN",
    "SpanBudgets",
    "SpanNode",
    "TraceContext",
    "clear_span_end",
    "configure_logging",
    "current_span",
    "current_trace_context",
    "current_trace_id",
    "disable",
    "enable",
    "enabled",
    "gauge",
    "get_clock",
    "get_counter",
    "get_gauge",
    "get_histogram",
    "get_logger",
    "graft",
    "inc",
    "is_enabled",
    "log_buckets",
    "metrics_snapshot",
    "observability_snapshot",
    "observe",
    "on_span_end",
    "record_subtree",
    "remove_span_end",
    "render_trace",
    "reset",
    "reset_metrics",
    "set_clock",
    "set_trace_id",
    "span",
    "stage_times",
    "timing_summary",
    "trace_snapshot",
]


def reset() -> None:
    """Clear the recorded trace tree *and* every counter/gauge."""
    _reset_trace()
    reset_metrics()


def observability_snapshot() -> dict[str, Any]:
    """The full observability state as one JSON-ready document."""
    return {
        "trace": trace_snapshot(),
        "metrics": metrics_snapshot(),
        "stages": stage_times(),
    }
