"""Flight recorder: bounded in-memory timelines of recent job activity.

Production debugging of an async job service needs the *sequence* of
events around a failure — when the job was submitted, how long it
queued, which shard it was on when it died — not just terminal counters.
The :class:`FlightRecorder` keeps a small per-job event timeline while a
job is live and, when the job ends badly (failed, cancelled) or slowly
(wall time above ``slow_s``), freezes the timeline into a fixed-capacity
ring of dumps together with a metric snapshot and the job's trace tree.
Healthy fast jobs leave no residue, so the recorder's memory is bounded
by ``capacity`` dumps of at most ``max_events`` events each regardless of
uptime.

Deep layers (``repro.exec.runner``, ``repro.exec.checkpoint``) report
progress without any API threading: the job worker *binds* the recorder
and job id to its thread (:func:`bind`), and :func:`emit` becomes a
cheap append — or a no-op on unbound threads, which is every thread
outside a service job worker (including process-pool workers, whose
events are summarised by the parent's shard-progress emits instead).

Unlike spans and counters the recorder is not gated on the global
observability switch: it is always on, always bounded, and queryable at
``GET /v1/debug/flight``.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from collections.abc import Callable, Iterator
from contextlib import contextmanager
from typing import Any

from repro.errors import ConfigurationError
from repro.obs import metrics

__all__ = ["FlightRecorder", "bind", "emit"]

#: Terminal states that always trigger a dump.
_DUMP_STATES = frozenset({"failed", "cancelled"})

_tls = threading.local()


class FlightRecorder:
    """Bounded ring buffer of recent job event timelines.

    Parameters
    ----------
    capacity:
        Finalized dumps retained (oldest evicted first).
    max_events:
        Events kept per job timeline (oldest evicted first).
    slow_s:
        Wall-time threshold above which even a successful job is dumped;
        ``None`` disables the slow-job criterion.
    clock:
        Wall-clock source for event timestamps (injectable for tests).
    """

    def __init__(
        self,
        capacity: int = 64,
        max_events: int = 128,
        slow_s: float | None = 30.0,
        clock: Callable[[], float] = time.time,
    ) -> None:
        if capacity < 1:
            raise ConfigurationError(f"capacity must be >= 1, got {capacity}")
        if max_events < 1:
            raise ConfigurationError(f"max_events must be >= 1, got {max_events}")
        self.capacity = capacity
        self.max_events = max_events
        self.slow_s = slow_s
        self._clock = clock
        self._lock = threading.Lock()
        self._active: dict[str, dict[str, Any]] = {}
        self._dumps: deque[dict[str, Any]] = deque(maxlen=capacity)

    # ------------------------------------------------------------------
    # timeline lifecycle
    # ------------------------------------------------------------------

    def open(self, job_id: str, **detail: Any) -> None:
        """Start a timeline for ``job_id`` with an initial ``submit`` event."""
        with self._lock:
            self._active[job_id] = {
                "job_id": job_id,
                "opened_at": self._clock(),
                "events": deque(maxlen=self.max_events),
            }
        self.event(job_id, "submit", **detail)

    def event(self, job_id: str, name: str, **detail: Any) -> None:
        """Append one event to a live timeline (no-op for unknown jobs)."""
        with self._lock:
            record = self._active.get(job_id)
            if record is None:
                return
            entry: dict[str, Any] = {"t": self._clock(), "event": name}
            if detail:
                entry.update(detail)
            record["events"].append(entry)

    def close(
        self,
        job_id: str,
        state: str,
        duration_s: float | None = None,
        trace: dict[str, Any] | None = None,
    ) -> bool:
        """Finalize a timeline; returns True when it was dumped.

        Failed/cancelled jobs and jobs slower than ``slow_s`` freeze their
        timeline (plus a metric snapshot and the merged trace tree, when
        one was captured) into the ring; everything else is dropped.
        """
        self.event(job_id, "finish", state=state, duration_s=duration_s)
        with self._lock:
            record = self._active.pop(job_id, None)
            if record is None:
                return False
            slow = (
                self.slow_s is not None
                and duration_s is not None
                and duration_s > self.slow_s
            )
            if state not in _DUMP_STATES and not slow:
                return False
            dump = {
                "job_id": job_id,
                "state": state,
                "duration_s": duration_s,
                "reason": state if state in _DUMP_STATES else "slow",
                "opened_at": record["opened_at"],
                "events": list(record["events"]),
                "metrics": metrics.metrics_snapshot(),
            }
            if trace is not None:
                dump["trace"] = trace
            self._dumps.append(dump)
            return True

    def discard(self, job_id: str) -> None:
        """Drop a live timeline without dumping (e.g. coalesced away)."""
        with self._lock:
            self._active.pop(job_id, None)

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------

    def records(self) -> list[dict[str, Any]]:
        """Finalized dumps, newest first (JSON-ready)."""
        with self._lock:
            return list(reversed(self._dumps))

    def active_count(self) -> int:
        """Live (not yet finalized) timelines."""
        with self._lock:
            return len(self._active)


# ---------------------------------------------------------------------------
# thread-local binding, so deep layers can emit without API threading
# ---------------------------------------------------------------------------


@contextmanager
def bind(recorder: FlightRecorder, job_id: str) -> Iterator[None]:
    """Route :func:`emit` calls on this thread to ``(recorder, job_id)``."""
    previous = getattr(_tls, "target", None)
    _tls.target = (recorder, job_id)
    try:
        yield
    finally:
        _tls.target = previous


def emit(name: str, **detail: Any) -> None:
    """Append an event to the thread's bound timeline (no-op unbound)."""
    target = getattr(_tls, "target", None)
    if target is None:
        return
    recorder, job_id = target
    recorder.event(job_id, name, **detail)
