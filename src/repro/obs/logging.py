"""Structured logging for the analysis pipeline.

A thin layer over stdlib :mod:`logging`: every library module gets its
logger from :func:`get_logger` (all under the ``repro`` namespace), and
:func:`configure_logging` installs a handler whose formatter is either
human-readable or line-delimited JSON (``--log-json``).

Diagnostics go through these loggers; user-facing CLI output stays on
stdout.  Libraries must not configure logging at import time, so nothing
here runs until :func:`configure_logging` is called (the CLI does, from
``--log-level``/``--log-json``).
"""

from __future__ import annotations

import json
import logging
import sys
from typing import IO, Any

from repro.errors import ConfigurationError

__all__ = ["JsonFormatter", "configure_logging", "get_logger"]

#: Root logger name of the library.
ROOT_LOGGER = "repro"

#: Attributes of a LogRecord that are not user-supplied ``extra`` fields.
_RESERVED = frozenset(
    logging.LogRecord("", 0, "", 0, "", (), None).__dict__
) | {"message", "asctime", "taskName"}


def get_logger(name: str | None = None) -> logging.Logger:
    """A logger in the library's namespace.

    ``get_logger("core.montecarlo")`` and
    ``get_logger("repro.core.montecarlo")`` return the same logger;
    ``get_logger()`` returns the library root logger.
    """
    if not name:
        return logging.getLogger(ROOT_LOGGER)
    if name == ROOT_LOGGER or name.startswith(ROOT_LOGGER + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{ROOT_LOGGER}.{name}")


class JsonFormatter(logging.Formatter):
    """One JSON object per line: timestamp, level, logger, message, extras."""

    def format(self, record: logging.LogRecord) -> str:
        payload: dict[str, Any] = {
            "ts": self.formatTime(record, "%Y-%m-%dT%H:%M:%S%z"),
            "level": record.levelname,
            "logger": record.name,
            "message": record.getMessage(),
        }
        for key, value in record.__dict__.items():
            if key in _RESERVED or key.startswith("_"):
                continue
            try:
                json.dumps(value)
            except (TypeError, ValueError):
                value = repr(value)
            payload[key] = value
        if record.exc_info and record.exc_info[0] is not None:
            payload["exc_info"] = self.formatException(record.exc_info)
        return json.dumps(payload)


def configure_logging(
    level: int | str = "WARNING",
    json_output: bool = False,
    stream: IO[str] | None = None,
) -> logging.Logger:
    """Install (or replace) the library's log handler.

    Parameters
    ----------
    level:
        Logging level name or number for the ``repro`` logger tree.
    json_output:
        Emit line-delimited JSON instead of the human-readable format.
    stream:
        Destination stream; defaults to ``sys.stderr`` so machine-readable
        command output on stdout stays clean.

    Returns the configured root library logger.  Calling again replaces the
    previously installed handler (idempotent for repeated CLI invocations
    in one process, e.g. under tests).
    """
    logger = logging.getLogger(ROOT_LOGGER)
    if isinstance(level, str):
        resolved = logging.getLevelName(level.upper())
        if not isinstance(resolved, int):
            raise ConfigurationError(f"unknown log level {level!r}")
        level = resolved
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    if json_output:
        handler.setFormatter(JsonFormatter())
    else:
        handler.setFormatter(
            logging.Formatter("%(levelname)s %(name)s: %(message)s")
        )
    for existing in list(logger.handlers):
        logger.removeHandler(existing)
    logger.addHandler(handler)
    logger.setLevel(level)
    logger.propagate = False
    return logger
