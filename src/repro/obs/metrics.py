"""Stage metrics: named counters, gauges and histograms.

Counters accumulate (``inc("mc.chips", 100)``); gauges record the latest
value (``gauge("pca.factors", 37)``); histograms bucket observed samples
(``observe("service.latency.jobs_submit", 0.012)``).  All live in one
process-wide thread-safe registry that :func:`metrics_snapshot` serialises
alongside the trace tree.

Like spans, metrics are **no-ops while observability is disabled** (the
default), so instrumented hot loops pay only a module-attribute load.

Naming convention (see ``docs/observability.md``): dotted
``<stage>.<quantity>`` names — e.g. ``pca.factors``, ``blod.blocks``,
``mc.chips``, ``hybrid.lut_hits``, ``integration.subdomain_evals``,
``thermal.solves``.  The execution layer (``repro.exec``, see
``docs/execution.md``) reports ``exec.tasks``, ``exec.shards``, the
``exec.jobs`` gauge, the result-cache accounting counters
``exec.cache.{hit,miss,corrupt,store}`` and the resume counters
``exec.checkpoint.{resumed_shards,stale}``.  The kernel fast paths
(``repro.kernels``, see ``docs/performance.md``) report the thermal
factorization-cache accounting ``thermal.factor_cache.{hit,miss}`` and
the fused-evaluation workload counters ``kernels.rule_nodes``,
``kernels.sample_evals`` and ``kernels.imhof_nodes`` (survival-integral
quadrature nodes, Monte-Carlo sample evaluations and Imhof inversion
nodes processed by the batched kernels).  The HTTP service
(``repro.service``, see ``docs/service.md``) reports
``service.requests``, the job-lifecycle counters ``service.jobs.*``, the
admission counters ``service.admission.{allowed,rejected}`` and the
``service.jobs.{queued,running}``/``service.accepting`` gauges, all of
which ``GET /metrics`` renders in Prometheus text format.

Histograms (``docs/observability.md``) use fixed log-spaced bucket upper
bounds plus an exact count/sum, which is everything the Prometheus
``_bucket``/``_sum``/``_count`` exposition and the :meth:`Histogram.quantile`
estimator need.  The service records ``service.latency.<endpoint>``
per-endpoint request latency and the ``service.job.{queue_wait,run}``
seconds split; the execution layer records ``exec.shard.seconds`` per-shard
durations and ``exec.cache.lookup_seconds``.
"""

from __future__ import annotations

import bisect
import math
import threading
from typing import Any

from repro.errors import ConfigurationError
from repro.obs import trace as _trace

__all__ = [
    "DEFAULT_BUCKETS",
    "Histogram",
    "gauge",
    "get_counter",
    "get_gauge",
    "get_histogram",
    "histograms",
    "inc",
    "log_buckets",
    "metrics_snapshot",
    "observe",
    "reset_metrics",
]

_lock = threading.Lock()
_counters: dict[str, float] = {}
_gauges: dict[str, float] = {}
_histograms: dict[str, "Histogram"] = {}


def log_buckets(lo: float, hi: float, per_decade: int = 3) -> tuple[float, ...]:
    """Log-spaced histogram bucket upper bounds covering ``[lo, hi]``.

    ``per_decade`` bounds per factor of ten, rounded to 6 significant
    digits so rendered ``le`` labels are stable across platforms.
    """
    if not (0.0 < lo < hi):
        raise ConfigurationError(f"need 0 < lo < hi, got lo={lo} hi={hi}")
    steps = int(round(math.log10(hi / lo) * per_decade))
    bounds = [
        float(f"{lo * 10 ** (i / per_decade):.6g}") for i in range(steps + 1)
    ]
    # Rounding can collapse neighbours for coarse spacing; de-duplicate.
    out: list[float] = []
    for bound in bounds:
        if not out or bound > out[-1]:
            out.append(bound)
    return tuple(out)


#: Default bounds: 100 microseconds to ~17 minutes, 3 buckets per decade —
#: wide enough for a cache lookup and a full Monte-Carlo service job alike.
DEFAULT_BUCKETS = log_buckets(1e-4, 1e3, per_decade=3)


class Histogram:
    """Fixed-bucket histogram with exact count and sum.

    ``bounds`` are finite ascending bucket *upper* bounds; one implicit
    overflow bucket (``+Inf``) catches everything above the last bound.
    ``counts[i]`` is the number of samples with ``value <= bounds[i]``
    exclusive of lower buckets (i.e. *non*-cumulative; the Prometheus
    renderer accumulates).  Mutation happens under the registry lock via
    :func:`observe`.
    """

    __slots__ = ("name", "bounds", "counts", "count", "sum")

    def __init__(
        self, name: str, bounds: tuple[float, ...] | None = None
    ) -> None:
        chosen = tuple(bounds) if bounds is not None else DEFAULT_BUCKETS
        if not chosen or list(chosen) != sorted(set(chosen)):
            raise ConfigurationError(f"bucket bounds must ascend, got {chosen!r}")
        if not all(math.isfinite(b) for b in chosen):
            raise ConfigurationError("bucket bounds must be finite (+Inf is implicit)")
        self.name = name
        self.bounds = chosen
        self.counts = [0] * (len(chosen) + 1)  # last slot = +Inf overflow
        self.count = 0
        self.sum = 0.0

    def _observe(self, value: float) -> None:
        self.counts[bisect.bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.sum += value

    def cumulative(self) -> list[tuple[float, int]]:
        """``(upper_bound, cumulative_count)`` pairs ending at ``+Inf``."""
        out: list[tuple[float, int]] = []
        running = 0
        for bound, bucket in zip(self.bounds, self.counts, strict=False):
            running += bucket
            out.append((bound, running))
        out.append((math.inf, self.count))
        return out

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile by linear interpolation in-bucket.

        Samples beyond the last finite bound clamp to that bound (the
        estimator cannot see past it); an empty histogram returns NaN.
        """
        if not 0.0 <= q <= 1.0:
            raise ConfigurationError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return math.nan
        target = q * self.count
        running = 0
        for i, bucket in enumerate(self.counts[:-1]):
            if bucket == 0:
                running += bucket
                continue
            if running + bucket >= target:
                lo = self.bounds[i - 1] if i > 0 else 0.0
                hi = self.bounds[i]
                frac = (target - running) / bucket
                return lo + (hi - lo) * min(max(frac, 0.0), 1.0)
            running += bucket
        return self.bounds[-1]

    def snapshot(self) -> dict[str, Any]:
        """JSON-ready summary (bounds, bucket counts, count/sum, quantiles)."""
        return {
            "buckets": list(self.bounds),
            "counts": list(self.counts),
            "count": self.count,
            "sum": self.sum,
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }


def inc(name: str, value: float = 1.0) -> None:
    """Add ``value`` to counter ``name`` (no-op while disabled)."""
    if not _trace._enabled:
        return
    with _lock:
        _counters[name] = _counters.get(name, 0.0) + value


def gauge(name: str, value: float) -> None:
    """Set gauge ``name`` to ``value`` (no-op while disabled)."""
    if not _trace._enabled:
        return
    with _lock:
        _gauges[name] = float(value)


def observe(
    name: str, value: float, buckets: tuple[float, ...] | None = None
) -> None:
    """Record ``value`` into histogram ``name`` (no-op while disabled).

    The histogram is created on first observation; ``buckets`` overrides
    the default log-spaced bounds at creation time only.
    """
    if not _trace._enabled:
        return
    with _lock:
        hist = _histograms.get(name)
        if hist is None:
            hist = Histogram(name, buckets)
            _histograms[name] = hist
        hist._observe(float(value))


def get_histogram(name: str) -> Histogram | None:
    """The live histogram for ``name`` (``None`` when never observed)."""
    with _lock:
        return _histograms.get(name)


def histograms() -> dict[str, Histogram]:
    """A point-in-time copy of the histogram registry."""
    with _lock:
        return dict(_histograms)


def get_counter(name: str, default: float = 0.0) -> float:
    """Current value of a counter (``default`` when never incremented)."""
    with _lock:
        return _counters.get(name, default)


def get_gauge(name: str, default: float | None = None) -> float | None:
    """Current value of a gauge (``default`` when never set)."""
    with _lock:
        return _gauges.get(name, default)


def metrics_snapshot() -> dict[str, dict[str, Any]]:
    """All counters, gauges and histogram summaries as a JSON-ready dict."""
    with _lock:
        return {
            "counters": dict(_counters),
            "gauges": dict(_gauges),
            "histograms": {
                name: hist.snapshot() for name, hist in _histograms.items()
            },
        }


def reset_metrics() -> None:
    """Clear every counter, gauge and histogram."""
    with _lock:
        _counters.clear()
        _gauges.clear()
        _histograms.clear()
