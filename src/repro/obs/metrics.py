"""Stage metrics: named counters and gauges for the analysis pipeline.

Counters accumulate (``inc("mc.chips", 100)``); gauges record the latest
value (``gauge("pca.factors", 37)``).  Both live in one process-wide
thread-safe registry that :func:`metrics_snapshot` serialises alongside the
trace tree.

Like spans, metrics are **no-ops while observability is disabled** (the
default), so instrumented hot loops pay only a module-attribute load.

Naming convention (see ``docs/observability.md``): dotted
``<stage>.<quantity>`` names — e.g. ``pca.factors``, ``blod.blocks``,
``mc.chips``, ``hybrid.lut_hits``, ``integration.subdomain_evals``,
``thermal.solves``.  The execution layer (``repro.exec``, see
``docs/execution.md``) reports ``exec.tasks``, ``exec.shards``, the
``exec.jobs`` gauge, the result-cache accounting counters
``exec.cache.{hit,miss,corrupt,store}`` and the resume counters
``exec.checkpoint.{resumed_shards,stale}``.  The kernel fast paths
(``repro.kernels``, see ``docs/performance.md``) report the thermal
factorization-cache accounting ``thermal.factor_cache.{hit,miss}`` and
the fused-evaluation workload counters ``kernels.rule_nodes``,
``kernels.sample_evals`` and ``kernels.imhof_nodes`` (survival-integral
quadrature nodes, Monte-Carlo sample evaluations and Imhof inversion
nodes processed by the batched kernels).  The HTTP service
(``repro.service``, see ``docs/service.md``) reports
``service.requests``, the job-lifecycle counters ``service.jobs.*``, the
admission counters ``service.admission.{allowed,rejected}`` and the
``service.jobs.{queued,running}``/``service.accepting`` gauges, all of
which ``GET /metrics`` renders in Prometheus text format.
"""

from __future__ import annotations

import threading
from typing import Any

from repro.obs import trace as _trace

__all__ = [
    "gauge",
    "get_counter",
    "get_gauge",
    "inc",
    "metrics_snapshot",
    "reset_metrics",
]

_lock = threading.Lock()
_counters: dict[str, float] = {}
_gauges: dict[str, float] = {}


def inc(name: str, value: float = 1.0) -> None:
    """Add ``value`` to counter ``name`` (no-op while disabled)."""
    if not _trace._enabled:
        return
    with _lock:
        _counters[name] = _counters.get(name, 0.0) + value


def gauge(name: str, value: float) -> None:
    """Set gauge ``name`` to ``value`` (no-op while disabled)."""
    if not _trace._enabled:
        return
    with _lock:
        _gauges[name] = float(value)


def get_counter(name: str, default: float = 0.0) -> float:
    """Current value of a counter (``default`` when never incremented)."""
    with _lock:
        return _counters.get(name, default)


def get_gauge(name: str, default: float | None = None) -> float | None:
    """Current value of a gauge (``default`` when never set)."""
    with _lock:
        return _gauges.get(name, default)


def metrics_snapshot() -> dict[str, dict[str, Any]]:
    """All counters and gauges as a JSON-ready dict."""
    with _lock:
        return {"counters": dict(_counters), "gauges": dict(_gauges)}


def reset_metrics() -> None:
    """Clear every counter and gauge."""
    with _lock:
        _counters.clear()
        _gauges.clear()
