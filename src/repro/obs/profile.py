"""Profiling hooks over the trace stream.

Three consumers of span data:

- :func:`on_span_end` / :func:`remove_span_end` — register a callback fired
  with every finished :class:`~repro.obs.trace.SpanNode`, so benchmarks and
  external profilers can observe stages as they complete.
- :class:`SpanBudgets` — declarative per-stage wall-clock budgets; collects
  violations while installed, so a benchmark can assert
  ``thermal <= 2 s`` without hand-rolled timing code.
- :func:`timing_summary` / :func:`stage_times` — render or flatten the
  recorded trace tree for reports and metrics files.
"""

from __future__ import annotations

from collections.abc import Callable
from typing import Any

from repro.errors import ConfigurationError
from repro.obs.trace import (
    SpanNode,
    _clear_span_end,
    _register_span_end,
    _unregister_span_end,
    trace_snapshot,
)

__all__ = [
    "SpanBudgets",
    "clear_span_end",
    "on_span_end",
    "remove_span_end",
    "render_trace",
    "stage_times",
    "timing_summary",
]


def on_span_end(callback: Callable[[SpanNode], None]) -> Callable[[SpanNode], None]:
    """Register ``callback(span_node)`` to fire when any span finishes.

    Returns the callback, so it can be used as a decorator.  Callbacks run
    on the thread that closed the span; keep them cheap.
    """
    _register_span_end(callback)
    return callback


def remove_span_end(callback: Callable[[SpanNode], None]) -> None:
    """Unregister a span-end callback (no error if absent)."""
    _unregister_span_end(callback)


def clear_span_end() -> None:
    """Unregister every span-end callback."""
    _clear_span_end()


class SpanBudgets:
    """Assertable wall-clock budgets per span name.

    >>> budgets = SpanBudgets({"thermal": 2.0, "blod": 0.5})
    >>> with budgets:            # observes spans closed inside the block
    ...     run_analysis()
    >>> budgets.violations       # [(name, wall_time, budget), ...]
    """

    def __init__(self, budgets: dict[str, float]) -> None:
        for name, limit in budgets.items():
            if limit < 0.0:
                raise ConfigurationError(
                    f"budget for {name!r} must be >= 0, got {limit}"
                )
        self.budgets = dict(budgets)
        self.violations: list[tuple[str, float, float]] = []

    def _observe(self, node: SpanNode) -> None:
        limit = self.budgets.get(node.name)
        if limit is not None and node.wall_time > limit:
            self.violations.append((node.name, node.wall_time, limit))

    def install(self) -> "SpanBudgets":
        """Start observing span completions."""
        _register_span_end(self._observe)
        return self

    def uninstall(self) -> None:
        """Stop observing."""
        _unregister_span_end(self._observe)

    def __enter__(self) -> "SpanBudgets":
        return self.install()

    def __exit__(self, *exc_info: object) -> bool:
        self.uninstall()
        return False

    def check(self) -> None:
        """Raise ``AssertionError`` listing every budget violation."""
        if self.violations:
            lines = [
                f"{name}: {wall:.3f}s > budget {limit:.3f}s"
                for name, wall, limit in self.violations
            ]
            raise AssertionError("stage budget exceeded: " + "; ".join(lines))


def stage_times(
    snapshot: list[dict[str, Any]] | None = None,
) -> dict[str, dict[str, float]]:
    """Flatten a trace snapshot into per-stage totals.

    Returns ``{name: {"wall_time_s": total, "count": n}}`` summed over
    every occurrence of each span name anywhere in the tree — the shape the
    benchmark metrics files and CI artifacts record.
    """
    if snapshot is None:
        snapshot = trace_snapshot()
    totals: dict[str, dict[str, float]] = {}
    stack = list(snapshot)
    while stack:
        node = stack.pop()
        entry = totals.setdefault(node["name"], {"wall_time_s": 0.0, "count": 0})
        entry["wall_time_s"] += float(node["wall_time_s"])
        entry["count"] += 1
        stack.extend(node.get("children", ()))
    return totals


def timing_summary(
    snapshot: list[dict[str, Any]] | None = None,
    max_depth: int = 4,
) -> str:
    """Human-readable indented rendering of the recorded span tree.

    Appended to the CLI ``report`` output; one line per span with wall time
    and a ``xN`` multiplier for repeated siblings of the same name.
    """
    if snapshot is None:
        snapshot = trace_snapshot()
    if not snapshot:
        return "timing: (no spans recorded)"
    lines = ["timing:"]

    def merge(nodes: list[dict[str, Any]]) -> list[dict[str, Any]]:
        merged: dict[str, dict[str, Any]] = {}
        for node in nodes:
            slot = merged.setdefault(
                node["name"],
                {"name": node["name"], "wall_time_s": 0.0, "count": 0, "children": []},
            )
            slot["wall_time_s"] += float(node["wall_time_s"])
            slot["count"] += 1
            slot["children"].extend(node.get("children", ()))
        return list(merged.values())

    def render(nodes: list[dict[str, Any]], depth: int) -> None:
        if depth >= max_depth:
            return
        for node in merge(nodes):
            suffix = f"  x{node['count']}" if node["count"] > 1 else ""
            lines.append(
                f"{'  ' * (depth + 1)}{node['name']:<28} "
                f"{node['wall_time_s'] * 1e3:10.2f} ms{suffix}"
            )
            render(node["children"], depth + 1)

    render(snapshot, 0)
    return "\n".join(lines)


def render_trace(
    nodes: list[dict[str, Any]],
    max_depth: int | None = None,
    show_attrs: bool = True,
) -> str:
    """ASCII tree rendering of serialized span nodes (``repro trace show``).

    Unlike :func:`timing_summary` this renders every node individually —
    no sibling merging — because per-span identity is the point when
    inspecting a merged cross-process job trace.  Each line carries the
    wall time, an error marker and (optionally) a compact attribute list.
    """
    if not nodes:
        return "(no spans recorded)"
    lines: list[str] = []

    def describe(node: dict[str, Any]) -> str:
        wall_ms = float(node.get("wall_time_s", 0.0)) * 1e3
        text = f"{node.get('name', '?')}  {wall_ms:.2f} ms"
        if node.get("error"):
            text += f"  !! {node['error']}"
        attrs = node.get("attrs") or {}
        if show_attrs and attrs:
            rendered = ", ".join(
                f"{key}={attrs[key]}" for key in sorted(attrs)
            )
            text += f"  [{rendered}]"
        return text

    def walk(siblings: list[dict[str, Any]], prefix: str, depth: int) -> None:
        pruned = max_depth is not None and depth >= max_depth
        for i, node in enumerate(siblings):
            last = i == len(siblings) - 1
            connector = "`-- " if last else "|-- "
            if depth == 0:
                lines.append(describe(node))
                child_prefix = ""
            else:
                lines.append(f"{prefix}{connector}{describe(node)}")
                child_prefix = prefix + ("    " if last else "|   ")
            children = node.get("children") or []
            if children:
                if pruned:
                    lines.append(
                        f"{child_prefix}`-- ... {len(children)} child "
                        "span(s) pruned"
                    )
                else:
                    walk(children, child_prefix, depth + 1)

    walk(nodes, "", 0)
    return "\n".join(lines)
