"""Cross-process trace propagation.

Spans live in per-thread stacks (:mod:`repro.obs.trace`), so a subtree
recorded on a pool worker — a thread *or* a separate process — is invisible
to the caller's tree.  This module carries just enough context across that
boundary to stitch the pieces back together:

- :class:`TraceContext` — an immutable, picklable ``(trace_id,
  parent_span_id)`` pair built at the submission site from the caller's
  open span.
- :func:`record_subtree` — a context manager the worker wraps its work in;
  it records a detached span subtree (never touching the shared root
  registry, and force-enabling tracing inside a process worker where the
  global switch is off) that serialises via ``SpanNode.to_dict``.
- a thread-local *trace id* (:func:`set_trace_id` / :func:`current_trace_id`)
  the service binds per job, so every span and shard recorded on behalf of
  a request carries the request's id.

The flow for one service job on the process backend::

    HTTP X-Trace-Id ──> JobManager (set_trace_id, record_subtree)
        ──> run_sharded builds TraceContext(current span)
            ──> pickled to workers with each shard group
                ──> worker record_subtree("exec.shard_group", ctx)
            <── span dicts ship back with shard results
        <── trace.graft() re-attaches them under the submitting span
    GET /v1/jobs/{id}/trace serves the merged tree
"""

from __future__ import annotations

import threading
from collections.abc import Iterator
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any

from repro.obs import trace

__all__ = [
    "TraceContext",
    "current_trace_context",
    "current_trace_id",
    "record_subtree",
    "set_trace_id",
]

_tls = threading.local()


@dataclass(frozen=True)
class TraceContext:
    """What a worker needs to parent its spans into the caller's tree.

    Plain strings only, so the context pickles cheaply alongside shard
    arguments for the process backend.
    """

    trace_id: str = ""
    parent_span_id: str = ""


def set_trace_id(trace_id: str | None) -> None:
    """Bind a trace id to the calling thread (``None`` clears it)."""
    _tls.trace_id = trace_id


def current_trace_id() -> str | None:
    """The calling thread's bound trace id, if any."""
    return getattr(_tls, "trace_id", None)


def current_trace_context() -> TraceContext | None:
    """A :class:`TraceContext` for the caller's open span.

    ``None`` while tracing is disabled — callers skip worker-side capture
    entirely in that case, keeping the disabled path free.
    """
    if not trace.is_enabled():
        return None
    parent = trace.current_span()
    return TraceContext(
        trace_id=current_trace_id() or "",
        parent_span_id=parent.span_id if parent is not None else "",
    )


@contextmanager
def record_subtree(
    name: str,
    context: TraceContext | None = None,
    **attrs: Any,
) -> Iterator[trace.SpanNode]:
    """Record a detached span subtree on the calling thread.

    The subtree root goes onto the thread's active-span stack — so spans
    opened inside nest under it — but never into the shared root registry,
    and tracing is force-enabled for the duration when the process-global
    switch is off (the situation inside a process-pool worker).  The
    yielded root carries ``trace_id``/``parent_span_id`` attributes from
    ``context`` and is ready to serialise with ``to_dict()`` once the
    block exits, even when the body raised (the error is recorded first).
    """
    trace._acquire_force()
    node = trace.SpanNode(name, attrs)
    if context is not None:
        if context.trace_id:
            node.attrs["trace_id"] = context.trace_id
        if context.parent_span_id:
            node.attrs["parent_span_id"] = context.parent_span_id
    stack = trace._stack()
    stack.append(node)
    try:
        yield node
    except BaseException as exc:
        node.error = f"{type(exc).__name__}: {exc}"
        raise
    finally:
        node.end = trace._clock()
        if stack and stack[-1] is node:
            stack.pop()
        elif node in stack:  # pragma: no cover - unbalanced exit guard
            stack.remove(node)
        trace._release_force()
