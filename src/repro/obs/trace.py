"""Structured tracing: nestable spans forming an in-process trace tree.

The analysis pipeline (Fig. 9 of the paper) is a staged flow whose runtime
profile is itself a headline result (Table III).  This module provides the
span primitive every stage reports into:

    with span("blod.characterize", blocks=n_blocks):
        ...

Spans nest (a per-thread stack tracks the active span), record wall-clock
time and user-attached attributes, and aggregate into a thread-safe trace
tree that :func:`trace_snapshot` serialises to plain dicts (and therefore
JSON).

Zero cost when disabled
-----------------------
Tracing is **off** by default.  A module-level switch guards every entry
point; a disabled ``span(...)`` call returns one shared no-op context
manager and allocates *no* trace node, so instrumented hot paths (the
Table III runtime measurements) are unperturbed.  Enable with
:func:`enable` (the CLI does this for ``--trace``).

Thread safety
-------------
Each thread keeps its own active-span stack, so a worker thread started
inside a span opens its own root rather than racing the parent's child
list.  The shared root list and finish-callback registry are guarded by a
lock.
"""

from __future__ import annotations

import threading
import time
from collections.abc import Callable
from types import TracebackType
from typing import Any

__all__ = [
    "SpanNode",
    "current_span",
    "disable",
    "enable",
    "enabled",
    "is_enabled",
    "reset",
    "span",
    "trace_snapshot",
]

#: Master switch — module attribute so the disabled check is one load.
_enabled: bool = False

_lock = threading.RLock()
_roots: list[SpanNode] = []
_tls = threading.local()

#: Callbacks fired when a span finishes (see :mod:`repro.obs.profile`).
_span_end_callbacks: list[Callable[["SpanNode"], None]] = []


class SpanNode:
    """One node of the trace tree.

    Attributes
    ----------
    name:
        Dotted stage name (``"thermal"``, ``"pca.eig"``, ...).
    attrs:
        User-attached attributes (JSON-serialisable values).
    start, end:
        ``time.perf_counter()`` stamps; ``end`` is ``None`` while open.
    children:
        Nested spans, in start order.
    error:
        Exception repr when the span body raised, else ``None``.
    """

    __slots__ = ("name", "attrs", "start", "end", "children", "error")

    def __init__(self, name: str, attrs: dict[str, Any] | None = None) -> None:
        self.name = name
        self.attrs: dict[str, Any] = dict(attrs) if attrs else {}
        self.start = time.perf_counter()
        self.end: float | None = None
        self.children: list[SpanNode] = []
        self.error: str | None = None

    @property
    def wall_time(self) -> float:
        """Elapsed seconds (to now for a still-open span)."""
        end = self.end if self.end is not None else time.perf_counter()
        return max(end - self.start, 0.0)

    def set(self, **attrs: Any) -> "SpanNode":
        """Attach attributes to the span; returns ``self`` for chaining."""
        self.attrs.update(attrs)
        return self

    def to_dict(self) -> dict[str, Any]:
        """Plain-dict (JSON-ready) form of this node and its subtree."""
        out: dict[str, Any] = {
            "name": self.name,
            "wall_time_s": self.wall_time,
        }
        if self.attrs:
            out["attrs"] = dict(self.attrs)
        if self.error is not None:
            out["error"] = self.error
        if self.children:
            out["children"] = [child.to_dict() for child in self.children]
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SpanNode({self.name!r}, {self.wall_time:.6f}s)"


class _NoopSpan:
    """Shared do-nothing span for disabled mode (no allocation per call)."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc_info: object) -> bool:
        return False

    def set(self, **attrs: Any) -> "_NoopSpan":
        return self


#: The singleton returned by every ``span(...)`` call while disabled.
NOOP_SPAN = _NoopSpan()


def _stack() -> list[SpanNode]:
    stack = getattr(_tls, "stack", None)
    if stack is None:
        stack = []
        _tls.stack = stack
    return stack


class _SpanContext:
    """Context manager that opens a :class:`SpanNode` on the active stack."""

    __slots__ = ("_name", "_attrs", "_node")

    def __init__(self, name: str, attrs: dict[str, Any]) -> None:
        self._name = name
        self._attrs = attrs
        self._node: SpanNode | None = None

    def __enter__(self) -> SpanNode:
        node = SpanNode(self._name, self._attrs)
        stack = _stack()
        if stack:
            stack[-1].children.append(node)
        else:
            with _lock:
                _roots.append(node)
        stack.append(node)
        self._node = node
        return node

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        _tb: TracebackType | None,
    ) -> bool:
        node = self._node
        assert node is not None
        node.end = time.perf_counter()
        if exc is not None:
            node.error = f"{type(exc).__name__}: {exc}"
        stack = _stack()
        if stack and stack[-1] is node:
            stack.pop()
        elif node in stack:  # pragma: no cover - unbalanced exit guard
            stack.remove(node)
        with _lock:
            callbacks = list(_span_end_callbacks)
        for callback in callbacks:
            callback(node)
        return False


def span(name: str, **attrs: Any) -> _SpanContext | _NoopSpan:
    """A context manager recording one stage of work.

    When tracing is disabled this returns a shared no-op object — no trace
    node is allocated and nothing is recorded.
    """
    if not _enabled:
        return NOOP_SPAN
    return _SpanContext(name, attrs)


def current_span() -> SpanNode | None:
    """The innermost open span of the calling thread (``None`` if none)."""
    if not _enabled:
        return None
    stack = getattr(_tls, "stack", None)
    return stack[-1] if stack else None


def enable() -> None:
    """Turn tracing (and metric collection) on."""
    global _enabled
    _enabled = True


def disable() -> None:
    """Turn tracing off; already-recorded spans are kept until :func:`reset`."""
    global _enabled
    _enabled = False


def is_enabled() -> bool:
    """Whether tracing is currently on."""
    return _enabled


class enabled:
    """Context manager enabling tracing for a scoped block (test helper)."""

    def __init__(self, *, fresh: bool = True) -> None:
        self._fresh = fresh
        self._was_enabled = False

    def __enter__(self) -> None:
        self._was_enabled = _enabled
        if self._fresh:
            reset()
        enable()

    def __exit__(self, *exc_info: object) -> bool:
        if not self._was_enabled:
            disable()
        return False


def reset() -> None:
    """Drop all recorded spans and per-thread stacks."""
    with _lock:
        _roots.clear()
    _tls.stack = []


def trace_snapshot() -> list[dict[str, Any]]:
    """The recorded trace tree as a list of root-span dicts (JSON-ready)."""
    with _lock:
        roots = list(_roots)
    return [node.to_dict() for node in roots]


def _register_span_end(callback: Callable[[SpanNode], None]) -> None:
    with _lock:
        if callback not in _span_end_callbacks:
            _span_end_callbacks.append(callback)


def _unregister_span_end(callback: Callable[[SpanNode], None]) -> None:
    with _lock:
        try:
            _span_end_callbacks.remove(callback)
        except ValueError:
            pass


def _clear_span_end() -> None:
    with _lock:
        _span_end_callbacks.clear()
