"""Structured tracing: nestable spans forming an in-process trace tree.

The analysis pipeline (Fig. 9 of the paper) is a staged flow whose runtime
profile is itself a headline result (Table III).  This module provides the
span primitive every stage reports into:

    with span("blod.characterize", blocks=n_blocks):
        ...

Spans nest (a per-thread stack tracks the active span), record wall-clock
time and user-attached attributes, and aggregate into a thread-safe trace
tree that :func:`trace_snapshot` serialises to plain dicts (and therefore
JSON).

Zero cost when disabled
-----------------------
Tracing is **off** by default.  A module-level switch guards every entry
point; a disabled ``span(...)`` call returns one shared no-op context
manager and allocates *no* trace node, so instrumented hot paths (the
Table III runtime measurements) are unperturbed.  Enable with
:func:`enable` (the CLI does this for ``--trace``).

Thread safety
-------------
Each thread keeps its own active-span stack, so a worker thread started
inside a span opens its own root rather than racing the parent's child
list.  The shared root list and finish-callback registry are guarded by a
lock.

Clock injection
---------------
All span timing goes through a module-level monotonic clock
(:func:`set_clock` / :func:`get_clock`).  The default is
``time.perf_counter``; tests substitute a fake to make timing assertions
deterministic instead of sleep-based.

Cross-process merging
---------------------
Every recorded span carries a short ``span_id``.  A subtree recorded in a
worker process serialises via :meth:`SpanNode.to_dict`, travels back with
the shard results, and re-attaches into the parent's live tree through
:func:`graft` (see :mod:`repro.obs.propagate`), so one job yields one
coherent trace tree regardless of the execution backend.
"""

from __future__ import annotations

import threading
import time
import uuid
from collections.abc import Callable
from types import TracebackType
from typing import Any

__all__ = [
    "SpanNode",
    "current_span",
    "disable",
    "enable",
    "enabled",
    "get_clock",
    "graft",
    "is_enabled",
    "reset",
    "set_clock",
    "span",
    "trace_snapshot",
]

#: Master switch — module attribute so the disabled check is one load.
#: Derived state: ``_base_enabled or _force_count > 0``, maintained under
#: ``_lock`` by :func:`enable`/:func:`disable`/the force-scope helpers.
_enabled: bool = False

_lock = threading.RLock()

#: What the user asked for via :func:`enable`/:func:`disable`.
_base_enabled: bool = False
#: Open force-enable scopes (worker-side subtree capture while the
#: process-global switch is off; see ``repro.obs.propagate``).
_force_count: int = 0
_roots: list[SpanNode] = []
_tls = threading.local()

#: The monotonic clock every span start/end stamp goes through.
_clock: Callable[[], float] = time.perf_counter


def set_clock(clock: Callable[[], float] | None = None) -> None:
    """Replace the span clock (``None`` restores ``time.perf_counter``).

    The clock must be monotonic and return seconds; tests inject a fake to
    make wall-time assertions deterministic.
    """
    global _clock
    with _lock:
        _clock = clock if clock is not None else time.perf_counter


def get_clock() -> Callable[[], float]:
    """The currently installed span clock."""
    return _clock


def _new_span_id() -> str:
    """A short process-unique span id (cheap, collision-safe enough)."""
    return uuid.uuid4().hex[:16]

#: Callbacks fired when a span finishes (see :mod:`repro.obs.profile`).
_span_end_callbacks: list[Callable[["SpanNode"], None]] = []


class SpanNode:
    """One node of the trace tree.

    Attributes
    ----------
    name:
        Dotted stage name (``"thermal"``, ``"pca.eig"``, ...).
    attrs:
        User-attached attributes (JSON-serialisable values).
    start, end:
        ``time.perf_counter()`` stamps; ``end`` is ``None`` while open.
    children:
        Nested spans, in start order.
    error:
        Exception repr when the span body raised, else ``None``.
    span_id:
        Short unique id; lets subtrees recorded in other processes claim
        this span as their parent (see :mod:`repro.obs.propagate`).
    """

    __slots__ = ("name", "attrs", "start", "end", "children", "error", "span_id")

    def __init__(self, name: str, attrs: dict[str, Any] | None = None) -> None:
        self.name = name
        self.attrs: dict[str, Any] = dict(attrs) if attrs else {}
        self.start = _clock()
        self.end: float | None = None
        self.children: list[SpanNode] = []
        self.error: str | None = None
        self.span_id = _new_span_id()

    @property
    def wall_time(self) -> float:
        """Elapsed seconds (to now for a still-open span)."""
        end = self.end if self.end is not None else _clock()
        return max(end - self.start, 0.0)

    def set(self, **attrs: Any) -> "SpanNode":
        """Attach attributes to the span; returns ``self`` for chaining."""
        self.attrs.update(attrs)
        return self

    def to_dict(self) -> dict[str, Any]:
        """Plain-dict (JSON-ready) form of this node and its subtree."""
        out: dict[str, Any] = {
            "name": self.name,
            "span_id": self.span_id,
            "wall_time_s": self.wall_time,
        }
        if self.attrs:
            out["attrs"] = dict(self.attrs)
        if self.error is not None:
            out["error"] = self.error
        if self.children:
            out["children"] = [child.to_dict() for child in self.children]
        return out

    @classmethod
    def from_dict(cls, doc: dict[str, Any]) -> "SpanNode":
        """Rebuild a node (and subtree) from its :meth:`to_dict` form.

        Rehydrated nodes keep their recorded ``wall_time_s`` (start is
        pinned to 0 — perf-counter stamps are not comparable across
        processes) and their original ``span_id``.
        """
        node = cls.__new__(cls)
        node.name = str(doc["name"])
        node.attrs = dict(doc.get("attrs") or {})
        node.start = 0.0
        node.end = float(doc.get("wall_time_s", 0.0))
        node.error = doc.get("error")
        node.span_id = str(doc.get("span_id") or _new_span_id())
        node.children = [cls.from_dict(c) for c in doc.get("children", ())]
        return node

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SpanNode({self.name!r}, {self.wall_time:.6f}s)"


class _NoopSpan:
    """Shared do-nothing span for disabled mode (no allocation per call)."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc_info: object) -> bool:
        return False

    def set(self, **attrs: Any) -> "_NoopSpan":
        return self


#: The singleton returned by every ``span(...)`` call while disabled.
NOOP_SPAN = _NoopSpan()


def _stack() -> list[SpanNode]:
    stack = getattr(_tls, "stack", None)
    if stack is None:
        stack = []
        _tls.stack = stack
    return stack


class _SpanContext:
    """Context manager that opens a :class:`SpanNode` on the active stack."""

    __slots__ = ("_name", "_attrs", "_node")

    def __init__(self, name: str, attrs: dict[str, Any]) -> None:
        self._name = name
        self._attrs = attrs
        self._node: SpanNode | None = None

    def __enter__(self) -> SpanNode:
        node = SpanNode(self._name, self._attrs)
        stack = _stack()
        if stack:
            stack[-1].children.append(node)
        else:
            with _lock:
                _roots.append(node)
        stack.append(node)
        self._node = node
        return node

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        _tb: TracebackType | None,
    ) -> bool:
        node = self._node
        assert node is not None
        node.end = _clock()
        if exc is not None:
            node.error = f"{type(exc).__name__}: {exc}"
        stack = _stack()
        if stack and stack[-1] is node:
            stack.pop()
        elif node in stack:  # pragma: no cover - unbalanced exit guard
            stack.remove(node)
        with _lock:
            callbacks = list(_span_end_callbacks)
        for callback in callbacks:
            callback(node)
        return False


def span(name: str, **attrs: Any) -> _SpanContext | _NoopSpan:
    """A context manager recording one stage of work.

    When tracing is disabled this returns a shared no-op object — no trace
    node is allocated and nothing is recorded.
    """
    if not _enabled:
        return NOOP_SPAN
    return _SpanContext(name, attrs)


def current_span() -> SpanNode | None:
    """The innermost open span of the calling thread (``None`` if none)."""
    if not _enabled:
        return None
    stack = getattr(_tls, "stack", None)
    return stack[-1] if stack else None


def enable() -> None:
    """Turn tracing (and metric collection) on."""
    global _enabled, _base_enabled
    with _lock:
        _base_enabled = True
        _enabled = True


def disable() -> None:
    """Turn tracing off; already-recorded spans are kept until :func:`reset`.

    Tracing stays on while any force-enable scope (a worker capturing a
    detached subtree) is still open; it drops the moment the last scope
    releases.
    """
    global _enabled, _base_enabled
    with _lock:
        _base_enabled = False
        _enabled = _force_count > 0


def _acquire_force() -> None:
    """Force tracing on for one scope, refcounted.

    Concurrent workers each hold their own reference, so one finishing
    early can no longer switch tracing off underneath another that is
    still recording (the race the old save-and-restore pattern had).
    """
    global _enabled, _force_count
    with _lock:
        _force_count += 1
        _enabled = True


def _release_force() -> None:
    """Release one force-enable scope taken by :func:`_acquire_force`."""
    global _enabled, _force_count
    with _lock:
        _force_count = max(0, _force_count - 1)
        _enabled = _base_enabled or _force_count > 0


def is_enabled() -> bool:
    """Whether tracing is currently on."""
    return _enabled


class enabled:
    """Context manager enabling tracing for a scoped block (test helper)."""

    def __init__(self, *, fresh: bool = True) -> None:
        self._fresh = fresh
        self._was_enabled = False

    def __enter__(self) -> None:
        self._was_enabled = _enabled
        if self._fresh:
            reset()
        enable()

    def __exit__(self, *exc_info: object) -> bool:
        if not self._was_enabled:
            disable()
        return False


def reset() -> None:
    """Drop all recorded spans and per-thread stacks."""
    with _lock:
        _roots.clear()
    _tls.stack = []


def trace_snapshot() -> list[dict[str, Any]]:
    """The recorded trace tree as a list of root-span dicts (JSON-ready)."""
    with _lock:
        roots = list(_roots)
    return [node.to_dict() for node in roots]


def graft(docs: list[dict[str, Any]]) -> list[SpanNode]:
    """Attach serialized foreign subtrees under the calling thread's span.

    ``docs`` are :meth:`SpanNode.to_dict` documents shipped back from a
    worker process/thread.  They are rehydrated and appended as children
    of the current open span (or as new roots when none is open), merging
    worker-side spans into the caller's live trace tree.  No-op while
    tracing is disabled; returns the grafted nodes.
    """
    if not _enabled or not docs:
        return []
    nodes = [SpanNode.from_dict(doc) for doc in docs]
    parent = current_span()
    if parent is not None:
        parent.children.extend(nodes)
    else:
        with _lock:
            _roots.extend(nodes)
    return nodes


def _register_span_end(callback: Callable[[SpanNode], None]) -> None:
    with _lock:
        if callback not in _span_end_callbacks:
            _span_end_callbacks.append(callback)


def _unregister_span_end(callback: Callable[[SpanNode], None]) -> None:
    with _lock:
        try:
            _span_end_callbacks.remove(callback)
        except ValueError:
            pass


def _clear_span_end() -> None:
    with _lock:
        _span_end_callbacks.clear()
