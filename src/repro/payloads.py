"""Canonical JSON payload builders shared by the CLI and the service.

``repro lifetime/curve/report --json`` and the HTTP job API
(:mod:`repro.service`) must return **byte-identical** documents for the
same design and parameters, so the payloads are built here, in one place,
and both front ends serialise them with :func:`dump_payload`.

Every envelope carries two provenance fields:

``version``
    The library version (:data:`repro.__version__`, sourced from package
    metadata) that produced the document.
``schema_version``
    :data:`PAYLOAD_SCHEMA_VERSION`, bumped on any breaking change to a
    payload layout, so service clients can detect format drift without
    parsing version strings.
"""

from __future__ import annotations

import json
from collections.abc import Callable
from typing import TYPE_CHECKING, Any

import numpy as np

from repro import obs
from repro.units import hours_to_years

if TYPE_CHECKING:
    from repro.core.analyzer import ReliabilityAnalyzer

__all__ = [
    "PAYLOAD_SCHEMA_VERSION",
    "curve_payload",
    "dump_payload",
    "execution_info",
    "lifetime_payload",
    "mc_shards_payload",
    "report_payload",
    "scenario_payload",
    "stamp_envelope",
]

#: Bump on any breaking change to a payload layout (key renames/removals).
PAYLOAD_SCHEMA_VERSION = 1


def stamp_envelope(payload: dict[str, Any]) -> dict[str, Any]:
    """Add the ``version``/``schema_version`` provenance fields in place.

    Existing values are preserved, so builders that already stamped a
    payload pass through unchanged.
    """
    from repro import __version__

    payload.setdefault("schema_version", PAYLOAD_SCHEMA_VERSION)
    payload.setdefault("version", __version__)
    return payload


def dump_payload(payload: dict[str, Any]) -> str:
    """The one serialisation both the CLI and the service use."""
    return json.dumps(payload, indent=2)


def execution_info(analyzer: ReliabilityAnalyzer) -> dict[str, Any]:
    """The backend/worker summary embedded in analysis payloads."""
    from repro.kernels.config import precision

    backend = analyzer.exec_backend
    return {
        "backend": backend.name,
        "jobs": backend.jobs,
        "precision": precision(),
    }


def lifetime_payload(
    analyzer: ReliabilityAnalyzer,
    ppm: float,
    methods: tuple[str, ...] | list[str],
    mc_chips: int = 500,
    seed: int = 0,
    checkpoint_path: str | None = None,
    cancel_check: Callable[[], bool] | None = None,
    mc_lifetime_fn: Callable[[], float] | None = None,
) -> dict[str, Any]:
    """The ``repro lifetime`` document: hours and years per method.

    ``checkpoint_path``/``cancel_check`` apply to the MC reference method
    only (the closed-form methods finish in milliseconds); they let the
    service checkpoint long MC jobs and interrupt them cooperatively.

    ``mc_lifetime_fn`` substitutes the MC evaluation itself — the fleet
    coordinator passes a closure that reduces remotely-computed shard
    payloads.  Because the substituted value is bit-identical to the
    in-process one, the resulting document is byte-identical too; every
    other field is still built here, in the one shared place.
    """
    results = {}
    for method in methods:
        if method == "mc":
            if mc_lifetime_fn is not None:
                value = mc_lifetime_fn()
            else:
                value = analyzer.mc_lifetime(
                    ppm,
                    n_chips=mc_chips,
                    seed=seed,
                    checkpoint_path=checkpoint_path,
                    cancel_check=cancel_check,
                )
        else:
            value = analyzer.lifetime(ppm, method=method)
        results[method] = value
    return stamp_envelope(
        {
            "ppm": ppm,
            "lifetime_hours": results,
            "lifetime_years": {
                m: hours_to_years(v) for m, v in results.items()
            },
            "execution": execution_info(analyzer),
        }
    )


def mc_shards_payload(
    analyzer: ReliabilityAnalyzer,
    times: list[float] | np.ndarray,
    shards: tuple[int, ...] | list[int],
    mc_chips: int = 500,
    seed: int = 0,
    checkpoint_path: str | None = None,
    cancel_check: Callable[[], bool] | None = None,
) -> dict[str, Any]:
    """The worker-side ``mc_shards`` job document for :mod:`repro.fleet`.

    Evaluates only the listed shard indices out of the deterministic plan
    for ``(seed, mc_chips)`` and ships the per-shard partial sums as JSON
    lists — Python's float serialisation round-trips float64 exactly, so
    the coordinator's merged reduction stays bit-identical to a serial
    run.
    """
    times_arr = np.asarray(times, dtype=float)
    payload_map = analyzer.mc_shard_payloads(
        times_arr,
        n_chips=mc_chips,
        seed=seed,
        shard_indices=list(shards),
        checkpoint_path=checkpoint_path,
        cancel_check=cancel_check,
    )
    return stamp_envelope(
        {
            "n_chips": mc_chips,
            "seed": seed,
            "shard_size": analyzer.mc_engine.shard_size,
            "times_hours": times_arr.tolist(),
            "shards": {
                str(index): {
                    "total": np.asarray(payload["total"]).tolist(),
                    "total_sq": np.asarray(payload["total_sq"]).tolist(),
                    "n_valid": int(np.asarray(payload["n_valid"])),
                    "n_bad": int(np.asarray(payload["n_bad"])),
                }
                for index, payload in sorted(payload_map.items())
            },
            "execution": execution_info(analyzer),
        }
    )


def scenario_payload(
    analyzer: ReliabilityAnalyzer,
    scenario: Any,
    ppm: float,
) -> dict[str, Any]:
    """The ``repro scenario run`` document: lifetime under a schedule.

    Layout mirrors :func:`lifetime_payload` (``st_fast`` is the one
    method scenarios evaluate) with one extra ``scenario`` key between
    ``lifetime_years`` and ``execution`` carrying the canonical phase
    schedule, the resolved per-phase block temperatures and the
    per-mechanism / per-phase damage attribution.  A single steady-phase
    OBD-only scenario therefore reduces to the ``repro lifetime`` payload
    byte-for-byte once the ``scenario`` key is dropped.
    """
    from repro.scenario.engine import ScenarioAnalyzer

    evaluation = ScenarioAnalyzer(analyzer, scenario)
    lifetime = evaluation.lifetime(ppm)
    return stamp_envelope(
        {
            "ppm": ppm,
            "lifetime_hours": {"st_fast": lifetime},
            "lifetime_years": {"st_fast": hours_to_years(lifetime)},
            "scenario": {
                **scenario.as_dict(),
                "phase_temperatures_c": [
                    temps.tolist()
                    for temps in evaluation.phase_temperatures
                ],
                "mechanism_damage": evaluation.mechanism_damage(lifetime),
                "phase_damage": evaluation.phase_damage(lifetime),
            },
            "execution": execution_info(analyzer),
        }
    )


def curve_payload(
    analyzer: ReliabilityAnalyzer,
    method: str,
    t_min: float,
    t_max: float,
    points: int = 20,
) -> dict[str, Any]:
    """The ``repro curve`` document: reliability over a log-time range."""
    times = np.logspace(np.log10(t_min), np.log10(t_max), points)
    reliability = np.atleast_1d(analyzer.reliability(times, method=method))
    return stamp_envelope(
        {
            "method": method,
            "times_hours": times.tolist(),
            "reliability": reliability.tolist(),
            "execution": execution_info(analyzer),
        }
    )


def report_payload(
    analyzer_factory: Callable[[], ReliabilityAnalyzer],
) -> dict[str, Any]:
    """The ``repro report`` document: the one-page text design report.

    Takes a zero-argument factory rather than a built analyzer: the
    report carries a stage-timing appendix, so observability must be on
    *before* the analyzer's thermal/PCA/BLOD setup runs (unless the
    caller already owns the observability state).
    """
    from repro.report import design_report

    owns_obs = not obs.is_enabled()
    if owns_obs:
        obs.reset()
        obs.enable()
    try:
        analyzer = analyzer_factory()
        text = design_report(analyzer)
        execution = execution_info(analyzer)
        text = (
            f"{text}\n\n{obs.timing_summary()}\n"
            f"execution backend: {execution['backend']} "
            f"(jobs={execution['jobs']})"
        )
    finally:
        if owns_obs:
            obs.disable()
            obs.reset()
    return stamp_envelope({"report": text, "execution": execution})
