"""Canonical JSON payload builders shared by the CLI and the service.

``repro lifetime/curve/report --json`` and the HTTP job API
(:mod:`repro.service`) must return **byte-identical** documents for the
same design and parameters, so the payloads are built here, in one place,
and both front ends serialise them with :func:`dump_payload`.

Every envelope carries two provenance fields:

``version``
    The library version (:data:`repro.__version__`, sourced from package
    metadata) that produced the document.
``schema_version``
    :data:`PAYLOAD_SCHEMA_VERSION`, bumped on any breaking change to a
    payload layout, so service clients can detect format drift without
    parsing version strings.
"""

from __future__ import annotations

import json
from collections.abc import Callable
from typing import TYPE_CHECKING, Any

import numpy as np

from repro import obs
from repro.units import hours_to_years

if TYPE_CHECKING:
    from repro.core.analyzer import ReliabilityAnalyzer

__all__ = [
    "PAYLOAD_SCHEMA_VERSION",
    "curve_payload",
    "dump_payload",
    "execution_info",
    "lifetime_payload",
    "report_payload",
    "stamp_envelope",
]

#: Bump on any breaking change to a payload layout (key renames/removals).
PAYLOAD_SCHEMA_VERSION = 1


def stamp_envelope(payload: dict[str, Any]) -> dict[str, Any]:
    """Add the ``version``/``schema_version`` provenance fields in place.

    Existing values are preserved, so builders that already stamped a
    payload pass through unchanged.
    """
    from repro import __version__

    payload.setdefault("schema_version", PAYLOAD_SCHEMA_VERSION)
    payload.setdefault("version", __version__)
    return payload


def dump_payload(payload: dict[str, Any]) -> str:
    """The one serialisation both the CLI and the service use."""
    return json.dumps(payload, indent=2)


def execution_info(analyzer: ReliabilityAnalyzer) -> dict[str, Any]:
    """The backend/worker summary embedded in analysis payloads."""
    backend = analyzer.exec_backend
    return {"backend": backend.name, "jobs": backend.jobs}


def lifetime_payload(
    analyzer: ReliabilityAnalyzer,
    ppm: float,
    methods: tuple[str, ...] | list[str],
    mc_chips: int = 500,
    seed: int = 0,
    checkpoint_path: str | None = None,
    cancel_check: Callable[[], bool] | None = None,
) -> dict[str, Any]:
    """The ``repro lifetime`` document: hours and years per method.

    ``checkpoint_path``/``cancel_check`` apply to the MC reference method
    only (the closed-form methods finish in milliseconds); they let the
    service checkpoint long MC jobs and interrupt them cooperatively.
    """
    results = {}
    for method in methods:
        if method == "mc":
            value = analyzer.mc_lifetime(
                ppm,
                n_chips=mc_chips,
                seed=seed,
                checkpoint_path=checkpoint_path,
                cancel_check=cancel_check,
            )
        else:
            value = analyzer.lifetime(ppm, method=method)
        results[method] = value
    return stamp_envelope(
        {
            "ppm": ppm,
            "lifetime_hours": results,
            "lifetime_years": {
                m: hours_to_years(v) for m, v in results.items()
            },
            "execution": execution_info(analyzer),
        }
    )


def curve_payload(
    analyzer: ReliabilityAnalyzer,
    method: str,
    t_min: float,
    t_max: float,
    points: int = 20,
) -> dict[str, Any]:
    """The ``repro curve`` document: reliability over a log-time range."""
    times = np.logspace(np.log10(t_min), np.log10(t_max), points)
    reliability = np.atleast_1d(analyzer.reliability(times, method=method))
    return stamp_envelope(
        {
            "method": method,
            "times_hours": times.tolist(),
            "reliability": reliability.tolist(),
            "execution": execution_info(analyzer),
        }
    )


def report_payload(
    analyzer_factory: Callable[[], ReliabilityAnalyzer],
) -> dict[str, Any]:
    """The ``repro report`` document: the one-page text design report.

    Takes a zero-argument factory rather than a built analyzer: the
    report carries a stage-timing appendix, so observability must be on
    *before* the analyzer's thermal/PCA/BLOD setup runs (unless the
    caller already owns the observability state).
    """
    from repro.report import design_report

    owns_obs = not obs.is_enabled()
    if owns_obs:
        obs.reset()
        obs.enable()
    try:
        analyzer = analyzer_factory()
        text = design_report(analyzer)
        execution = execution_info(analyzer)
        text = (
            f"{text}\n\n{obs.timing_summary()}\n"
            f"execution backend: {execution['backend']} "
            f"(jobs={execution['jobs']})"
        )
    finally:
        if owns_obs:
            obs.disable()
            obs.reset()
    return stamp_envelope({"report": text, "execution": execution})
