"""Architectural power modeling (Wattch-like substrate)."""
