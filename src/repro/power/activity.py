"""Workload activity profiles for the architectural power model.

Wattch [35] derives per-block power from per-structure access counts of a
simulated workload. Here a workload is reduced to its essence for thermal
purposes: a per-block *activity factor* in [0, 1] that scales dynamic
power. Presets model the usual suspects (integer-heavy, FP-heavy,
memory-bound, idle); custom profiles are plain dictionaries.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.chip.floorplan import Floorplan
from repro.errors import ConfigurationError

#: Block-name keywords used to classify blocks into activity classes.
_CLASS_KEYWORDS = {
    "cache": ("cache", "l2", "sram", "mem"),
    "integer": ("int", "alu", "exec", "ldstq", "iq"),
    "floating": ("fp",),
    "frontend": ("bpred", "itb", "dtb", "map", "fetch", "decode"),
}

#: Activity factor per class per workload preset.
_PRESETS: dict[str, dict[str, float]] = {
    "typical": {
        "cache": 0.35,
        "integer": 0.75,
        "floating": 0.45,
        "frontend": 0.55,
        "other": 0.50,
    },
    "int_heavy": {
        "cache": 0.40,
        "integer": 0.95,
        "floating": 0.05,
        "frontend": 0.70,
        "other": 0.50,
    },
    "fp_heavy": {
        "cache": 0.40,
        "integer": 0.35,
        "floating": 0.95,
        "frontend": 0.60,
        "other": 0.50,
    },
    "memory_bound": {
        "cache": 0.80,
        "integer": 0.25,
        "floating": 0.10,
        "frontend": 0.35,
        "other": 0.30,
    },
    "idle": {
        "cache": 0.05,
        "integer": 0.05,
        "floating": 0.02,
        "frontend": 0.05,
        "other": 0.05,
    },
}


def classify_block(name: str) -> str:
    """Best-effort activity class of a block from its name."""
    lowered = name.lower()
    for cls, keywords in _CLASS_KEYWORDS.items():
        if any(keyword in lowered for keyword in keywords):
            return cls
    return "other"


@dataclass(frozen=True)
class ActivityProfile:
    """Per-block activity factors for one workload.

    Missing blocks fall back to the profile's default factor.
    """

    name: str
    factors: dict[str, float] = field(default_factory=dict)
    default: float = 0.5

    def __post_init__(self) -> None:
        for block, factor in self.factors.items():
            _check_factor(block, factor)
        _check_factor("<default>", self.default)

    @classmethod
    def preset(cls, preset: str, floorplan: Floorplan) -> "ActivityProfile":
        """Build a profile for a floorplan from a named preset."""
        if preset not in _PRESETS:
            raise ConfigurationError(
                f"unknown preset {preset!r}; expected one of {sorted(_PRESETS)}"
            )
        table = _PRESETS[preset]
        factors = {
            block.name: table[classify_block(block.name)]
            for block in floorplan.blocks
        }
        return cls(name=preset, factors=factors, default=table["other"])

    def factor(self, block_name: str) -> float:
        """The activity factor for one block."""
        return self.factors.get(block_name, self.default)


def _check_factor(label: str, factor: float) -> None:
    if not 0.0 <= factor <= 1.0:
        raise ConfigurationError(
            f"activity factor for {label!r} must be in [0, 1], got {factor}"
        )


def available_presets() -> tuple[str, ...]:
    """Names of the built-in workload presets."""
    return tuple(sorted(_PRESETS))
