"""Power-thermal fixed-point iteration.

Leakage grows with temperature and temperature grows with power, so block
powers and the thermal profile must be solved together. The loop converges
in a handful of iterations for any physical operating point; a failure to
converge indicates thermal runaway for the given package.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.chip.floorplan import Floorplan
from repro.errors import SolverError
from repro.obs import metrics
from repro.obs.logging import get_logger
from repro.obs.trace import span
from repro.power.activity import ActivityProfile
from repro.power.model import BlockPowerModel
from repro.thermal.hotspot import HotSpotLite, ThermalResult

logger = get_logger("power.loop")


@dataclass(frozen=True)
class PowerThermalSolution:
    """Converged workload power/temperature operating point.

    Attributes
    ----------
    floorplan:
        The input floorplan with converged per-block powers filled in.
    thermal:
        The matching thermal analysis result.
    iterations:
        Fixed-point iterations used.
    """

    floorplan: Floorplan
    thermal: ThermalResult
    iterations: int

    @property
    def block_temperatures(self) -> np.ndarray:
        """Converged per-block temperatures, celsius, floorplan order."""
        return self.thermal.block_temperatures


def solve_power_thermal(
    floorplan: Floorplan,
    profile: ActivityProfile,
    power_model: BlockPowerModel | None = None,
    thermal_model: HotSpotLite | None = None,
    max_iterations: int = 25,
    tolerance: float = 0.05,
) -> PowerThermalSolution:
    """Solve the coupled power/temperature fixed point for a workload.

    Parameters
    ----------
    floorplan:
        Design under analysis (block powers in the input are ignored and
        recomputed from the activity profile).
    profile:
        Workload activity profile.
    power_model, thermal_model:
        Substrate models; defaults are constructed when omitted.
    max_iterations:
        Iteration cap; exceeding it raises :class:`SolverError` (thermal
        runaway or an unphysical configuration).
    tolerance:
        Convergence threshold on the max block-temperature change, celsius.
    """
    power_model = power_model if power_model is not None else BlockPowerModel()
    thermal_model = thermal_model if thermal_model is not None else HotSpotLite()

    temperatures = np.full(
        floorplan.n_blocks, thermal_model.package.ambient_temperature
    )
    current = floorplan
    thermal: ThermalResult | None = None
    with span("thermal.power_loop", blocks=floorplan.n_blocks) as loop_span:
        for iteration in range(1, max_iterations + 1):
            powers = power_model.floorplan_powers(
                floorplan, profile, temperatures
            )
            current = floorplan.with_powers(powers)
            thermal = thermal_model.analyze(current)
            change = float(
                np.max(np.abs(thermal.block_temperatures - temperatures))
            )
            temperatures = thermal.block_temperatures
            metrics.inc("thermal.iterations")
            logger.debug(
                "power-thermal iteration %d: max block change %.3f degC",
                iteration,
                change,
            )
            if change <= tolerance:
                loop_span.set(iterations=iteration)
                return PowerThermalSolution(
                    floorplan=current, thermal=thermal, iterations=iteration
                )
    raise SolverError(
        f"power-thermal loop did not converge in {max_iterations} iterations "
        "(possible thermal runaway for this package)"
    )
