"""Architectural block power model (Wattch-like substrate).

Per-block power is the classic decomposition

    P = activity * C_eff_density * area * Vdd^2 * f   (dynamic)
      + leak_density(T) * area                        (leakage)

with an exponential temperature dependence for subthreshold leakage. The
absolute calibration constants are representative of a high-performance
process; only the *relative* block powers and the resulting temperature
spread matter to the reliability analysis.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.chip.floorplan import Floorplan
from repro.errors import ConfigurationError
from repro.power.activity import ActivityProfile


@dataclass(frozen=True)
class PowerModelParams:
    """Calibration constants of the block power model.

    Parameters
    ----------
    switched_cap_density:
        Effective switched capacitance per unit area at full activity,
        F/mm^2.
    frequency:
        Clock frequency in Hz.
    vdd:
        Supply voltage in volts.
    leak_density_ref:
        Leakage power density at the reference temperature, W/mm^2.
    leak_temp_ref:
        Reference temperature for leakage, celsius.
    leak_temp_slope:
        Exponential leakage-temperature coefficient, 1/K (leakage roughly
        doubles every ~20-30 K, i.e. slope ~0.025-0.035).
    """

    switched_cap_density: float = 2.5e-10
    frequency: float = 2.0e9
    vdd: float = 1.2
    leak_density_ref: float = 0.03
    leak_temp_ref: float = 60.0
    leak_temp_slope: float = 0.02

    def __post_init__(self) -> None:
        for name in (
            "switched_cap_density",
            "frequency",
            "vdd",
            "leak_density_ref",
        ):
            if getattr(self, name) <= 0.0:
                raise ConfigurationError(f"{name} must be positive")
        if self.leak_temp_slope < 0.0:
            raise ConfigurationError("leak_temp_slope must be non-negative")


class BlockPowerModel:
    """Computes per-block power from activity and temperature."""

    def __init__(self, params: PowerModelParams | None = None) -> None:
        self.params = params if params is not None else PowerModelParams()

    def dynamic_power(self, area: float, activity: float) -> float:
        """Dynamic power of a block in watts."""
        p = self.params
        return activity * p.switched_cap_density * area * p.vdd**2 * p.frequency

    def leakage_power(self, area: float, temperature: float) -> float:
        """Leakage power of a block at ``temperature`` (celsius), watts."""
        p = self.params
        factor = np.exp(p.leak_temp_slope * (temperature - p.leak_temp_ref))
        return p.leak_density_ref * area * float(factor)

    def block_power(
        self, area: float, activity: float, temperature: float
    ) -> float:
        """Total block power: dynamic plus leakage."""
        return self.dynamic_power(area, activity) + self.leakage_power(
            area, temperature
        )

    def floorplan_powers(
        self,
        floorplan: Floorplan,
        profile: ActivityProfile,
        block_temperatures: np.ndarray | None = None,
    ) -> dict[str, float]:
        """Per-block powers for a floorplan under a workload profile.

        ``block_temperatures`` (celsius, floorplan order) feeds the leakage
        term; defaults to the leakage reference temperature everywhere.
        """
        if block_temperatures is None:
            block_temperatures = np.full(
                floorplan.n_blocks, self.params.leak_temp_ref
            )
        block_temperatures = np.asarray(block_temperatures, dtype=float)
        if block_temperatures.shape != (floorplan.n_blocks,):
            raise ConfigurationError(
                f"expected {floorplan.n_blocks} block temperatures, got "
                f"shape {block_temperatures.shape}"
            )
        return {
            block.name: self.block_power(
                block.rect.area,
                profile.factor(block.name),
                float(block_temperatures[j]),
            )
            for j, block in enumerate(floorplan.blocks)
        }
