"""Plain-text rendering of analysis artefacts.

Terminal-friendly views of the objects the library produces: aligned
tables, ASCII heat maps of temperature fields, log-scale sparklines of
reliability curves, and a one-stop design report. No plotting dependency —
these render anywhere a CLI runs, and the benchmark harness writes them
into its result files.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.core.analyzer import ReliabilityAnalyzer
from repro.errors import ConfigurationError
from repro.thermal.solver import TemperatureField
from repro.units import hours_to_years

#: Character ramp used by the heat-map and sparkline renderers.
_RAMP = " .:-=+*#%@"


def format_table(header: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render an aligned text table with a separator under the header."""
    if not header:
        raise ConfigurationError("table needs a header")
    str_rows = [[str(cell) for cell in row] for row in rows]
    for row in str_rows:
        if len(row) != len(header):
            raise ConfigurationError(
                f"row width {len(row)} does not match header {len(header)}"
            )
    widths = [
        max(len(str(header[i])), *(len(r[i]) for r in str_rows))
        if str_rows
        else len(str(header[i]))
        for i in range(len(header))
    ]
    fmt = "  ".join(f"{{:>{w}}}" for w in widths)
    lines = [fmt.format(*[str(h) for h in header])]
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(fmt.format(*row) for row in str_rows)
    return "\n".join(lines)


def _ramp_char(value: float, lo: float, hi: float) -> str:
    span = max(hi - lo, 1e-300)
    index = int(np.clip((value - lo) / span, 0.0, 1.0) * (len(_RAMP) - 1))
    return _RAMP[index]


def heat_map(
    field: TemperatureField,
    max_width: int = 64,
    legend: bool = True,
) -> str:
    """An ASCII rendering of a temperature field (hotter = denser glyph).

    The map is printed with the die's y axis pointing up (row 0 of the
    output is the top of the die).
    """
    if max_width < 4:
        raise ConfigurationError("max_width must be at least 4")
    image = field.as_image()
    step_x = max(1, int(np.ceil(image.shape[1] / max_width)))
    step_y = max(1, int(np.ceil(image.shape[0] / (max_width // 2))))
    coarse = image[::step_y, ::step_x]
    lo, hi = float(coarse.min()), float(coarse.max())
    lines = [
        "".join(_ramp_char(v, lo, hi) for v in row) for row in coarse[::-1]
    ]
    if legend:
        lines.append(f"[{lo:.1f} degC '{_RAMP[0]}' .. {hi:.1f} degC '{_RAMP[-1]}']")
    return "\n".join(lines)


def reliability_sparkline(
    times: np.ndarray,
    reliability: np.ndarray,
    width: int = 64,
) -> str:
    """A log-failure sparkline of a reliability curve."""
    times = np.asarray(times, dtype=float)
    reliability = np.asarray(reliability, dtype=float)
    if times.shape != reliability.shape or times.ndim != 1 or times.size < 2:
        raise ConfigurationError("need matching 1-D curve arrays (>= 2 points)")
    failure = np.clip(1.0 - reliability, 1e-300, 1.0)
    log_f = np.log10(failure)
    step = max(1, int(np.ceil(times.size / width)))
    values = log_f[::step]
    lo, hi = float(values.min()), float(values.max())
    line = "".join(_ramp_char(v, lo, hi) for v in values)
    return (
        f"{line}\n"
        f"[t: {times[0]:.2e}..{times[-1]:.2e} h | "
        f"1-R: 1e{lo:.1f}..1e{hi:.1f}]"
    )


def design_report(
    analyzer: ReliabilityAnalyzer,
    ppms: Sequence[float] = (1.0, 10.0, 100.0),
    methods: Sequence[str] = ("st_fast", "temp_unaware", "guard"),
) -> str:
    """A complete one-page text report for a prepared design analysis.

    Sections: design summary, thermal profile (table + map when a thermal
    solve ran), per-method ppm lifetimes, and the per-block failure
    budget at the first ppm target.
    """
    floorplan = analyzer.floorplan
    lines: list[str] = []
    lines.append(
        f"design: {floorplan.n_blocks} blocks, "
        f"{floorplan.n_devices:,} devices, "
        f"{floorplan.total_power:.1f} W"
    )
    lines.append(
        f"variation: {analyzer.budget.nominal_thickness} nm nominal, "
        f"3sigma/u0 = {analyzer.budget.three_sigma_ratio:.1%}, "
        f"rho_dist = {analyzer.config.rho_dist}"
    )
    lines.append("")

    temps = analyzer.block_temperatures
    order = np.argsort(temps)[::-1]
    lines.append("thermal profile (hottest first):")
    lines.append(
        format_table(
            ["block", "T (degC)"],
            [
                [floorplan.block_names[j], f"{temps[j]:.1f}"]
                for j in order
            ],
        )
    )
    if analyzer.thermal is not None and analyzer.thermal.field.spread > 0.0:
        lines.append("")
        lines.append(heat_map(analyzer.thermal.field))
    lines.append("")

    rows = []
    for method in methods:
        cells = [method]
        for ppm in ppms:
            lifetime = analyzer.lifetime(ppm, method=method)
            cells.append(f"{hours_to_years(lifetime):.1f}y")
        rows.append(cells)
    lines.append("lifetimes:")
    lines.append(
        format_table(
            ["method", *[f"{p:g} ppm" for p in ppms]],
            rows,
        )
    )
    lines.append("")

    t_ref = analyzer.lifetime(ppms[0], method="st_fast")
    failures = analyzer.st_fast.block_failure_probabilities(
        np.array([t_ref])
    )[:, 0]
    shares = failures / max(failures.sum(), 1e-300)
    lines.append(
        f"failure budget at the {ppms[0]:g}-ppm lifetime (largest first):"
    )
    budget_order = np.argsort(shares)[::-1]
    lines.append(
        format_table(
            ["block", "share"],
            [
                [floorplan.block_names[j], f"{shares[j]:.1%}"]
                for j in budget_order[: min(10, len(shares))]
            ],
        )
    )
    return "\n".join(lines)
