"""Piecewise stress scenarios over the lifetime analysis.

- :mod:`repro.scenario.schedule` — the :class:`Scenario` /
  :class:`StressPhase` document model (JSON round-trippable).
- :mod:`repro.scenario.effective` — the cumulative-exposure
  effective-age math shared with :mod:`repro.core.mission`.
- :mod:`repro.scenario.engine` — :class:`ScenarioAnalyzer`, evaluating a
  scenario against a prepared design analysis.
"""

from repro.scenario.effective import (
    collapse_to_st_fast,
    effective_block_params,
    phase_dose_shares,
)
from repro.scenario.engine import ScenarioAnalyzer, scenario_analyzer
from repro.scenario.schedule import Scenario, StressPhase

__all__ = [
    "Scenario",
    "ScenarioAnalyzer",
    "StressPhase",
    "collapse_to_st_fast",
    "effective_block_params",
    "phase_dose_shares",
    "scenario_analyzer",
]
