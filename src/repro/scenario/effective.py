"""Cumulative-exposure effective-age math, in one place.

The library's one damage model for time-varying stress: oxide defects
(and the other mechanisms' wearout) accumulate at a per-condition rate,
so time spent at condition ``p`` advances a block's effective age at the
speed ratio ``alpha_ref / alpha_p``.  For a block whose conditions share
the Weibull slope coefficient the mixture collapses *exactly* to a single
equivalent condition,

    1 / alpha_eff_j = sum_p  w_p / alpha_{j,p}

(the weight-averaged harmonic mean).  The slope coefficient ``b`` varies
only weakly with temperature (|db/b| ~ 1-2 % across realistic profiles),
so the effective slope is the weighted mean — the one approximation of
the collapse, quantified in the tests and documented in
``docs/scenarios.md``.

Both composition styles build on these functions: unordered residency
fractions (:class:`repro.core.mission.MissionProfile`, weights = time
fractions) and ordered phase schedules (:mod:`repro.scenario`, weights =
normalised durations).
"""

from __future__ import annotations

import numpy as np

from repro.core.ensemble import BlockReliability, StFastAnalyzer
from repro.errors import ConfigurationError

__all__ = [
    "collapse_to_st_fast",
    "effective_block_params",
    "phase_dose_shares",
]


def effective_block_params(
    fractions: np.ndarray, alphas: np.ndarray, bs: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Cumulative-exposure effective ``(alpha, b)`` per block.

    Parameters
    ----------
    fractions:
        ``(n_phases,)`` time fractions (or any positive weights summing
        to one).
    alphas, bs:
        ``(n_phases, n_blocks)`` per-phase per-block Weibull parameters.

    Returns
    -------
    ``(alpha_eff, b_eff)`` arrays of shape ``(n_blocks,)``:
    harmonic-mean characteristic life and mean slope coefficient.
    """
    fractions = np.asarray(fractions, dtype=float)
    alphas = np.asarray(alphas, dtype=float)
    bs = np.asarray(bs, dtype=float)
    if alphas.ndim != 2 or alphas.shape != bs.shape:
        raise ConfigurationError(
            "alphas and bs must share shape (n_phases, n_blocks)"
        )
    if fractions.shape != (alphas.shape[0],):
        raise ConfigurationError("one fraction per phase is required")
    if np.any(fractions <= 0.0):
        raise ConfigurationError("phase fractions must be positive")
    if np.any(alphas <= 0.0) or np.any(bs <= 0.0):
        raise ConfigurationError("alphas and bs must be positive")
    alpha_eff = 1.0 / (fractions @ (1.0 / alphas))
    b_eff = fractions @ bs
    return alpha_eff, b_eff


def phase_dose_shares(
    fractions: np.ndarray, alphas: np.ndarray
) -> np.ndarray:
    """``(n_phases, n_blocks)`` share of each block's damage per phase.

    Under cumulative exposure the dose rate of phase ``p`` in block ``j``
    is ``w_p / alpha_{j,p}``; shares are normalised per block.  A
    reliability manager uses this to see *which phase is aging which
    block*.
    """
    fractions = np.asarray(fractions, dtype=float)
    alphas = np.asarray(alphas, dtype=float)
    rates = fractions[:, None] / alphas
    return rates / rates.sum(axis=0, keepdims=True)


def collapse_to_st_fast(
    blocks: list[BlockReliability],
    fractions: np.ndarray,
    alphas: np.ndarray,
    bs: np.ndarray,
    l0: int = 10,
    tail: float = 1e-6,
    rule: str = "midpoint",
    include_residual_fluctuation: bool = True,
) -> tuple[list[BlockReliability], StFastAnalyzer]:
    """Collapse a weighted phase mixture into one ``st_fast`` analyzer.

    Builds the per-block effective ``(alpha, b)`` with
    :func:`effective_block_params` (reusing each block's BLOD — the
    process variation does not change with the workload) and wraps them
    in a standard :class:`StFastAnalyzer`, so the whole closed-form
    machinery of the paper applies unchanged: a mixture analysis costs
    exactly one ``st_fast`` evaluation.
    """
    alpha_eff, b_eff = effective_block_params(fractions, alphas, bs)
    if len(blocks) != alpha_eff.size:
        raise ConfigurationError(
            f"expected parameters for {len(blocks)} blocks, "
            f"got {alpha_eff.size}"
        )
    effective_blocks = [
        BlockReliability(blod=block.blod, alpha=float(a), b=float(b))
        for block, a, b in zip(blocks, alpha_eff, b_eff, strict=True)
    ]
    return effective_blocks, StFastAnalyzer(
        effective_blocks,
        l0=l0,
        tail=tail,
        rule=rule,
        include_residual_fluctuation=include_residual_fluctuation,
    )
