"""Scenario evaluation: phase schedules x mechanisms -> one lifetime.

:class:`ScenarioAnalyzer` sits on top of a prepared
:class:`~repro.core.analyzer.ReliabilityAnalyzer` (which owns the
floorplan, the BLOD characterisation and the thermal reference point) and
evaluates a :class:`~repro.scenario.schedule.Scenario` against it:

1. Each phase's stress resolves to per-block temperatures — explicit
   values, a power-map re-solve through the thermal layer (the LU factor
   cache makes phase ``p > 1`` a back-substitution, same grid + package),
   or the design's own operating point.
2. Every mechanism in the scenario maps each phase's stress onto
   per-block ``(alpha, b)`` pairs; the (mechanism x block) entries share
   the host's BLODs — process variation does not change with the
   workload — and race in one first-order weakest-link sum (eq. (18)).
3. Phases compose by cumulative-exposure effective-time accumulation
   (:mod:`repro.scenario.effective`):

   - a single ordered phase evaluates the entries *directly* (their true
     ``(alpha, b)``), so an OBD-only steady scenario is bit-identical to
     the paper's single-condition analysis;
   - a residency mixture collapses exactly to one equivalent condition
     (harmonic-mean ``alpha``, mean-slope ``b``);
   - an ordered multi-phase schedule accumulates per-entry dose
     ``s_e(t) = sum_p min(d_p, ...) / alpha_{e,p}`` piecewise-linearly
     and evaluates the entries at unit characteristic life in dose
     coordinates, with the final (open-ended) phase's slope as the
     common Weibull slope — the b-slope approximation documented in
     ``docs/scenarios.md``.
"""

from __future__ import annotations

import numpy as np

from repro.core.analyzer import ReliabilityAnalyzer
from repro.core.ensemble import BlockReliability, StFastAnalyzer
from repro.core.lifetime import ppm_to_reliability, solve_lifetime
from repro.errors import ConfigurationError
from repro.kernels.config import fast_paths_enabled
from repro.kernels.survival import batched_rule_expectations
from repro.mechanisms import (
    FailureMechanism,
    MechanismContext,
    StressCondition,
    get_mechanism,
)
from repro.obs import metrics
from repro.obs.trace import span
from repro.scenario.effective import collapse_to_st_fast, phase_dose_shares
from repro.scenario.schedule import Scenario
from repro.thermal.hotspot import HotSpotLite

__all__ = ["ScenarioAnalyzer", "scenario_analyzer"]

#: Per-mechanism entry counters (static names; the dynamic part routes
#: through this literal dict, with a shared bucket for plugin mechanisms).
_MECHANISM_BLOCK_COUNTERS = {
    "obd": "mechanism.obd.blocks",
    "nbti": "mechanism.nbti.blocks",
    "em": "mechanism.em.blocks",
}
_PLUGIN_BLOCK_COUNTER = "mechanism.plugin.blocks"


class ScenarioAnalyzer:
    """Chip reliability and lifetime under a piecewise stress scenario.

    Parameters
    ----------
    host:
        The prepared single-condition analysis providing floorplan,
        BLODs, OBD calibration and the default operating point.
    scenario:
        The phase schedule and mechanism set to evaluate.
    thermal_model:
        Thermal analyzer for power-map phases (default
        :class:`HotSpotLite` with the same defaults the host used).
    """

    def __init__(
        self,
        host: ReliabilityAnalyzer,
        scenario: Scenario,
        thermal_model: HotSpotLite | None = None,
    ) -> None:
        self.host = host
        self.scenario = scenario
        self._thermal_model = (
            thermal_model if thermal_model is not None else HotSpotLite()
        )
        self._context = MechanismContext(
            obd_model=host.obd_model,
            nominal_thickness_nm=host.budget.nominal_thickness,
        )
        self._mechanisms: list[FailureMechanism] = [
            get_mechanism(name) for name in scenario.mechanisms
        ]
        n_blocks = host.floorplan.n_blocks
        with span(
            "scenario.analyze",
            phases=scenario.n_phases,
            mechanisms=len(self._mechanisms),
            composition=scenario.composition,
        ):
            metrics.inc("scenario.runs")
            metrics.inc("scenario.phases", scenario.n_phases)
            self.phase_temperatures = [
                self._resolve_phase_temperatures(phase)
                for phase in scenario.phases
            ]
            #: entry e <-> (mechanism index, block index), mechanisms in
            #: scenario order, blocks in floorplan order.
            self.entries = [
                (mechanism.name, j)
                for mechanism in self._mechanisms
                for j in range(n_blocks)
            ]
            n_entries = len(self.entries)
            self._alphas = np.empty((scenario.n_phases, n_entries))
            self._bs = np.empty((scenario.n_phases, n_entries))
            for p, phase in enumerate(scenario.phases):
                stress = StressCondition(
                    temperatures_c=self.phase_temperatures[p],
                    vdd=(
                        phase.vdd
                        if phase.vdd is not None
                        else host.config.vdd
                    ),
                )
                column = 0
                for mechanism in self._mechanisms:
                    params = mechanism.block_params(self._context, stress)
                    if len(params) != n_blocks:
                        raise ConfigurationError(
                            f"mechanism {mechanism.name!r} returned "
                            f"{len(params)} block parameters, expected "
                            f"{n_blocks}"
                        )
                    for prm in params:
                        self._alphas[p, column] = prm.alpha
                        self._bs[p, column] = prm.b
                        column += 1
            for mechanism in self._mechanisms:
                metrics.inc(
                    _MECHANISM_BLOCK_COUNTERS.get(
                        mechanism.name, _PLUGIN_BLOCK_COUNTER
                    ),
                    n_blocks,
                )
            self._entry_blods = [
                host.blods[j] for _, j in self.entries
            ]
            # Instances are immutable after construction (safe to share
            # across service worker threads): _build_engine returns the
            # evaluation state rather than mutating it in place.
            (
                self._mode,
                self._engine,
                self._rates,
                self._starts,
                self._base_doses,
                self._b_eff,
            ) = self._build_engine()

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------

    def _resolve_phase_temperatures(self, phase: object) -> np.ndarray:
        """Per-block temperatures of one phase (celsius)."""
        host = self.host
        n_blocks = host.floorplan.n_blocks
        explicit = phase.temperatures_for(n_blocks)  # type: ignore[attr-defined]
        if explicit is not None:
            return explicit
        scale = phase.power_scale  # type: ignore[attr-defined]
        if scale is not None:
            if host.floorplan.total_power <= 0.0:
                raise ConfigurationError(
                    f"phase {phase.name!r} scales block powers, but the "  # type: ignore[attr-defined]
                    "design carries no power to scale"
                )
            scaled = host.floorplan.with_powers(
                {
                    block.name: block.power * float(scale)
                    for block in host.floorplan.blocks
                }
            )
            # Same grid + package as every other phase of this design:
            # the steady-state solve reuses the cached LU factor, so each
            # additional phase costs one back-substitution.
            metrics.inc("scenario.thermal_solves")
            return self._thermal_model.analyze(scaled).block_temperatures
        return host.block_temperatures

    def _build_engine(
        self,
    ) -> tuple[
        str,
        StFastAnalyzer,
        np.ndarray | None,
        np.ndarray | None,
        np.ndarray | None,
        np.ndarray | None,
    ]:
        """Pick the evaluation path the composition law calls for.

        Returns ``(mode, engine, rates, starts, base_doses, b_eff)``;
        the dose-path arrays are ``None`` for the direct and residency
        modes.
        """
        cfg = self.host.config
        scenario = self.scenario
        if scenario.composition == "ordered" and scenario.n_phases == 1:
            # Single steady condition: evaluate the entries at their true
            # (alpha, b).  This is the exact same computation (and, for
            # the OBD-only case, the same floats) as the host's st_fast
            # path — no effective-age round trip to perturb the bits.
            blocks = [
                BlockReliability(
                    blod=blod, alpha=float(a), b=float(b)
                )
                for blod, a, b in zip(
                    self._entry_blods,
                    self._alphas[0],
                    self._bs[0],
                    strict=True,
                )
            ]
            engine = StFastAnalyzer(
                blocks,
                l0=cfg.l0,
                tail=cfg.tail,
                rule=cfg.integration_rule,
                include_residual_fluctuation=cfg.include_residual_fluctuation,
            )
            return "direct", engine, None, None, None, None
        if scenario.composition == "residency":
            template = [
                BlockReliability(blod=blod, alpha=float(a), b=float(b))
                for blod, a, b in zip(
                    self._entry_blods,
                    self._alphas[0],
                    self._bs[0],
                    strict=True,
                )
            ]
            _, engine = collapse_to_st_fast(
                template,
                scenario.fractions,
                self._alphas,
                self._bs,
                l0=cfg.l0,
                tail=cfg.tail,
                rule=cfg.integration_rule,
                include_residual_fluctuation=cfg.include_residual_fluctuation,
            )
            return "residency", engine, None, None, None, None
        # Ordered multi-phase: dose coordinates.  Each entry ages at rate
        # 1/alpha_{e,p}; the accumulated dose is piecewise linear in t and
        # the entry is evaluated at unit characteristic life with the
        # final (open-ended) phase's slope as the common Weibull slope.
        durations = scenario.finite_durations
        rates = 1.0 / self._alphas.T  # (n_entries, n_phases)
        starts = np.concatenate(([0.0], np.cumsum(durations)))
        base_doses = np.concatenate(
            (
                np.zeros((rates.shape[0], 1)),
                np.cumsum(durations[None, :] * rates[:, :-1], axis=1),
            ),
            axis=1,
        )
        b_eff = self._bs[-1].copy()
        engine = StFastAnalyzer(
            [
                BlockReliability(blod=blod, alpha=1.0, b=float(b))
                for blod, b in zip(
                    self._entry_blods, b_eff, strict=True
                )
            ],
            l0=cfg.l0,
            tail=cfg.tail,
            rule=cfg.integration_rule,
            include_residual_fluctuation=cfg.include_residual_fluctuation,
        )
        return "dose", engine, rates, starts, base_doses, b_eff

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------

    def _doses(self, times: np.ndarray) -> np.ndarray:
        """``(n_entries, n_times)`` accumulated dose at each time."""
        segments = np.searchsorted(self._starts[1:], times, side="right")
        return (
            self._base_doses[:, segments]
            + (times[None, :] - self._starts[segments][None, :])
            * self._rates[:, segments]
        )

    def _entry_expectations(self, doses: np.ndarray) -> np.ndarray:
        """Per-entry survival expectations at per-entry dose times.

        The dose path's analogue of ``StFastAnalyzer.reliability``: the
        entries live at unit characteristic life, so the scaled profile
        is ``b_e * ln(s_e(t))`` with per-entry abscissae — one fused
        kernel dispatch when the fast paths apply, the per-entry
        reference loop otherwise.
        """
        engine = self._engine
        if fast_paths_enabled():
            with np.errstate(divide="ignore"):
                scaled = self._b_eff[:, None] * np.where(
                    doses > 0.0, np.log(doses), -np.inf
                )
            fused = batched_rule_expectations(
                scaled,
                engine._log_areas,
                engine._u_points,
                engine._u_weights,
                engine._v_points,
                engine._v_weights,
            )
            if fused is not None:
                metrics.inc(
                    "integration.subdomain_evals",
                    doses.shape[1] * engine._rule_nodes,
                )
                return fused
        out = np.empty(doses.shape)
        for j in range(doses.shape[0]):
            out[j] = engine.block_expectation(j, doses[j])
        return out

    def entry_failure_probabilities(
        self, times: np.ndarray | float
    ) -> np.ndarray:
        """``(n_entries, n_times)`` per (mechanism, block) failure probs."""
        times_arr = np.atleast_1d(np.asarray(times, dtype=float))
        if np.any(times_arr < 0.0):
            raise ConfigurationError("times must be non-negative")
        if self._mode == "dose":
            return 1.0 - self._entry_expectations(self._doses(times_arr))
        return self._engine.block_failure_probabilities(times_arr)

    def reliability(
        self, times: np.ndarray | float, clip: bool = True
    ) -> np.ndarray | float:
        """Ensemble chip reliability under the scenario (eq. (28))."""
        times_arr = np.asarray(times, dtype=float)
        scalar = times_arr.ndim == 0
        if self._mode != "dose":
            value = np.atleast_1d(
                self._engine.reliability(times_arr, clip=clip)
            )
            return float(value[0]) if scalar else value
        failures = self.entry_failure_probabilities(
            np.atleast_1d(times_arr)
        )
        value = 1.0 - failures.sum(axis=0)
        if clip:
            value = np.clip(value, 0.0, 1.0)
        return float(value[0]) if scalar else value

    def failure_probability(
        self, times: np.ndarray | float
    ) -> np.ndarray | float:
        """``1 - R(t)`` under the scenario."""
        times_arr = np.asarray(times, dtype=float)
        scalar = times_arr.ndim == 0
        value = 1.0 - np.atleast_1d(self.reliability(times_arr))
        return float(value[0]) if scalar else value

    def lifetime(self, ppm: float) -> float:
        """Scenario lifetime (hours) at an n-per-million criterion.

        Seeded, like the host's, with the analytic guard-band estimate;
        for a single-phase OBD-only scenario the solve walks the exact
        float sequence of ``host.lifetime(ppm, method="st_fast")``.
        """
        target = ppm_to_reliability(ppm)
        with span(
            "scenario.lifetime", ppm=ppm, phases=self.scenario.n_phases
        ):
            guess = self.host.guard.lifetime(target)
            return solve_lifetime(
                lambda t: float(self.reliability(t)),
                target,
                t_guess=guess,
            )

    # ------------------------------------------------------------------
    # attribution
    # ------------------------------------------------------------------

    def mechanism_damage(self, time_hours: float) -> dict[str, float]:
        """Each mechanism's share of the chip failure probability.

        Evaluated at ``time_hours`` (typically the solved lifetime): the
        first-order chip failure probability is the plain sum of entry
        failure probabilities, so the shares decompose exactly.
        """
        failures = self.entry_failure_probabilities(float(time_hours))[:, 0]
        totals = {name: 0.0 for name in self.scenario.mechanisms}
        for (name, _), value in zip(self.entries, failures, strict=True):
            totals[name] += float(value)
        grand = sum(totals.values())
        if grand <= 0.0:
            return {name: 0.0 for name in totals}
        return {name: value / grand for name, value in totals.items()}

    def phase_damage(self, time_hours: float) -> dict[str, float]:
        """Each phase's share of the accumulated dose (entry-averaged).

        For residency scenarios this is the mission model's
        :func:`phase_dose_shares` averaged over entries; for ordered
        scenarios, each phase's slice of the piecewise dose at
        ``time_hours``.  A single-phase scenario attributes everything
        to its one phase.
        """
        names = [phase.name for phase in self.scenario.phases]
        if self.scenario.composition == "residency":
            shares = phase_dose_shares(
                self.scenario.fractions, self._alphas
            ).mean(axis=1)
            return dict(
                zip(names, (float(s) for s in shares), strict=True)
            )
        if self.scenario.n_phases == 1:
            return {names[0]: 1.0}
        t = float(time_hours)
        times = np.array([t])
        total = self._doses(times)[:, 0]
        starts = self._starts
        durations = np.diff(
            np.concatenate((starts, [max(t, float(starts[-1]))]))
        )
        elapsed = np.clip(
            np.minimum(durations, t - starts), 0.0, None
        )
        per_phase = elapsed[None, :] * self._rates  # (n_entries, n_phases)
        with np.errstate(invalid="ignore", divide="ignore"):
            shares = np.where(
                total[:, None] > 0.0,
                per_phase / total[:, None],
                0.0,
            ).mean(axis=0)
        return dict(zip(names, (float(s) for s in shares), strict=True))


def scenario_analyzer(
    analyzer: ReliabilityAnalyzer,
    scenario: Scenario,
    thermal_model: HotSpotLite | None = None,
) -> ScenarioAnalyzer:
    """Build a scenario analyzer on top of a prepared design analysis."""
    return ScenarioAnalyzer(analyzer, scenario, thermal_model=thermal_model)
