"""Scenario schedule model: piecewise stress intervals over a lifetime.

A :class:`Scenario` is an ordered sequence of :class:`StressPhase`
intervals — burn-in then field, a DVFS residency ramp — plus the set of
failure mechanisms racing under it.  Two composition laws:

``ordered`` (default)
    Phases happen in sequence.  Every phase except the last carries an
    absolute ``duration_hours``; the final phase is open-ended (the
    condition the chip lives in until failure).  Damage composes by
    cumulative-exposure dose accumulation across the interval boundaries
    (see :mod:`repro.scenario.engine`).

``residency``
    Unordered time fractions, the :mod:`repro.core.mission` model: every
    phase carries a ``fraction`` and the fractions sum to one.  The
    mixture collapses exactly to a single equivalent condition.

Each phase names its stress one of three ways: explicit block
temperature(s) (``temperature_c``), a power-map scale factor
(``power_scale``, re-solved through the thermal layer), or neither (the
design's own operating point).  ``vdd`` optionally overrides the supply
voltage for the phase.

Scenario documents are JSON-round-trippable: :meth:`Scenario.from_dict`
validates and :meth:`Scenario.as_dict` emits the canonical form the
service fingerprints — the full phase schedule and mechanism set fold
into the content address.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.errors import ConfigurationError
from repro.mechanisms import mechanism_names

__all__ = ["Scenario", "StressPhase"]

#: Tolerance for residency fractions summing to one.
_FRACTION_TOL = 1e-9

#: Composition laws a scenario can declare.
_COMPOSITIONS = ("ordered", "residency")

_PHASE_KEYS = {
    "name",
    "duration_hours",
    "fraction",
    "temperature_c",
    "power_scale",
    "vdd",
}


def _check_finite_positive(value: float, label: str) -> float:
    if (
        not isinstance(value, (int, float))
        or isinstance(value, bool)
        or not math.isfinite(value)
        or value <= 0.0
    ):
        raise ConfigurationError(
            f"{label} must be a finite positive number, got {value!r}"
        )
    return float(value)


@dataclass(frozen=True)
class StressPhase:
    """One stress interval of a scenario.

    Parameters
    ----------
    name:
        Phase label (e.g. ``"burnin"``, ``"field"``), unique per scenario.
    duration_hours:
        Interval length in hours (ordered scenarios; the final phase
        leaves it ``None`` — it holds until failure).
    fraction:
        Time fraction in (0, 1] (residency scenarios only).
    temperature_c:
        Explicit block temperature(s) in celsius: a single float applied
        to every block, or one value per block (floorplan order).
    power_scale:
        Scale factor on the design's block powers; the phase temperature
        field is re-solved through the thermal layer (the LU factor is
        reused across phases — same grid, many power maps).
    vdd:
        Supply voltage during the phase; ``None`` keeps the analysis
        default.
    """

    name: str
    duration_hours: float | None = None
    fraction: float | None = None
    temperature_c: float | tuple[float, ...] | None = None
    power_scale: float | None = None
    vdd: float | None = None

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise ConfigurationError("phase name must be a non-empty string")
        if self.duration_hours is not None:
            _check_finite_positive(
                self.duration_hours,
                f"phase {self.name!r} duration_hours",
            )
        if self.fraction is not None:
            _check_finite_positive(
                self.fraction, f"phase {self.name!r} fraction"
            )
            if self.fraction > 1.0:
                raise ConfigurationError(
                    f"phase {self.name!r} fraction must be in (0, 1], "
                    f"got {self.fraction}"
                )
        if self.temperature_c is not None and self.power_scale is not None:
            raise ConfigurationError(
                f"phase {self.name!r}: give 'temperature_c' or "
                "'power_scale', not both"
            )
        if self.power_scale is not None:
            _check_finite_positive(
                self.power_scale, f"phase {self.name!r} power_scale"
            )
        if self.vdd is not None:
            _check_finite_positive(self.vdd, f"phase {self.name!r} vdd")
        if self.temperature_c is not None:
            object.__setattr__(
                self, "temperature_c", self._canonical_temperature()
            )

    def _canonical_temperature(self) -> float | tuple[float, ...]:
        """Validate and normalise ``temperature_c`` to float or tuple."""
        raw = self.temperature_c
        if isinstance(raw, (int, float)) and not isinstance(raw, bool):
            if not math.isfinite(raw):
                raise ConfigurationError(
                    f"phase {self.name!r} temperature must be finite"
                )
            return float(raw)
        if isinstance(raw, (list, tuple, np.ndarray)):
            values = []
            for item in np.asarray(raw, dtype=float).ravel():
                if not math.isfinite(item):
                    raise ConfigurationError(
                        f"phase {self.name!r} temperatures must be finite"
                    )
                values.append(float(item))
            if not values:
                raise ConfigurationError(
                    f"phase {self.name!r} temperature list must be non-empty"
                )
            return tuple(values)
        raise ConfigurationError(
            f"phase {self.name!r} temperature_c must be a number or a "
            f"list of numbers, got {raw!r}"
        )

    def temperatures_for(self, n_blocks: int) -> np.ndarray | None:
        """Per-block temperature vector, or ``None`` when not explicit."""
        if self.temperature_c is None:
            return None
        if isinstance(self.temperature_c, tuple):
            temps = np.asarray(self.temperature_c, dtype=float)
            if temps.shape != (n_blocks,):
                raise ConfigurationError(
                    f"phase {self.name!r}: expected {n_blocks} block "
                    f"temperatures, got {temps.size}"
                )
            return temps
        return np.full(n_blocks, float(self.temperature_c))

    def as_dict(self) -> dict[str, Any]:
        """Canonical JSON form (all keys present, stable order)."""
        temperature: float | list[float] | None
        if isinstance(self.temperature_c, tuple):
            temperature = list(self.temperature_c)
        else:
            temperature = self.temperature_c
        return {
            "name": self.name,
            "duration_hours": self.duration_hours,
            "fraction": self.fraction,
            "temperature_c": temperature,
            "power_scale": self.power_scale,
            "vdd": self.vdd,
        }

    @classmethod
    def from_dict(cls, data: Any) -> StressPhase:
        """Validate one raw phase document."""
        if not isinstance(data, dict):
            raise ConfigurationError(
                f"each phase must be a JSON object, got {data!r}"
            )
        unknown = sorted(set(data) - _PHASE_KEYS)
        if unknown:
            raise ConfigurationError(
                f"unknown phase field(s): {', '.join(unknown)}"
            )
        return cls(
            name=data.get("name", ""),
            duration_hours=data.get("duration_hours"),
            fraction=data.get("fraction"),
            temperature_c=data.get("temperature_c"),
            power_scale=data.get("power_scale"),
            vdd=data.get("vdd"),
        )


@dataclass(frozen=True)
class Scenario:
    """A phase schedule plus the mechanism set racing under it."""

    phases: tuple[StressPhase, ...]
    mechanisms: tuple[str, ...] = ("obd",)
    composition: str = "ordered"

    def __post_init__(self) -> None:
        if self.composition not in _COMPOSITIONS:
            raise ConfigurationError(
                f"unknown composition {self.composition!r}; expected one "
                f"of {_COMPOSITIONS}"
            )
        if not self.phases:
            raise ConfigurationError("scenario needs at least one phase")
        names = [phase.name for phase in self.phases]
        if len(set(names)) != len(names):
            raise ConfigurationError("phase names must be unique")
        if not self.mechanisms:
            raise ConfigurationError(
                "scenario needs at least one mechanism"
            )
        if len(set(self.mechanisms)) != len(self.mechanisms):
            raise ConfigurationError("mechanism names must be unique")
        known = set(mechanism_names())
        for name in self.mechanisms:
            if name not in known:
                raise ConfigurationError(
                    f"unknown mechanism {name!r}; registered: "
                    f"{', '.join(sorted(known))}"
                )
        if self.composition == "ordered":
            for phase in self.phases[:-1]:
                if phase.duration_hours is None:
                    raise ConfigurationError(
                        f"ordered phase {phase.name!r} needs "
                        "'duration_hours' (only the final phase is "
                        "open-ended)"
                    )
            if self.phases[-1].duration_hours is not None:
                raise ConfigurationError(
                    f"the final ordered phase {self.phases[-1].name!r} "
                    "must omit 'duration_hours' (it holds until failure)"
                )
            for phase in self.phases:
                if phase.fraction is not None:
                    raise ConfigurationError(
                        f"phase {phase.name!r}: 'fraction' applies to "
                        "residency scenarios only"
                    )
        else:  # residency
            total = 0.0
            for phase in self.phases:
                if phase.fraction is None:
                    raise ConfigurationError(
                        f"residency phase {phase.name!r} needs 'fraction'"
                    )
                if phase.duration_hours is not None:
                    raise ConfigurationError(
                        f"phase {phase.name!r}: 'duration_hours' applies "
                        "to ordered scenarios only"
                    )
                total += phase.fraction
            if abs(total - 1.0) > _FRACTION_TOL:
                raise ConfigurationError(
                    f"residency fractions must sum to 1, got {total}"
                )

    @property
    def n_phases(self) -> int:
        """Number of phases in the schedule."""
        return len(self.phases)

    @property
    def finite_durations(self) -> np.ndarray:
        """``(n_phases - 1,)`` durations of the closed ordered intervals."""
        if self.composition != "ordered":
            raise ConfigurationError(
                "finite_durations applies to ordered scenarios"
            )
        return np.array(
            [float(phase.duration_hours) for phase in self.phases[:-1]]
        )

    @property
    def fractions(self) -> np.ndarray:
        """``(n_phases,)`` residency time fractions."""
        if self.composition != "residency":
            raise ConfigurationError(
                "fractions applies to residency scenarios"
            )
        return np.array([float(phase.fraction) for phase in self.phases])

    def as_dict(self) -> dict[str, Any]:
        """Canonical JSON document; ``from_dict`` of it round-trips."""
        return {
            "composition": self.composition,
            "mechanisms": list(self.mechanisms),
            "phases": [phase.as_dict() for phase in self.phases],
        }

    @classmethod
    def from_dict(cls, data: Any) -> Scenario:
        """Validate a raw scenario document."""
        if not isinstance(data, dict):
            raise ConfigurationError(
                f"scenario must be a JSON object, got {data!r}"
            )
        unknown = sorted(set(data) - {"composition", "mechanisms", "phases"})
        if unknown:
            raise ConfigurationError(
                f"unknown scenario field(s): {', '.join(unknown)}"
            )
        phases_raw = data.get("phases")
        if not isinstance(phases_raw, list) or not phases_raw:
            raise ConfigurationError(
                "scenario field 'phases' must be a non-empty list"
            )
        mechanisms_raw = data.get("mechanisms", ["obd"])
        if isinstance(mechanisms_raw, str):
            mechanisms_raw = [mechanisms_raw]
        if not isinstance(mechanisms_raw, list) or not all(
            isinstance(m, str) for m in mechanisms_raw
        ):
            raise ConfigurationError(
                "scenario field 'mechanisms' must be a list of names"
            )
        return cls(
            phases=tuple(
                StressPhase.from_dict(phase) for phase in phases_raw
            ),
            mechanisms=tuple(mechanisms_raw),
            composition=data.get("composition", "ordered"),
        )
