"""repro.service — the reliability analyzer as a job-oriented HTTP API.

A stdlib-only (``http.server``) service that accepts analysis jobs over
JSON, runs them on a bounded worker pool backed by the
:mod:`repro.exec` backends, and returns result payloads **byte-identical**
to the equivalent ``repro lifetime/curve/report --json`` CLI invocation
(both sides build documents through :mod:`repro.payloads`).

Layers, transport-independent first:

- :mod:`repro.service.requests` — job schema: validation, content
  addressing, evaluation
- :mod:`repro.service.jobs` — async job queue: worker pool, dedup and
  coalescing, result caching, cancellation, graceful drain
- :mod:`repro.service.admission` — per-client token-bucket rate limiting
- :mod:`repro.service.payloads` — status/error envelopes, /metrics text
- :mod:`repro.service.app` — routing: ``(method, path, body, client)``
  to :class:`~repro.service.app.ServiceResponse`
- :mod:`repro.service.http` — the thin ``ThreadingHTTPServer`` adapter

Start one with ``repro serve`` (see ``docs/service.md``), or embed the
pieces directly::

    manager = JobManager(workers=2, max_queue=16)
    manager.start()
    server = make_server("127.0.0.1", 0, ReliabilityService(manager))
    server.serve_forever()
"""

from __future__ import annotations

from repro.service.admission import AdmissionController, TokenBucket
from repro.service.app import ReliabilityService, ServiceResponse
from repro.service.http import ServiceHTTPServer, make_server
from repro.service.jobs import Job, JobManager, JobState
from repro.service.requests import JOB_KINDS, JobRequest, run_job

__all__ = [
    "JOB_KINDS",
    "AdmissionController",
    "Job",
    "JobManager",
    "JobRequest",
    "JobState",
    "ReliabilityService",
    "ServiceHTTPServer",
    "ServiceResponse",
    "TokenBucket",
    "make_server",
    "run_job",
]
