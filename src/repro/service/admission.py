"""Per-client admission control: token buckets over a shared registry.

Each client (keyed by ``X-Client-Id`` header, falling back to the remote
address) gets a :class:`TokenBucket` refilled at ``rate`` requests per
second up to a burst capacity.  An empty bucket turns the submission into
an :class:`~repro.errors.AdmissionError` — HTTP 429 with a computed
``Retry-After`` — *before* the job touches the queue, so one chatty client
cannot crowd out the rest.

The clock is injectable (defaults to :func:`time.monotonic`) so tests can
step time deterministically instead of sleeping.
"""

from __future__ import annotations

import threading
import time
from collections.abc import Callable

from repro.errors import AdmissionError, ServiceError
from repro.obs import metrics

__all__ = ["AdmissionController", "TokenBucket"]

#: Idle buckets older than this are pruned to bound registry growth.
_PRUNE_IDLE_S = 600.0


class TokenBucket:
    """Classic token bucket: ``rate`` tokens/second, ``burst`` capacity."""

    def __init__(
        self,
        rate: float,
        burst: float,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.rate = rate
        self.burst = burst
        self._clock = clock
        self._tokens = burst
        self._stamp = clock()

    def _refill(self) -> None:
        now = self._clock()
        self._tokens = min(
            self.burst, self._tokens + (now - self._stamp) * self.rate
        )
        self._stamp = now

    def try_acquire(self) -> tuple[bool, float]:
        """Take one token; returns ``(ok, retry_after_s)``."""
        self._refill()
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return True, 0.0
        return False, (1.0 - self._tokens) / self.rate

    @property
    def last_used_s(self) -> float:
        """Clock reading of the last refill (for idle pruning)."""
        return self._stamp


class AdmissionController:
    """Rate-limits submissions per client id.

    Parameters
    ----------
    rate:
        Sustained submissions per second per client.
    burst:
        Tokens a fresh or fully-recovered client may spend at once.
    clock:
        Monotonic time source; injectable for deterministic tests.
    """

    def __init__(
        self,
        rate: float = 2.0,
        burst: int = 5,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if rate <= 0.0 or burst < 1:
            raise ServiceError(
                f"rate must be > 0 and burst >= 1, got rate={rate} "
                f"burst={burst}"
            )
        self.rate = rate
        self.burst = burst
        self._clock = clock
        self._lock = threading.Lock()
        self._buckets: dict[str, TokenBucket] = {}

    def admit(self, client: str) -> None:
        """Spend one token for ``client`` or raise a 429 AdmissionError."""
        with self._lock:
            bucket = self._buckets.get(client)
            if bucket is None:
                bucket = TokenBucket(self.rate, float(self.burst), self._clock)
                self._buckets[client] = bucket
            ok, retry_after = bucket.try_acquire()
            if len(self._buckets) > 64:
                self._prune()
        if not ok:
            metrics.inc("service.admission.rejected")
            raise AdmissionError(
                f"rate limit exceeded for client {client!r} "
                f"({self.rate:g}/s, burst {self.burst})",
                code="rate_limited",
                retry_after_s=retry_after,
            )
        metrics.inc("service.admission.allowed")

    def _prune(self) -> None:
        """Drop buckets idle long enough to be fully refilled (lock held)."""
        now = self._clock()
        idle = [
            client
            for client, bucket in self._buckets.items()
            if now - bucket.last_used_s > _PRUNE_IDLE_S
        ]
        for client in idle:
            del self._buckets[client]
