"""The service application layer: routing, independent of HTTP transport.

:class:`ReliabilityService` maps ``(method, path, body, client)`` onto a
:class:`ServiceResponse` — plain data, no sockets — so the whole API
surface is testable in-process.  The stdlib HTTP adapter in
:mod:`repro.service.http` is a thin shim over :meth:`handle`.

Routes
------
- ``POST /v1/jobs`` — submit a job (``201``; ``200`` when coalesced or
  served from cache)
- ``GET /v1/jobs`` — list known jobs
- ``GET /v1/jobs/{id}`` — job status with checkpoint-derived progress
- ``GET /v1/jobs/{id}/result`` — the CLI-identical result payload
  (``409`` until the job is done)
- ``DELETE /v1/jobs/{id}`` — request cancellation
- ``GET /v1/jobs/{id}/trace`` — the job's merged trace tree (``409``
  while it is still queued/running)
- ``GET /healthz`` — liveness (always ``200`` while the process serves)
- ``GET /readyz`` — readiness (``503`` once shutdown has begun)
- ``GET /metrics`` — Prometheus text exposition of repro.obs metrics
- ``GET /v1/debug/flight`` — flight-recorder dumps of recent bad jobs

Every request is timed into a per-endpoint latency histogram
(``service.latency.<endpoint>``), keyed by route shape rather than raw
path so job ids never explode the metric namespace.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from typing import Any

from repro.errors import ServiceError
from repro.obs import metrics
from repro.obs.logging import get_logger
from repro.payloads import dump_payload
from repro.service.admission import AdmissionController
from repro.service.jobs import JobManager, JobState
from repro.service.payloads import (
    error_envelope,
    job_envelope,
    render_metrics_text,
)
from repro.service.requests import JobRequest

__all__ = ["ReliabilityService", "ServiceResponse"]

logger = get_logger("service.app")

_MAX_BODY_BYTES = 1_000_000


@dataclass
class ServiceResponse:
    """One response: status, body bytes, content type, extra headers."""

    status: int
    body: bytes
    content_type: str = "application/json"
    headers: dict[str, str] = field(default_factory=dict)

    @classmethod
    def json(
        cls,
        status: int,
        payload: dict[str, Any],
        headers: dict[str, str] | None = None,
    ) -> ServiceResponse:
        body = (dump_payload(payload) + "\n").encode("utf-8")
        return cls(status, body, headers=dict(headers or {}))

    @classmethod
    def text(cls, status: int, text: str) -> ServiceResponse:
        return cls(
            status, text.encode("utf-8"), content_type="text/plain; charset=utf-8"
        )


#: Route shape -> latency histogram name.  Static literal names (RPL008):
#: the route *shape* is the label, never the raw path, so job ids cannot
#: explode the metric namespace.
_ROUTE_LATENCY = {
    "jobs_submit": "service.latency.jobs_submit",
    "jobs_list": "service.latency.jobs_list",
    "jobs_status": "service.latency.jobs_status",
    "jobs_result": "service.latency.jobs_result",
    "jobs_trace": "service.latency.jobs_trace",
    "jobs_cancel": "service.latency.jobs_cancel",
    "healthz": "service.latency.healthz",
    "readyz": "service.latency.readyz",
    "metrics": "service.latency.metrics",
    "debug_flight": "service.latency.debug_flight",
    "other": "service.latency.other",
}

#: ServiceError code -> error counter.  Static literal names (RPL008).
_ERROR_COUNTERS = {
    "invalid_request": "service.errors.invalid_request",
    "payload_too_large": "service.errors.payload_too_large",
    "method_not_allowed": "service.errors.method_not_allowed",
    "not_found": "service.errors.not_found",
    "not_ready": "service.errors.not_ready",
    "queue_full": "service.errors.queue_full",
    "rate_limited": "service.errors.rate_limited",
    "shutting_down": "service.errors.shutting_down",
}


class ReliabilityService:
    """Routes API calls onto a :class:`JobManager` + admission control."""

    def __init__(
        self,
        manager: JobManager,
        admission: AdmissionController | None = None,
    ) -> None:
        self.manager = manager
        self.admission = admission

    # ------------------------------------------------------------------
    # entry point
    # ------------------------------------------------------------------

    def handle(
        self,
        method: str,
        path: str,
        body: bytes,
        client: str,
        trace_id: str | None = None,
    ) -> ServiceResponse:
        """Dispatch one request; never raises (errors become envelopes).

        ``trace_id`` is the caller-supplied ``X-Trace-Id`` header value
        (propagated into the submitted job's trace tree), or ``None``.
        """
        metrics.inc("service.requests")
        started = time.perf_counter()
        route_key = "other"
        try:
            route_key, handler = self._route(method, path, body, client, trace_id)
            return handler()
        except ServiceError as exc:
            return self._error_response(exc)
        except Exception as exc:  # pragma: no cover - defensive
            logger.error("unhandled error on %s %s", method, path,
                         exc_info=True)
            metrics.inc("service.errors.internal")
            return ServiceResponse.json(
                500, error_envelope("internal_error", str(exc))
            )
        finally:
            metrics.observe(
                _ROUTE_LATENCY[route_key], time.perf_counter() - started
            )

    def _error_response(self, exc: ServiceError) -> ServiceResponse:
        metrics.inc(_ERROR_COUNTERS.get(exc.code, "service.errors.other"))
        headers = {}
        if exc.retry_after_s is not None:
            headers["Retry-After"] = str(max(1, round(exc.retry_after_s)))
        return ServiceResponse.json(
            exc.status, error_envelope(exc.code, str(exc)), headers=headers
        )

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------

    def _route(
        self,
        method: str,
        path: str,
        body: bytes,
        client: str,
        trace_id: str | None,
    ) -> tuple[str, Any]:
        """Resolve one request to ``(route_key, thunk)``.

        The route key names the endpoint *shape* for the latency
        histograms; the thunk executes the handler when called.
        """
        parts = [p for p in path.split("?", 1)[0].split("/") if p]
        if parts == ["healthz"] and method == "GET":
            return "healthz", self._healthz
        if parts == ["readyz"] and method == "GET":
            return "readyz", self._readyz
        if parts == ["metrics"] and method == "GET":
            return "metrics", lambda: ServiceResponse.text(
                200, render_metrics_text(self.manager)
            )
        if parts == ["v1", "debug", "flight"] and method == "GET":
            return "debug_flight", self._debug_flight
        if parts[:2] == ["v1", "jobs"]:
            if len(parts) == 2:
                if method == "POST":
                    return "jobs_submit", lambda: self._submit(
                        body, client, trace_id
                    )
                if method == "GET":
                    return "jobs_list", self._list_jobs
                raise ServiceError(
                    f"method {method} not allowed on /v1/jobs",
                    status=405,
                    code="method_not_allowed",
                )
            if len(parts) == 3:
                job_id = parts[2]
                if method == "GET":
                    return "jobs_status", lambda: self._job_status(job_id)
                if method == "DELETE":
                    return "jobs_cancel", lambda: self._cancel(job_id)
                raise ServiceError(
                    f"method {method} not allowed on /v1/jobs/{{id}}",
                    status=405,
                    code="method_not_allowed",
                )
            if len(parts) == 4 and parts[3] == "result" and method == "GET":
                return "jobs_result", lambda: self._job_result(parts[2])
            if len(parts) == 4 and parts[3] == "trace" and method == "GET":
                return "jobs_trace", lambda: self._job_trace(parts[2])
        raise ServiceError(
            f"no route for {method} {path}", status=404, code="not_found"
        )

    # ------------------------------------------------------------------
    # handlers
    # ------------------------------------------------------------------

    def _healthz(self) -> ServiceResponse:
        return ServiceResponse.json(200, {"status": "ok"})

    def _readyz(self) -> ServiceResponse:
        if self.manager.accepting:
            return ServiceResponse.json(
                200,
                {
                    "status": "ready",
                    "queue_depth": self.manager.queue_depth(),
                    "running": self.manager.running_count(),
                },
            )
        return ServiceResponse.json(
            503, error_envelope("shutting_down", "service is draining")
        )

    def _submit(
        self, body: bytes, client: str, trace_id: str | None = None
    ) -> ServiceResponse:
        if len(body) > _MAX_BODY_BYTES:
            raise ServiceError(
                f"request body exceeds {_MAX_BODY_BYTES} bytes",
                status=413,
                code="payload_too_large",
            )
        try:
            document = json.loads(body.decode("utf-8") or "null")
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ServiceError(f"request body is not valid JSON: {exc}") from exc
        request = JobRequest.from_dict(document)
        if self.admission is not None:
            self.admission.admit(client)
        job, created = self.manager.submit(request, client, trace_id=trace_id)
        status = 201 if created else 200
        return ServiceResponse.json(
            status,
            job_envelope(job, self.manager.progress(job)),
            headers={"Location": f"/v1/jobs/{job.id}"},
        )

    def _list_jobs(self) -> ServiceResponse:
        from repro.payloads import stamp_envelope

        docs = [job_envelope(job) for job in self.manager.jobs()]
        return ServiceResponse.json(200, stamp_envelope({"jobs": docs}))

    def _job_status(self, job_id: str) -> ServiceResponse:
        job = self.manager.get(job_id)
        return ServiceResponse.json(
            200, job_envelope(job, self.manager.progress(job))
        )

    def _job_result(self, job_id: str) -> ServiceResponse:
        job = self.manager.get(job_id)
        if job.state == JobState.DONE:
            assert job.result is not None
            return ServiceResponse.json(200, job.result)
        if job.state in JobState.TERMINAL:
            error = job.error or {
                "code": job.state,
                "message": f"job is {job.state}",
            }
            return ServiceResponse.json(
                410, error_envelope(error["code"], error["message"])
            )
        raise ServiceError(
            f"job {job_id} is {job.state}; result not available yet",
            status=409,
            code="not_ready",
        )

    def _job_trace(self, job_id: str) -> ServiceResponse:
        from repro.payloads import stamp_envelope

        job = self.manager.get(job_id)
        if job.trace is None:
            if job.state not in JobState.TERMINAL:
                raise ServiceError(
                    f"job {job_id} is {job.state}; trace not available yet",
                    status=409,
                    code="not_ready",
                )
            raise ServiceError(
                f"no trace recorded for job {job_id} (served from cache, "
                "or tracing was disabled while it ran)",
                status=404,
                code="not_found",
            )
        return ServiceResponse.json(
            200,
            stamp_envelope(
                {
                    "id": job.id,
                    "state": job.state,
                    "trace_id": job.trace_id,
                    "trace": job.trace,
                }
            ),
        )

    def _debug_flight(self) -> ServiceResponse:
        from repro.payloads import stamp_envelope

        records = self.manager.flight.records()
        return ServiceResponse.json(
            200,
            stamp_envelope(
                {
                    "records": records,
                    "count": len(records),
                    "active": self.manager.flight.active_count(),
                }
            ),
        )

    def _cancel(self, job_id: str) -> ServiceResponse:
        job = self.manager.cancel(job_id)
        return ServiceResponse.json(
            202, job_envelope(job, self.manager.progress(job))
        )
