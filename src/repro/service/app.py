"""The service application layer: routing, independent of HTTP transport.

:class:`ReliabilityService` maps ``(method, path, body, client)`` onto a
:class:`ServiceResponse` — plain data, no sockets — so the whole API
surface is testable in-process.  The stdlib HTTP adapter in
:mod:`repro.service.http` is a thin shim over :meth:`handle`.

Routes
------
- ``POST /v1/jobs`` — submit a job (``201``; ``200`` when coalesced or
  served from cache)
- ``GET /v1/jobs`` — list known jobs
- ``GET /v1/jobs/{id}`` — job status with checkpoint-derived progress
- ``GET /v1/jobs/{id}/result`` — the CLI-identical result payload
  (``409`` until the job is done)
- ``DELETE /v1/jobs/{id}`` — request cancellation
- ``GET /healthz`` — liveness (always ``200`` while the process serves)
- ``GET /readyz`` — readiness (``503`` once shutdown has begun)
- ``GET /metrics`` — Prometheus text exposition of repro.obs metrics
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any

from repro.errors import ServiceError
from repro.obs import metrics
from repro.obs.logging import get_logger
from repro.obs.trace import span
from repro.payloads import dump_payload
from repro.service.admission import AdmissionController
from repro.service.jobs import JobManager, JobState
from repro.service.payloads import (
    error_envelope,
    job_envelope,
    render_metrics_text,
)
from repro.service.requests import JobRequest

__all__ = ["ReliabilityService", "ServiceResponse"]

logger = get_logger("service.app")

_MAX_BODY_BYTES = 1_000_000


@dataclass
class ServiceResponse:
    """One response: status, body bytes, content type, extra headers."""

    status: int
    body: bytes
    content_type: str = "application/json"
    headers: dict[str, str] = field(default_factory=dict)

    @classmethod
    def json(
        cls,
        status: int,
        payload: dict[str, Any],
        headers: dict[str, str] | None = None,
    ) -> ServiceResponse:
        body = (dump_payload(payload) + "\n").encode("utf-8")
        return cls(status, body, headers=dict(headers or {}))

    @classmethod
    def text(cls, status: int, text: str) -> ServiceResponse:
        return cls(
            status, text.encode("utf-8"), content_type="text/plain; charset=utf-8"
        )


class ReliabilityService:
    """Routes API calls onto a :class:`JobManager` + admission control."""

    def __init__(
        self,
        manager: JobManager,
        admission: AdmissionController | None = None,
    ) -> None:
        self.manager = manager
        self.admission = admission

    # ------------------------------------------------------------------
    # entry point
    # ------------------------------------------------------------------

    def handle(
        self, method: str, path: str, body: bytes, client: str
    ) -> ServiceResponse:
        """Dispatch one request; never raises (errors become envelopes)."""
        with span("service.request", method=method, path=path):
            metrics.inc("service.requests")
            try:
                return self._route(method, path, body, client)
            except ServiceError as exc:
                return self._error_response(exc)
            except Exception as exc:  # pragma: no cover - defensive
                logger.error("unhandled error on %s %s", method, path,
                             exc_info=True)
                metrics.inc("service.errors.internal")
                return ServiceResponse.json(
                    500, error_envelope("internal_error", str(exc))
                )

    def _error_response(self, exc: ServiceError) -> ServiceResponse:
        metrics.inc(f"service.errors.{exc.code}")
        headers = {}
        if exc.retry_after_s is not None:
            headers["Retry-After"] = str(max(1, round(exc.retry_after_s)))
        return ServiceResponse.json(
            exc.status, error_envelope(exc.code, str(exc)), headers=headers
        )

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------

    def _route(
        self, method: str, path: str, body: bytes, client: str
    ) -> ServiceResponse:
        parts = [p for p in path.split("?", 1)[0].split("/") if p]
        if parts == ["healthz"] and method == "GET":
            return self._healthz()
        if parts == ["readyz"] and method == "GET":
            return self._readyz()
        if parts == ["metrics"] and method == "GET":
            return ServiceResponse.text(
                200, render_metrics_text(self.manager)
            )
        if parts[:2] == ["v1", "jobs"]:
            if len(parts) == 2:
                if method == "POST":
                    return self._submit(body, client)
                if method == "GET":
                    return self._list_jobs()
                raise ServiceError(
                    f"method {method} not allowed on /v1/jobs",
                    status=405,
                    code="method_not_allowed",
                )
            if len(parts) == 3:
                if method == "GET":
                    return self._job_status(parts[2])
                if method == "DELETE":
                    return self._cancel(parts[2])
                raise ServiceError(
                    f"method {method} not allowed on /v1/jobs/{{id}}",
                    status=405,
                    code="method_not_allowed",
                )
            if len(parts) == 4 and parts[3] == "result" and method == "GET":
                return self._job_result(parts[2])
        raise ServiceError(
            f"no route for {method} {path}", status=404, code="not_found"
        )

    # ------------------------------------------------------------------
    # handlers
    # ------------------------------------------------------------------

    def _healthz(self) -> ServiceResponse:
        return ServiceResponse.json(200, {"status": "ok"})

    def _readyz(self) -> ServiceResponse:
        if self.manager.accepting:
            return ServiceResponse.json(
                200,
                {
                    "status": "ready",
                    "queue_depth": self.manager.queue_depth(),
                    "running": self.manager.running_count(),
                },
            )
        return ServiceResponse.json(
            503, error_envelope("shutting_down", "service is draining")
        )

    def _submit(self, body: bytes, client: str) -> ServiceResponse:
        if len(body) > _MAX_BODY_BYTES:
            raise ServiceError(
                f"request body exceeds {_MAX_BODY_BYTES} bytes",
                status=413,
                code="payload_too_large",
            )
        try:
            document = json.loads(body.decode("utf-8") or "null")
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ServiceError(f"request body is not valid JSON: {exc}") from exc
        request = JobRequest.from_dict(document)
        if self.admission is not None:
            self.admission.admit(client)
        job, created = self.manager.submit(request, client)
        status = 201 if created else 200
        return ServiceResponse.json(
            status,
            job_envelope(job, self.manager.progress(job)),
            headers={"Location": f"/v1/jobs/{job.id}"},
        )

    def _list_jobs(self) -> ServiceResponse:
        from repro.payloads import stamp_envelope

        docs = [job_envelope(job) for job in self.manager.jobs()]
        return ServiceResponse.json(200, stamp_envelope({"jobs": docs}))

    def _job_status(self, job_id: str) -> ServiceResponse:
        job = self.manager.get(job_id)
        return ServiceResponse.json(
            200, job_envelope(job, self.manager.progress(job))
        )

    def _job_result(self, job_id: str) -> ServiceResponse:
        job = self.manager.get(job_id)
        if job.state == JobState.DONE:
            assert job.result is not None
            return ServiceResponse.json(200, job.result)
        if job.state in JobState.TERMINAL:
            error = job.error or {
                "code": job.state,
                "message": f"job is {job.state}",
            }
            return ServiceResponse.json(
                410, error_envelope(error["code"], error["message"])
            )
        raise ServiceError(
            f"job {job_id} is {job.state}; result not available yet",
            status=409,
            code="not_ready",
        )

    def _cancel(self, job_id: str) -> ServiceResponse:
        job = self.manager.cancel(job_id)
        return ServiceResponse.json(
            202, job_envelope(job, self.manager.progress(job))
        )
