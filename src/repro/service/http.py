"""Stdlib HTTP adapter: ThreadingHTTPServer over the application layer.

The handler reads a request (method, path, body, client id) off the
socket and hands it verbatim to :meth:`ReliabilityService.handle`; it
contains no routing or business logic.  ``ThreadingHTTPServer`` with
daemon threads is enough here — handlers only validate, enqueue and read
dictionaries; the actual analysis runs on the
:class:`~repro.service.jobs.JobManager` worker pool, so request threads
never block on a solve.
"""

from __future__ import annotations

from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any

from repro.obs.logging import get_logger
from repro.service.app import ReliabilityService

__all__ = ["ServiceHTTPServer", "make_server"]

logger = get_logger("service.http")


class _Handler(BaseHTTPRequestHandler):
    """One HTTP request: decode, dispatch to the app layer, encode."""

    server: ServiceHTTPServer
    protocol_version = "HTTP/1.1"

    def _client_id(self) -> str:
        return self.headers.get("X-Client-Id") or self.client_address[0]

    def _trace_id(self) -> str | None:
        """The caller's ``X-Trace-Id``, sanitised (short token or nothing)."""
        raw = (self.headers.get("X-Trace-Id") or "").strip()
        if raw and len(raw) <= 128 and raw.isprintable():
            return raw
        return None

    def _read_body(self) -> bytes:
        length = int(self.headers.get("Content-Length") or 0)
        return self.rfile.read(length) if length > 0 else b""

    def _dispatch(self, method: str) -> None:
        response = self.server.app.handle(
            method,
            self.path,
            self._read_body(),
            self._client_id(),
            trace_id=self._trace_id(),
        )
        self.send_response(response.status)
        self.send_header("Content-Type", response.content_type)
        self.send_header("Content-Length", str(len(response.body)))
        for name, value in response.headers.items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(response.body)

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        self._dispatch("POST")

    def do_DELETE(self) -> None:  # noqa: N802 - http.server API
        self._dispatch("DELETE")

    def log_message(self, format: str, *args: Any) -> None:
        """Route http.server's access log into the obs logger."""
        logger.info("%s %s", self.address_string(), format % args)


class ServiceHTTPServer(ThreadingHTTPServer):
    """A threading HTTP server bound to one :class:`ReliabilityService`."""

    daemon_threads = True

    def __init__(self, address: tuple[str, int], app: ReliabilityService) -> None:
        super().__init__(address, _Handler)
        self.app = app


def make_server(
    host: str, port: int, app: ReliabilityService
) -> ServiceHTTPServer:
    """Bind a server (``port=0`` picks an ephemeral port)."""
    server = ServiceHTTPServer((host, port), app)
    logger.info("bound http server on %s:%d", *server.server_address[:2])
    return server
