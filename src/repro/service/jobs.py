"""Async job queue: bounded worker pool, dedup, caching, cancellation.

A :class:`JobManager` owns a FIFO queue of validated
:class:`~repro.service.requests.JobRequest` jobs and a fixed pool of
worker threads that evaluate them through :func:`run_job`.  The design
constraints, in order:

- **bounded work**: at most ``max_queue`` jobs wait; beyond that
  :meth:`submit` raises :class:`~repro.errors.AdmissionError` (HTTP 429
  with a Retry-After hint) instead of accepting unbounded memory.
- **dedup/coalescing**: jobs are content-addressed by request
  fingerprint; submitting a request identical to a queued or running job
  returns *that* job, and finished results are served from the
  execution layer's :class:`~repro.exec.cache.ResultCache` — identical
  submissions cost one analyzer run, ever.  A corrupted cache entry is
  counted (``exec.cache.corrupt``), treated as a miss and recomputed.
- **cancellation**: every job carries a cancel event; queued jobs are
  dropped before they start, running Monte-Carlo jobs stop cooperatively
  at the next shard boundary after flushing their checkpoint.
- **graceful shutdown**: :meth:`shutdown` stops intake, drains queued and
  running jobs for ``drain_timeout`` seconds, then cancels what is left —
  long MC runs exit through their checkpoint and can resume on the next
  submission of the same request.
"""

from __future__ import annotations

import queue
import threading
import time
import uuid
import zipfile
from collections.abc import Callable
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

import numpy as np

from repro.errors import (
    AdmissionError,
    ExecutionInterrupted,
    ReproError,
    ServiceError,
)
from repro.exec.cache import ResultCache, get_json_payload, put_json_payload
from repro.exec.sharding import DEFAULT_SHARD_SIZE
from repro.obs import flight, metrics
from repro.obs.flight import FlightRecorder
from repro.obs.logging import get_logger
from repro.obs.propagate import record_subtree, set_trace_id
from repro.obs.trace import is_enabled as trace_is_enabled
from repro.service.requests import JobRequest, run_job

__all__ = ["Job", "JobManager", "JobState"]

logger = get_logger("service.jobs")


class JobState:
    """Job lifecycle states (plain strings, stable API)."""

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"

    #: States in which a job no longer occupies the queue or a worker.
    TERMINAL = frozenset({DONE, FAILED, CANCELLED})


@dataclass
class Job:
    """One submitted analysis job and its lifecycle state."""

    id: str
    request: JobRequest
    key: str
    client: str
    state: str = JobState.QUEUED
    created_s: float = 0.0
    started_s: float | None = None
    finished_s: float | None = None
    result: dict[str, Any] | None = None
    error: dict[str, str] | None = None
    cached: bool = False
    cancel: threading.Event = field(default_factory=threading.Event)
    checkpoint_path: Path | None = None
    deadline_s: float | None = None
    #: Request-scoped trace id (from X-Trace-Id or generated at submit).
    trace_id: str = ""
    #: Merged trace tree captured while the job ran (None when tracing was
    #: off or the job was served from cache).
    trace: dict[str, Any] | None = None

    def cancel_check(self) -> bool:
        """The cooperative hook threaded into the sharded engines."""
        if self.cancel.is_set():
            return True
        return self.deadline_s is not None and time.monotonic() > self.deadline_s


def _checkpoint_shards_done(path: Path) -> int | None:
    """Completed shard count recorded in a checkpoint file, else None.

    Reads only the archive's member names (cheap), tolerating any
    corruption — progress is advisory and must never fail a status call.
    """
    if not path.exists():
        return None
    try:
        with np.load(path, allow_pickle=False) as handle:
            shards = {
                name.partition("__")[0]
                for name in handle.files
                if name.startswith("s")
            }
            return len(shards)
    except (OSError, ValueError, KeyError, zipfile.BadZipFile):
        return None


class JobManager:
    """Bounded async job queue over a thread worker pool.

    Parameters
    ----------
    workers:
        Concurrent analysis jobs (each may itself parallelise through
        ``repro.exec`` backends).
    max_queue:
        Waiting jobs accepted before :meth:`submit` raises
        :class:`~repro.errors.AdmissionError`.
    cache:
        Result cache for finished payloads; ``None`` disables caching.
    checkpoint_dir:
        Directory for per-job MC checkpoints (enables resume across
        service restarts); ``None`` disables checkpointing.
    job_timeout_s:
        Per-job wall-clock budget; an expired job is interrupted at the
        next shard boundary and reported as failed (code ``timeout``).
    compute:
        The evaluation function — injectable for tests; defaults to
        :func:`repro.service.requests.run_job`.
    flight_recorder:
        Event-timeline recorder for ``/v1/debug/flight``; a default one
        is created with ``flight_slow_s`` as the slow-job dump threshold.
    flight_slow_s:
        Wall-clock threshold (submit to finish) above which even a
        successful job's timeline is dumped; ``None`` disables it.
    """

    def __init__(
        self,
        workers: int = 2,
        max_queue: int = 16,
        cache: ResultCache | None = None,
        checkpoint_dir: str | Path | None = None,
        job_timeout_s: float | None = None,
        compute: Callable[..., dict[str, Any]] = run_job,
        flight_recorder: FlightRecorder | None = None,
        flight_slow_s: float | None = 30.0,
    ) -> None:
        if workers < 1:
            raise ServiceError(f"workers must be >= 1, got {workers}")
        if max_queue < 1:
            raise ServiceError(f"max_queue must be >= 1, got {max_queue}")
        self.workers = workers
        self.max_queue = max_queue
        self.cache = cache
        self.checkpoint_dir = (
            Path(checkpoint_dir) if checkpoint_dir is not None else None
        )
        self.job_timeout_s = job_timeout_s
        self.flight = (
            flight_recorder
            if flight_recorder is not None
            else FlightRecorder(slow_s=flight_slow_s)
        )
        self._compute = compute
        self._lock = threading.Lock()
        self._jobs: dict[str, Job] = {}
        self._active_by_key: dict[str, Job] = {}
        self._queue: queue.Queue[str | None] = queue.Queue()
        self._queued_count = 0
        self._running_count = 0
        self._accepting = True
        self._threads: list[threading.Thread] = []

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def start(self) -> None:
        """Spawn the worker pool (idempotent, safe to race)."""
        with self._lock:
            if self._threads:
                return
            threads = [
                threading.Thread(
                    target=self._worker_loop,
                    name=f"repro-service-worker-{index}",
                    daemon=True,
                )
                for index in range(self.workers)
            ]
            self._threads = threads
        for thread in threads:
            thread.start()

    def shutdown(self, drain_timeout: float = 30.0) -> bool:
        """Stop intake, drain, then cancel stragglers; True on clean drain.

        Queued and running jobs get ``drain_timeout`` seconds to finish;
        after that every live job's cancel event is set — running MC jobs
        flush their checkpoint and stop at the next shard boundary.
        """
        with self._lock:
            self._accepting = False
            threads = list(self._threads)
        for _ in threads:
            self._queue.put(None)
        deadline = time.monotonic() + max(0.0, drain_timeout)
        drained = True
        for thread in threads:
            thread.join(max(0.0, deadline - time.monotonic()))
            if thread.is_alive():
                drained = False
        if not drained:
            logger.warning(
                "drain timeout (%.1fs) expired; cancelling live jobs",
                drain_timeout,
            )
            with self._lock:
                live = list(self._active_by_key.values())
            for job in live:
                job.cancel.set()
            for thread in threads:
                thread.join(5.0)
                if thread.is_alive():
                    logger.warning(
                        "worker %s still running after cancellation",
                        thread.name,
                    )
        with self._lock:
            self._threads = []
        logger.info(
            "job manager shut down (%s)",
            "clean drain" if drained else "cancelled stragglers",
        )
        return drained

    @property
    def accepting(self) -> bool:
        """False once shutdown has begun (readiness probes key on this)."""
        with self._lock:
            return self._accepting

    def queue_depth(self) -> int:
        """Jobs waiting for a worker."""
        with self._lock:
            return self._queued_count

    def running_count(self) -> int:
        """Jobs currently executing."""
        with self._lock:
            return self._running_count

    # ------------------------------------------------------------------
    # submission / lookup
    # ------------------------------------------------------------------

    def submit(
        self,
        request: JobRequest,
        client: str,
        trace_id: str | None = None,
    ) -> tuple[Job, bool]:
        """Admit one request; returns ``(job, created)``.

        ``created`` is False when the submission coalesced onto an
        existing queued/running job or was served from the result cache.
        ``trace_id`` (the ``X-Trace-Id`` request header, when the client
        sent one) labels the job's trace tree; one is generated otherwise.
        """
        key = request.key
        with self._lock:
            if not self._accepting:
                raise ServiceError(
                    "service is shutting down",
                    status=503,
                    code="shutting_down",
                )
            existing = self._active_by_key.get(key)
            if existing is not None:
                metrics.inc("service.jobs.coalesced")
                self.flight.event(existing.id, "coalesced", client=client)
                logger.info(
                    "job %s coalesced onto %s", key[:12], existing.id
                )
                return existing, False
            cached_payload = self._cache_lookup(request)
            now = time.time()
            if cached_payload is not None:
                job = self._new_job(request, key, client, now, trace_id)
                job.state = JobState.DONE
                job.result = cached_payload
                job.cached = True
                job.finished_s = now
                self._jobs[job.id] = job
                metrics.inc("service.jobs.cache_hits")
                return job, False
            if self._queued_count >= self.max_queue:
                metrics.inc("service.jobs.rejected_queue_full")
                raise AdmissionError(
                    f"queue full ({self.max_queue} jobs waiting)",
                    code="queue_full",
                    retry_after_s=self._retry_after_estimate(),
                )
            job = self._new_job(request, key, client, now, trace_id)
            self._jobs[job.id] = job
            self._active_by_key[key] = job
            self._queued_count += 1
            metrics.inc("service.jobs.submitted")
            metrics.gauge("service.jobs.queued", self._queued_count)
            self.flight.open(
                job.id,
                kind=request.kind,
                client=client,
                key=key[:12],
                trace_id=job.trace_id,
            )
            self.flight.event(job.id, "queued", depth=self._queued_count)
        self._queue.put(job.id)
        return job, True

    def get(self, job_id: str) -> Job:
        """Look a job up by id (404 when unknown)."""
        with self._lock:
            job = self._jobs.get(job_id)
        if job is None:
            raise ServiceError(
                f"no such job {job_id!r}", status=404, code="not_found"
            )
        return job

    def cancel(self, job_id: str) -> Job:
        """Request cancellation; queued jobs die now, running ones soon."""
        job = self.get(job_id)
        self.flight.event(job.id, "cancel.requested", state=job.state)
        job.cancel.set()
        with self._lock:
            if job.state == JobState.QUEUED:
                self._finish(job, JobState.CANCELLED, error={
                    "code": "cancelled",
                    "message": "cancelled while queued",
                })
        metrics.inc("service.jobs.cancel_requests")
        return job

    def jobs(self) -> list[Job]:
        """All known jobs, newest first."""
        with self._lock:
            return sorted(
                self._jobs.values(), key=lambda j: j.created_s, reverse=True
            )

    def progress(self, job: Job) -> dict[str, int] | None:
        """Shards done/total for a running MC job, from its checkpoint."""
        if job.checkpoint_path is None or not job.request.uses_mc:
            return None
        done = _checkpoint_shards_done(job.checkpoint_path)
        if done is None:
            return None
        if job.request.shards is not None:
            total = len(job.request.shards)
        else:
            total = -(-job.request.mc_chips // DEFAULT_SHARD_SIZE)
        return {"shards_done": done, "shards_total": total}

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _new_job(
        self,
        request: JobRequest,
        key: str,
        client: str,
        now: float,
        trace_id: str | None = None,
    ) -> Job:
        job = Job(
            id=uuid.uuid4().hex[:16],
            request=request,
            key=key,
            client=client,
            created_s=now,
            trace_id=trace_id or uuid.uuid4().hex,
        )
        if self.checkpoint_dir is not None and request.uses_mc:
            job.checkpoint_path = self.checkpoint_dir / f"{key}.ckpt.npz"
        return job

    def _retry_after_estimate(self) -> float:
        """A coarse Retry-After hint: one queue slot's worth of seconds."""
        return 5.0

    def _cache_lookup(self, request: JobRequest) -> dict[str, Any] | None:
        return get_json_payload(self.cache, request.key)

    def _cache_store(self, request: JobRequest, payload: dict[str, Any]) -> None:
        put_json_payload(
            self.cache, request.key, payload, meta={"kind": request.kind}
        )

    def _finish(
        self,
        job: Job,
        state: str,
        result: dict[str, Any] | None = None,
        error: dict[str, str] | None = None,
    ) -> None:
        """Transition a job to a terminal state (caller holds the lock
        for queued-state transitions; worker calls re-acquire)."""
        job.state = state
        job.result = result
        job.error = error
        job.finished_s = time.time()
        self._active_by_key.pop(job.key, None)
        if state == JobState.CANCELLED and job.started_s is None:
            self._queued_count = max(0, self._queued_count - 1)
        metrics.gauge("service.jobs.queued", self._queued_count)
        self.flight.close(
            job.id,
            state,
            duration_s=job.finished_s - job.created_s,
            trace=job.trace,
        )

    def _worker_loop(self) -> None:
        while True:
            job_id = self._queue.get()
            if job_id is None:
                return
            with self._lock:
                job = self._jobs.get(job_id)
                if job is None or job.state != JobState.QUEUED:
                    continue  # cancelled while queued
                job.state = JobState.RUNNING
                job.started_s = time.time()
                if self.job_timeout_s is not None:
                    job.deadline_s = time.monotonic() + self.job_timeout_s
                self._queued_count -= 1
                self._running_count += 1
                metrics.gauge("service.jobs.queued", self._queued_count)
                metrics.gauge("service.jobs.running", self._running_count)
                queue_wait = job.started_s - job.created_s
                metrics.observe("service.job.queue_wait_seconds", queue_wait)
                self.flight.event(
                    job.id, "start", queue_wait_s=round(queue_wait, 6)
                )
            try:
                self._run_one(job)
            finally:
                with self._lock:
                    self._running_count -= 1
                    metrics.gauge("service.jobs.running", self._running_count)

    def _execute(self, job: Job) -> dict[str, Any]:
        """Run the compute function, capturing the job's trace tree.

        While observability is on, the whole evaluation runs inside a
        *detached* ``service.job`` span subtree (never the shared root
        registry, which would grow without bound in a long-lived server);
        worker-side shard spans grafted by ``repro.exec.runner`` land
        inside it, and the merged tree is stored on ``job.trace`` even
        when the compute raised.
        """
        checkpoint = job.checkpoint_path
        kwargs: dict[str, Any] = {
            "cancel_check": job.cancel_check,
            "checkpoint_path": (
                str(checkpoint) if checkpoint is not None else None
            ),
        }
        if not trace_is_enabled():
            return self._compute(job.request, **kwargs)
        set_trace_id(job.trace_id)
        root = None
        try:
            with record_subtree(
                "service.job",
                kind=job.request.kind,
                job=job.id,
                trace_id=job.trace_id,
            ) as root:
                return self._compute(job.request, **kwargs)
        finally:
            # Runs after record_subtree closed the span, so the serialized
            # tree has its final wall time and any error recorded.  Handler
            # threads read job.trace concurrently via the trace endpoint.
            if root is not None:
                with self._lock:
                    job.trace = root.to_dict()
            set_trace_id(None)

    def _run_one(self, job: Job) -> None:
        checkpoint = job.checkpoint_path
        if checkpoint is not None:
            checkpoint.parent.mkdir(parents=True, exist_ok=True)
        started = time.perf_counter()
        try:
            with flight.bind(self.flight, job.id):
                payload = self._execute(job)
        except ExecutionInterrupted:
            code, message = "cancelled", "job cancelled"
            if job.deadline_s is not None and not job.cancel.is_set():
                code, message = "timeout", (
                    f"job exceeded its {self.job_timeout_s}s budget"
                )
            if code == "cancelled":
                state = JobState.CANCELLED
                metrics.inc("service.jobs.cancelled")
            else:
                state = JobState.FAILED
                metrics.inc("service.jobs.timeout")
            with self._lock:
                self._finish(job, state, error={"code": code, "message": message})
            logger.info("job %s interrupted: %s", job.id, message)
            return
        except ReproError as exc:
            with self._lock:
                self._finish(
                    job,
                    JobState.FAILED,
                    error={"code": "analysis_error", "message": str(exc)},
                )
            metrics.inc("service.jobs.failed")
            logger.warning("job %s failed: %s", job.id, exc)
            return
        except Exception as exc:  # pragma: no cover - defensive
            with self._lock:
                self._finish(
                    job,
                    JobState.FAILED,
                    error={"code": "internal_error", "message": str(exc)},
                )
            metrics.inc("service.jobs.failed")
            logger.error("job %s crashed", job.id, exc_info=True)
            return
        finally:
            metrics.observe(
                "service.job.run_seconds", time.perf_counter() - started
            )
        self._cache_store(job.request, payload)
        with self._lock:
            self._finish(job, JobState.DONE, result=payload)
        metrics.inc("service.jobs.completed")
        logger.info(
            "job %s done in %.2fs", job.id, time.perf_counter() - started
        )
