"""Service-side JSON envelopes: job status, errors, and /metrics text.

Result payloads themselves come from :mod:`repro.payloads` (shared with
the CLI so the bytes match); this module renders everything *around*
them — the job-status document, the structured error envelope every
non-2xx response carries, and the Prometheus text exposition of the
:mod:`repro.obs` metric registry.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro import obs
from repro.payloads import stamp_envelope

if TYPE_CHECKING:
    from repro.service.jobs import Job, JobManager

__all__ = ["error_envelope", "job_envelope", "render_metrics_text"]


def job_envelope(
    job: Job, progress: dict[str, int] | None = None
) -> dict[str, Any]:
    """The ``GET /v1/jobs/{id}`` document for one job."""
    doc: dict[str, Any] = {
        "id": job.id,
        "state": job.state,
        "kind": job.request.kind,
        "key": job.key,
        "cached": job.cached,
        "created_s": job.created_s,
        "started_s": job.started_s,
        "finished_s": job.finished_s,
        "links": {
            "self": f"/v1/jobs/{job.id}",
            "result": f"/v1/jobs/{job.id}/result",
        },
    }
    if progress is not None:
        doc["progress"] = progress
    if job.error is not None:
        doc["error"] = job.error
    return stamp_envelope(doc)


def error_envelope(code: str, message: str) -> dict[str, Any]:
    """The structured error document every non-2xx response carries."""
    return stamp_envelope({"error": {"code": code, "message": message}})


def _prometheus_name(name: str) -> str:
    """Map a dotted obs metric name onto the Prometheus charset."""
    return "repro_" + name.replace(".", "_").replace("-", "_")


def render_metrics_text(manager: JobManager | None = None) -> str:
    """The ``GET /metrics`` body: Prometheus text exposition format.

    Every :mod:`repro.obs` counter and gauge is exported with a
    ``repro_`` prefix and dots mapped to underscores; live queue depth
    and worker occupancy are sampled from ``manager`` at render time so
    they are fresh even between job transitions.
    """
    snapshot = obs.metrics_snapshot()
    gauges = dict(snapshot["gauges"])
    if manager is not None:
        gauges["service.jobs.queued"] = float(manager.queue_depth())
        gauges["service.jobs.running"] = float(manager.running_count())
        gauges["service.accepting"] = 1.0 if manager.accepting else 0.0
    lines: list[str] = []
    for name in sorted(snapshot["counters"]):
        metric = _prometheus_name(name) + "_total"
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {snapshot['counters'][name]:g}")
    for name in sorted(gauges):
        metric = _prometheus_name(name)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {gauges[name]:g}")
    return "\n".join(lines) + "\n"
