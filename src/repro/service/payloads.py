"""Service-side JSON envelopes: job status, errors, and /metrics text.

Result payloads themselves come from :mod:`repro.payloads` (shared with
the CLI so the bytes match); this module renders everything *around*
them — the job-status document, the structured error envelope every
non-2xx response carries, and the Prometheus text exposition of the
:mod:`repro.obs` metric registry.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Any

from repro import obs
from repro.kernels.artifacts import get_artifact_cache
from repro.payloads import stamp_envelope
from repro.thermal.factor_cache import factor_cache_stats

if TYPE_CHECKING:
    from repro.service.jobs import Job, JobManager

__all__ = ["error_envelope", "job_envelope", "render_metrics_text"]

#: Per-tier cache hit-ratio gauges derived from the tier counter families
#: (static names; the dynamic part routes through this literal dict).
_TIER_HIT_RATIO_GAUGES = {
    "exec.cache.local.hit_ratio": {
        "hit": "exec.cache.local.hit",
        "miss": "exec.cache.local.miss",
    },
    "exec.cache.shared.hit_ratio": {
        "hit": "exec.cache.shared.hit",
        "miss": "exec.cache.shared.miss",
    },
    "kernels.artifacts.hit_ratio": {
        "hit": "kernels.artifacts.hit",
        "miss": "kernels.artifacts.miss",
    },
}

#: Per-tier on-disk entry-count gauges, keyed by the cache's tier label.
_TIER_ENTRY_GAUGES = {
    "local": "exec.cache.local.disk_entries",
    "shared": "exec.cache.shared.disk_entries",
}


def job_envelope(
    job: Job, progress: dict[str, int] | None = None
) -> dict[str, Any]:
    """The ``GET /v1/jobs/{id}`` document for one job."""
    doc: dict[str, Any] = {
        "id": job.id,
        "state": job.state,
        "kind": job.request.kind,
        "key": job.key,
        "cached": job.cached,
        "created_s": job.created_s,
        "started_s": job.started_s,
        "finished_s": job.finished_s,
        "trace_id": job.trace_id,
        "links": {
            "self": f"/v1/jobs/{job.id}",
            "result": f"/v1/jobs/{job.id}/result",
            "trace": f"/v1/jobs/{job.id}/trace",
        },
    }
    if progress is not None:
        doc["progress"] = progress
    if job.error is not None:
        doc["error"] = job.error
    return stamp_envelope(doc)


def error_envelope(code: str, message: str) -> dict[str, Any]:
    """The structured error document every non-2xx response carries."""
    return stamp_envelope({"error": {"code": code, "message": message}})


def _prometheus_name(name: str) -> str:
    """Map a dotted obs metric name onto the Prometheus charset."""
    return "repro_" + name.replace(".", "_").replace("-", "_")


def _format_value(value: float) -> str:
    """A sample value per the exposition format (incl. non-finite forms)."""
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    return f"{value:g}"


def _escape_label_value(value: str) -> str:
    """Escape a label value per the exposition format."""
    return (
        value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")
    )


def _family_header(metric: str, kind: str, source: str) -> list[str]:
    return [
        f"# HELP {metric} repro.obs {kind} {_escape_help(source)}",
        f"# TYPE {metric} {kind}",
    ]


def _escape_help(text: str) -> str:
    """Escape HELP text per the exposition format."""
    return text.replace("\\", r"\\").replace("\n", r"\n")


def _cache_health_gauges(manager: JobManager | None) -> dict[str, float]:
    """Hot-path cache health, derived at render time.

    Hit ratios come from the always-current obs counters; the on-disk
    entry count is sampled from the manager's :class:`ResultCache` (a
    cheap directory walk).
    """
    gauges: dict[str, float] = {}
    hits = obs.get_counter("exec.cache.hit")
    misses = obs.get_counter("exec.cache.miss")
    if hits + misses > 0:
        gauges["exec.cache.hit_ratio"] = hits / (hits + misses)
    for tier_gauge, counters in _TIER_HIT_RATIO_GAUGES.items():
        tier_hits = obs.get_counter(counters["hit"])
        tier_misses = obs.get_counter(counters["miss"])
        if tier_hits + tier_misses > 0:
            gauges[tier_gauge] = tier_hits / (tier_hits + tier_misses)
    stats = factor_cache_stats()
    gauges["thermal.factor_cache.entries"] = float(stats["entries"])
    lookups = stats["hits"] + stats["misses"]
    if lookups > 0:
        gauges["thermal.factor_cache.hit_ratio"] = stats["hits"] / lookups
    if manager is not None and manager.cache is not None:
        try:
            entries = float(manager.cache.stats().entries)
        except OSError:  # pragma: no cover - racing cache eviction
            pass
        else:
            gauges["exec.cache.disk_entries"] = entries
            tier_gauge = _TIER_ENTRY_GAUGES.get(manager.cache.tier)
            if tier_gauge is not None:
                gauges[tier_gauge] = entries
    artifacts = get_artifact_cache()
    if artifacts is not None:
        try:
            stats = artifacts.stats()
        except OSError:  # pragma: no cover - racing cache eviction
            pass
        else:
            gauges["kernels.artifacts.disk_entries"] = float(stats.entries)
            gauges["kernels.artifacts.disk_bytes"] = float(stats.total_bytes)
    return gauges


def render_metrics_text(manager: JobManager | None = None) -> str:
    """The ``GET /metrics`` body: Prometheus text exposition format.

    Every :mod:`repro.obs` counter, gauge and histogram is exported with
    a ``repro_`` prefix and dots mapped to underscores, each family
    preceded by its ``HELP``/``TYPE`` lines.  Histograms render the full
    cumulative ``_bucket{le="..."}`` series plus ``_sum``/``_count``.
    Live queue depth, worker occupancy and cache health are sampled from
    ``manager`` at render time so they are fresh even between job
    transitions; non-finite values render as ``+Inf``/``-Inf``/``NaN``
    per the exposition format.
    """
    snapshot = obs.metrics_snapshot()
    gauges = dict(snapshot["gauges"])
    if manager is not None:
        gauges["service.jobs.queued"] = float(manager.queue_depth())
        gauges["service.jobs.running"] = float(manager.running_count())
        gauges["service.accepting"] = 1.0 if manager.accepting else 0.0
    gauges.update(_cache_health_gauges(manager))
    lines: list[str] = []
    for name in sorted(snapshot["counters"]):
        metric = _prometheus_name(name) + "_total"
        lines.extend(_family_header(metric, "counter", name))
        lines.append(f"{metric} {_format_value(snapshot['counters'][name])}")
    for name in sorted(gauges):
        metric = _prometheus_name(name)
        lines.extend(_family_header(metric, "gauge", name))
        lines.append(f"{metric} {_format_value(gauges[name])}")
    for name in sorted(snapshot["histograms"]):
        hist = snapshot["histograms"][name]
        metric = _prometheus_name(name)
        lines.extend(_family_header(metric, "histogram", name))
        cumulative = 0
        for bound, bucket in zip(
            hist["buckets"], hist["counts"], strict=False
        ):
            cumulative += bucket
            label = _escape_label_value(_format_value(bound))
            lines.append(f'{metric}_bucket{{le="{label}"}} {cumulative}')
        lines.append(f'{metric}_bucket{{le="+Inf"}} {hist["count"]}')
        lines.append(f"{metric}_sum {_format_value(hist['sum'])}")
        lines.append(f"{metric}_count {hist['count']}")
    return "\n".join(lines) + "\n"
