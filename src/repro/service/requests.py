"""Job request schema: validation, fingerprinting, and evaluation.

A job request is the JSON document ``POST /v1/jobs`` accepts.  It names
an analysis ``kind`` (``lifetime``/``curve``/``report``), a design — one
of the paper's benchmarks by name, or an inline setup document in the
:mod:`repro.io.design_json` format — and the same knobs the CLI exposes,
so a job's result payload is **byte-identical** to the equivalent
``repro lifetime/curve/report --json`` invocation (both sides build it
with :mod:`repro.payloads`).

Requests are content-addressed with the execution layer's
:func:`repro.exec.cache.fingerprint`, which is what the service's dedup
(identical submissions coalesce) and result caching key on.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Callable
from typing import Any

from repro import payloads
from repro.chip.benchmarks import BENCHMARK_DEVICE_COUNTS, make_benchmark
from repro.core.analyzer import METHODS, AnalysisConfig, ReliabilityAnalyzer
from repro.errors import ReproError, ServiceError
from repro.exec.cache import fingerprint

__all__ = ["JOB_KINDS", "JobRequest", "run_job"]

#: Analysis kinds a job can request, mirroring the CLI commands.
JOB_KINDS = ("lifetime", "curve", "report")

#: Upper bound on the correlation grid through the service — a 200x200
#: grid is already a 40k-cell covariance problem; anything larger is a
#: resource-exhaustion vector, not a realistic request.
_MAX_GRID = 200

_MAX_MC_CHIPS = 100_000
_MAX_CURVE_POINTS = 2_000


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ServiceError(message)


def _as_float(data: dict[str, Any], key: str, default: float | None) -> float | None:
    value = data.get(key, default)
    if value is None:
        return None
    _require(
        isinstance(value, (int, float)) and not isinstance(value, bool),
        f"field {key!r} must be a number, got {value!r}",
    )
    return float(value)


def _as_int(data: dict[str, Any], key: str, default: int) -> int:
    value = data.get(key, default)
    _require(
        isinstance(value, int) and not isinstance(value, bool),
        f"field {key!r} must be an integer, got {value!r}",
    )
    return int(value)


@dataclasses.dataclass(frozen=True)
class JobRequest:
    """One validated analysis job (see the module docstring).

    Instances are immutable and JSON-round-trippable (:meth:`as_dict`),
    and :attr:`key` content-addresses everything that determines the
    result.
    """

    kind: str
    design: str | None = None
    setup: dict[str, Any] | None = None
    grid: int = 25
    rho: float = 0.5
    vdd: float | None = None
    ppm: float = 10.0
    methods: tuple[str, ...] = ("st_fast",)
    mc_chips: int = 500
    seed: int = 0
    t_min: float | None = None
    t_max: float | None = None
    points: int = 20

    @classmethod
    def from_dict(cls, data: Any) -> JobRequest:
        """Validate a raw JSON document into a request (400 on failure)."""
        _require(isinstance(data, dict), "job request must be a JSON object")
        kind = data.get("kind")
        _require(
            kind in JOB_KINDS,
            f"field 'kind' must be one of {', '.join(JOB_KINDS)}, "
            f"got {kind!r}",
        )
        design = data.get("design")
        setup = data.get("setup")
        _require(
            (design is None) != (setup is None),
            "exactly one of 'design' (benchmark name) or 'setup' "
            "(inline design_json document) is required",
        )
        if design is not None:
            _require(
                design in BENCHMARK_DEVICE_COUNTS,
                f"unknown design {design!r}; expected one of "
                f"{', '.join(sorted(BENCHMARK_DEVICE_COUNTS))}",
            )
        if setup is not None:
            _require(
                isinstance(setup, dict),
                "field 'setup' must be a design_json setup object",
            )
            # Validate eagerly so a malformed setup is a 400 at submit
            # time, not a failed job minutes later.
            _load_setup(setup)
        methods_raw = data.get("methods", data.get("method", ["st_fast"]))
        if isinstance(methods_raw, str):
            methods_raw = [methods_raw]
        _require(
            isinstance(methods_raw, list) and len(methods_raw) > 0,
            "field 'methods' must be a non-empty list of method names",
        )
        for method in methods_raw:
            _require(
                method in METHODS,
                f"unknown method {method!r}; expected one of {METHODS}",
            )
        grid = _as_int(data, "grid", 25)
        _require(2 <= grid <= _MAX_GRID, f"field 'grid' must be in [2, {_MAX_GRID}]")
        rho = _as_float(data, "rho", 0.5)
        assert rho is not None
        _require(rho > 0.0, "field 'rho' must be positive")
        ppm = _as_float(data, "ppm", 10.0)
        assert ppm is not None
        _require(ppm > 0.0, "field 'ppm' must be positive")
        mc_chips = _as_int(data, "mc_chips", 500)
        _require(
            2 <= mc_chips <= _MAX_MC_CHIPS,
            f"field 'mc_chips' must be in [2, {_MAX_MC_CHIPS}]",
        )
        points = _as_int(data, "points", 20)
        _require(
            2 <= points <= _MAX_CURVE_POINTS,
            f"field 'points' must be in [2, {_MAX_CURVE_POINTS}]",
        )
        t_min = _as_float(data, "t_min", None)
        t_max = _as_float(data, "t_max", None)
        if kind == "curve":
            _require(
                t_min is not None and t_max is not None,
                "curve jobs require 't_min' and 't_max' (hours)",
            )
            assert t_min is not None and t_max is not None
            _require(
                0.0 < t_min < t_max,
                "'t_min' must be positive and below 't_max'",
            )
            _require(
                len(methods_raw) == 1,
                "curve jobs take exactly one method",
            )
            _require(
                methods_raw[0] != "mc",
                "curve jobs evaluate closed-form methods; use a lifetime "
                "job for the MC reference",
            )
        known = {
            "kind", "design", "setup", "grid", "rho", "vdd", "ppm",
            "methods", "method", "mc_chips", "seed", "t_min", "t_max",
            "points",
        }
        unknown = sorted(set(data) - known)
        _require(not unknown, f"unknown field(s): {', '.join(unknown)}")
        return cls(
            kind=kind,
            design=design,
            setup=setup,
            grid=grid,
            rho=rho,
            vdd=_as_float(data, "vdd", None),
            ppm=ppm,
            methods=tuple(methods_raw),
            mc_chips=mc_chips,
            seed=_as_int(data, "seed", 0),
            t_min=t_min,
            t_max=t_max,
            points=points,
        )

    def as_dict(self) -> dict[str, Any]:
        """JSON-ready form; ``from_dict`` of it round-trips exactly."""
        doc = dataclasses.asdict(self)
        doc["methods"] = list(self.methods)
        return doc

    @property
    def key(self) -> str:
        """Content address of the result this request determines."""
        return fingerprint({"kind": "service.job", "request": self.as_dict()})

    @property
    def uses_mc(self) -> bool:
        """True when the job runs the sharded Monte-Carlo reference."""
        return self.kind == "lifetime" and "mc" in self.methods

    def build_analyzer(self) -> ReliabilityAnalyzer:
        """The analyzer for this request (mirrors the CLI's semantics)."""
        if self.setup is not None:
            floorplan, budget, obd_model, config = _load_setup(self.setup)
            if self.vdd is not None:
                config = dataclasses.replace(config, vdd=self.vdd)
            return ReliabilityAnalyzer(
                floorplan, budget=budget, obd_model=obd_model, config=config
            )
        assert self.design is not None
        floorplan = make_benchmark(self.design)
        config = AnalysisConfig(
            grid_size=self.grid, rho_dist=self.rho, vdd=self.vdd
        )
        return ReliabilityAnalyzer(floorplan, config=config)


def _load_setup(setup: dict[str, Any]) -> Any:
    """design_json parse with service-flavoured error reporting."""
    from repro.io.design_json import setup_from_dict

    try:
        return setup_from_dict(setup)
    except ServiceError:
        raise
    except ReproError as exc:
        raise ServiceError(f"invalid 'setup' document: {exc}") from exc


def run_job(
    request: JobRequest,
    cancel_check: Callable[[], bool] | None = None,
    checkpoint_path: str | None = None,
) -> dict[str, Any]:
    """Evaluate a request into its CLI-identical result payload.

    ``cancel_check``/``checkpoint_path`` flow into the sharded MC engine
    (the only long-running path): cancellation takes effect at shard
    boundaries and a flushed checkpoint lets an interrupted job resume.
    """
    if request.kind == "report":
        return payloads.report_payload(request.build_analyzer)
    analyzer = request.build_analyzer()
    if request.kind == "curve":
        assert request.t_min is not None and request.t_max is not None
        return payloads.curve_payload(
            analyzer,
            request.methods[0],
            t_min=request.t_min,
            t_max=request.t_max,
            points=request.points,
        )
    return payloads.lifetime_payload(
        analyzer,
        request.ppm,
        request.methods,
        mc_chips=request.mc_chips,
        seed=request.seed,
        checkpoint_path=checkpoint_path,
        cancel_check=cancel_check,
    )
