"""Job request schema: validation, fingerprinting, and evaluation.

A job request is the JSON document ``POST /v1/jobs`` accepts.  It names
an analysis ``kind`` (``lifetime``/``curve``/``report``), a design — one
of the paper's benchmarks by name, or an inline setup document in the
:mod:`repro.io.design_json` format — and the same knobs the CLI exposes,
so a job's result payload is **byte-identical** to the equivalent
``repro lifetime/curve/report --json`` invocation (both sides build it
with :mod:`repro.payloads`).

Requests are content-addressed with the execution layer's
:func:`repro.exec.cache.fingerprint`, which is what the service's dedup
(identical submissions coalesce) and result caching key on.
"""

from __future__ import annotations

import dataclasses
import math
from collections.abc import Callable
from typing import Any

from repro import payloads
from repro.chip.benchmarks import BENCHMARK_DEVICE_COUNTS, make_benchmark
from repro.core.analyzer import METHODS, AnalysisConfig, ReliabilityAnalyzer
from repro.errors import ReproError, ServiceError
from repro.exec.cache import fingerprint
from repro.kernels.config import PRECISIONS, use_precision

__all__ = ["JOB_KINDS", "JobRequest", "run_job"]

#: Analysis kinds a job can request.  The first three mirror the CLI
#: commands; ``mc_shards`` is the fleet worker primitive — evaluate an
#: explicit subset of the deterministic MC shard plan on an explicit time
#: grid and return the per-shard partial sums.  ``scenario`` evaluates a
#: piecewise stress schedule (:mod:`repro.scenario`) and mirrors
#: ``repro scenario run --json``.
JOB_KINDS = ("lifetime", "curve", "report", "mc_shards", "scenario")

#: Upper bound on the correlation grid through the service — a 200x200
#: grid is already a 40k-cell covariance problem; anything larger is a
#: resource-exhaustion vector, not a realistic request.
_MAX_GRID = 200

_MAX_MC_CHIPS = 100_000
_MAX_CURVE_POINTS = 2_000

#: Bounds for the fleet's ``mc_shards`` jobs: a shard group is a handful
#: of indices and the MC time grid is a few dozen points — anything far
#: beyond is a malformed coordinator, not a real request.
_MAX_JOB_SHARDS = 4_096
_MAX_SHARD_TIMES = 512


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ServiceError(message)


def _as_float(data: dict[str, Any], key: str, default: float | None) -> float | None:
    value = data.get(key, default)
    if value is None:
        return None
    _require(
        isinstance(value, (int, float)) and not isinstance(value, bool),
        f"field {key!r} must be a number, got {value!r}",
    )
    return float(value)


def _as_int(data: dict[str, Any], key: str, default: int) -> int:
    value = data.get(key, default)
    _require(
        isinstance(value, int) and not isinstance(value, bool),
        f"field {key!r} must be an integer, got {value!r}",
    )
    return int(value)


@dataclasses.dataclass(frozen=True)
class JobRequest:
    """One validated analysis job (see the module docstring).

    Instances are immutable and JSON-round-trippable (:meth:`as_dict`),
    and :attr:`key` content-addresses everything that determines the
    result.
    """

    kind: str
    design: str | None = None
    setup: dict[str, Any] | None = None
    grid: int = 25
    rho: float = 0.5
    vdd: float | None = None
    ppm: float = 10.0
    methods: tuple[str, ...] = ("st_fast",)
    mc_chips: int = 500
    seed: int = 0
    t_min: float | None = None
    t_max: float | None = None
    points: int = 20
    #: ``mc_shards`` only: shard indices to evaluate out of the plan for
    #: ``(seed, mc_chips)``, and the explicit evaluation time grid (hours).
    shards: tuple[int, ...] | None = None
    times: tuple[float, ...] | None = None
    #: ``scenario`` only: the canonical scenario document
    #: (:meth:`repro.scenario.Scenario.as_dict`) — the full phase
    #: schedule and mechanism set fold into the fingerprint.
    scenario: dict[str, Any] | None = None
    #: Kernel precision tier (``float64`` reference or ``fast32``); part
    #: of the fingerprint, and recorded in the result payload.
    precision: str = "float64"

    @classmethod
    def from_dict(cls, data: Any) -> JobRequest:
        """Validate a raw JSON document into a request (400 on failure)."""
        _require(isinstance(data, dict), "job request must be a JSON object")
        kind = data.get("kind")
        _require(
            kind in JOB_KINDS,
            f"field 'kind' must be one of {', '.join(JOB_KINDS)}, "
            f"got {kind!r}",
        )
        design = data.get("design")
        setup = data.get("setup")
        _require(
            (design is None) != (setup is None),
            "exactly one of 'design' (benchmark name) or 'setup' "
            "(inline design_json document) is required",
        )
        if design is not None:
            _require(
                design in BENCHMARK_DEVICE_COUNTS,
                f"unknown design {design!r}; expected one of "
                f"{', '.join(sorted(BENCHMARK_DEVICE_COUNTS))}",
            )
        if setup is not None:
            _require(
                isinstance(setup, dict),
                "field 'setup' must be a design_json setup object",
            )
            # Validate eagerly so a malformed setup is a 400 at submit
            # time, not a failed job minutes later.
            _load_setup(setup)
        methods_raw = data.get("methods", data.get("method", ["st_fast"]))
        if isinstance(methods_raw, str):
            methods_raw = [methods_raw]
        _require(
            isinstance(methods_raw, list) and len(methods_raw) > 0,
            "field 'methods' must be a non-empty list of method names",
        )
        for method in methods_raw:
            _require(
                method in METHODS,
                f"unknown method {method!r}; expected one of {METHODS}",
            )
        grid = _as_int(data, "grid", 25)
        _require(2 <= grid <= _MAX_GRID, f"field 'grid' must be in [2, {_MAX_GRID}]")
        rho = _as_float(data, "rho", 0.5)
        assert rho is not None
        _require(rho > 0.0, "field 'rho' must be positive")
        ppm = _as_float(data, "ppm", 10.0)
        assert ppm is not None
        _require(ppm > 0.0, "field 'ppm' must be positive")
        mc_chips = _as_int(data, "mc_chips", 500)
        _require(
            2 <= mc_chips <= _MAX_MC_CHIPS,
            f"field 'mc_chips' must be in [2, {_MAX_MC_CHIPS}]",
        )
        points = _as_int(data, "points", 20)
        _require(
            2 <= points <= _MAX_CURVE_POINTS,
            f"field 'points' must be in [2, {_MAX_CURVE_POINTS}]",
        )
        t_min = _as_float(data, "t_min", None)
        t_max = _as_float(data, "t_max", None)
        if kind == "curve":
            _require(
                t_min is not None and t_max is not None,
                "curve jobs require 't_min' and 't_max' (hours)",
            )
            assert t_min is not None and t_max is not None
            _require(
                0.0 < t_min < t_max,
                "'t_min' must be positive and below 't_max'",
            )
            _require(
                len(methods_raw) == 1,
                "curve jobs take exactly one method",
            )
            _require(
                methods_raw[0] != "mc",
                "curve jobs evaluate closed-form methods; use a lifetime "
                "job for the MC reference",
            )
        shards_raw = data.get("shards")
        times_raw = data.get("times")
        if kind == "mc_shards":
            _require(
                isinstance(shards_raw, list)
                and 0 < len(shards_raw) <= _MAX_JOB_SHARDS,
                "mc_shards jobs require 'shards': a non-empty list of at "
                f"most {_MAX_JOB_SHARDS} shard indices",
            )
            assert isinstance(shards_raw, list)
            for index in shards_raw:
                _require(
                    isinstance(index, int)
                    and not isinstance(index, bool)
                    and index >= 0,
                    f"shard index must be a non-negative integer, got "
                    f"{index!r}",
                )
            _require(
                len(set(shards_raw)) == len(shards_raw),
                "field 'shards' must not repeat indices",
            )
            _require(
                isinstance(times_raw, list)
                and 0 < len(times_raw) <= _MAX_SHARD_TIMES,
                "mc_shards jobs require 'times': a non-empty list of at "
                f"most {_MAX_SHARD_TIMES} evaluation times (hours)",
            )
            assert isinstance(times_raw, list)
            for value in times_raw:
                _require(
                    isinstance(value, (int, float))
                    and not isinstance(value, bool)
                    and math.isfinite(value)
                    and value >= 0.0,
                    f"evaluation times must be finite non-negative "
                    f"numbers, got {value!r}",
                )
        else:
            _require(
                shards_raw is None and times_raw is None,
                "'shards' and 'times' apply to mc_shards jobs only",
            )
        scenario_raw = data.get("scenario")
        scenario_doc: dict[str, Any] | None = None
        if kind == "scenario":
            _require(
                isinstance(scenario_raw, dict),
                "scenario jobs require 'scenario': a schedule document "
                "with 'phases' (see docs/scenarios.md)",
            )
            _require(
                tuple(methods_raw) == ("st_fast",),
                "scenario jobs evaluate the st_fast method only",
            )
            # Validate eagerly (400 at submit time) and canonicalise, so
            # the fingerprint keys on the normalised schedule rather than
            # whichever optional keys the client happened to spell out.
            from repro.scenario.schedule import Scenario

            try:
                scenario_doc = Scenario.from_dict(scenario_raw).as_dict()
            except ReproError as exc:
                raise ServiceError(
                    f"invalid 'scenario' document: {exc}"
                ) from exc
        else:
            _require(
                scenario_raw is None,
                "'scenario' applies to scenario jobs only",
            )
        precision = data.get("precision", "float64")
        _require(
            precision in PRECISIONS,
            f"field 'precision' must be one of {', '.join(PRECISIONS)}, "
            f"got {precision!r}",
        )
        known = {
            "kind", "design", "setup", "grid", "rho", "vdd", "ppm",
            "methods", "method", "mc_chips", "seed", "t_min", "t_max",
            "points", "shards", "times", "scenario", "precision",
        }
        unknown = sorted(set(data) - known)
        _require(not unknown, f"unknown field(s): {', '.join(unknown)}")
        return cls(
            kind=kind,
            design=design,
            setup=setup,
            grid=grid,
            rho=rho,
            vdd=_as_float(data, "vdd", None),
            ppm=ppm,
            methods=tuple(methods_raw),
            mc_chips=mc_chips,
            seed=_as_int(data, "seed", 0),
            t_min=t_min,
            t_max=t_max,
            points=points,
            shards=(
                tuple(int(i) for i in shards_raw)
                if isinstance(shards_raw, list)
                else None
            ),
            times=(
                tuple(float(v) for v in times_raw)
                if isinstance(times_raw, list)
                else None
            ),
            scenario=scenario_doc,
            precision=precision,
        )

    def as_dict(self) -> dict[str, Any]:
        """JSON-ready form; ``from_dict`` of it round-trips exactly."""
        doc = dataclasses.asdict(self)
        doc["methods"] = list(self.methods)
        doc["shards"] = list(self.shards) if self.shards is not None else None
        doc["times"] = list(self.times) if self.times is not None else None
        return doc

    @property
    def key(self) -> str:
        """Content address of the result this request determines."""
        return fingerprint({"kind": "service.job", "request": self.as_dict()})

    @property
    def uses_mc(self) -> bool:
        """True when the job runs the sharded Monte-Carlo reference."""
        if self.kind == "mc_shards":
            return True
        return self.kind == "lifetime" and "mc" in self.methods

    def build_analyzer(self) -> ReliabilityAnalyzer:
        """The analyzer for this request (mirrors the CLI's semantics)."""
        if self.setup is not None:
            floorplan, budget, obd_model, config = _load_setup(self.setup)
            if self.vdd is not None:
                config = dataclasses.replace(config, vdd=self.vdd)
            return ReliabilityAnalyzer(
                floorplan, budget=budget, obd_model=obd_model, config=config
            )
        assert self.design is not None
        floorplan = make_benchmark(self.design)
        config = AnalysisConfig(
            grid_size=self.grid, rho_dist=self.rho, vdd=self.vdd
        )
        return ReliabilityAnalyzer(floorplan, config=config)


def _load_setup(setup: dict[str, Any]) -> Any:
    """design_json parse with service-flavoured error reporting."""
    from repro.io.design_json import setup_from_dict

    try:
        return setup_from_dict(setup)
    except ServiceError:
        raise
    except ReproError as exc:
        raise ServiceError(f"invalid 'setup' document: {exc}") from exc


def run_job(
    request: JobRequest,
    cancel_check: Callable[[], bool] | None = None,
    checkpoint_path: str | None = None,
) -> dict[str, Any]:
    """Evaluate a request into its CLI-identical result payload.

    ``cancel_check``/``checkpoint_path`` flow into the sharded MC engine
    (the only long-running path): cancellation takes effect at shard
    boundaries and a flushed checkpoint lets an interrupted job resume.

    The whole evaluation runs under the request's kernel precision tier
    (a process-wide switch, restored afterwards; the tier is part of the
    request fingerprint, so cached results never mix tiers).
    """
    with use_precision(request.precision):
        if request.kind == "report":
            return payloads.report_payload(request.build_analyzer)
        analyzer = request.build_analyzer()
        if request.kind == "mc_shards":
            assert request.shards is not None and request.times is not None
            return payloads.mc_shards_payload(
                analyzer,
                list(request.times),
                list(request.shards),
                mc_chips=request.mc_chips,
                seed=request.seed,
                checkpoint_path=checkpoint_path,
                cancel_check=cancel_check,
            )
        if request.kind == "scenario":
            from repro.scenario.schedule import Scenario

            assert request.scenario is not None
            return payloads.scenario_payload(
                analyzer,
                Scenario.from_dict(request.scenario),
                request.ppm,
            )
        if request.kind == "curve":
            assert request.t_min is not None and request.t_max is not None
            return payloads.curve_payload(
                analyzer,
                request.methods[0],
                t_min=request.t_min,
                t_max=request.t_max,
                points=request.points,
            )
        return payloads.lifetime_payload(
            analyzer,
            request.ppm,
            request.methods,
            mc_chips=request.mc_chips,
            seed=request.seed,
            checkpoint_path=checkpoint_path,
            cancel_check=cancel_check,
        )
