"""Statistical utilities: Weibull, quadratic forms, integration, diagnostics."""
