"""Histogram fitting diagnostics (Fig. 4 of the paper).

The BLOD property says the per-block thickness histogram of a sample chip
follows a Gaussian curve; the paper validates it by fitting histograms of
5K- and 20K-device blocks and reporting R-square goodness above 99 %. This
module provides exactly that fit.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats as sps

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class GaussianFitResult:
    """Result of fitting a Gaussian curve to a sample histogram.

    Attributes
    ----------
    mean, sigma:
        Moment-fitted Gaussian parameters.
    r_square:
        Coefficient of determination between the histogram density and the
        fitted Gaussian density at bin centres (the paper's goodness
        metric).
    bin_centers, density:
        The histogram itself, normalized to a density.
    """

    mean: float
    sigma: float
    r_square: float
    bin_centers: np.ndarray
    density: np.ndarray

    @property
    def fitted_density(self) -> np.ndarray:
        """Fitted Gaussian density evaluated at the bin centres."""
        return np.asarray(
            sps.norm.pdf(self.bin_centers, loc=self.mean, scale=self.sigma)
        )


def gaussian_fit_r2(samples: np.ndarray, bins: int = 40) -> GaussianFitResult:
    """Fit a Gaussian to a sample histogram and report R-square.

    Parameters
    ----------
    samples:
        1-D sample (e.g. all device thicknesses of one block of one chip).
    bins:
        Number of histogram bins.
    """
    samples = np.asarray(samples, dtype=float)
    if samples.ndim != 1 or samples.size < 10:
        raise ConfigurationError("need a 1-D sample of at least 10 points")
    if bins < 4:
        raise ConfigurationError(f"need at least 4 bins, got {bins}")
    mean = float(samples.mean())
    sigma = float(samples.std(ddof=1))
    if sigma <= 0.0:
        raise ConfigurationError("sample has zero spread; nothing to fit")
    density, edges = np.histogram(samples, bins=bins, density=True)
    centers = 0.5 * (edges[:-1] + edges[1:])
    fitted = sps.norm.pdf(centers, loc=mean, scale=sigma)
    residual = np.sum((density - fitted) ** 2)
    total = np.sum((density - density.mean()) ** 2)
    r_square = 1.0 - residual / total if total > 0.0 else 0.0
    return GaussianFitResult(
        mean=mean,
        sigma=sigma,
        r_square=float(r_square),
        bin_centers=centers,
        density=density,
    )


def histogram_pdf(
    samples: np.ndarray, bins: int = 40
) -> tuple[np.ndarray, np.ndarray]:
    """A normalized density histogram: ``(bin_centers, density)``."""
    samples = np.asarray(samples, dtype=float)
    if samples.ndim != 1 or samples.size < 2:
        raise ConfigurationError("need a 1-D sample of at least 2 points")
    density, edges = np.histogram(samples, bins=bins, density=True)
    centers = 0.5 * (edges[:-1] + edges[1:])
    return centers, density


def empirical_cdf(samples: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Empirical CDF coordinates ``(sorted_samples, F_hat)``."""
    samples = np.sort(np.asarray(samples, dtype=float))
    if samples.ndim != 1 or samples.size < 1:
        raise ConfigurationError("need a non-empty 1-D sample")
    ranks = np.arange(1, samples.size + 1) / samples.size
    return samples, ranks
