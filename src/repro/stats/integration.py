"""Numerical integration rules for the ensemble reliability integrals.

Equation (28) reduces the full-chip reliability to ``N`` double integrals
of ``exp(-A_j g(u, v))`` against the marginal PDFs of the BLOD mean and
variance. The paper evaluates them with an ``l0 x l0`` sub-domain midpoint
sum (``l0 = 10`` suffices, Sec. IV-D); this module implements that rule plus
two higher-order alternatives used as ablation references:

- Gauss-Hermite quadrature for the Gaussian ``u`` direction,
- equal-probability (quantile-stratified) points for the chi-square ``v``
  direction,
- scipy adaptive quadrature as the "exact" baseline.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Callable
from typing import Protocol

import numpy as np
from scipy import integrate
from scipy import stats as sps

from repro.errors import ConfigurationError


class UnivariateDist(Protocol):
    """Minimal distribution interface consumed by the integration rules."""

    def pdf(self, x: np.ndarray | float) -> np.ndarray | float:
        """Probability density at ``x``."""

    def ppf(self, q: np.ndarray | float) -> np.ndarray | float:
        """Quantile function at probability ``q``."""


@dataclass(frozen=True)
class NormalDist:
    """A normal distribution with the protocol the rules expect."""

    mean: float
    sigma: float

    def __post_init__(self) -> None:
        if self.sigma < 0.0:
            raise ConfigurationError(f"sigma must be >= 0, got {self.sigma}")

    @property
    def is_degenerate(self) -> bool:
        """True when the distribution is a point mass."""
        return self.sigma <= 0.0

    def pdf(self, x: np.ndarray | float) -> np.ndarray | float:
        """Normal density (zero everywhere for the degenerate case)."""
        if self.is_degenerate:
            return np.zeros_like(np.asarray(x, dtype=float))
        return np.asarray(sps.norm.pdf(x, loc=self.mean, scale=self.sigma))

    def ppf(self, q: np.ndarray | float) -> np.ndarray | float:
        """Normal quantile (constant for the degenerate case)."""
        if self.is_degenerate:
            return np.full_like(np.asarray(q, dtype=float), self.mean)
        return np.asarray(sps.norm.ppf(q, loc=self.mean, scale=self.sigma))


@dataclass(frozen=True)
class PointMass:
    """A deterministic value packaged as a distribution."""

    value: float

    def pdf(self, x: np.ndarray | float) -> np.ndarray | float:
        """Dirac mass has no density; rules special-case this type."""
        raise NotImplementedError("point mass has no density")

    def ppf(self, q: np.ndarray | float) -> np.ndarray | float:
        """Every quantile is the point itself."""
        return np.full_like(np.asarray(q, dtype=float), self.value)


@dataclass(frozen=True)
class Rule1D:
    """Integration points and weights for one dimension."""

    points: np.ndarray
    weights: np.ndarray

    def __post_init__(self) -> None:
        if self.points.shape != self.weights.shape or self.points.ndim != 1:
            raise ConfigurationError("points and weights must be matching 1-D arrays")


def midpoint_rule(
    dist: UnivariateDist,
    n_points: int = 10,
    tail: float = 1e-6,
    normalize: bool = True,
) -> Rule1D:
    """The paper's sub-domain midpoint rule for one dimension.

    The integration domain ``[ppf(tail), ppf(1 - tail)]`` is divided into
    ``n_points`` equal sub-domains; each contributes its midpoint weighted
    by ``pdf(midpoint) * width``. With ``normalize=True`` the weights are
    rescaled to sum to one, removing the O(width^2) discretisation bias of
    the raw rule (the paper's ``l0 = 10`` is accurate either way because
    the PDFs die off quickly, Fig. 4).
    """
    if n_points < 1:
        raise ConfigurationError(f"n_points must be >= 1, got {n_points}")
    if not 0.0 < tail < 0.5:
        raise ConfigurationError(f"tail must be in (0, 0.5), got {tail}")
    if isinstance(dist, PointMass):
        return Rule1D(points=np.array([dist.value]), weights=np.array([1.0]))
    if isinstance(dist, NormalDist) and dist.is_degenerate:
        return Rule1D(points=np.array([dist.mean]), weights=np.array([1.0]))
    lo = float(dist.ppf(tail))
    hi = float(dist.ppf(1.0 - tail))
    if not np.isfinite(lo) or not np.isfinite(hi) or hi <= lo:
        raise ConfigurationError("distribution support could not be bracketed")
    edges = np.linspace(lo, hi, n_points + 1)
    midpoints = 0.5 * (edges[:-1] + edges[1:])
    widths = np.diff(edges)
    weights = np.asarray(dist.pdf(midpoints), dtype=float) * widths
    total = weights.sum()
    if normalize:
        if total <= 0.0:
            raise ConfigurationError("distribution has no mass on the bracket")
        weights = weights / total
    return Rule1D(points=midpoints, weights=weights)


def gauss_hermite_rule(dist: NormalDist, n_points: int = 16) -> Rule1D:
    """Gauss-Hermite rule for an expectation over a normal distribution."""
    if n_points < 1:
        raise ConfigurationError(f"n_points must be >= 1, got {n_points}")
    if dist.is_degenerate:
        return Rule1D(points=np.array([dist.mean]), weights=np.array([1.0]))
    nodes, weights = np.polynomial.hermite_e.hermegauss(n_points)
    points = dist.mean + dist.sigma * nodes
    return Rule1D(points=points, weights=weights / np.sqrt(2.0 * np.pi))


def quantile_rule(dist: UnivariateDist, n_points: int = 32) -> Rule1D:
    """Equal-probability stratified rule (works for any distribution).

    Splits probability into ``n_points`` strata and represents each by its
    median quantile with weight ``1/n``. Robust for the skewed chi-square
    ``v`` marginal.
    """
    if n_points < 1:
        raise ConfigurationError(f"n_points must be >= 1, got {n_points}")
    if isinstance(dist, PointMass):
        return Rule1D(points=np.array([dist.value]), weights=np.array([1.0]))
    if isinstance(dist, NormalDist) and dist.is_degenerate:
        return Rule1D(points=np.array([dist.mean]), weights=np.array([1.0]))
    quantiles = (np.arange(n_points) + 0.5) / n_points
    points = np.asarray(dist.ppf(quantiles), dtype=float)
    weights = np.full(n_points, 1.0 / n_points)
    return Rule1D(points=points, weights=weights)


def expectation_2d(
    fn: Callable[[np.ndarray, np.ndarray], np.ndarray],
    rule_u: Rule1D,
    rule_v: Rule1D,
) -> float:
    """``E[fn(U, V)]`` for independent U, V given per-dimension rules.

    ``fn`` must accept broadcast arrays and return elementwise values.
    """
    u_grid = rule_u.points[:, None]
    v_grid = rule_v.points[None, :]
    values = np.asarray(fn(u_grid, v_grid), dtype=float)
    expected_shape = (rule_u.points.size, rule_v.points.size)
    if values.shape != expected_shape:
        raise ConfigurationError(
            f"fn returned shape {values.shape}, expected {expected_shape}"
        )
    return float(rule_u.weights @ values @ rule_v.weights)


def expectation_2d_adaptive(
    fn: Callable[[float, float], float],
    dist_u: UnivariateDist,
    dist_v: UnivariateDist,
    tail: float = 1e-9,
) -> float:
    """Adaptive scipy double quadrature of ``fn`` against the two PDFs.

    The slow "exact" reference used in the integration-rule ablation.
    Degenerate dimensions collapse to a 1-D quadrature automatically.
    """
    u_degenerate = isinstance(dist_u, PointMass) or (
        isinstance(dist_u, NormalDist) and dist_u.is_degenerate
    )
    v_degenerate = isinstance(dist_v, PointMass) or (
        isinstance(dist_v, NormalDist) and dist_v.is_degenerate
    )
    if u_degenerate and v_degenerate:
        u0 = float(dist_u.ppf(0.5))
        v0 = float(dist_v.ppf(0.5))
        return float(fn(u0, v0))
    if u_degenerate:
        u0 = float(dist_u.ppf(0.5))
        lo, hi = float(dist_v.ppf(tail)), float(dist_v.ppf(1.0 - tail))
        value, _err = integrate.quad(
            lambda v: float(fn(u0, v)) * float(dist_v.pdf(v)), lo, hi, limit=200
        )
        return value
    if v_degenerate:
        v0 = float(dist_v.ppf(0.5))
        lo, hi = float(dist_u.ppf(tail)), float(dist_u.ppf(1.0 - tail))
        value, _err = integrate.quad(
            lambda u: float(fn(u, v0)) * float(dist_u.pdf(u)), lo, hi, limit=200
        )
        return value
    u_lo, u_hi = float(dist_u.ppf(tail)), float(dist_u.ppf(1.0 - tail))
    v_lo, v_hi = float(dist_v.ppf(tail)), float(dist_v.ppf(1.0 - tail))
    value, _err = integrate.dblquad(
        lambda v, u: float(fn(u, v)) * float(dist_u.pdf(u)) * float(dist_v.pdf(v)),
        u_lo,
        u_hi,
        lambda _u: v_lo,
        lambda _u: v_hi,
    )
    return value
