"""Joint-PDF diagnostics for the (u, v) independence approximation.

Section IV-C argues the BLOD sample mean and variance are uncorrelated
(the Lemma) and *nearly* independent: the paper shows the joint PDF next to
the product of marginals (Fig. 6), the normalized error contour with a ~7 %
worst case (Fig. 7), and a mutual information of only 0.003. This module
computes all three from Monte-Carlo samples.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class JointPdfComparison:
    """Histogram joint PDF versus marginal product on a common grid.

    Attributes
    ----------
    u_centers, v_centers:
        Bin centres along each axis.
    joint:
        2-D joint density histogram ``f(u, v)``.
    product:
        Outer product of the marginal density histograms
        ``f(u) * f(v)``.
    """

    u_centers: np.ndarray
    v_centers: np.ndarray
    joint: np.ndarray
    product: np.ndarray

    @property
    def normalized_error(self) -> np.ndarray:
        """``|joint - product| / max(joint)`` — the Fig. 7 contour field."""
        peak = self.joint.max()
        if peak <= 0.0:
            raise ConfigurationError("joint histogram is empty")
        return np.abs(self.joint - self.product) / peak

    @property
    def max_normalized_error(self) -> float:
        """Worst-case normalized error (paper reports ~7 %)."""
        return float(self.normalized_error.max())


def joint_pdf_comparison(
    samples_u: np.ndarray,
    samples_v: np.ndarray,
    bins: int = 30,
) -> JointPdfComparison:
    """Build the Fig. 6/7 comparison from paired samples."""
    samples_u = np.asarray(samples_u, dtype=float)
    samples_v = np.asarray(samples_v, dtype=float)
    if samples_u.shape != samples_v.shape or samples_u.ndim != 1:
        raise ConfigurationError("need matching 1-D sample arrays")
    if samples_u.size < 100:
        raise ConfigurationError("need at least 100 paired samples")
    joint, u_edges, v_edges = np.histogram2d(
        samples_u, samples_v, bins=bins, density=True
    )
    du = np.diff(u_edges)
    dv = np.diff(v_edges)
    marginal_u = joint @ dv  # integrate over v
    marginal_v = du @ joint  # integrate over u
    product = np.outer(marginal_u, marginal_v)
    u_centers = 0.5 * (u_edges[:-1] + u_edges[1:])
    v_centers = 0.5 * (v_edges[:-1] + v_edges[1:])
    return JointPdfComparison(
        u_centers=u_centers,
        v_centers=v_centers,
        joint=joint,
        product=product,
    )


def mutual_information(
    samples_u: np.ndarray,
    samples_v: np.ndarray,
    bins: int = 30,
) -> float:
    """Plug-in mutual information estimate in nats from paired samples.

    Uses the 2-D histogram estimator; for near-independent pairs the small
    positive bias of the estimator is itself O(bins^2 / n), so use
    generously many samples. The paper reports MI = 0.003 between the BLOD
    mean and variance.
    """
    samples_u = np.asarray(samples_u, dtype=float)
    samples_v = np.asarray(samples_v, dtype=float)
    if samples_u.shape != samples_v.shape or samples_u.ndim != 1:
        raise ConfigurationError("need matching 1-D sample arrays")
    counts, _u_edges, _v_edges = np.histogram2d(samples_u, samples_v, bins=bins)
    n = counts.sum()
    if n <= 0:
        raise ConfigurationError("no samples fell in the histogram")
    pxy = counts / n
    px = pxy.sum(axis=1, keepdims=True)
    py = pxy.sum(axis=0, keepdims=True)
    mask = pxy > 0.0
    with np.errstate(divide="ignore", invalid="ignore"):
        ratio = np.where(mask, pxy / (px * py), 1.0)
        terms = np.where(mask, pxy * np.log(ratio), 0.0)
    return float(terms.sum())


def correlation_coefficient(
    samples_u: np.ndarray, samples_v: np.ndarray
) -> float:
    """Pearson correlation between the paired samples.

    The Lemma of Sec. IV-C predicts this is ~0 for the BLOD mean/variance
    pair (exact uncorrelation).
    """
    samples_u = np.asarray(samples_u, dtype=float)
    samples_v = np.asarray(samples_v, dtype=float)
    if samples_u.shape != samples_v.shape or samples_u.ndim != 1:
        raise ConfigurationError("need matching 1-D sample arrays")
    if samples_u.size < 2:
        raise ConfigurationError("need at least two paired samples")
    return float(np.corrcoef(samples_u, samples_v)[0, 1])
