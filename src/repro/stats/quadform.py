"""Distributions of quadratic forms in standard normal variables.

The BLOD sample variance is ``v = v0 + z' C z`` with ``z`` standard normal
(eq. (24)); its distribution is a (shifted) quadratic normal form. This
module provides:

- the paper's two-moment chi-square matching (eq. (29)-(30), after
  Yuan-Bentler [33] / Satterthwaite),
- a three-moment Hall-Buckley-Eagleson refinement (the "more moments"
  escape hatch of footnote 4),
- Imhof's exact numerical inversion [32] as the accuracy reference,
- exact sampling.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from functools import cached_property

import numpy as np
from scipy import integrate
from scipy import stats as sps

from repro.errors import ConfigurationError, NumericalError
from repro.kernels.config import fast_paths_enabled, precision
from repro.obs import metrics

#: Truncation tolerance of the batched Imhof quadrature (envelope bound).
_IMHOF_TAIL_TOL = 1e-7
#: Gauss-Legendre nodes per oscillation-period panel.
_IMHOF_NODES_PER_PANEL = 12
#: Node budget above which the batched path defers to adaptive quad
#: (few-eigenvalue forms have slowly decaying tails; see imhof_sf).
_IMHOF_MAX_NODES = 2_000_000
#: Scratch bound of one (x, node) evaluation chunk.
_IMHOF_CHUNK_ELEMENTS = 8_000_000

_GL_NODES, _GL_WEIGHTS = np.polynomial.legendre.leggauss(
    _IMHOF_NODES_PER_PANEL
)


@dataclass(frozen=True)
class Chi2Match:
    """A shifted scaled chi-square surrogate ``offset + a * chi2(b)``."""

    offset: float
    scale: float
    dof: float

    def cdf(self, x: np.ndarray | float) -> np.ndarray | float:
        """CDF of the surrogate distribution."""
        x = np.asarray(x, dtype=float)
        out = sps.chi2.cdf((x - self.offset) / self.scale, self.dof)
        return out if out.ndim else float(out)

    def ppf(self, q: np.ndarray | float) -> np.ndarray | float:
        """Quantile function of the surrogate distribution."""
        q = np.asarray(q, dtype=float)
        out = self.offset + self.scale * sps.chi2.ppf(q, self.dof)
        return out if out.ndim else float(out)

    def pdf(self, x: np.ndarray | float) -> np.ndarray | float:
        """Density of the surrogate distribution."""
        x = np.asarray(x, dtype=float)
        out = sps.chi2.pdf((x - self.offset) / self.scale, self.dof) / self.scale
        return out if out.ndim else float(out)

    def mean(self) -> float:
        """Mean of the surrogate."""
        return self.offset + self.scale * self.dof

    def var(self) -> float:
        """Variance of the surrogate."""
        return 2.0 * self.scale**2 * self.dof

    def support(self, tail: float = 1e-10) -> tuple[float, float]:
        """An interval containing all but ``tail`` probability each side."""
        return float(self.ppf(tail)), float(self.ppf(1.0 - tail))


class QuadraticForm:
    """The random variable ``Q = offset + z' C z``, z ~ N(0, I).

    ``C`` is symmetrised on input. For the BLOD use case ``C`` is positive
    semidefinite, but indefinite forms are supported by the Imhof inversion
    and sampling paths (the chi-square match requires a PSD-like positive
    trace).
    """

    def __init__(self, offset: float, matrix: np.ndarray) -> None:
        matrix = np.asarray(matrix, dtype=float)
        if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
            raise ConfigurationError(
                f"matrix must be square, got shape {matrix.shape}"
            )
        self.offset = float(offset)
        self.matrix = 0.5 * (matrix + matrix.T)
        # Node tables of the batched Imhof quadrature, keyed by the
        # truncation geometry (see _imhof_sf_batched).
        self._imhof_node_cache: dict[
            tuple[float, int], tuple[np.ndarray, np.ndarray, np.ndarray]
        ] = {}

    @cached_property
    def eigenvalues(self) -> np.ndarray:
        """Eigenvalues of ``C``: the weights of the chi-square mixture."""
        return np.linalg.eigvalsh(self.matrix)

    def mean(self) -> float:
        """``E[Q] = offset + tr(C)``."""
        return self.offset + float(np.trace(self.matrix))

    def var(self) -> float:
        """``Var[Q] = 2 tr(C^2)``."""
        return 2.0 * float(np.sum(self.matrix * self.matrix))

    def std(self) -> float:
        """Standard deviation of ``Q``."""
        return float(np.sqrt(self.var()))

    def skewness(self) -> float:
        """Skewness ``8 tr(C^3) / (2 tr(C^2))^(3/2)``."""
        variance = self.var()
        if variance <= 0.0:
            return 0.0
        trace_cubed = float(np.sum(self.eigenvalues**3))
        return 8.0 * trace_cubed / variance**1.5

    @property
    def is_degenerate(self) -> bool:
        """True when ``Q`` is (numerically) a point mass at ``offset``."""
        return self.var() <= 1e-300

    def chi2_match(self) -> Chi2Match:
        """Two-moment chi-square surrogate (eq. (29)-(30) of the paper).

        Matches mean and variance of the quadratic part:
        ``a = tr(C^2)/tr(C)`` and ``b = tr(C)^2 / tr(C^2)``.
        """
        trace = float(np.trace(self.matrix))
        trace_sq = float(np.sum(self.matrix * self.matrix))
        if trace <= 0.0 or trace_sq <= 0.0:
            raise NumericalError(
                "chi-square matching needs a positive-trace quadratic form; "
                "use imhof_sf or treat the form as degenerate"
            )
        scale = trace_sq / trace
        dof = trace**2 / trace_sq
        return Chi2Match(offset=self.offset, scale=scale, dof=dof)

    def hbe_match(self) -> Chi2Match:
        """Three-moment Hall-Buckley-Eagleson chi-square surrogate.

        Matches mean, variance and skewness; the surrogate is
        ``mean + std * (chi2(nu) - nu) / sqrt(2 nu)`` with ``nu = 8 /
        skewness^2``. Falls back to the two-moment match when the form is
        symmetric (zero skewness).
        """
        skew = self.skewness()
        if abs(skew) < 1e-12:
            return self.chi2_match()
        if skew < 0.0:
            # Mixtures of positive-weight chi-squares are right-skewed; a
            # negative skew implies indefinite C, outside HBE's domain.
            raise NumericalError("HBE matching requires right-skewed forms")
        dof = 8.0 / skew**2
        std = self.std()
        scale = std / np.sqrt(2.0 * dof)
        offset = self.mean() - scale * dof
        return Chi2Match(offset=offset, scale=scale, dof=dof)

    @cached_property
    def _imhof_spectrum(self) -> tuple[np.ndarray, float] | None:
        """Filtered, max-normalised eigenvalues and the scale factor.

        The distribution is scale invariant: normalising so the quadrature
        sees O(1) eigenvalues keeps the integrand's oscillation scale
        inside the solvers' search range regardless of the form's physical
        units (BLOD variances are ~1e-4 nm^2).  ``None`` marks a
        numerically rank-zero form (point mass at the offset).
        """
        lam = self.eigenvalues
        lam = lam[np.abs(lam) > 1e-14 * max(np.abs(lam).max(), 1e-300)]
        if lam.size == 0:
            return None
        scale = float(np.abs(lam).max())
        return lam / scale, scale

    def imhof_sf(
        self, x: np.ndarray | float, limit: int = 200
    ) -> np.ndarray | float:
        """Exact ``P(Q > x)`` by Imhof's numerical inversion [32].

        Accepts a scalar or an array of ``x``; a scalar returns a float.
        With fast paths enabled (:mod:`repro.kernels.config`), the whole
        batch shares one eigendecomposition and one composite
        Gauss-Legendre evaluation of the oscillatory integrand, instead of
        a per-point adaptive ``quad`` call.  Forms whose tails decay too
        slowly for a bounded node count (fewer than ~3 retained
        eigenvalues) fall back to the per-point adaptive reference, which
        also serves the equivalence tests.  Accurate to roughly 1e-7.
        """
        x_arr = np.atleast_1d(np.asarray(x, dtype=float))
        scalar = np.ndim(x) == 0
        if not np.all(np.isfinite(x_arr)):
            raise ConfigurationError("x must be finite")
        spectrum = None if self.is_degenerate else self._imhof_spectrum
        if spectrum is None:
            out = np.where(x_arr < self.offset, 1.0, 0.0)
            return float(out[0]) if scalar else out
        lam, scale = spectrum
        shifted = (x_arr - self.offset) / scale
        out = None
        if fast_paths_enabled():
            out = self._imhof_sf_batched(lam, shifted)
        if out is None:
            out = np.array(
                [self._imhof_sf_adaptive(lam, s, limit) for s in shifted]
            )
        return float(out[0]) if scalar else out

    def _imhof_sf_adaptive(
        self, lam: np.ndarray, shifted: float, limit: int
    ) -> float:
        """Per-point adaptive-quad Imhof inversion (reference path)."""

        def theta(u: float) -> float:
            return 0.5 * float(np.sum(np.arctan(lam * u))) - 0.5 * shifted * u

        def rho(u: float) -> float:
            return float(np.prod((1.0 + (lam * u) ** 2) ** 0.25))

        def integrand(u: float) -> float:
            if u == 0.0:  # reprolint: disable=RPL005 (quad samples the exact endpoint)
                # limit u->0 of sin(theta)/(u rho) = theta'(0)
                return 0.5 * float(np.sum(lam)) - 0.5 * shifted
            return np.sin(theta(u)) / (u * rho(u))

        with warnings.catch_warnings():
            # The integrand oscillates; quad warns about slow convergence
            # even when the achieved accuracy is fine (verified in tests).
            warnings.simplefilter("ignore", integrate.IntegrationWarning)
            value, _error = integrate.quad(integrand, 0.0, np.inf, limit=limit)
        sf = 0.5 + value / np.pi
        return float(min(max(sf, 0.0), 1.0))

    def _imhof_sf_batched(
        self, lam: np.ndarray, shifted: np.ndarray
    ) -> np.ndarray | None:
        """One composite-rule Imhof evaluation for a whole ``x`` batch.

        The integration interval ``[0, U]`` is truncated where the
        envelope bound ``(1/pi) prod |lam_i|^(-1/2) (2/k) U^(-k/2)``
        (minimised over the top-``k`` eigenvalue subsets) drops below
        ``_IMHOF_TAIL_TOL``, then split into one Gauss-Legendre panel per
        oscillation period of the worst-case phase rate.  ``theta`` and
        ``rho`` are shared across the batch; only the ``x``-dependent
        phase term varies.  Returns ``None`` when the node budget would be
        exceeded (caller falls back to the adaptive path).
        """
        if not np.all(np.isfinite(lam)):
            raise NumericalError("eigenvalues must be finite")
        abs_lam = np.sort(np.abs(lam))[::-1]
        ks = np.arange(1, abs_lam.size + 1, dtype=float)
        half_log_prod = 0.5 * np.cumsum(np.log(abs_lam))
        log_u = float(
            np.min(
                (2.0 / ks)
                * (
                    np.log(2.0 / (np.pi * _IMHOF_TAIL_TOL))
                    - np.log(ks)
                    - half_log_prod
                )
            )
        )
        if log_u > 50.0:
            return None
        u_max = float(np.exp(log_u))
        # Worst-case phase rate |theta'| <= 0.5 (sum|lam| + max|x|).
        max_rate = 0.5 * (
            float(np.sum(np.abs(lam))) + float(np.max(np.abs(shifted)))
        )
        n_panels = max(int(np.ceil(u_max * max_rate / (2.0 * np.pi))), 16)
        if n_panels * _IMHOF_NODES_PER_PANEL > _IMHOF_MAX_NODES:
            return None

        key = (round(log_u, 12), n_panels)
        tables = self._imhof_node_cache.get(key)
        if tables is None:
            edges = np.linspace(0.0, u_max, n_panels + 1)
            half = 0.5 * (edges[1:] - edges[:-1])
            mid = 0.5 * (edges[1:] + edges[:-1])
            u = (mid[:, None] + half[:, None] * _GL_NODES[None, :]).ravel()
            w = (half[:, None] * _GL_WEIGHTS[None, :]).ravel()
            theta_base = np.empty_like(u)
            weight = np.empty_like(u)
            # Chunk the (eigenvalue, node) scratch arrays.
            step = max(_IMHOF_CHUNK_ELEMENTS // max(lam.size, 1), 1)
            for start in range(0, u.size, step):
                stop = min(start + step, u.size)
                lam_u = lam[:, None] * u[None, start:stop]
                theta_base[start:stop] = 0.5 * np.sum(
                    np.arctan(lam_u), axis=0
                )
                # rho in log space: exp of a non-positive value, so the
                # product can never overflow for long spectra.
                log_rho = 0.25 * np.sum(np.log1p(lam_u**2), axis=0)
                weight[start:stop] = (
                    w[start:stop] / u[start:stop] * np.exp(-log_rho)
                )
            self._imhof_node_cache.clear()
            self._imhof_node_cache[key] = (u, theta_base, weight)
        else:
            u, theta_base, weight = tables
        metrics.inc("kernels.imhof_nodes", u.size * shifted.size)
        # The node tables stay float64 (built once, cached); under the
        # fast32 tier only the per-x evaluation sweep — the part repeated
        # for every query batch — runs in float32, upcast on return.
        dtype = np.float32 if precision() == "fast32" else np.float64
        u_eval = u.astype(dtype=dtype, copy=False)
        theta_eval = theta_base.astype(dtype=dtype, copy=False)
        weight_eval = weight.astype(dtype=dtype, copy=False)
        shifted_eval = shifted.astype(dtype=dtype, copy=False)
        out = np.empty(shifted.size, dtype=np.float64)
        step = max(_IMHOF_CHUNK_ELEMENTS // u.size, 1)
        for start in range(0, shifted.size, step):
            stop = min(start + step, shifted.size)
            phase = (
                theta_eval[None, :]
                - 0.5 * shifted_eval[start:stop, None] * u_eval[None, :]
            )
            out[start:stop] = np.sin(phase) @ weight_eval
        return np.clip(0.5 + out / np.pi, 0.0, 1.0)

    def imhof_cdf(
        self, x: np.ndarray | float, limit: int = 200
    ) -> np.ndarray | float:
        """Exact ``P(Q <= x)`` by Imhof's inversion (scalar or array)."""
        return 1.0 - self.imhof_sf(x, limit=limit)

    def sample(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """Exact samples of ``Q`` via the eigenvalue mixture.

        ``Q = offset + sum_i lambda_i W_i`` with ``W_i ~ chi2(1)``
        independent — distributionally identical to drawing ``z`` and
        evaluating the form, but O(rank) instead of O(dim^2) per sample.
        """
        if n < 1:
            raise ConfigurationError(f"n must be >= 1, got {n}")
        lam = self.eigenvalues
        lam = lam[np.abs(lam) > 1e-14 * max(np.abs(lam).max(), 1e-300)]
        if lam.size == 0:
            return np.full(n, self.offset)
        chis = rng.chisquare(1.0, size=(n, lam.size))
        return self.offset + chis @ lam

    def sample_from_factors(self, z: np.ndarray) -> np.ndarray:
        """Evaluate ``Q`` on given factor draws ``z`` (shape ``(n, dim)``).

        Used when the same ``z`` draws must be shared across several
        quadratic forms (the st_mc analyzer evaluates all blocks' ``u_j``
        and ``v_j`` on one common factor sample).
        """
        z = np.asarray(z, dtype=float)
        if z.ndim == 1:
            z = z[None, :]
        if z.shape[1] != self.matrix.shape[0]:
            raise ConfigurationError(
                f"factor dimension {z.shape[1]} does not match form "
                f"dimension {self.matrix.shape[0]}"
            )
        return self.offset + np.einsum("ni,ij,nj->n", z, self.matrix, z)
