"""Distributions of quadratic forms in standard normal variables.

The BLOD sample variance is ``v = v0 + z' C z`` with ``z`` standard normal
(eq. (24)); its distribution is a (shifted) quadratic normal form. This
module provides:

- the paper's two-moment chi-square matching (eq. (29)-(30), after
  Yuan-Bentler [33] / Satterthwaite),
- a three-moment Hall-Buckley-Eagleson refinement (the "more moments"
  escape hatch of footnote 4),
- Imhof's exact numerical inversion [32] as the accuracy reference,
- exact sampling.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from functools import cached_property

import numpy as np
from scipy import integrate
from scipy import stats as sps

from repro.errors import ConfigurationError, NumericalError


@dataclass(frozen=True)
class Chi2Match:
    """A shifted scaled chi-square surrogate ``offset + a * chi2(b)``."""

    offset: float
    scale: float
    dof: float

    def cdf(self, x: np.ndarray | float) -> np.ndarray | float:
        """CDF of the surrogate distribution."""
        x = np.asarray(x, dtype=float)
        out = sps.chi2.cdf((x - self.offset) / self.scale, self.dof)
        return out if out.ndim else float(out)

    def ppf(self, q: np.ndarray | float) -> np.ndarray | float:
        """Quantile function of the surrogate distribution."""
        q = np.asarray(q, dtype=float)
        out = self.offset + self.scale * sps.chi2.ppf(q, self.dof)
        return out if out.ndim else float(out)

    def pdf(self, x: np.ndarray | float) -> np.ndarray | float:
        """Density of the surrogate distribution."""
        x = np.asarray(x, dtype=float)
        out = sps.chi2.pdf((x - self.offset) / self.scale, self.dof) / self.scale
        return out if out.ndim else float(out)

    def mean(self) -> float:
        """Mean of the surrogate."""
        return self.offset + self.scale * self.dof

    def var(self) -> float:
        """Variance of the surrogate."""
        return 2.0 * self.scale**2 * self.dof

    def support(self, tail: float = 1e-10) -> tuple[float, float]:
        """An interval containing all but ``tail`` probability each side."""
        return float(self.ppf(tail)), float(self.ppf(1.0 - tail))


class QuadraticForm:
    """The random variable ``Q = offset + z' C z``, z ~ N(0, I).

    ``C`` is symmetrised on input. For the BLOD use case ``C`` is positive
    semidefinite, but indefinite forms are supported by the Imhof inversion
    and sampling paths (the chi-square match requires a PSD-like positive
    trace).
    """

    def __init__(self, offset: float, matrix: np.ndarray) -> None:
        matrix = np.asarray(matrix, dtype=float)
        if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
            raise ConfigurationError(
                f"matrix must be square, got shape {matrix.shape}"
            )
        self.offset = float(offset)
        self.matrix = 0.5 * (matrix + matrix.T)

    @cached_property
    def eigenvalues(self) -> np.ndarray:
        """Eigenvalues of ``C``: the weights of the chi-square mixture."""
        return np.linalg.eigvalsh(self.matrix)

    def mean(self) -> float:
        """``E[Q] = offset + tr(C)``."""
        return self.offset + float(np.trace(self.matrix))

    def var(self) -> float:
        """``Var[Q] = 2 tr(C^2)``."""
        return 2.0 * float(np.sum(self.matrix * self.matrix))

    def std(self) -> float:
        """Standard deviation of ``Q``."""
        return float(np.sqrt(self.var()))

    def skewness(self) -> float:
        """Skewness ``8 tr(C^3) / (2 tr(C^2))^(3/2)``."""
        variance = self.var()
        if variance <= 0.0:
            return 0.0
        trace_cubed = float(np.sum(self.eigenvalues**3))
        return 8.0 * trace_cubed / variance**1.5

    @property
    def is_degenerate(self) -> bool:
        """True when ``Q`` is (numerically) a point mass at ``offset``."""
        return self.var() <= 1e-300

    def chi2_match(self) -> Chi2Match:
        """Two-moment chi-square surrogate (eq. (29)-(30) of the paper).

        Matches mean and variance of the quadratic part:
        ``a = tr(C^2)/tr(C)`` and ``b = tr(C)^2 / tr(C^2)``.
        """
        trace = float(np.trace(self.matrix))
        trace_sq = float(np.sum(self.matrix * self.matrix))
        if trace <= 0.0 or trace_sq <= 0.0:
            raise NumericalError(
                "chi-square matching needs a positive-trace quadratic form; "
                "use imhof_sf or treat the form as degenerate"
            )
        scale = trace_sq / trace
        dof = trace**2 / trace_sq
        return Chi2Match(offset=self.offset, scale=scale, dof=dof)

    def hbe_match(self) -> Chi2Match:
        """Three-moment Hall-Buckley-Eagleson chi-square surrogate.

        Matches mean, variance and skewness; the surrogate is
        ``mean + std * (chi2(nu) - nu) / sqrt(2 nu)`` with ``nu = 8 /
        skewness^2``. Falls back to the two-moment match when the form is
        symmetric (zero skewness).
        """
        skew = self.skewness()
        if abs(skew) < 1e-12:
            return self.chi2_match()
        if skew < 0.0:
            # Mixtures of positive-weight chi-squares are right-skewed; a
            # negative skew implies indefinite C, outside HBE's domain.
            raise NumericalError("HBE matching requires right-skewed forms")
        dof = 8.0 / skew**2
        std = self.std()
        scale = std / np.sqrt(2.0 * dof)
        offset = self.mean() - scale * dof
        return Chi2Match(offset=offset, scale=scale, dof=dof)

    def imhof_sf(self, x: float, limit: int = 200) -> float:
        """Exact ``P(Q > x)`` by Imhof's numerical inversion [32].

        Integrates Imhof's oscillatory integrand with adaptive quadrature;
        accurate to roughly 1e-8 for well-conditioned forms, at a cost far
        above the closed-form chi-square match (which is the point of the
        paper's approximation).
        """
        if self.is_degenerate:
            return 1.0 if x < self.offset else 0.0
        lam = self.eigenvalues
        lam = lam[np.abs(lam) > 1e-14 * max(np.abs(lam).max(), 1e-300)]
        if lam.size == 0:
            return 1.0 if x < self.offset else 0.0
        # The distribution is scale invariant: normalise so the quadrature
        # sees O(1) eigenvalues regardless of the form's physical units
        # (BLOD variances are ~1e-4 nm^2, which would otherwise push the
        # integrand's oscillation scale far outside quad's search range).
        scale = float(np.abs(lam).max())
        lam = lam / scale
        shifted = (x - self.offset) / scale

        def theta(u: float) -> float:
            return 0.5 * float(np.sum(np.arctan(lam * u))) - 0.5 * shifted * u

        def rho(u: float) -> float:
            return float(np.prod((1.0 + (lam * u) ** 2) ** 0.25))

        def integrand(u: float) -> float:
            if u == 0.0:  # reprolint: disable=RPL005 (quad samples the exact endpoint)
                # limit u->0 of sin(theta)/(u rho) = theta'(0)
                return 0.5 * float(np.sum(lam)) - 0.5 * shifted
            return np.sin(theta(u)) / (u * rho(u))

        with warnings.catch_warnings():
            # The integrand oscillates; quad warns about slow convergence
            # even when the achieved accuracy is fine (verified in tests).
            warnings.simplefilter("ignore", integrate.IntegrationWarning)
            value, _error = integrate.quad(integrand, 0.0, np.inf, limit=limit)
        sf = 0.5 + value / np.pi
        return float(min(max(sf, 0.0), 1.0))

    def imhof_cdf(self, x: float, limit: int = 200) -> float:
        """Exact ``P(Q <= x)`` by Imhof's inversion."""
        return 1.0 - self.imhof_sf(x, limit=limit)

    def sample(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """Exact samples of ``Q`` via the eigenvalue mixture.

        ``Q = offset + sum_i lambda_i W_i`` with ``W_i ~ chi2(1)``
        independent — distributionally identical to drawing ``z`` and
        evaluating the form, but O(rank) instead of O(dim^2) per sample.
        """
        if n < 1:
            raise ConfigurationError(f"n must be >= 1, got {n}")
        lam = self.eigenvalues
        lam = lam[np.abs(lam) > 1e-14 * max(np.abs(lam).max(), 1e-300)]
        if lam.size == 0:
            return np.full(n, self.offset)
        chis = rng.chisquare(1.0, size=(n, lam.size))
        return self.offset + chis @ lam

    def sample_from_factors(self, z: np.ndarray) -> np.ndarray:
        """Evaluate ``Q`` on given factor draws ``z`` (shape ``(n, dim)``).

        Used when the same ``z`` draws must be shared across several
        quadratic forms (the st_mc analyzer evaluates all blocks' ``u_j``
        and ``v_j`` on one common factor sample).
        """
        z = np.asarray(z, dtype=float)
        if z.ndim == 1:
            z = z[None, :]
        if z.shape[1] != self.matrix.shape[0]:
            raise ConfigurationError(
                f"factor dimension {z.shape[1]} does not match form "
                f"dimension {self.matrix.shape[0]}"
            )
        return self.offset + np.einsum("ni,ij,nj->n", z, self.matrix, z)
