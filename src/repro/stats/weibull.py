"""Weibull time-to-breakdown distribution with area scaling (eq. (3)-(4)).

The OBD time of a device of normalized area ``a`` follows

    F(t) = 1 - exp(-a * (t / alpha)^beta)

where ``alpha`` is the characteristic life of a minimum-area device (63.2 %
failure point at ``a = 1``) and ``beta`` the Weibull slope. Area scaling is
the weakest-link property: a device of area ``a`` behaves like ``a``
minimum-area devices in series.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError, NumericalError


def _validate_not_nan(values: np.ndarray, name: str) -> None:
    """Finiteness guard for kernel inputs (reprolint RPL005).

    NaN would silently propagate through ``exp``/``log`` into reliability
    curves; ``+/-inf`` is allowed because the Weibull limits are well
    defined there (``F(inf) = 1``, ``R(inf) = 0``).
    """
    if np.isnan(values).any():
        raise NumericalError(f"{name} must not contain NaN")


@dataclass(frozen=True)
class AreaScaledWeibull:
    """A Weibull OBD-time law ``F(t) = 1 - exp(-a (t/alpha)^beta)``.

    Parameters
    ----------
    alpha:
        Scale parameter (characteristic life at unit area), hours.
    beta:
        Shape parameter (Weibull slope); for gate oxide this is ``b * x``
        with ``x`` the oxide thickness.
    area:
        Normalized device area ``a`` (>= any positive value; 1 is the
        minimum device).
    """

    alpha: float
    beta: float
    area: float = 1.0

    def __post_init__(self) -> None:
        if self.alpha <= 0.0:
            raise ConfigurationError(f"alpha must be positive, got {self.alpha}")
        if self.beta <= 0.0:
            raise ConfigurationError(f"beta must be positive, got {self.beta}")
        if self.area <= 0.0:
            raise ConfigurationError(f"area must be positive, got {self.area}")

    def cdf(self, t: np.ndarray | float) -> np.ndarray | float:
        """Failure probability by time ``t``."""
        t = np.asarray(t, dtype=float)
        _validate_not_nan(t, "t")
        out = -np.expm1(-self.area * (t / self.alpha) ** self.beta)
        return out if out.ndim else float(out)

    def sf(self, t: np.ndarray | float) -> np.ndarray | float:
        """Survivor (reliability) function ``R(t) = 1 - F(t)``."""
        t = np.asarray(t, dtype=float)
        _validate_not_nan(t, "t")
        out = np.exp(-self.area * (t / self.alpha) ** self.beta)
        return out if out.ndim else float(out)

    def pdf(self, t: np.ndarray | float) -> np.ndarray | float:
        """Failure-time probability density."""
        t = np.asarray(t, dtype=float)
        with np.errstate(divide="ignore", invalid="ignore"):
            ratio = t / self.alpha
            out = np.where(
                t > 0.0,
                self.area
                * self.beta
                / self.alpha
                * ratio ** (self.beta - 1.0)
                * np.exp(-self.area * ratio**self.beta),
                0.0,
            )
        return out if out.ndim else float(out)

    def ppf(self, q: np.ndarray | float) -> np.ndarray | float:
        """Failure-time quantile: smallest ``t`` with ``F(t) >= q``."""
        q = np.asarray(q, dtype=float)
        _validate_not_nan(q, "q")
        if np.any((q < 0.0) | (q >= 1.0)):
            raise ConfigurationError("quantile must be in [0, 1)")
        out = self.alpha * (-np.log1p(-q) / self.area) ** (1.0 / self.beta)
        return out if out.ndim else float(out)

    def hazard(self, t: np.ndarray | float) -> np.ndarray | float:
        """Instantaneous hazard rate ``f(t) / R(t)``."""
        t = np.asarray(t, dtype=float)
        with np.errstate(divide="ignore", invalid="ignore"):
            out = np.where(
                t > 0.0,
                self.area
                * self.beta
                / self.alpha
                * (t / self.alpha) ** (self.beta - 1.0),
                np.inf if self.beta < 1.0 else (0.0 if self.beta > 1.0 else
                                                self.area / self.alpha),
            )
        return out if out.ndim else float(out)

    def mean(self) -> float:
        """Mean time to breakdown."""
        return (
            self.alpha
            * self.area ** (-1.0 / self.beta)
            * math.gamma(1.0 + 1.0 / self.beta)
        )

    def characteristic_life(self) -> float:
        """63.2 % failure point at this area."""
        return self.alpha * self.area ** (-1.0 / self.beta)

    def sample(self, rng: np.random.Generator, size: int | tuple = ()) -> np.ndarray:
        """Draw failure times: ``t = alpha * (E / a)^(1/beta)``, E ~ Exp(1)."""
        exponential = rng.exponential(size=size)
        return self.alpha * (exponential / self.area) ** (1.0 / self.beta)

    def scaled_to_area(self, area: float) -> "AreaScaledWeibull":
        """The same law at a different normalized area."""
        return AreaScaledWeibull(alpha=self.alpha, beta=self.beta, area=area)


def weakest_link_sf(
    t: np.ndarray | float, laws: list[AreaScaledWeibull]
) -> np.ndarray | float:
    """Survivor function of the minimum failure time over independent laws.

    ``R_min(t) = prod_i R_i(t)`` — the series-system (weakest-link) rule
    the whole chip-level analysis is built on (eq. (7)).
    """
    t = np.asarray(t, dtype=float)
    log_sf = np.zeros_like(t, dtype=float)
    for law in laws:
        log_sf = log_sf - law.area * (t / law.alpha) ** law.beta
    out = np.exp(log_sf)
    return out if out.ndim else float(out)


def weibull_plot_coordinates(
    times: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Weibull-paper coordinates from a failure-time sample.

    Returns ``(ln t, ln(-ln(1 - F_hat)))`` using median-rank plotting
    positions; a straight line on these axes confirms Weibull behaviour and
    its slope estimates ``beta``.
    """
    times = np.sort(np.asarray(times, dtype=float))
    if times.ndim != 1 or len(times) < 2:
        raise ConfigurationError(
            "need a 1-D sample of at least two failure times"
        )
    if not np.all(np.isfinite(times)):
        raise NumericalError("failure times must be finite")
    if np.any(times <= 0.0):
        raise ConfigurationError("failure times must be positive")
    n = len(times)
    ranks = (np.arange(1, n + 1) - 0.3) / (n + 0.4)
    return np.log(times), np.log(-np.log1p(-ranks))


def fit_weibull_slope(times: np.ndarray) -> tuple[float, float]:
    """Least-squares Weibull fit on plot coordinates.

    Returns ``(beta_hat, alpha_hat)`` for a unit-area sample.
    """
    log_t, log_log = weibull_plot_coordinates(times)
    slope, intercept = np.polyfit(log_t, log_log, 1)
    beta_hat = float(slope)
    alpha_hat = float(np.exp(-intercept / slope))
    return beta_hat, alpha_hat
