"""Steady-state thermal simulation (HotSpotLite substrate)."""
